//! Walk through METIS's two-stage decision for individual queries: the LLM
//! profiler's estimate, the Algorithm-1 pruned space, and the best-fit
//! choice under three different free-memory conditions (Fig. 7 + Fig. 8).
//!
//! ```sh
//! cargo run --example profile_explorer
//! ```

use metis::core::{choose_config, map_profile, BestFitInputs};
use metis::prelude::*;

fn main() {
    let dataset = build_dataset(DatasetKind::Qmsum, 8, 11);
    let mut profiler = LlmProfiler::new(ProfilerKind::Gpt4o);
    let metadata = dataset.db.metadata().clone();
    let chunk_size = metadata.chunk_size as u64;

    for q in &dataset.queries {
        let out = profiler.profile(q, &metadata, 5);
        let est = out.estimate;
        println!(
            "query q{}: true profile = (complexity {:?}, joint {}, pieces {})",
            q.id.0, q.profile.complexity, q.profile.joint, q.profile.pieces
        );
        println!(
            "  profiler estimate  = (complexity {:?}, joint {}, pieces {}, summaries {}..{} \
             tokens, confidence {:.2})",
            est.complexity,
            est.joint,
            est.pieces,
            est.summary_range.0,
            est.summary_range.1,
            est.confidence
        );
        let space = map_profile(&est);
        println!(
            "  Algorithm 1        = methods {:?}, chunks {}..{}, summary {}..{} \
             ({} configurations)",
            space.methods.iter().map(|m| m.name()).collect::<Vec<_>>(),
            space.num_chunks.0,
            space.num_chunks.1,
            space.intermediate_length.0,
            space.intermediate_length.1,
            space.size()
        );
        // The joint scheduler under three memory regimes (Fig. 8).
        for (label, free) in [
            ("free GPU", 90_000u64),
            ("busy GPU", 9_000),
            ("starved GPU", 1_500),
        ] {
            let chosen = choose_config(
                &space,
                est.joint,
                &BestFitInputs {
                    free_kv_tokens: free,
                    chunk_size,
                    query_tokens: q.tokens.len() as u64,
                    expected_output: 48,
                    buffer_frac: 0.02,
                },
            );
            println!(
                "  best fit @ {label:<12} ({free:>6} KV tokens free) → {}{}",
                chosen.config.label(),
                if chosen.fallback { "  [fallback]" } else { "" }
            );
        }
        println!();
    }
}

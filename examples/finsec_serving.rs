//! The Fig. 1 scenario: METIS vs vLLM, Parrot*, and AdaptiveRAG* on the
//! KG-RAG-FinSec workload — delay and quality side by side.
//!
//! ```sh
//! cargo run --release --example finsec_serving
//! ```

use metis::prelude::*;

fn main() {
    let n = 80;
    let dataset = build_dataset(DatasetKind::FinSec, n, 2024);
    // Arrival rate at which the simulated A40 runs METIS at ~60% utilization
    // (the paper's absolute 2 q/s is specific to its testbed hardware).
    let qps = 0.20;

    let systems: Vec<(&str, SystemKind)> = vec![
        ("METIS", SystemKind::Metis(MetisOptions::full())),
        (
            "AdaptiveRAG*",
            SystemKind::AdaptiveRag {
                profiler: ProfilerKind::Gpt4o,
            },
        ),
        (
            "Parrot* (fixed)",
            SystemKind::Parrot {
                config: RagConfig::map_reduce(12, 100),
            },
        ),
        (
            "vLLM (fixed)",
            SystemKind::VllmFixed {
                config: RagConfig::map_reduce(12, 100),
            },
        ),
    ];

    println!("KG RAG FinSec, {n} queries, Poisson λ = {qps}/s\n");
    println!(
        "  {:<16} {:>9} {:>9} {:>9} {:>7}",
        "system", "mean", "p50", "p99", "F1"
    );
    let mut metis_delay = None;
    for (name, system) in systems {
        let arrivals = poisson_arrivals(7, qps, n);
        let run = Runner::new(&dataset, RunConfig::standard(system, arrivals, 99)).run();
        let lat = run.latency();
        if metis_delay.is_none() {
            metis_delay = Some(lat.mean());
        }
        let speedup = lat.mean() / metis_delay.expect("set on first row");
        println!(
            "  {:<16} {:>8.2}s {:>8.2}s {:>8.2}s {:>7.3}   ({speedup:.2}x METIS delay)",
            name,
            lat.mean(),
            lat.p50(),
            lat.p99(),
            run.mean_f1()
        );
    }
}

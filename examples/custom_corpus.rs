//! Use the substrate crates directly: build your own corpus, index it,
//! retrieve, and run a synthesis pipeline — the path a downstream user takes
//! to put METIS's controller on top of their own data.
//!
//! ```sh
//! cargo run --example custom_corpus
//! ```

use std::sync::Arc;

use metis::core::synthesis::SynthesisInputs;
use metis::embed::HashEmbed;
use metis::llm::{BaseFact, QueryTruth};
use metis::prelude::*;
use metis::text::{AnnotatedText, Chunker, ChunkerConfig, FactId, TextGen, Tokenizer, TopicVocab};
use metis::vectordb::VectorDb;

fn main() {
    // 1. Author a corpus with the text substrate: a finance document whose
    //    third paragraph contains the fact our query needs.
    let mut tok = Tokenizer::new();
    let finance = TopicVocab::build(&mut tok, "earnings", 64, 96);
    let mut gen = TextGen::new(3);

    let mut doc = AnnotatedText::new();
    doc.push_tokens(&gen.filler(&finance, 700));
    let subject = tok.encode("nvidia q3 operating cost");
    for _ in 0..3 {
        doc.push_tokens(&subject);
    }
    let fact_phrase = tok.encode("eleven point two billion dollars");
    doc.push_fact(FactId(1), &fact_phrase);
    doc.push_tokens(&gen.filler(&finance, 900));

    // 2. Chunk and index it.
    let chunks = Chunker::new(ChunkerConfig::with_size(256)).split(&doc);
    let db = VectorDb::build(
        &chunks,
        Arc::new(HashEmbed::default()),
        "quarterly earnings call transcripts",
        256,
    );
    println!("indexed {} chunks", db.len());

    // 3. Retrieve for a natural-language query that mentions the subject.
    let query = tok.encode("what was nvidia q3 operating cost");
    let retrieved = db.retrieve(&query, 3);
    for r in &retrieved {
        println!(
            "  hit chunk {:?} at distance {:.3} ({} facts)",
            r.hit.chunk,
            r.hit.distance,
            r.text.fact_ids().count()
        );
    }

    // 4. Run a synthesis pipeline over the retrieved chunks with the
    //    generation model and score the produced answer.
    let truth = QueryTruth {
        base: vec![BaseFact {
            id: FactId(1),
            answer: fact_phrase.clone(),
            in_answer: true,
        }],
        derived: vec![],
    };
    let genmodel = GenerationModel::from_spec(&ModelSpec::mistral_7b_awq());
    let boiler = tok.encode("the answer to your question is about");
    let inputs = SynthesisInputs {
        gen: &genmodel,
        truth: &truth,
        query_tokens: &query,
        boilerplate: &boiler,
    };
    let plan = metis::core::plan_synthesis(&inputs, &RagConfig::stuff(3), &retrieved, 17);
    println!("\nconfig: {}", plan.config.label());
    println!("answer: {}", tok.decode(&plan.answer));
    println!(
        "token F1 vs gold: {:.3}",
        f1_score(&plan.answer, &truth.gold_answer())
    );
}

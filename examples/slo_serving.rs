//! SLO-constrained configuration selection (§4.3's "SLO-based constraints")
//! and the agentic sub-query workflow (§9) — the paper's extension points.
//!
//! ```sh
//! cargo run --example slo_serving
//! ```

use metis::core::agentic::{plan_agentic, AgenticInputs};
use metis::core::{
    choose_config_with_slo, estimate_exec_secs, map_profile, BestFitInputs, LatencySlo,
};
use metis::prelude::*;

fn main() {
    let dataset = build_dataset(DatasetKind::FinSec, 6, 3);
    let latency = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
    let mut profiler = LlmProfiler::new(ProfilerKind::Gpt4o);
    let metadata = dataset.db.metadata().clone();
    let genmodel = GenerationModel::from_spec(&ModelSpec::mistral_7b_awq());

    println!("== SLO-aware configuration selection ==");
    for q in &dataset.queries {
        let est = profiler.profile(q, &metadata, 5).estimate;
        let space = map_profile(&est);
        let inputs = BestFitInputs {
            free_kv_tokens: 90_000,
            chunk_size: metadata.chunk_size as u64,
            query_tokens: q.tokens.len() as u64,
            expected_output: 48,
            buffer_frac: 0.02,
        };
        print!("q{} (pieces {}):", q.id.0, est.pieces);
        for budget in [10.0, 2.5, 1.0] {
            let chosen =
                choose_config_with_slo(&space, est.joint, &inputs, &latency, LatencySlo(budget));
            let secs = estimate_exec_secs(
                &chosen.config,
                &latency,
                inputs.chunk_size,
                inputs.query_tokens,
                inputs.expected_output,
            );
            print!(
                "  SLO {budget:>4.1}s → {} (~{secs:.2}s{})",
                chosen.config.label(),
                if chosen.fallback { ", best effort" } else { "" }
            );
        }
        println!();
    }

    println!("\n== Agentic sub-query workflow ==");
    for q in dataset.queries.iter().filter(|q| q.profile.pieces >= 3) {
        let inputs = AgenticInputs {
            gen: &genmodel,
            truth: &q.truth,
            query_tokens: &q.tokens,
            subject_spans: &q.subject_spans,
            boilerplate: &dataset.boilerplate,
        };
        let plan = plan_agentic(&inputs, &dataset.db, q.profile.pieces, 17);
        let f1 = f1_score(&plan.answer, &q.gold_answer());
        println!(
            "q{}: {} sub-queries → combine over {} tokens, F1 {:.3}",
            q.id.0,
            plan.map_calls.len(),
            plan.reduce_call.map_or(0, |c| c.prompt_tokens),
            f1
        );
    }
}

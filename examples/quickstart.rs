//! Quickstart: serve a small RAG workload with METIS and print what the
//! controller decided for each query.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use metis::prelude::*;

fn main() {
    // 1. Build a Musique-like workload: a corpus with planted facts and 25
    //    multi-hop queries with ground-truth answers and profiles.
    let dataset = build_dataset(DatasetKind::Musique, 25, 7);
    println!(
        "corpus: {} chunks of {} tokens — {}",
        dataset.db.len(),
        dataset.db.metadata().chunk_size,
        dataset.db.metadata().description
    );

    // 2. Serve it with METIS: GPT-4o profiler, Algorithm-1 mapping, and the
    //    joint best-fit scheduler on a simulated A40 running Mistral-7B.
    let arrivals = poisson_arrivals(1, 0.5, dataset.queries.len());
    let run = Runner::new(
        &dataset,
        RunConfig::standard(SystemKind::Metis(MetisOptions::full()), arrivals, 42),
    )
    .run();

    // 3. Inspect the per-query decisions.
    println!("\n  query  pieces  joint  config                 delay     F1");
    for r in &run.per_query {
        let q = &dataset.queries[r.query_index];
        println!(
            "  q{:<5} {:<7} {:<6} {:<22} {:>5.2}s  {:.3}",
            r.query_index,
            q.profile.pieces,
            q.profile.joint,
            r.config.label(),
            r.delay_secs,
            r.f1
        );
    }
    println!(
        "\nmean F1 {:.3} | mean delay {:.2}s | p99 {:.2}s | profiler cost ${:.4}",
        run.mean_f1(),
        run.mean_delay_secs(),
        run.latency().p99(),
        run.api_cost_usd
    );

    // 4. Decode one generated answer back to text.
    let sample = &run.per_query[0];
    let q = &dataset.queries[sample.query_index];
    println!(
        "\nsample gold answer: {}",
        dataset.tokenizer.decode(&q.gold_answer())
    );
}

//! Property-based tests (proptest) on the core data structures and
//! invariants, as called out in DESIGN.md §6.

use proptest::prelude::*;

use metis::core::{
    choose_config, BestFitInputs, PlanDemand, PrunedSpace, RagConfig, SynthesisMethod,
};
use metis::datasets::Complexity;
use metis::datasets::{AnnConfig, AnnCorpus};
use metis::engine::{
    Engine, EngineConfig, GroupId, KvAllocator, LlmRequest, Priority, RequestId, Stage,
};
use metis::llm::{GenerationModel, GpuCluster, LatencyModel, ModelSpec};
use metis::metrics::f1_score;
use metis::text::{AnnotatedText, Chunker, ChunkerConfig, TokenId};
use metis::vectordb::{
    ChunkStore, FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, Quantization,
    ScalarQuantizer, VectorIndex,
};

fn tokens(ids: &[u32]) -> Vec<TokenId> {
    ids.iter().map(|&i| TokenId(i)).collect()
}

proptest! {
    /// F1 is always in [0, 1] and symmetric.
    #[test]
    fn f1_bounded_and_symmetric(a in prop::collection::vec(0u32..50, 0..40),
                                b in prop::collection::vec(0u32..50, 0..40)) {
        let (ta, tb) = (tokens(&a), tokens(&b));
        let f = f1_score(&ta, &tb);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!((f - f1_score(&tb, &ta)).abs() < 1e-12);
        // Identity gives a perfect score.
        prop_assert_eq!(f1_score(&ta, &ta), 1.0);
    }

    /// The chunker partitions documents exactly when overlap is zero:
    /// every token appears once, in order.
    #[test]
    fn chunker_partitions_exactly(n in 1usize..2000, size in 1usize..300) {
        let mut doc = AnnotatedText::new();
        doc.push_tokens(&(0..n as u32).map(TokenId).collect::<Vec<_>>());
        let chunks = Chunker::new(ChunkerConfig::with_size(size)).split(&doc);
        let mut rebuilt = Vec::new();
        for c in &chunks {
            rebuilt.extend_from_slice(c.text.tokens());
        }
        prop_assert_eq!(rebuilt, doc.tokens().to_vec());
        // All chunks except the last are exactly `size` tokens.
        for c in &chunks[..chunks.len() - 1] {
            prop_assert_eq!(c.text.len(), size);
        }
    }

    /// KV allocator conservation: after any interleaving of allocs and
    /// frees, used + free equals capacity and nothing is lost.
    #[test]
    fn kv_allocator_conserves_blocks(ops in prop::collection::vec((0u64..20, 1u64..2000), 1..60)) {
        let mut alloc = KvAllocator::new(10_000, 16);
        let capacity = alloc.capacity_tokens();
        let mut live: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (seq, toks) in ops {
            if live.contains(&seq) {
                prop_assert!(alloc.free(RequestId(seq)).is_ok());
                live.remove(&seq);
            } else if alloc.alloc(RequestId(seq), toks).is_ok() {
                live.insert(seq);
            }
            prop_assert_eq!(alloc.used_tokens() + alloc.free_tokens(), capacity);
        }
        for seq in live {
            prop_assert!(alloc.free(RequestId(seq)).is_ok());
        }
        prop_assert_eq!(alloc.free_tokens(), capacity);
    }

    /// Flat index top-k equals brute force on arbitrary data.
    #[test]
    fn flat_index_matches_brute_force(
        rows in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 4), 1..60),
        q in prop::collection::vec(-10.0f32..10.0, 4),
        k in 1usize..10,
    ) {
        let mut idx = FlatIndex::new(4);
        for (i, r) in rows.iter().enumerate() {
            idx.add(metis::text::ChunkId(i as u32), r);
        }
        let hits = idx.search(&q, k);
        let mut brute: Vec<(f32, u32)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let d: f32 = r.iter().zip(&q).map(|(x, y)| (x - y) * (x - y)).sum();
                (d.sqrt(), i as u32)
            })
            .collect();
        brute.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        prop_assert_eq!(hits.len(), k.min(rows.len()));
        for (h, (d, _)) in hits.iter().zip(&brute) {
            prop_assert!((h.distance - d).abs() < 1e-4);
        }
    }

    /// IVF recall@k against the exact flat index is monotone non-decreasing
    /// in `nprobe` (probing more lists only grows the candidate set),
    /// reaches exactly 1.0 at `nprobe == nlist` (every list probed = the
    /// full scan under the same tie-break order), and the probed search
    /// work never exceeds the full-scan work of the same query.
    #[test]
    fn ivf_recall_monotone_in_nprobe(
        rows in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 4), 8..64),
        q in prop::collection::vec(-10.0f32..10.0, 4),
    ) {
        let k = 5usize;
        let items: Vec<(metis::text::ChunkId, Vec<f32>)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (metis::text::ChunkId(i as u32), r.clone()))
            .collect();
        let mut flat = FlatIndex::new(4);
        for (id, v) in &items {
            flat.add(*id, v);
        }
        let gold: std::collections::HashSet<_> =
            flat.search(&q, k).into_iter().map(|h| h.chunk).collect();
        let nlist = 4usize;
        let mut prev = 0.0f64;
        for nprobe in 1..=nlist {
            // Same items and training schedule → identical centroids; only
            // the probe depth differs between the builds.
            let idx = IvfIndex::build(4, IvfConfig { nlist, nprobe, train_iters: 4 }, &items);
            let out = idx.search_counted(&q, k);
            let hit = out.hits.iter().filter(|h| gold.contains(&h.chunk)).count();
            let recall = hit as f64 / gold.len() as f64;
            prop_assert!(
                recall >= prev - 1e-12,
                "recall dropped from {prev:.3} to {recall:.3} at nprobe {nprobe}"
            );
            prev = recall;
            prop_assert!(out.work.vectors_scored <= items.len());
            prop_assert!(out.work.lists_probed == nprobe);
            if nprobe == nlist {
                prop_assert!((recall - 1.0).abs() < 1e-12, "full probe recall {recall}");
                prop_assert_eq!(out.work.vectors_scored, items.len());
            }
        }
    }

    /// Best-fit never selects a non-fallback configuration whose scheduling
    /// footprint exceeds the usable free memory.
    #[test]
    fn best_fit_respects_memory(free in 0u64..80_000,
                                lo in 1u32..8, span in 0u32..10,
                                slo in 10u32..100, sspan in 0u32..100,
                                joint in any::<bool>()) {
        let space = PrunedSpace {
            methods: vec![SynthesisMethod::Stuff, SynthesisMethod::MapReduce],
            num_chunks: (lo, lo + span),
            intermediate_length: (slo, slo + sspan),
        };
        let inputs = BestFitInputs {
            free_kv_tokens: free,
            chunk_size: 512,
            query_tokens: 40,
            expected_output: 48,
            buffer_frac: 0.02,
        };
        let chosen = choose_config(&space, joint, &inputs);
        if !chosen.fallback {
            prop_assert!(space.contains(&chosen.config));
            let d = PlanDemand::estimate(&chosen.config, 512, 40, 48);
            prop_assert!(d.sched_tokens <= inputs.usable());
        }
        prop_assert!(chosen.config.num_chunks >= 1);
    }

    /// Pruned-space candidate enumeration only yields members of the space.
    #[test]
    fn candidates_are_members(lo in 1u32..10, span in 0u32..8,
                              slo in 1u32..150, sspan in 0u32..150) {
        let space = PrunedSpace {
            methods: vec![
                SynthesisMethod::MapRerank,
                SynthesisMethod::Stuff,
                SynthesisMethod::MapReduce,
            ],
            num_chunks: (lo, lo + span),
            intermediate_length: (slo, slo + sspan),
        };
        for c in space.candidates() {
            prop_assert!(space.contains(&c), "{c:?} outside {space:?}");
        }
    }

    /// Engine: any batch of requests drains completely, the clock is
    /// monotone, and KV returns to full.
    #[test]
    fn engine_drains_any_workload(reqs in prop::collection::vec(
        (1u64..4000, 1u64..40, 0u64..2_000_000_000u64), 1..25)) {
        let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        let mut engine = Engine::new(lat, EngineConfig::default());
        let capacity = engine.kv_capacity_tokens();
        for (i, (prompt, out, arrival)) in reqs.iter().enumerate() {
            engine.submit(LlmRequest {
                id: RequestId(i as u64),
                group: GroupId(i as u64),
                stage: Stage::Single,
                prompt_tokens: *prompt,
                output_tokens: *out,
                cached_prompt_tokens: 0,
                arrival: *arrival,
                priority: Priority::Standard,
            });
        }
        let done = engine.run_until_idle();
        prop_assert_eq!(done.len(), reqs.len());
        prop_assert_eq!(engine.free_kv_tokens(), capacity);
        let mut last = 0;
        for c in &done {
            prop_assert!(c.finish >= last);
            last = c.finish;
            prop_assert!(c.finish > c.arrival);
        }
    }

    /// Plan demand is monotone in chunks for every method.
    #[test]
    fn demand_monotone_in_chunks(k in 1u32..34, ilen in 1u32..300) {
        for method in SynthesisMethod::all() {
            let a = PlanDemand::estimate(
                &RagConfig { num_chunks: k, synthesis: method, intermediate_length: ilen },
                512, 40, 48);
            let b = PlanDemand::estimate(
                &RagConfig { num_chunks: k + 1, synthesis: method, intermediate_length: ilen },
                512, 40, 48);
            prop_assert!(b.total_tokens > a.total_tokens);
            prop_assert!(b.sched_tokens >= a.sched_tokens);
        }
    }
}

proptest! {
    /// The prefix cache never exceeds capacity and conserves accounting
    /// across arbitrary lookup sequences.
    #[test]
    fn prefix_cache_respects_capacity(cap in 100u64..5_000,
                                      ops in prop::collection::vec(0u32..30, 1..80)) {
        let mut cache = metis::engine::PrefixCache::new(cap);
        for chunk in ops {
            // A chunk's token count is a stable property of the chunk.
            let toks = 50 + u64::from(chunk) * 17;
            let cached = cache.lookup_or_insert(metis::text::ChunkId(chunk), toks);
            prop_assert!(cached == 0 || cached == toks);
            prop_assert!(cache.used_tokens() <= cap);
        }
        let rate = cache.hit_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
    }

    /// Requests with cached prefixes finish no later than cold ones.
    #[test]
    fn cached_prefix_never_slows_a_request(prompt in 500u64..8_000, frac in 0u64..100) {
        let mk = |cached: u64| {
            let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
            let mut e = Engine::new(lat, EngineConfig::default());
            e.submit(LlmRequest {
                id: RequestId(1),
                group: GroupId(1),
                stage: Stage::Single,
                prompt_tokens: prompt,
                output_tokens: 5,
                cached_prompt_tokens: cached,
                arrival: 0,
                priority: Priority::Standard,
            });
            e.run_until_idle()[0].finish
        };
        let cold = mk(0);
        let warm = mk(prompt * frac / 100);
        prop_assert!(warm <= cold, "warm {warm} > cold {cold}");
    }

    /// Summaries never exceed their budget, whatever the budget.
    #[test]
    fn summary_budget_is_hard(budget in 1usize..300, pad in 0usize..2_000, seed in 0u64..50) {
        use metis::llm::{BaseFact, QueryTruth};
        use metis::text::FactId;
        let gen = GenerationModel::from_spec(&ModelSpec::mistral_7b_awq());
        let mut chunk = AnnotatedText::new();
        chunk.push_tokens(&vec![TokenId(1); pad / 2]);
        chunk.push_fact(FactId(1), &[TokenId(2), TokenId(3), TokenId(4)]);
        chunk.push_tokens(&vec![TokenId(1); pad / 2]);
        let truth = QueryTruth {
            base: vec![BaseFact { id: FactId(1), answer: vec![TokenId(2)], in_answer: true }],
            derived: vec![],
        };
        let out = gen.summarize(seed, &truth, &chunk, budget);
        prop_assert!(out.text.len() <= budget, "summary {} > budget {budget}", out.text.len());
    }

    /// HNSW recall@k on the planted ANN corpus is monotone non-decreasing
    /// in `ef_search` — layer-0 expansion order is `ef`-independent, so
    /// the candidate pools at growing budgets nest, and since the gold set
    /// is the exact global top-k no newcomer can displace a gold hit — and
    /// at equal (or IVF-favoring) reported distance work, HNSW recall is
    /// at least IVF's.
    #[test]
    fn hnsw_recall_monotone_in_ef_and_at_least_ivf_at_equal_work(
        n in 240usize..600, seed in 0u64..10_000,
    ) {
        let corpus = AnnCorpus::generate(AnnConfig {
            num_queries: 4,
            ..AnnConfig::at_scale(n, seed)
        });
        let k = corpus.config.k;
        let hnsw = HnswIndex::build(
            corpus.config.dim,
            HnswConfig::default(),
            Quantization::F32,
            &corpus.items,
        );
        let mut hnsw_work = 0usize;
        let mut hnsw_recall = 0.0f64;
        for q in &corpus.queries {
            let mut prev = 0.0f64;
            for ef in [4usize, 16, 64] {
                let out = hnsw.search_with_ef(&q.vector, k, ef);
                let ids: Vec<_> = out.hits.iter().map(|h| h.chunk).collect();
                let recall = AnnCorpus::recall(&q.gold, &ids);
                prop_assert!(
                    recall >= prev - 1e-12,
                    "recall fell {prev:.3} → {recall:.3} raising ef to {ef}"
                );
                prev = recall;
                if ef == 64 {
                    hnsw_work += out.work.distances();
                    hnsw_recall += recall;
                }
            }
        }
        // Walk IVF's work curve up to the first probe depth whose reported
        // distance work matches or exceeds HNSW's: same total budget (or
        // more, favoring IVF), HNSW must not recall less.
        let nlist = 16usize;
        let mut ivf_recall = 0.0f64;
        for nprobe in 1..=nlist {
            let ivf = IvfIndex::build(
                corpus.config.dim,
                IvfConfig { nlist, nprobe, train_iters: 4 },
                &corpus.items,
            );
            let mut work = 0usize;
            ivf_recall = 0.0;
            for q in &corpus.queries {
                let out = ivf.search_counted(&q.vector, k);
                let ids: Vec<_> = out.hits.iter().map(|h| h.chunk).collect();
                ivf_recall += AnnCorpus::recall(&q.gold, &ids);
                work += out.work.distances();
            }
            if work >= hnsw_work {
                break;
            }
        }
        prop_assert!(
            hnsw_recall >= ivf_recall - 1e-9,
            "HNSW recall {hnsw_recall:.3} below IVF {ivf_recall:.3} at equal work"
        );
    }

    /// sq8 round-trip: `decode(encode(x))` is within half a quantization
    /// step of `x` on every dimension, for any corpus the quantizer was
    /// trained on (degenerate constant dims reconstruct exactly).
    #[test]
    fn sq8_roundtrip_error_bounded_by_step(
        rows in prop::collection::vec(prop::collection::vec(-8.0f32..8.0, 6), 2..40),
    ) {
        let quantizer = ScalarQuantizer::train(6, rows.iter().map(|r| r.as_slice()));
        for row in &rows {
            let decoded = quantizer.decode(&quantizer.encode(row));
            for (d, (x, y)) in row.iter().zip(&decoded).enumerate() {
                let bound = quantizer.step(d) * 0.5 + 1e-5;
                prop_assert!(
                    (x - y).abs() <= bound,
                    "dim {d}: |{x} - {y}| exceeds step/2 = {bound}"
                );
            }
        }
    }

    /// Tiered chunk store conservation: every chunk stays retrievable with
    /// its exact tokens, hot + cold occupancy always sums to the corpus
    /// size, the hot tier never exceeds its capacity, and the access
    /// counters account for every `get` (each is a hot hit or a promotion;
    /// promotions minus evictions is the current hot occupancy).
    #[test]
    fn tiered_store_conserves_chunks_and_counters(
        cap in 1usize..12, nchunks in 1usize..40,
        ops in prop::collection::vec(0usize..40, 1..120),
    ) {
        let mut store = ChunkStore::with_hot_capacity(cap);
        let mut texts = Vec::new();
        for i in 0..nchunks {
            let mut t = AnnotatedText::new();
            t.push_tokens(&(0..=(i % 7) as u32).map(TokenId).collect::<Vec<_>>());
            if i % 3 == 0 {
                t.push_fact(metis::text::FactId(i as u64), &[TokenId(100), TokenId(101)]);
            }
            store.push(&t);
            texts.push(t);
        }
        let mut gets = 0u64;
        for op in ops {
            let pick = op % nchunks;
            let got = store.get(metis::text::ChunkId(pick as u32));
            prop_assert!(got.is_some(), "chunk {pick} not retrievable");
            prop_assert_eq!(got.unwrap().tokens(), texts[pick].tokens());
            gets += 1;
            let s = store.stats();
            prop_assert_eq!(s.accesses, gets);
            prop_assert_eq!(s.hot_chunks + s.cold_chunks, nchunks);
            prop_assert!(s.hot_chunks <= cap);
            prop_assert_eq!(s.hot_hits + s.promotions, gets);
            prop_assert_eq!(s.promotions - s.evictions, s.hot_chunks as u64);
        }
    }

    /// Algorithm 1 always produces a well-formed pruned space from any
    /// profile the profiler can emit.
    #[test]
    fn mapping_output_is_well_formed(pieces in 1u32..10, joint in any::<bool>(),
                                     high in any::<bool>(), lo in 1u32..295, span in 0u32..100) {
        use metis::profiler::EstimatedProfile;
        let est = EstimatedProfile {
            complexity: if high { Complexity::High } else { Complexity::Low },
            joint,
            pieces,
            summary_range: (lo, (lo + span).min(300)),
            confidence: 0.95,
        };
        let space = metis::core::map_profile(&est);
        prop_assert!(!space.methods.is_empty());
        prop_assert!(space.num_chunks.0 >= 1);
        prop_assert!(space.num_chunks.0 <= space.num_chunks.1);
        prop_assert!(space.num_chunks.1 <= 35);
        prop_assert!(space.num_chunks.0 == pieces.min(space.num_chunks.0));
        prop_assert!(!space.candidates().is_empty());
    }
}

//! End-to-end integration tests spanning every crate: datasets → retrieval →
//! profiling → Algorithm 1 → best-fit → synthesis → engine → metrics.

use metis::prelude::*;

fn qps_for(kind: DatasetKind) -> f64 {
    match kind {
        DatasetKind::Squad => 1.6,
        DatasetKind::Musique => 0.55,
        DatasetKind::FinSec => 0.20,
        DatasetKind::Qmsum => 0.17,
    }
}

#[test]
fn metis_serves_every_dataset() {
    for kind in DatasetKind::all() {
        let dataset = build_dataset(kind, 25, 1234);
        let arrivals = poisson_arrivals(5, qps_for(kind), 25);
        let run = Runner::new(
            &dataset,
            RunConfig::standard(SystemKind::Metis(MetisOptions::full()), arrivals, 42),
        )
        .run();
        assert_eq!(run.per_query.len(), 25, "{kind:?}: lost queries");
        assert!(run.mean_f1() > 0.15, "{kind:?}: F1 {:.3}", run.mean_f1());
        assert!(
            run.mean_delay_secs() > 0.05 && run.mean_delay_secs() < 120.0,
            "{kind:?}: delay {:.2}",
            run.mean_delay_secs()
        );
    }
}

#[test]
fn per_query_adaptation_tracks_query_profiles() {
    // Simple single-piece queries should get cheap configs; complex
    // multi-piece ones should get deeper retrieval.
    let dataset = build_dataset(DatasetKind::FinSec, 40, 9);
    let arrivals = poisson_arrivals(3, 0.1, 40);
    let run = Runner::new(
        &dataset,
        RunConfig::standard(SystemKind::Metis(MetisOptions::full()), arrivals, 7),
    )
    .run();
    let mut small_pieces_chunks = Vec::new();
    let mut large_pieces_chunks = Vec::new();
    for r in &run.per_query {
        let pieces = dataset.queries[r.query_index].profile.pieces;
        if pieces <= 2 {
            small_pieces_chunks.push(r.config.num_chunks);
        } else if pieces >= 5 {
            large_pieces_chunks.push(r.config.num_chunks);
        }
    }
    if !small_pieces_chunks.is_empty() && !large_pieces_chunks.is_empty() {
        let mean = |v: &[u32]| v.iter().sum::<u32>() as f64 / v.len() as f64;
        assert!(
            mean(&large_pieces_chunks) > mean(&small_pieces_chunks),
            "deep queries should retrieve more: {:?} vs {:?}",
            large_pieces_chunks,
            small_pieces_chunks
        );
    }
}

#[test]
fn quality_comes_from_retrieval_not_luck() {
    // Break retrieval (query tokens unrelated to the corpus) and quality
    // must collapse: the pipeline's F1 is grounded in retrieved evidence.
    let dataset = build_dataset(DatasetKind::Squad, 15, 77);
    let genmodel = GenerationModel::from_spec(&ModelSpec::mistral_7b_awq());
    let mut good = 0.0;
    let mut broken = 0.0;
    for (i, q) in dataset.queries.iter().enumerate() {
        let inputs = metis::core::synthesis::SynthesisInputs {
            gen: &genmodel,
            truth: &q.truth,
            query_tokens: &q.tokens,
            boilerplate: &dataset.boilerplate,
        };
        let cfg = RagConfig::stuff(3);
        let hit = dataset.db.retrieve(&q.tokens, 3);
        let miss = dataset
            .db
            .retrieve(&dataset.queries[(i + 7) % 15].tokens, 3);
        good += f1_score(
            &metis::core::plan_synthesis(&inputs, &cfg, &hit, i as u64).answer,
            &q.gold_answer(),
        );
        broken += f1_score(
            &metis::core::plan_synthesis(&inputs, &cfg, &miss, i as u64).answer,
            &q.gold_answer(),
        );
    }
    assert!(
        good > broken * 2.0 + 1.0,
        "retrieval not load-bearing: good {good:.2} vs broken {broken:.2}"
    );
}

#[test]
fn engine_accounting_is_conserved_across_a_full_run() {
    let dataset = build_dataset(DatasetKind::Musique, 30, 5);
    let arrivals = poisson_arrivals(2, 0.55, 30);
    let run = Runner::new(
        &dataset,
        RunConfig::standard(SystemKind::Metis(MetisOptions::full()), arrivals, 3),
    )
    .run();
    // Makespan bounds every per-query delay; finish times are plausible.
    for r in &run.per_query {
        assert!(r.finish_secs >= r.arrival_secs);
        assert!(r.delay_secs <= run.makespan_secs + 1e-6);
        assert!(r.profiler_secs < r.delay_secs);
    }
    // GPU can't be busy longer than the span of the run.
    assert!(run.gpu_busy_secs <= run.makespan_secs * 1.01 + 1.0);
}

#[test]
fn confidence_fallback_handles_forced_bad_profiles() {
    // With the noisier Llama profiler, low-confidence profiles appear; the
    // run must still complete with reasonable quality (§5 fallback).
    let dataset = build_dataset(DatasetKind::Musique, 40, 21);
    let mut opts = MetisOptions::full();
    opts.profiler = ProfilerKind::Llama70b;
    let arrivals = poisson_arrivals(4, 0.55, 40);
    let run = Runner::new(
        &dataset,
        RunConfig::standard(SystemKind::Metis(opts), arrivals, 13),
    )
    .run();
    assert_eq!(run.per_query.len(), 40);
    assert!(run.mean_f1() > 0.15, "F1 {:.3}", run.mean_f1());
}

#[test]
fn memory_starvation_exercises_the_fallback_path() {
    // Shrink the KV pool until the pruned space cannot fit: METIS must fall
    // back (§4.3) rather than queue or deadlock.
    let dataset = build_dataset(DatasetKind::FinSec, 20, 31);
    let mut cfg = RunConfig::standard(
        SystemKind::Metis(MetisOptions::full()),
        poisson_arrivals(2, 0.1, 20),
        5,
    );
    cfg.engine.kv_pool_bytes_cap = Some(600 * 1024 * 1024); // 0.6 GB ≈ 4.8k tokens.
    let run = Runner::new(&dataset, cfg).run();
    assert_eq!(run.per_query.len(), 20, "queries lost under starvation");
    let fallbacks = run.per_query.iter().filter(|q| q.fallback).count();
    assert!(fallbacks > 0, "starvation never triggered the fallback");
    // Fallback configs are genuinely small.
    for r in run.per_query.iter().filter(|q| q.fallback) {
        assert!(r.config.num_chunks <= 4, "fallback too big: {:?}", r.config);
    }
}

#[test]
fn gold_answers_are_recoverable_at_the_oracle_config() {
    // With the oracle profile and generous resources, METIS-style synthesis
    // should reach materially higher F1 than the worst configuration.
    let dataset = build_dataset(DatasetKind::Qmsum, 20, 55);
    let genmodel = GenerationModel::from_spec(&ModelSpec::mistral_7b_awq());
    let mut best = 0.0;
    let mut worst = 0.0;
    for (i, q) in dataset.queries.iter().enumerate() {
        let inputs = metis::core::synthesis::SynthesisInputs {
            gen: &genmodel,
            truth: &q.truth,
            query_tokens: &q.tokens,
            boilerplate: &dataset.boilerplate,
        };
        let k = q.profile.pieces * 2;
        let good_cfg = RagConfig::map_reduce(k, q.profile.summary_range.1);
        let bad_cfg = RagConfig::map_rerank(1);
        let retrieved = dataset.db.retrieve(&q.tokens, k as usize);
        best += f1_score(
            &metis::core::plan_synthesis(&inputs, &good_cfg, &retrieved, i as u64).answer,
            &q.gold_answer(),
        );
        worst += f1_score(
            &metis::core::plan_synthesis(&inputs, &bad_cfg, &retrieved[..1], i as u64).answer,
            &q.gold_answer(),
        );
    }
    assert!(
        best > worst + 4.0,
        "config choice not load-bearing: best {best:.1} worst {worst:.1} over 20 queries"
    );
}

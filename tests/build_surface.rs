//! Smoke tests for the workspace build surface itself: every dataset kind
//! must round-trip through `build_dataset` + `Runner` under every serving
//! system the paper evaluates — METIS *and* the three baselines — exercising
//! the full facade re-export chain (datasets → profiler → controller →
//! engine → metrics) that the workspace manifests wire together.

use metis::prelude::*;

const QUERIES: usize = 8;
const SEED: u64 = 20_240_101;

fn systems() -> Vec<(&'static str, SystemKind)> {
    vec![
        ("metis", SystemKind::Metis(MetisOptions::full())),
        (
            "vllm-fixed",
            SystemKind::VllmFixed {
                config: RagConfig::stuff(8),
            },
        ),
        (
            "parrot",
            SystemKind::Parrot {
                config: RagConfig::stuff(8),
            },
        ),
        (
            "adaptive-rag",
            SystemKind::AdaptiveRag {
                profiler: ProfilerKind::Gpt4o,
            },
        ),
    ]
}

/// Every `(dataset, system)` pair builds, serves all queries to completion,
/// and produces finite, sane metrics.
#[test]
fn every_dataset_roundtrips_through_every_system() {
    for kind in DatasetKind::all() {
        let dataset = build_dataset(kind, QUERIES, SEED);
        assert_eq!(dataset.queries.len(), QUERIES, "{kind:?}: query count");
        assert!(!dataset.db.is_empty(), "{kind:?}: empty vector db");

        for (name, system) in systems() {
            let arrivals = poisson_arrivals(SEED ^ 0xBEEF, 0.5, QUERIES);
            let run = Runner::new(&dataset, RunConfig::standard(system, arrivals, SEED)).run();

            assert_eq!(
                run.per_query.len(),
                QUERIES,
                "{kind:?}/{name}: dropped queries"
            );
            let f1 = run.mean_f1();
            assert!(
                (0.0..=1.0).contains(&f1),
                "{kind:?}/{name}: F1 out of range: {f1}"
            );
            let delay = run.mean_delay_secs();
            assert!(
                delay.is_finite() && delay > 0.0,
                "{kind:?}/{name}: bad delay: {delay}"
            );
            assert!(
                run.makespan_secs.is_finite() && run.makespan_secs > 0.0,
                "{kind:?}/{name}: bad makespan"
            );
        }
    }
}

/// Every `(dataset, system)` pair also round-trips through a 2-replica
/// cluster with KV-aware routing: nothing is dropped or double-counted —
/// the per-replica completion counts sum to the single-replica query count
/// — and every query records the replica that served it.
#[test]
fn every_system_roundtrips_through_a_two_replica_cluster() {
    for kind in DatasetKind::all() {
        let dataset = build_dataset(kind, QUERIES, SEED);
        for (name, system) in systems() {
            let arrivals = poisson_arrivals(SEED ^ 0xBEEF, 0.5, QUERIES);
            let cfg = RunConfig::standard(system, arrivals, SEED)
                .replicated(2, RouterPolicy::LeastKvLoad);
            let run = Runner::new(&dataset, cfg).run();

            assert_eq!(run.replicas, 2, "{kind:?}/{name}: replica count");
            assert_eq!(
                run.per_query.len(),
                QUERIES,
                "{kind:?}/{name}: dropped queries"
            );
            let by_replica = run.completions_by_replica();
            assert!(by_replica.len() <= 2, "{kind:?}/{name}: phantom replica");
            assert_eq!(
                by_replica.iter().sum::<usize>(),
                QUERIES,
                "{kind:?}/{name}: per-replica completions must sum to the \
                 single-replica query count (got {by_replica:?})"
            );
            assert!(
                run.per_query.iter().all(|q| q.replica < 2),
                "{kind:?}/{name}: out-of-range replica id"
            );
            let f1 = run.mean_f1();
            assert!(
                (0.0..=1.0).contains(&f1),
                "{kind:?}/{name}: F1 out of range: {f1}"
            );
            assert!(
                run.mean_delay_secs().is_finite() && run.mean_delay_secs() > 0.0,
                "{kind:?}/{name}: bad delay"
            );
        }
    }
}

/// Runs are deterministic in the seed for every system, which is what makes
/// the pinned-workspace reproducibility guarantee meaningful end to end.
#[test]
fn runs_are_deterministic_for_every_system() {
    let dataset = build_dataset(DatasetKind::Musique, QUERIES, SEED);
    for (name, system) in systems() {
        let go = || {
            let arrivals = poisson_arrivals(SEED ^ 0xF00D, 0.5, QUERIES);
            Runner::new(&dataset, RunConfig::standard(system, arrivals, SEED)).run()
        };
        let (a, b) = (go(), go());
        assert_eq!(a.per_query.len(), b.per_query.len(), "{name}: lengths");
        assert!(
            (a.mean_f1() - b.mean_f1()).abs() < 1e-12,
            "{name}: F1 not deterministic"
        );
        assert!(
            (a.mean_delay_secs() - b.mean_delay_secs()).abs() < 1e-9,
            "{name}: delay not deterministic"
        );
    }
}

//! `metis-lint` — the workspace invariant checker.
//!
//! This repo's core claims rest on invariants that types cannot express:
//! virtual time never leaks wall time (the byte-for-byte sim golden and the
//! sim↔realtime parity bench depend on it), bench reports are
//! bit-reproducible under pinned seeds (the CI perf gate diffs them against
//! committed baselines), and every comparator over scores is total (a NaN
//! must never panic a worker thread). One stray `Instant::now()`, one
//! `HashMap` iteration in a report path, or one `partial_cmp().unwrap()`
//! breaks goldens, gates, or serving — silently, until CI or production
//! notices.
//!
//! `metis-lint` enforces those invariants mechanically: a lightweight Rust
//! [lexer] (nested block comments, raw strings, char-literal vs
//! lifetime) feeds a [rule engine](rules) that walks every workspace crate
//! ([workspace]), with roles read from each `Cargo.toml` and suppression
//! only through an in-source pragma that requires a written reason.
//!
//! Run it with `cargo run -p metis-lint -- --workspace`.

pub mod lexer;
pub mod rules;
pub mod workspace;

pub use rules::{lint_source, FileRole, Violation};
pub use workspace::{find_workspace_root, lint_workspace};

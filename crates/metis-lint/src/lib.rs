//! `metis-lint` — the workspace invariant checker.
//!
//! This repo's core claims rest on invariants that types cannot express:
//! virtual time never leaks wall time (the byte-for-byte sim golden and the
//! sim↔realtime parity bench depend on it), bench reports are
//! bit-reproducible under pinned seeds (the CI perf gate diffs them against
//! committed baselines), every comparator over scores is total (a NaN must
//! never panic a worker thread), crates sit in a layered DAG (core never
//! imports bench/cli), time/token/byte arithmetic never silently mixes
//! units, and a realtime worker never blocks while holding a lock. One
//! stray `Instant::now()`, one upward import, one `deadline_nanos +
//! timeout_secs`, or one `recv()` under a live `MutexGuard` breaks goldens,
//! gates, or serving — silently, until CI or production notices.
//!
//! `metis-lint` enforces those invariants mechanically: a lightweight Rust
//! [lexer] (nested block comments, raw strings, char-literal vs lifetime)
//! feeds an item-tree parser ([syntax]: modules, fns, impls, `use` leaves,
//! blocks, spans) and an architecture graph ([graph]: crate layers,
//! manifest dependency edges, source import edges), on top of which a
//! [rule engine](rules) walks every workspace crate ([workspace]), with
//! roles read from each `Cargo.toml` and suppression only through an
//! in-source pragma that requires a written reason. Findings and
//! suppressions serialize to a versioned JSON [report] via
//! `metis-metrics`' writer.
//!
//! Run it with `cargo run -p metis-lint -- --workspace [--json PATH]`;
//! `--explain <rule-id>` documents any rule from the binary.

pub mod graph;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod syntax;
pub mod workspace;

pub use rules::{explain, lint_source, FileRole, Suppression, Violation};
pub use workspace::{find_workspace_root, lint_workspace, WorkspaceOutcome};

//! A lightweight Rust lexer: just enough token structure for lexical
//! invariant rules.
//!
//! The rules in this crate match *identifier* and *punctuation* sequences
//! (`Instant :: now`, `partial_cmp ( … ) . unwrap`), so the lexer's one job
//! is to never misclassify text: the word `Instant` inside a string
//! literal, a doc comment, or a nested block comment must not produce an
//! identifier token. That requires real handling of the awkward corners of
//! Rust's surface syntax:
//!
//! * nested block comments (`/* /* */ */` — Rust block comments nest),
//! * raw strings with arbitrary hash fences (`r#"…"#`, `br##"…"##`) and
//!   raw identifiers (`r#type`, which is an identifier, not a string),
//! * char literals vs lifetimes (`'a'` is a char, `'a` in `Vec<'a>` is a
//!   lifetime, `'\u{7D}'` is a char with an escape),
//! * string escapes (`"\\"` ends the string, `"\""` does not).
//!
//! Line comments are kept (with their line numbers) because suppression
//! pragmas live in them; everything else that is not code is discarded.

/// What a token is. Rules mostly look at `Ident` and `Punct`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword; the text is in [`Tok::text`].
    Ident,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// A numeric literal (integer or float, any base, with suffix).
    Num,
}

/// One lexed token with the 1-based source line it starts on.
#[derive(Clone, Debug)]
pub struct Tok {
    pub line: u32,
    pub kind: TokKind,
    /// Identifier text; empty for every other kind.
    pub text: String,
}

/// One `//` line comment (text after the `//`, untrimmed) and its line.
#[derive(Clone, Debug)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The lexer's output: the token stream and the line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Identifier text of token `i`, or `""` for non-identifiers — lets
    /// rule patterns index past the end without an option dance.
    pub fn ident(&self, i: usize) -> &str {
        match self.toks.get(i) {
            Some(t) if t.kind == TokKind::Ident => &t.text,
            _ => "",
        }
    }

    /// Whether token `i` is exactly the punctuation `c`.
    pub fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.toks.get(i), Some(t) if t.kind == TokKind::Punct(c))
    }

    /// Whether tokens `i, i+1` are `::`.
    pub fn path_sep(&self, i: usize) -> bool {
        self.punct(i, ':') && self.punct(i + 1, ':')
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `source` into tokens and line comments. Never fails: unterminated
/// literals simply consume to end of input — the compiler, not the linter,
/// owns syntax errors.
pub fn lex(source: &str) -> Lexed {
    let mut c = Cursor {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = c.peek(0) {
        let line = c.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek(1) == Some(b'/') => {
                c.bump();
                c.bump();
                let start = c.pos;
                while let Some(n) = c.peek(0) {
                    if n == b'\n' {
                        break;
                    }
                    c.bump();
                }
                out.comments.push(Comment {
                    line,
                    text: source[start..c.pos].to_string(),
                });
            }
            b'/' if c.peek(1) == Some(b'*') => {
                // Block comments nest in Rust.
                c.bump();
                c.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (c.peek(0), c.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            c.bump();
                            c.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            c.bump();
                            c.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'"' => {
                c.bump();
                consume_string_body(&mut c);
                out.toks.push(tok(line, TokKind::Str));
            }
            b'\'' => {
                c.bump();
                lex_quote(&mut c, line, &mut out);
            }
            _ if b.is_ascii_digit() => {
                // Integers, floats, hex/oct/bin, suffixes. A `.` is part of
                // the number only when followed by a digit, so `0..n`
                // ranges survive.
                c.bump();
                while let Some(n) = c.peek(0) {
                    if is_ident_continue(n)
                        || (n == b'.' && c.peek(1).is_some_and(|d| d.is_ascii_digit()))
                    {
                        c.bump();
                    } else {
                        break;
                    }
                }
                out.toks.push(tok(line, TokKind::Num));
            }
            _ if is_ident_start(b) => {
                let start = c.pos;
                c.bump();
                while let Some(n) = c.peek(0) {
                    if is_ident_continue(n) {
                        c.bump();
                    } else {
                        break;
                    }
                }
                let text = &source[start..c.pos];
                if lex_raw_or_prefixed(&mut c, text, line, &mut out) {
                    continue;
                }
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Ident,
                    text: text.to_string(),
                });
            }
            _ => {
                c.bump();
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Punct(b as char),
                    text: String::new(),
                });
            }
        }
    }
    out
}

fn tok(line: u32, kind: TokKind) -> Tok {
    Tok {
        line,
        kind,
        text: String::new(),
    }
}

/// Consumes a `"…"` body after the opening quote, honoring escapes.
fn consume_string_body(c: &mut Cursor) {
    while let Some(b) = c.bump() {
        match b {
            b'\\' => {
                c.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// After an identifier, checks for literal-prefix forms: raw strings
/// (`r"…"`, `r#"…"#`, `br##"…"##`, `cr"…"`), prefixed plain strings
/// (`b"…"`, `c"…"`), and raw identifiers (`r#ident`). Returns `true` if it
/// consumed a literal (or extended the identifier) and pushed the token.
fn lex_raw_or_prefixed(c: &mut Cursor, ident: &str, line: u32, out: &mut Lexed) -> bool {
    let raw_capable = matches!(ident, "r" | "br" | "cr");
    let string_prefix = matches!(ident, "b" | "c");

    if raw_capable {
        // Count the hash fence.
        let mut hashes = 0usize;
        while c.peek(hashes) == Some(b'#') {
            hashes += 1;
        }
        if c.peek(hashes) == Some(b'"') {
            for _ in 0..=hashes {
                c.bump();
            }
            // Raw string: no escapes; ends at `"` followed by the fence.
            'scan: while let Some(b) = c.bump() {
                if b == b'"' {
                    for h in 0..hashes {
                        if c.peek(h) != Some(b'#') {
                            continue 'scan;
                        }
                    }
                    for _ in 0..hashes {
                        c.bump();
                    }
                    break;
                }
            }
            out.toks.push(tok(line, TokKind::Str));
            return true;
        }
        if ident == "r" && hashes == 1 && c.peek(1).is_some_and(is_ident_start) {
            // Raw identifier `r#type`: emit the unprefixed name so rules
            // treat `r#fn`-style escapes like the plain identifier.
            c.bump(); // '#'
            let start = c.pos;
            while c.peek(0).is_some_and(is_ident_continue) {
                c.bump();
            }
            let text = std::str::from_utf8(&c.src[start..c.pos])
                .unwrap_or_default()
                .to_string();
            out.toks.push(Tok {
                line,
                kind: TokKind::Ident,
                text,
            });
            return true;
        }
    }
    if (string_prefix || raw_capable) && c.peek(0) == Some(b'"') {
        c.bump();
        consume_string_body(c);
        out.toks.push(tok(line, TokKind::Str));
        return true;
    }
    if ident == "b" && c.peek(0) == Some(b'\'') {
        // Byte literal b'x'.
        c.bump();
        consume_char_body(c);
        out.toks.push(tok(line, TokKind::Char));
        return true;
    }
    false
}

/// Consumes a char-literal body after the opening `'` (first char may be an
/// escape), up to and including the closing `'`.
fn consume_char_body(c: &mut Cursor) {
    match c.bump() {
        Some(b'\\') => {
            c.bump();
        }
        Some(b'\'') => return, // '' — malformed, leave it.
        _ => {}
    }
    // Consume to the closing quote (handles '\u{1F600}').
    while let Some(b) = c.bump() {
        if b == b'\'' {
            break;
        }
    }
}

/// Disambiguates `'…` into a char literal or a lifetime.
fn lex_quote(c: &mut Cursor, line: u32, out: &mut Lexed) {
    match c.peek(0) {
        // Escape: definitely a char literal.
        Some(b'\\') => {
            consume_char_body(c);
            out.toks.push(tok(line, TokKind::Char));
        }
        Some(b) if is_ident_start(b) => {
            // `'x'` is a char; `'x` followed by anything else is a
            // lifetime. Multi-byte chars ('é') also close with a quote
            // right after the (multi-byte) character.
            let mut ahead = 1;
            while c.peek(ahead).is_some_and(is_ident_continue) {
                ahead += 1;
            }
            if ahead == 1 && c.peek(1) == Some(b'\'') {
                consume_char_body(c);
                out.toks.push(tok(line, TokKind::Char));
            } else if b >= 0x80 {
                // A single non-ASCII char: count continuation bytes.
                let mut end = 1;
                while c.peek(end).is_some_and(|n| n & 0xC0 == 0x80) {
                    end += 1;
                }
                if c.peek(end) == Some(b'\'') {
                    consume_char_body(c);
                    out.toks.push(tok(line, TokKind::Char));
                } else {
                    consume_lifetime(c, line, out);
                }
            } else {
                consume_lifetime(c, line, out);
            }
        }
        // `'(' `, `'0'`, `' '` … — char literal.
        Some(_) => {
            consume_char_body(c);
            out.toks.push(tok(line, TokKind::Char));
        }
        None => {}
    }
}

fn consume_lifetime(c: &mut Cursor, line: u32, out: &mut Lexed) {
    while c.peek(0).is_some_and(is_ident_continue) {
        c.bump();
    }
    out.toks.push(tok(line, TokKind::Lifetime));
}

/// Line ranges (1-based, inclusive) of `#[cfg(test)]` items: the rule
/// engine uses these to exempt test modules from rules that only guard
/// production paths (a test may `unwrap` freely).
///
/// Detection is token-based: a `#[cfg(test)]` attribute, then any further
/// attributes, then the item — to its matching `}` if it opens a brace
/// block, or to the terminating `;` otherwise.
pub fn cfg_test_regions(lexed: &Lexed) -> Vec<(u32, u32)> {
    let t = &lexed.toks;
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 6 < t.len() {
        let is_cfg_test = lexed.punct(i, '#')
            && lexed.punct(i + 1, '[')
            && lexed.ident(i + 2) == "cfg"
            && lexed.punct(i + 3, '(')
            && lexed.ident(i + 4) == "test"
            && lexed.punct(i + 5, ')')
            && lexed.punct(i + 6, ']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = t[i].line;
        let mut j = i + 7;
        // Skip further attributes.
        while lexed.punct(j, '#') && lexed.punct(j + 1, '[') {
            let mut depth = 0i32;
            j += 1;
            while j < t.len() {
                if lexed.punct(j, '[') {
                    depth += 1;
                } else if lexed.punct(j, ']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Scan to the item body: first `{` opens a balanced block, a `;`
        // first means a braceless item.
        let mut end_line = start_line;
        while j < t.len() {
            if lexed.punct(j, ';') {
                end_line = t[j].line;
                break;
            }
            if lexed.punct(j, '{') {
                let mut depth = 0i32;
                while j < t.len() {
                    if lexed.punct(j, '{') {
                        depth += 1;
                    } else if lexed.punct(j, '}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                end_line = t.get(j).map_or(end_line, |tk| tk.line);
                break;
            }
            j += 1;
        }
        regions.push((start_line, end_line.max(start_line)));
        i = j.max(i + 7);
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn nested_block_comments_hide_everything() {
        let src = "/* outer /* Instant::now() */ still comment */ fn ok() {}";
        assert_eq!(idents(src), vec!["fn", "ok"]);
    }

    #[test]
    fn raw_strings_hide_quotes_and_idents() {
        let src = r####"let s = r#"Instant::now() " unterminated-looking"#; done"####;
        assert_eq!(idents(src), vec!["let", "s", "done"]);
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) { let c = 'a'; let q = '\\''; }";
        let lexed = lex(src);
        let lifetimes = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(lifetimes, 2, "'a in <'a> and &'a");
        assert_eq!(chars, 2, "'a' and '\\''");
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let src = r#"let s = "a\"b\\"; trailing"#;
        assert_eq!(idents(src), vec!["let", "s", "trailing"]);
    }

    #[test]
    fn line_comments_are_captured_with_lines() {
        let src = "let a = 1;\n// metis-lint: allow(x) reason=\"y\"\nlet b = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("metis-lint"));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        assert_eq!(idents("let r#type = 1; r#\"str\"#;"), vec!["let", "type"]);
    }

    #[test]
    fn cfg_test_region_spans_the_module() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn after() {}";
        let lexed = lex(src);
        let regions = cfg_test_regions(&lexed);
        assert_eq!(regions, vec![(2, 5)]);
    }
}

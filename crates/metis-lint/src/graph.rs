//! The workspace architecture graph: crate layers, manifest dependency
//! edges, and source-level import edges.
//!
//! Every crate declares its layer in `[package.metadata.metis-lint]`:
//!
//! ```toml
//! [package.metadata.metis-lint]
//! layer = "runtime"
//! ```
//!
//! Layers form a total order ([`LAYERS`], low to high). The `crate-layering`
//! rule holds the workspace to a DAG that points strictly *down* that
//! order, at two levels that cannot drift apart:
//!
//! * **manifest edges** — every `metis-*` entry in `[dependencies]` /
//!   `[dev-dependencies]` must name a crate on a strictly lower layer;
//! * **import edges** — every `use metis_*::…` in a source file must
//!   resolve to a crate on a strictly lower layer (so a path the manifest
//!   forgot, or a re-export smuggled through a lower crate, is still
//!   caught at the line that does the importing).
//!
//! The concrete order encodes what each layer is allowed to know:
//! simulation-core crates (`foundation`…`orchestration`) must never reach
//! up into `app`/`top` (cli, lint, bench) — that is the "core never
//! imports bench/cli" invariant — and a missing or unknown layer on a
//! linted crate is itself a violation, so the map stays total.

use std::collections::BTreeMap;

use crate::rules::Violation;
use crate::syntax::UseLeaf;
use crate::workspace::CrateInfo;

/// The layer order, low to high. A crate may only depend on (or import
/// from) crates on strictly lower layers.
pub const LAYERS: &[&str] = &[
    "foundation",    // metis-text: tokenization, zero metis deps
    "model",         // metis-embed / metis-llm / metis-metrics: models & measures
    "runtime",       // metis-vectordb / metis-engine: indexes and serving engines
    "data",          // metis-datasets: corpora and workloads
    "profiling",     // metis-profiler: offline quality/cost profiles
    "orchestration", // metis-core: controllers, runner, drivers glue
    "app",           // metis-cli / metis-lint: binaries with I/O surfaces
    "top",           // metis-bench / the metis facade: may see everything
];

/// Rank of a layer name in [`LAYERS`], or `None` for an unknown name.
pub fn layer_rank(layer: &str) -> Option<usize> {
    LAYERS.iter().position(|l| *l == layer)
}

/// The `crate -> layer` map for every non-skipped member with a valid
/// layer declaration.
pub fn layer_map(members: &[CrateInfo]) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for krate in members {
        if krate.manifest.lint.skip {
            continue;
        }
        if let (Some(name), Some(layer)) = (
            krate.manifest.package_name.as_ref(),
            krate.manifest.lint.layer.as_ref(),
        ) {
            if layer_rank(layer).is_some() {
                map.insert(name.clone(), layer.clone());
            }
        }
    }
    map
}

fn manifest_path(krate: &CrateInfo) -> String {
    if krate.rel.is_empty() {
        "Cargo.toml".to_string()
    } else {
        format!("{}/Cargo.toml", krate.rel)
    }
}

/// Manifest-level layering: every linted crate declares a known layer, and
/// every workspace-internal dependency edge points strictly down the order.
pub fn check_crate_layering(members: &[CrateInfo]) -> Vec<Violation> {
    let layers = layer_map(members);
    let mut out = Vec::new();
    for krate in members {
        if krate.manifest.lint.skip {
            continue;
        }
        let Some(name) = krate.manifest.package_name.as_ref() else {
            continue; // A pure [workspace] manifest has no package to place.
        };
        let path = manifest_path(krate);
        let rank = match krate.manifest.lint.layer.as_deref() {
            Some(layer) => match layer_rank(layer) {
                Some(r) => r,
                None => {
                    out.push(Violation {
                        rule: "crate-layering",
                        path,
                        line: 1,
                        msg: format!(
                            "crate `{name}` declares unknown layer `{layer}` \
                             (known, low to high: {})",
                            LAYERS.join(" < ")
                        ),
                    });
                    continue;
                }
            },
            None => {
                out.push(Violation {
                    rule: "crate-layering",
                    path,
                    line: 1,
                    msg: format!(
                        "crate `{name}` declares no layer; add `layer = \"…\"` under \
                         [package.metadata.metis-lint] (known, low to high: {})",
                        LAYERS.join(" < ")
                    ),
                });
                continue;
            }
        };
        for dep in &krate.manifest.deps {
            let Some(dep_layer) = layers.get(&dep.name) else {
                continue; // External or skipped (vendored) dependency.
            };
            let dep_rank = layer_rank(dep_layer).unwrap_or(usize::MAX);
            if dep_rank >= rank {
                out.push(Violation {
                    rule: "crate-layering",
                    path: path.clone(),
                    line: dep.line,
                    msg: format!(
                        "`{name}` (layer `{}`) must not depend on `{}` (layer `{dep_layer}`): \
                         dependencies point strictly down the layer order {}",
                        krate.manifest.lint.layer.as_deref().unwrap_or("?"),
                        dep.name,
                        LAYERS.join(" < ")
                    ),
                });
            }
        }
    }
    out
}

/// Source-level layering for one file: every `use metis_*::…` must resolve
/// to a strictly lower layer than the importing crate's. `local_mods` holds
/// module names declared in this file — a `use metis::…` that resolves to a
/// sibling `mod metis` is a module path, not a crate edge.
pub fn check_import_layering(
    crate_name: &str,
    file_path: &str,
    uses: &[UseLeaf],
    local_mods: &std::collections::BTreeSet<String>,
    layers: &BTreeMap<String, String>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(self_rank) = layers.get(crate_name).and_then(|l| layer_rank(l)) else {
        return out; // Missing layer is already reported at the manifest.
    };
    for leaf in uses {
        let Some(head) = leaf.path.split("::").next() else {
            continue;
        };
        if !head.starts_with("metis") || local_mods.contains(head) {
            continue;
        }
        let imported = head.replace('_', "-");
        if imported == crate_name {
            continue; // A crate's own tests/benches import it by name.
        }
        let Some(dep_layer) = layers.get(&imported) else {
            continue;
        };
        let dep_rank = layer_rank(dep_layer).unwrap_or(usize::MAX);
        if dep_rank >= self_rank {
            out.push(Violation {
                rule: "crate-layering",
                path: file_path.to_string(),
                line: leaf.line,
                msg: format!(
                    "`{crate_name}` (layer `{}`) must not import `{imported}` \
                     (layer `{dep_layer}`): imports point strictly down the layer order {}",
                    layers[crate_name],
                    LAYERS.join(" < ")
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_order_is_total_and_known() {
        assert!(layer_rank("foundation") < layer_rank("model"));
        assert!(layer_rank("orchestration") < layer_rank("app"));
        assert!(layer_rank("app") < layer_rank("top"));
        assert_eq!(layer_rank("no-such-layer"), None);
    }

    #[test]
    fn import_layering_flags_upward_and_sideways_imports() {
        let mut layers = BTreeMap::new();
        layers.insert("metis-core".to_string(), "orchestration".to_string());
        layers.insert("metis-bench".to_string(), "top".to_string());
        layers.insert("metis-llm".to_string(), "model".to_string());
        let uses = vec![
            UseLeaf {
                line: 3,
                path: "metis_bench::Sweep".to_string(),
                name: "Sweep".to_string(),
            },
            UseLeaf {
                line: 4,
                path: "metis_llm::Clock".to_string(),
                name: "Clock".to_string(),
            },
            UseLeaf {
                line: 5,
                path: "metis_core::Runner".to_string(),
                name: "Runner".to_string(),
            },
        ];
        let locals = std::collections::BTreeSet::new();
        let v = check_import_layering(
            "metis-core",
            "crates/metis-core/src/x.rs",
            &uses,
            &locals,
            &layers,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "crate-layering");
        assert_eq!(v[0].line, 3, "only the upward import is flagged");
        assert!(v[0].msg.contains("metis-bench"));
    }

    #[test]
    fn local_module_named_like_a_crate_is_not_an_edge() {
        let mut layers = BTreeMap::new();
        layers.insert("metis-core".to_string(), "orchestration".to_string());
        layers.insert("metis".to_string(), "top".to_string());
        let uses = vec![UseLeaf {
            line: 2,
            path: "metis::MetisController".to_string(),
            name: "MetisController".to_string(),
        }];
        let locals: std::collections::BTreeSet<String> =
            [String::from("metis")].into_iter().collect();
        let v = check_import_layering("metis-core", "x.rs", &uses, &locals, &layers);
        assert!(v.is_empty(), "sibling `mod metis` is not the facade: {v:?}");
        let none = std::collections::BTreeSet::new();
        let v = check_import_layering("metis-core", "x.rs", &uses, &none, &layers);
        assert_eq!(v.len(), 1, "without the local mod it IS an upward edge");
    }
}

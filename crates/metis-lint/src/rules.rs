//! The rule engine: repo-specific deny rules over the lexed token stream
//! and the item tree, and the suppression pragma that is the only way past
//! them.
//!
//! Every rule protects a committed artifact:
//!
//! | rule | protects |
//! |---|---|
//! | `wall-clock` | byte-for-byte sim golden, realtime parity bench |
//! | `std-time-import` | the same, at the import: `std::time` stays in clock code |
//! | `io-confinement` | sim purity: `std::fs`/`net`/`process` stay in app crates |
//! | `crate-layering` | the crate DAG: core never imports bench/cli |
//! | `nan-ordering` | worker threads (no NaN panic), stable sort orders |
//! | `nondeterministic-iteration` | committed bench baselines, report goldens |
//! | `unseeded-rng` | pinned-seed reproducibility of every experiment |
//! | `bench-registration` | CI bench smoke coverage (autobenches = false) |
//! | `no-panic-in-worker` | realtime replica workers (a panic kills serving) |
//! | `blocking-under-lock` | realtime workers: no blocking with a guard live |
//! | `channel-unwrap` | realtime workers: channel hangup is handled, not unwrapped |
//! | `unit-mismatch` | time/token/byte arithmetic: no cross-unit drift |
//!
//! Suppression pragma, on the violating line or the line above it (several
//! rules may share one pragma, comma-separated):
//!
//! ```text
//! // metis-lint: allow(wall-clock, std-time-import) reason="measures real wall time"
//! ```
//!
//! The reason is mandatory and must be non-empty, and a pragma that
//! suppresses nothing is a hard error (`unused-pragma`): stale allowances
//! are exactly how suppressed regressions sneak back in.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{cfg_test_regions, lex, Lexed};
use crate::syntax::{self, Item, UseLeaf};

/// Machine-readable names of every rule a pragma may `allow`. The
/// meta-rules `pragma` (malformed pragma) and `unused-pragma` (pragma that
/// suppressed nothing) are deliberately absent: they cannot be suppressed.
pub const RULE_NAMES: &[&str] = &[
    "wall-clock",
    "std-time-import",
    "io-confinement",
    "crate-layering",
    "nan-ordering",
    "nondeterministic-iteration",
    "unseeded-rng",
    "bench-registration",
    "no-panic-in-worker",
    "blocking-under-lock",
    "channel-unwrap",
    "unit-mismatch",
];

/// One finding: rule, workspace-relative path, 1-based line, message.
#[derive(Clone, Debug)]
pub struct Violation {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deny[{}]: {}:{}: {}",
            self.rule, self.path, self.line, self.msg
        )
    }
}

/// How the rules apply to one file, derived from crate manifest metadata
/// (see [`crate::workspace`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct FileRole {
    /// Wall-clock reads are this file's *job* (`Clock` impls, the realtime
    /// driver): `wall-clock` and `std-time-import` do not apply.
    pub wallclock_ok: bool,
    /// The file holds realtime worker loops: `no-panic-in-worker`,
    /// `blocking-under-lock`, and `channel-unwrap` apply.
    pub worker: bool,
    /// The file produces committed reports/baselines:
    /// `nondeterministic-iteration` applies.
    pub report: bool,
    /// The file belongs to a simulation crate's `src/` (not an `io`-role
    /// crate): `io-confinement` applies.
    pub io_confined: bool,
}

/// A parsed `metis-lint: allow(rule) reason="…"` pragma entry. A
/// comma-separated pragma (`allow(a, b)`) yields one entry per rule, all
/// on the same line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pragma {
    pub line: u32,
    pub rule: String,
    pub reason: String,
}

/// One pragma's audit record for the machine-readable report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppression {
    pub rule: String,
    pub path: String,
    pub line: u32,
    pub reason: String,
    /// Whether the pragma suppressed at least one finding. `false` means
    /// an `unused-pragma` violation was also emitted.
    pub used: bool,
}

/// Parses pragmas out of line comments; malformed pragmas (bad syntax,
/// unknown rule, missing or empty reason) are returned as violations so a
/// typo cannot silently suppress nothing.
pub fn parse_pragmas(lexed: &Lexed, path: &str) -> (Vec<Pragma>, Vec<Violation>) {
    let mut pragmas = Vec::new();
    let mut bad = Vec::new();
    for c in &lexed.comments {
        let body = c.text.trim();
        let Some(rest) = body.strip_prefix("metis-lint:") else {
            continue;
        };
        let mut fail = |msg: String| {
            bad.push(Violation {
                rule: "pragma",
                path: path.to_string(),
                line: c.line,
                msg,
            });
        };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow(") else {
            fail(format!(
                "malformed pragma (expected `allow(<rule>)`): {body}"
            ));
            continue;
        };
        let Some((rules, rest)) = rest.split_once(')') else {
            fail(format!("unclosed `allow(` in pragma: {body}"));
            continue;
        };
        let rules: Vec<&str> = rules.split(',').map(str::trim).collect();
        if let Some(unknown) = rules.iter().find(|r| !RULE_NAMES.contains(r)) {
            fail(format!(
                "pragma names unknown rule `{unknown}` (known: {})",
                RULE_NAMES.join(", ")
            ));
            continue;
        }
        let rest = rest.trim();
        let reason = rest
            .strip_prefix("reason=\"")
            .and_then(|r| r.split_once('"'))
            .map(|(reason, _)| reason.trim());
        match reason {
            Some(r) if !r.is_empty() => {
                for rule in rules {
                    pragmas.push(Pragma {
                        line: c.line,
                        rule: rule.to_string(),
                        reason: r.to_string(),
                    });
                }
            }
            Some(_) => fail(format!("pragma reason must be non-empty: {body}")),
            None => fail(format!(
                "pragma requires `reason=\"…\"` after `allow({})`: {body}",
                rules.join(", ")
            )),
        }
    }
    (pragmas, bad)
}

/// Applies pragmas to raw violations: a pragma suppresses matching
/// violations on its own line and the line directly below it. Returns the
/// surviving violations — including an `unused-pragma` violation for every
/// pragma that suppressed nothing — plus the full suppression audit list.
pub fn apply_pragmas(
    raw: Vec<Violation>,
    pragmas: &[Pragma],
    path: &str,
) -> (Vec<Violation>, Vec<Suppression>) {
    let mut used = vec![false; pragmas.len()];
    let mut kept = Vec::new();
    for v in raw {
        let hit = pragmas
            .iter()
            .position(|p| p.rule == v.rule && (p.line == v.line || p.line + 1 == v.line));
        match hit {
            Some(i) => used[i] = true,
            None => kept.push(v),
        }
    }
    let mut suppressions = Vec::new();
    for (i, p) in pragmas.iter().enumerate() {
        suppressions.push(Suppression {
            rule: p.rule.clone(),
            path: path.to_string(),
            line: p.line,
            reason: p.reason.clone(),
            used: used[i],
        });
        if !used[i] {
            kept.push(Violation {
                rule: "unused-pragma",
                path: path.to_string(),
                line: p.line,
                msg: format!(
                    "pragma `allow({})` suppressed nothing; remove it — stale \
                     allowances are how suppressed regressions sneak back in",
                    p.rule
                ),
            });
        }
    }
    (kept, suppressions)
}

/// Runs every file-scoped rule over one lexed+parsed file, returning raw
/// (unsuppressed) violations. Workspace-scoped rules (`crate-layering`,
/// `bench-registration`) are the caller's job.
pub fn file_rules(path: &str, lexed: &Lexed, items: &[Item], role: FileRole) -> Vec<Violation> {
    let test_regions = cfg_test_regions(lexed);
    let in_test = |line: u32| test_regions.iter().any(|&(a, b)| line >= a && line <= b);
    let uses = syntax::collect_uses(items);
    let imports: BTreeMap<&str, &str> = uses
        .iter()
        .filter(|u| u.name != "*")
        .map(|u| (u.name.as_str(), u.path.as_str()))
        .collect();

    let mut raw: Vec<Violation> = Vec::new();
    if !role.wallclock_ok {
        wall_clock(path, lexed, &imports, &mut raw);
        std_time_import(path, lexed, &uses, &mut raw);
    }
    if role.io_confined {
        io_confinement(path, lexed, &uses, &mut raw);
    }
    nan_ordering(path, lexed, &mut raw);
    unseeded_rng(path, lexed, &mut raw);
    unit_mismatch(path, lexed, &mut raw);
    if role.report {
        nondeterministic_iteration(path, lexed, &mut raw);
    }
    if role.worker {
        let claimed = channel_unwrap(path, lexed, &in_test, &mut raw);
        no_panic_in_worker(path, lexed, &in_test, &claimed, &mut raw);
        blocking_under_lock(path, lexed, &in_test, &mut raw);
    }
    raw
}

/// Lints one file's source end to end: lex, parse, rules, pragmas. `path`
/// is workspace-relative and used for messages only — role decisions were
/// already made by the caller from manifest metadata.
pub fn lint_source(path: &str, source: &str, role: FileRole) -> Vec<Violation> {
    let lexed = lex(source);
    let items = syntax::parse(&lexed);
    let (pragmas, mut out) = parse_pragmas(&lexed, path);
    let raw = file_rules(path, &lexed, &items, role);
    let (kept, _suppressions) = apply_pragmas(raw, &pragmas, path);
    out.extend(kept);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

fn push(raw: &mut Vec<Violation>, rule: &'static str, path: &str, line: u32, msg: String) {
    raw.push(Violation {
        rule,
        path: path.to_string(),
        line,
        msg,
    });
}

/// `Instant::now` / `SystemTime::now` / `thread::sleep`: virtual time must
/// never leak wall time. Resolution is import-aware: a name explicitly
/// qualified by a non-std path, or imported from somewhere other than
/// `std::time` / `std::thread`, is *not* flagged (a custom `Instant` is
/// allowed to exist); an unqualified, unimported name is conservatively
/// assumed to be the std one.
fn wall_clock(path: &str, lexed: &Lexed, imports: &BTreeMap<&str, &str>, raw: &mut Vec<Violation>) {
    // Does the path-head ident at `i` denote the std item `std::<parent>::
    // <name>` (types) or the std module itself (`parent.is_empty()`)?
    let denotes_std = |i: usize, parent: &str| {
        let name = lexed.ident(i);
        if i >= 3 && lexed.path_sep(i - 2) {
            // Explicitly qualified: `X::Instant` is std iff X is the std
            // parent module (itself possibly written `std::time`).
            let q = lexed.ident(i - 3);
            if parent.is_empty() || q != parent {
                return parent.is_empty() && q == "std";
            }
            return if i >= 6 && lexed.path_sep(i - 5) {
                lexed.ident(i - 6) == "std"
            } else {
                match imports.get(parent) {
                    Some(p) => *p == format!("std::{parent}"),
                    None => true,
                }
            };
        }
        let full = if parent.is_empty() {
            format!("std::{name}")
        } else {
            format!("std::{parent}::{name}")
        };
        match imports.get(name) {
            Some(p) => *p == full,
            None => true, // Unqualified and unimported: assume std.
        }
    };
    for i in 0..lexed.toks.len() {
        let head = lexed.ident(i);
        let callee = if lexed.path_sep(i + 1) {
            lexed.ident(i + 3)
        } else {
            ""
        };
        let hit = match (head, callee) {
            ("Instant", "now") if denotes_std(i, "time") => Some("std::time::Instant::now()"),
            ("SystemTime", "now") if denotes_std(i, "time") => Some("std::time::SystemTime::now()"),
            ("thread", "sleep") if denotes_std(i, "") => Some("std::thread::sleep()"),
            _ => None,
        };
        if let Some(what) = hit {
            push(
                raw,
                "wall-clock",
                path,
                lexed.toks[i].line,
                format!(
                    "{what} reads/blocks on wall time; use the `metis_llm::Clock` \
                     abstraction so virtual time stays deterministic"
                ),
            );
        }
    }
}

/// Lines on which a path rooted at `std::<module>` appears, as a `use`
/// declaration leaf or inline-qualified — one entry per line.
fn std_module_lines(lexed: &Lexed, uses: &[UseLeaf], modules: &[&str]) -> BTreeMap<u32, String> {
    let mut lines = BTreeMap::new();
    for u in uses {
        let mut segs = u.path.split("::");
        if segs.next() == Some("std") {
            if let Some(m) = segs.next() {
                if modules.contains(&m) {
                    lines.entry(u.line).or_insert_with(|| m.to_string());
                }
            }
        }
    }
    for i in 0..lexed.toks.len() {
        if lexed.ident(i) == "std" && lexed.path_sep(i + 1) && modules.contains(&lexed.ident(i + 3))
        {
            lines
                .entry(lexed.toks[i].line)
                .or_insert_with(|| lexed.ident(i + 3).to_string());
        }
    }
    lines
}

/// Any `std::time` path (import or inline) outside the sanctioned clock
/// and realtime files: the import is the root of every wall-time leak, so
/// it is confined at the source, not just at the call sites `wall-clock`
/// happens to know about.
fn std_time_import(path: &str, lexed: &Lexed, uses: &[UseLeaf], raw: &mut Vec<Violation>) {
    for (line, _) in std_module_lines(lexed, uses, &["time"]) {
        push(
            raw,
            "std-time-import",
            path,
            line,
            "`std::time` is confined to the Clock implementations and the realtime \
             driver; route timing through `metis_llm::Clock` (or move the code to a \
             `wallclock-files` entry)"
                .to_string(),
        );
    }
}

/// `std::fs` / `std::net` / `std::process` in simulation-crate `src/`:
/// ambient I/O makes a simulation's behavior depend on the machine it runs
/// on. I/O belongs to the `io`-role crates (cli, bench, lint).
fn io_confinement(path: &str, lexed: &Lexed, uses: &[UseLeaf], raw: &mut Vec<Violation>) {
    for (line, module) in std_module_lines(lexed, uses, &["fs", "net", "process"]) {
        push(
            raw,
            "io-confinement",
            path,
            line,
            format!(
                "`std::{module}` is ambient I/O inside a simulation crate; confine \
                 I/O to the `io`-role crates (cli/bench/lint) and pass data in as values"
            ),
        );
    }
}

/// `partial_cmp(…).unwrap()` (or `.expect(…)`, or the quietly-inconsistent
/// `.unwrap_or(Ordering::Equal)`): a NaN makes the first two panic a worker
/// and the third a non-total comparator that `sort_by` may reject. Use
/// `f32::total_cmp` / `f64::total_cmp`.
fn nan_ordering(path: &str, lexed: &Lexed, raw: &mut Vec<Violation>) {
    for i in 0..lexed.toks.len() {
        if lexed.ident(i) != "partial_cmp" {
            continue;
        }
        // Skip `fn partial_cmp` — implementing PartialOrd is fine.
        if i > 0 && lexed.ident(i - 1) == "fn" {
            continue;
        }
        if !lexed.punct(i + 1, '(') {
            continue;
        }
        let j = match skip_args(lexed, i + 1) {
            Some(j) => j,
            None => continue,
        };
        if !lexed.punct(j, '.') {
            continue;
        }
        let next = lexed.ident(j + 1);
        if matches!(next, "unwrap" | "expect" | "unwrap_or") {
            push(
                raw,
                "nan-ordering",
                path,
                lexed.toks[i].line,
                format!(
                    "`partial_cmp(…).{next}` is not NaN-total; use `total_cmp` so a \
                     NaN cannot panic a comparator or break sort ordering"
                ),
            );
        }
    }
}

/// Walks over a balanced `(…)` argument list starting at the `(` at `i`;
/// returns the index just past the matching `)`.
fn skip_args(lexed: &Lexed, i: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = i;
    while j < lexed.toks.len() {
        if lexed.punct(j, '(') {
            depth += 1;
        } else if lexed.punct(j, ')') {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    None
}

/// `HashMap` / `HashSet` in report-producing code: iteration order is
/// randomized per process, so anything they feed into a committed report
/// diff is nondeterministic. Use `BTreeMap` / `BTreeSet`.
fn nondeterministic_iteration(path: &str, lexed: &Lexed, raw: &mut Vec<Violation>) {
    for (i, t) in lexed.toks.iter().enumerate() {
        let name = lexed.ident(i);
        if name == "HashMap" || name == "HashSet" {
            push(
                raw,
                "nondeterministic-iteration",
                path,
                t.line,
                format!(
                    "`{name}` has nondeterministic iteration order and this file \
                     produces committed reports; use `BTree{}`",
                    &name[4..]
                ),
            );
        }
    }
}

/// RNG construction without an explicit seed: every random stream in this
/// workspace must be derivable from a recorded seed or pinned-seed
/// baselines stop reproducing.
fn unseeded_rng(path: &str, lexed: &Lexed, raw: &mut Vec<Violation>) {
    for (i, t) in lexed.toks.iter().enumerate() {
        let name = lexed.ident(i);
        let hit = match name {
            "thread_rng" | "from_entropy" | "from_os_rng" | "OsRng" | "ThreadRng" => {
                Some(name.to_string())
            }
            "random" if i >= 3 && lexed.ident(i - 3) == "rand" && lexed.path_sep(i - 2) => {
                Some("rand::random".to_string())
            }
            _ => None,
        };
        if let Some(what) = hit {
            push(
                raw,
                "unseeded-rng",
                path,
                t.line,
                format!(
                    "`{what}` constructs an unseeded RNG; derive every stream from an \
                     explicit recorded seed (`seed_from_u64`)"
                ),
            );
        }
    }
}

/// The unit a suffixed identifier carries: `deadline_nanos` → `nanos`,
/// `KV_BYTES` → `bytes`, bare `secs` → `secs`. `None` for unsuffixed names.
fn unit_of(ident: &str) -> Option<&'static str> {
    const UNITS: &[&str] = &["nanos", "secs", "ms", "tokens", "bytes"];
    let lower = ident.to_ascii_lowercase();
    UNITS
        .iter()
        .find(|u| lower == **u || (lower.len() > u.len() && lower.ends_with(&format!("_{u}"))))
        .copied()
}

/// `a_nanos + b_secs`: additive arithmetic (`+`, `-`, `+=`, `-=`) between
/// identifiers carrying *different* unit suffixes, with no conversion call
/// between them. Multiplicative operators are exempt (they legitimately
/// change units: `tokens * bytes_per_token`), as is any operand that is a
/// call result — a call is the explicit conversion this rule demands.
fn unit_mismatch(path: &str, lexed: &Lexed, raw: &mut Vec<Violation>) {
    for i in 1..lexed.toks.len() {
        let op = match (lexed.punct(i, '+'), lexed.punct(i, '-')) {
            (true, _) => '+',
            (_, true) => '-',
            _ => continue,
        };
        // `->` arrows and `+=`/`-=` compound forms.
        if op == '-' && lexed.punct(i + 1, '>') {
            continue;
        }
        let rhs_start = if lexed.punct(i + 1, '=') {
            i + 2
        } else {
            i + 1
        };
        // Left operand: the identifier directly before the operator. A `)`
        // there means a call result (an explicit conversion) — skip.
        let Some(lhs_unit) = unit_of(lexed.ident(i - 1)) else {
            continue;
        };
        // Right operand: walk the `a.b::c.d` chain to its final
        // identifier; a trailing `(` makes it a call — skip.
        let Some(rhs_unit) = rhs_chain_unit(lexed, rhs_start) else {
            continue;
        };
        if lhs_unit != rhs_unit {
            push(
                raw,
                "unit-mismatch",
                path,
                lexed.toks[i].line,
                format!(
                    "`{}` ({lhs_unit}) {op} `{rhs_unit}` operand mixes units without an \
                     explicit conversion call; convert one side (e.g. `secs_to_nanos(…)`) \
                     or rename the identifier to its true unit",
                    lexed.ident(i - 1)
                ),
            );
        }
    }
}

/// The unit of the right operand starting at `i`: follows a chain of
/// identifiers joined by `.` / `::` and returns the unit of the last one,
/// or `None` when the operand is a literal, a parenthesized expression, or
/// ends in a call.
fn rhs_chain_unit(lexed: &Lexed, mut i: usize) -> Option<&'static str> {
    let mut last: Option<&str> = None;
    loop {
        let name = lexed.ident(i);
        if name.is_empty() {
            break;
        }
        last = Some(name);
        i += 1;
        if lexed.punct(i, '(') {
            return None; // Call: an explicit conversion.
        }
        if lexed.punct(i, '.') && !lexed.punct(i + 1, '.') {
            i += 1;
        } else if lexed.path_sep(i) {
            i += 2;
        } else {
            break;
        }
    }
    last.and_then(unit_of)
}

/// Method names that block the calling thread. All are called as `.name(`.
const BLOCKING_METHODS: &[&str] = &[
    "lock",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "sleep_until",
    "wait",
    "wait_timeout",
    "join",
];

/// Channel operations whose `Result` encodes hangup/拥塞 and must be
/// handled, never unwrapped, on a worker thread.
const CHANNEL_OPS: &[&str] = &["recv", "try_recv", "recv_timeout", "recv_deadline", "send"];

/// `channel_op(…).unwrap()` in a worker file: a disconnected channel is a
/// normal shutdown signal there, and unwrapping it turns every teardown
/// race into a worker panic. Returns the token indices of the claimed
/// `unwrap`/`expect` idents so `no-panic-in-worker` does not double-report.
fn channel_unwrap(
    path: &str,
    lexed: &Lexed,
    in_test: &dyn Fn(u32) -> bool,
    raw: &mut Vec<Violation>,
) -> BTreeSet<usize> {
    let mut claimed = BTreeSet::new();
    for i in 0..lexed.toks.len() {
        let name = lexed.ident(i);
        if !CHANNEL_OPS.contains(&name) || !lexed.punct(i.wrapping_sub(1), '.') {
            continue;
        }
        if !lexed.punct(i + 1, '(') {
            continue;
        }
        if in_test(lexed.toks[i].line) {
            continue;
        }
        let Some(after) = skip_args(lexed, i + 1) else {
            continue;
        };
        if !lexed.punct(after, '.') {
            continue;
        }
        let tail = lexed.ident(after + 1);
        if matches!(tail, "unwrap" | "expect") {
            claimed.insert(after + 1);
            push(
                raw,
                "channel-unwrap",
                path,
                lexed.toks[i].line,
                format!(
                    "`.{name}(…).{tail}` on a channel in a worker file: hangup is a \
                     normal shutdown signal here — match on the error instead"
                ),
            );
        }
    }
    claimed
}

/// `unwrap` / `expect` / panicking macros in realtime worker files: a panic
/// on a replica worker thread silently kills serving for that replica.
/// Invariant `assert!`s with diagnostics are allowed (they fail loudly and
/// name the condition); recoverable errors must be handled. Test modules
/// are exempt; sites already claimed by `channel-unwrap` are skipped.
fn no_panic_in_worker(
    path: &str,
    lexed: &Lexed,
    in_test: &dyn Fn(u32) -> bool,
    claimed: &BTreeSet<usize>,
    raw: &mut Vec<Violation>,
) {
    for i in 0..lexed.toks.len() {
        let line = lexed.toks[i].line;
        if in_test(line) || claimed.contains(&i) {
            continue;
        }
        let name = lexed.ident(i);
        let hit = match name {
            "unwrap" | "expect" if lexed.punct(i.wrapping_sub(1), '.') => true,
            "panic" | "unreachable" | "todo" | "unimplemented" if lexed.punct(i + 1, '!') => true,
            _ => false,
        };
        if hit {
            push(
                raw,
                "no-panic-in-worker",
                path,
                line,
                format!(
                    "`{name}` can panic in a realtime worker file; handle the error \
                     (or pragma a driver-thread-only site with a reason)"
                ),
            );
        }
    }
}

/// A blocking call while a `MutexGuard` binding is still live in the
/// enclosing block. Holding a guard across `.lock()` (lock-order
/// inversion), `recv()`/`recv_timeout()` (hold-and-wait), or
/// `sleep_until()` (priority inversion against the paced clock) is exactly
/// how a replica worker deadlocks or stalls the whole driver. Scope-exact:
/// the guard dies at its block's `}`, at `drop(guard)`, or at shadowing.
fn blocking_under_lock(
    path: &str,
    lexed: &Lexed,
    in_test: &dyn Fn(u32) -> bool,
    raw: &mut Vec<Violation>,
) {
    struct Guard {
        name: String,
        depth: i32,
        line: u32,
    }
    struct PendingLet {
        name: String,
        has_lock: bool,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut pending: Option<PendingLet> = None;
    let mut depth = 0i32;
    for i in 0..lexed.toks.len() {
        let line = lexed.toks[i].line;
        if lexed.punct(i, '{') {
            depth += 1;
        } else if lexed.punct(i, '}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
        } else if lexed.punct(i, ';') {
            if let Some(p) = pending.take() {
                if p.has_lock && !in_test(line) {
                    // Shadowing: a rebind of the same name replaces it.
                    guards.retain(|g| !(g.name == p.name && g.depth == depth));
                    guards.push(Guard {
                        name: p.name,
                        depth,
                        line,
                    });
                }
            }
        } else if lexed.ident(i) == "let" {
            // `let [mut] name = …;` — only simple-identifier patterns can
            // bind a guard this rule tracks.
            let name_at = if lexed.ident(i + 1) == "mut" {
                i + 2
            } else {
                i + 1
            };
            let name = lexed.ident(name_at);
            if !name.is_empty() && lexed.punct(name_at + 1, '=') {
                pending = Some(PendingLet {
                    name: name.to_string(),
                    has_lock: false,
                });
            } else {
                pending = None;
            }
        } else if lexed.ident(i) == "drop"
            && lexed.punct(i + 1, '(')
            && lexed.punct(i + 3, ')')
            && guards.iter().any(|g| g.name == lexed.ident(i + 2))
        {
            let dropped = lexed.ident(i + 2).to_string();
            guards.retain(|g| g.name != dropped);
        } else if lexed.punct(i.wrapping_sub(1), '.')
            && BLOCKING_METHODS.contains(&lexed.ident(i))
            && lexed.punct(i + 1, '(')
        {
            if lexed.ident(i) == "lock" {
                if let Some(p) = pending.as_mut() {
                    p.has_lock = true;
                }
            }
            if let Some(g) = guards.last() {
                if !in_test(line) {
                    push(
                        raw,
                        "blocking-under-lock",
                        path,
                        line,
                        format!(
                            "blocking call `.{}(…)` while `MutexGuard` binding `{}` \
                             (line {}) is still live in this block; drop the guard \
                             (end its scope or `drop({})`) before blocking",
                            lexed.ident(i),
                            g.name,
                            g.line,
                            g.name
                        ),
                    );
                }
            }
        }
    }
}

/// The human explanation `--explain <rule>` prints, mirrored in README
/// "Invariants". `None` for unknown rule ids.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "wall-clock" => {
            "wall-clock: `Instant::now()` / `SystemTime::now()` / `thread::sleep()` \
             outside the sanctioned Clock/realtime files.\n\n\
             Virtual time must never leak wall time: one stray wall read makes sim \
             results depend on the host, breaking the byte-for-byte sim golden and \
             the realtime parity bench. Resolution is import-aware: a custom \
             `Instant` imported from elsewhere is not flagged.\n\n\
             flagged:  let t0 = std::time::Instant::now();\n\
             clean:    let t0 = clock.now();           // metis_llm::Clock"
        }
        "std-time-import" => {
            "std-time-import: any `std::time` path — `use` declaration or inline \
             qualified — outside the files listed in `wallclock-files` (the Clock \
             impls and the realtime driver).\n\n\
             The import is the root of every wall-time leak, so it is confined at \
             the source instead of chasing call sites. This is the import-resolved \
             upgrade of `wall-clock`: the two overlap on purpose (defense in \
             depth).\n\n\
             flagged:  use std::time::Duration;        // in a sim crate\n\
             clean:    use metis_llm::{Clock, Nanos};  // virtual durations"
        }
        "io-confinement" => {
            "io-confinement: `std::fs` / `std::net` / `std::process` in the `src/` \
             of a crate without the `io` role.\n\n\
             Ambient I/O inside simulation crates makes results depend on the \
             machine: files that exist, ports that answer, subprocesses that \
             succeed. I/O belongs to the app-layer crates (cli, bench, lint) which \
             declare `roles = [\"io\"]`; simulation code takes data as values. \
             Tests are exempt (they own their fixtures).\n\n\
             flagged:  let spec = std::fs::read_to_string(path)?;  // in metis-engine src/\n\
             clean:    pub fn with_spec(spec: &str) -> Engine      // caller did the read"
        }
        "crate-layering" => {
            "crate-layering: a dependency or `use` that points up (or sideways) in \
             the crate layer order.\n\n\
             Every crate declares `layer = \"…\"` in [package.metadata.metis-lint]; \
             the order is foundation < model < runtime < data < profiling < \
             orchestration < app < top. Both manifest `[dependencies]` edges and \
             source-level `use metis_*::…` imports must point strictly down — core \
             can never import bench or cli, and a re-export cannot smuggle an upper \
             layer in, because the import line itself is checked.\n\n\
             flagged:  use metis_bench::Sweep;   // from metis-core (orchestration)\n\
             clean:    use metis_llm::Clock;     // model < orchestration"
        }
        "nan-ordering" => {
            "nan-ordering: `partial_cmp(…).unwrap()` / `.expect(…)` / \
             `.unwrap_or(Ordering::Equal)` over floats.\n\n\
             A NaN panics the first two — on a replica worker thread that kills \
             serving — and makes the third a non-total comparator that sort may \
             reject. `f32::total_cmp`/`f64::total_cmp` is total over every bit \
             pattern.\n\n\
             flagged:  v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
             clean:    v.sort_by(|a, b| a.total_cmp(b));"
        }
        "nondeterministic-iteration" => {
            "nondeterministic-iteration: `HashMap` / `HashSet` in report-producing \
             code (crates or files with the `report` role).\n\n\
             Hash iteration order is randomized per process; anything it feeds into \
             a committed report or golden file diffs differently on every run. \
             `BTreeMap`/`BTreeSet` iterate in key order, always.\n\n\
             flagged:  let mut by_cell: HashMap<String, f64> = HashMap::new();\n\
             clean:    let mut by_cell: BTreeMap<String, f64> = BTreeMap::new();"
        }
        "unseeded-rng" => {
            "unseeded-rng: `thread_rng()`, `from_entropy()`, `OsRng`, \
             `rand::random()` — RNG construction with no recorded seed.\n\n\
             Every random stream in this workspace must be derivable from an \
             explicit seed or pinned-seed baselines stop reproducing and the CI \
             perf gate diffs noise.\n\n\
             flagged:  let mut rng = rand::thread_rng();\n\
             clean:    let mut rng = StdRng::seed_from_u64(cell_seed);"
        }
        "bench-registration" => {
            "bench-registration: a `benches/*.rs` file with no `[[bench]]` entry, \
             an entry without `harness = false`, or an entry pointing at a missing \
             file.\n\n\
             With `autobenches = false`, an unregistered bench file silently never \
             builds again, and a registered one without `harness = false` runs \
             under the libtest harness that swallows its `fn main`. Either way the \
             CI bench smoke loses coverage without failing."
        }
        "no-panic-in-worker" => {
            "no-panic-in-worker: `.unwrap()` / `.expect(…)` / `panic!`-family \
             macros in files listed as `worker-files` (the realtime replica worker \
             loops).\n\n\
             A panic on a worker thread kills serving for that replica silently — \
             the driver only notices as a hung channel. Handle recoverable errors; \
             invariant `assert!`s with diagnostics are allowed (they fail loudly \
             and name the condition). Test modules are exempt.\n\n\
             flagged:  let req = rx.recv().unwrap();\n\
             clean:    let Ok(req) = rx.recv() else { break };"
        }
        "blocking-under-lock" => {
            "blocking-under-lock: a blocking call (`.lock()`, `.recv()`, \
             `.recv_timeout()`, `.sleep_until()`, `.wait()`, `.join()`) while a \
             `MutexGuard` binding is still live in the enclosing block, in a \
             worker file.\n\n\
             Hold-and-wait is the deadlock recipe: a worker holding a guard while \
             blocking on a channel or the paced clock stalls every thread that \
             needs that lock — the realtime driver's 30s watchdog turns that into \
             a hard failure, this rule turns it into a lint. The guard dies at its \
             block's `}`, at `drop(guard)`, or at shadowing; take a snapshot and \
             drop the guard before blocking.\n\n\
             flagged:  let st = shared.lock().unwrap_or_else(|e| e.into_inner());\n\
             \u{20}         let req = rx.recv_timeout(wait)?;   // guard still live\n\
             clean:    let snap = { shared.lock().…; copy };   // guard dead here\n\
             \u{20}         let req = rx.recv_timeout(wait)?;"
        }
        "channel-unwrap" => {
            "channel-unwrap: `.recv()` / `.try_recv()` / `.recv_timeout()` / \
             `.send(…)` followed by `.unwrap()` / `.expect(…)` in a worker file.\n\n\
             On a worker thread a disconnected channel is the *normal* shutdown \
             signal (the driver hangs up to stop serving); unwrapping it turns \
             every orderly teardown into a worker panic. Match on the error and \
             break out of the loop instead.\n\n\
             flagged:  let req = rx.recv().unwrap();\n\
             clean:    match rx.recv() { Ok(r) => serve(r), Err(_) => break }"
        }
        "unit-mismatch" => {
            "unit-mismatch: additive arithmetic (`+`, `-`, `+=`, `-=`) between \
             identifiers whose suffixes name different units (`_nanos`, `_secs`, \
             `_ms`, `_tokens`, `_bytes`) with no conversion call between them.\n\n\
             `deadline_nanos + timeout_secs` compiles fine and is wrong by 10^9. \
             Multiplicative operators are exempt (they legitimately change units: \
             `tokens * bytes_per_token`), and a call result counts as the explicit \
             conversion this rule demands.\n\n\
             flagged:  let end_nanos = start_nanos + timeout_secs;\n\
             clean:    let end_nanos = start_nanos + secs_to_nanos(timeout_secs);"
        }
        "pragma" => {
            "pragma (meta-rule, not suppressible): a malformed suppression pragma — \
             bad syntax, an unknown rule name, or a missing/empty reason.\n\n\
             The pragma grammar is\n\n\
             \u{20} // metis-lint: allow(rule-a, rule-b) reason=\"why this site is sanctioned\"\n\n\
             on the violating line or the line directly above it. A typo'd pragma \
             suppresses nothing, so it is reported rather than silently ignored."
        }
        "unused-pragma" => {
            "unused-pragma (meta-rule, not suppressible): a well-formed pragma that \
             suppressed no finding.\n\n\
             Stale allowances are how suppressed regressions sneak back in: the \
             code it excused is gone, but the next violation of that rule on that \
             line would be silently forgiven. Delete the pragma."
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn pragma_with_reason_suppresses_line_below() {
        let src = "// metis-lint: allow(wall-clock) reason=\"measuring the wall is the point\"\n\
                   let t = Instant::now();";
        let v = lint_source("x.rs", src, FileRole::default());
        assert!(v.is_empty(), "suppressed: {v:?}");
    }

    #[test]
    fn pragma_trailing_on_same_line_suppresses() {
        let src = "let t = Instant::now(); // metis-lint: allow(wall-clock) reason=\"intentional\"";
        assert!(lint_source("x.rs", src, FileRole::default()).is_empty());
    }

    #[test]
    fn pragma_without_reason_is_a_violation_and_does_not_suppress() {
        let src = "// metis-lint: allow(wall-clock)\nlet t = Instant::now();";
        let v = lint_source("x.rs", src, FileRole::default());
        assert_eq!(rules_of(&v), vec!["pragma", "wall-clock"]);
    }

    #[test]
    fn pragma_with_empty_reason_is_rejected() {
        let src = "// metis-lint: allow(wall-clock) reason=\"\"\nlet t = Instant::now();";
        let v = lint_source("x.rs", src, FileRole::default());
        assert_eq!(rules_of(&v), vec!["pragma", "wall-clock"]);
    }

    #[test]
    fn pragma_for_unknown_rule_is_rejected() {
        let src = "// metis-lint: allow(no-such-rule) reason=\"x\"\nfn f() {}";
        let v = lint_source("x.rs", src, FileRole::default());
        assert_eq!(rules_of(&v), vec!["pragma"]);
        assert!(v[0].msg.contains("unknown rule"));
    }

    #[test]
    fn unused_pragma_is_a_hard_error() {
        let src = "// metis-lint: allow(nan-ordering) reason=\"x\"\nlet t = Instant::now();";
        let v = lint_source("x.rs", src, FileRole::default());
        assert_eq!(rules_of(&v), vec!["unused-pragma", "wall-clock"]);
        assert!(v[0].msg.contains("suppressed nothing"));
    }

    #[test]
    fn comma_separated_pragma_suppresses_both_rules() {
        let src = "// metis-lint: allow(wall-clock, std-time-import) reason=\"wall measurement\"\n\
                   let t = std::time::Instant::now();";
        let v = lint_source("x.rs", src, FileRole::default());
        assert!(v.is_empty(), "both rules suppressed: {v:?}");
    }

    #[test]
    fn multiline_partial_cmp_chain_is_caught() {
        let src = "a.partial_cmp(\n&b,\n)\n.unwrap();";
        let v = lint_source("x.rs", src, FileRole::default());
        assert_eq!(rules_of(&v), vec!["nan-ordering"]);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn defining_partial_cmp_is_not_a_violation() {
        let src = "impl PartialOrd for X { fn partial_cmp(&self, o: &Self) -> Option<Ordering> \
                   { Some(self.cmp(o)) } }";
        assert!(lint_source("x.rs", src, FileRole::default()).is_empty());
    }

    #[test]
    fn report_role_gates_hashmap() {
        let src = "use std::collections::HashMap;";
        assert!(lint_source("x.rs", src, FileRole::default()).is_empty());
        let v = lint_source(
            "x.rs",
            src,
            FileRole {
                report: true,
                ..FileRole::default()
            },
        );
        assert_eq!(rules_of(&v), vec!["nondeterministic-iteration"]);
    }

    #[test]
    fn worker_role_gates_panics_outside_tests() {
        let src = "fn w() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }";
        let role = FileRole {
            worker: true,
            ..FileRole::default()
        };
        let v = lint_source("x.rs", src, role);
        assert_eq!(rules_of(&v), vec!["no-panic-in-worker"]);
        assert_eq!(v[0].line, 1, "the test-module unwrap is exempt");
    }

    #[test]
    fn wallclock_ok_role_exempts_clock_impls() {
        let src = "let e = Instant::now(); std::thread::sleep(d);";
        let role = FileRole {
            wallclock_ok: true,
            ..FileRole::default()
        };
        assert!(lint_source("clock.rs", src, role).is_empty());
        assert_eq!(
            rules_of(&lint_source("other.rs", src, FileRole::default())),
            vec!["wall-clock", "wall-clock"]
        );
    }

    #[test]
    fn wall_clock_is_import_resolved() {
        // An `Instant` imported from somewhere other than std::time is not
        // the wall clock — no finding.
        let src = "use crate::faketime::Instant;\nfn f() { let t = Instant::now(); }";
        assert!(lint_source("x.rs", src, FileRole::default()).is_empty());
        // Imported from std::time: flagged (import line + call line).
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let v = lint_source("x.rs", src, FileRole::default());
        assert_eq!(rules_of(&v), vec!["std-time-import", "wall-clock"]);
        assert_eq!((v[0].line, v[1].line), (1, 2));
    }

    #[test]
    fn idents_inside_strings_and_comments_do_not_fire() {
        let src = "// Instant::now() in prose\nlet s = \"thread::sleep\"; /* HashMap */";
        let role = FileRole {
            report: true,
            ..FileRole::default()
        };
        assert!(lint_source("x.rs", src, role).is_empty());
    }

    #[test]
    fn unseeded_rng_constructors_fire() {
        let v = lint_source(
            "x.rs",
            "let r = rand::thread_rng(); let x = rand::random::<u64>();",
            FileRole::default(),
        );
        assert_eq!(rules_of(&v), vec!["unseeded-rng", "unseeded-rng"]);
    }

    #[test]
    fn every_rule_and_meta_rule_has_an_explanation() {
        for rule in RULE_NAMES {
            assert!(explain(rule).is_some(), "no explanation for {rule}");
        }
        assert!(explain("pragma").is_some());
        assert!(explain("unused-pragma").is_some());
        assert!(explain("no-such-rule").is_none());
    }
}

//! The rule engine: repo-specific deny rules over the lexed token stream,
//! and the suppression pragma that is the only way past them.
//!
//! Every rule protects a committed artifact:
//!
//! | rule | protects |
//! |---|---|
//! | `wall-clock` | byte-for-byte sim golden, realtime parity bench |
//! | `nan-ordering` | worker threads (no NaN panic), stable sort orders |
//! | `nondeterministic-iteration` | committed bench baselines, report goldens |
//! | `unseeded-rng` | pinned-seed reproducibility of every experiment |
//! | `bench-registration` | CI bench smoke coverage (autobenches = false) |
//! | `no-panic-in-worker` | realtime replica workers (a panic kills serving) |
//!
//! Suppression pragma, on the violating line or the line above it:
//!
//! ```text
//! // metis-lint: allow(wall-clock) reason="serve reports real wall time"
//! ```
//!
//! The reason is mandatory and must be non-empty — an allow without an
//! argument is itself a violation.

use crate::lexer::{cfg_test_regions, lex, Lexed};

/// Machine-readable names of every file-level rule plus the project-level
/// `bench-registration` (which `allow` may also name, in case a future
/// manifest-side pragma needs it).
pub const RULE_NAMES: &[&str] = &[
    "wall-clock",
    "nan-ordering",
    "nondeterministic-iteration",
    "unseeded-rng",
    "bench-registration",
    "no-panic-in-worker",
];

/// One finding: rule, workspace-relative path, 1-based line, message.
#[derive(Clone, Debug)]
pub struct Violation {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deny[{}]: {}:{}: {}",
            self.rule, self.path, self.line, self.msg
        )
    }
}

/// How the rules apply to one file, derived from crate manifest metadata
/// (see [`crate::workspace`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct FileRole {
    /// Wall-clock reads are this file's *job* (`Clock` impls, the realtime
    /// driver): `wall-clock` does not apply.
    pub wallclock_ok: bool,
    /// The file holds realtime worker loops: `no-panic-in-worker` applies.
    pub worker: bool,
    /// The file produces committed reports/baselines:
    /// `nondeterministic-iteration` applies.
    pub report: bool,
}

/// A parsed `metis-lint: allow(rule) reason="…"` pragma.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pragma {
    pub line: u32,
    pub rule: String,
    pub reason: String,
}

/// Parses pragmas out of line comments; malformed pragmas (bad syntax,
/// unknown rule, missing or empty reason) are returned as violations so a
/// typo cannot silently suppress nothing.
pub fn parse_pragmas(lexed: &Lexed, path: &str) -> (Vec<Pragma>, Vec<Violation>) {
    let mut pragmas = Vec::new();
    let mut bad = Vec::new();
    for c in &lexed.comments {
        let body = c.text.trim();
        let Some(rest) = body.strip_prefix("metis-lint:") else {
            continue;
        };
        let mut fail = |msg: String| {
            bad.push(Violation {
                rule: "pragma",
                path: path.to_string(),
                line: c.line,
                msg,
            });
        };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow(") else {
            fail(format!(
                "malformed pragma (expected `allow(<rule>)`): {body}"
            ));
            continue;
        };
        let Some((rule, rest)) = rest.split_once(')') else {
            fail(format!("unclosed `allow(` in pragma: {body}"));
            continue;
        };
        let rule = rule.trim();
        if !RULE_NAMES.contains(&rule) {
            fail(format!(
                "pragma names unknown rule `{rule}` (known: {})",
                RULE_NAMES.join(", ")
            ));
            continue;
        }
        let rest = rest.trim();
        let reason = rest
            .strip_prefix("reason=\"")
            .and_then(|r| r.split_once('"'))
            .map(|(reason, _)| reason.trim());
        match reason {
            Some(r) if !r.is_empty() => pragmas.push(Pragma {
                line: c.line,
                rule: rule.to_string(),
                reason: r.to_string(),
            }),
            Some(_) => fail(format!("pragma reason must be non-empty: {body}")),
            None => fail(format!(
                "pragma requires `reason=\"…\"` after `allow({rule})`: {body}"
            )),
        }
    }
    (pragmas, bad)
}

/// Lints one file's source. `path` is workspace-relative and used both for
/// messages and for nothing else — role decisions were already made by the
/// caller from manifest metadata.
pub fn lint_source(path: &str, source: &str, role: FileRole) -> Vec<Violation> {
    let lexed = lex(source);
    let test_regions = cfg_test_regions(&lexed);
    let in_test = |line: u32| test_regions.iter().any(|&(a, b)| line >= a && line <= b);
    let (pragmas, mut out) = parse_pragmas(&lexed, path);

    let mut raw: Vec<Violation> = Vec::new();
    if !role.wallclock_ok {
        wall_clock(path, &lexed, &mut raw);
    }
    nan_ordering(path, &lexed, &mut raw);
    unseeded_rng(path, &lexed, &mut raw);
    if role.report {
        nondeterministic_iteration(path, &lexed, &mut raw);
    }
    if role.worker {
        no_panic_in_worker(path, &lexed, &in_test, &mut raw);
    }

    // A pragma suppresses matching violations on its own line and the line
    // directly below it (trailing-comment and line-above styles).
    out.extend(raw.into_iter().filter(|v| {
        !pragmas
            .iter()
            .any(|p| p.rule == v.rule && (p.line == v.line || p.line + 1 == v.line))
    }));
    out.sort_by_key(|v| v.line);
    out
}

fn push(raw: &mut Vec<Violation>, rule: &'static str, path: &str, line: u32, msg: String) {
    raw.push(Violation {
        rule,
        path: path.to_string(),
        line,
        msg,
    });
}

/// `Instant::now` / `SystemTime::now` / `thread::sleep`: virtual time must
/// never leak wall time. Everything times itself through
/// `metis_llm::Clock`; the two sanctioned implementation files are exempted
/// by manifest metadata, intentional measurements carry a pragma.
fn wall_clock(path: &str, lexed: &Lexed, raw: &mut Vec<Violation>) {
    for i in 0..lexed.toks.len() {
        let head = lexed.ident(i);
        let callee = if lexed.path_sep(i + 1) {
            lexed.ident(i + 3)
        } else {
            ""
        };
        let hit = match (head, callee) {
            ("Instant", "now") => Some("std::time::Instant::now()"),
            ("SystemTime", "now") => Some("std::time::SystemTime::now()"),
            ("thread", "sleep") => Some("std::thread::sleep()"),
            _ => None,
        };
        if let Some(what) = hit {
            push(
                raw,
                "wall-clock",
                path,
                lexed.toks[i].line,
                format!(
                    "{what} reads/blocks on wall time; use the `metis_llm::Clock` \
                     abstraction so virtual time stays deterministic"
                ),
            );
        }
    }
}

/// `partial_cmp(…).unwrap()` (or `.expect(…)`, or the quietly-inconsistent
/// `.unwrap_or(Ordering::Equal)`): a NaN makes the first two panic a worker
/// and the third a non-total comparator that `sort_by` may reject. Use
/// `f32::total_cmp` / `f64::total_cmp`.
fn nan_ordering(path: &str, lexed: &Lexed, raw: &mut Vec<Violation>) {
    for i in 0..lexed.toks.len() {
        if lexed.ident(i) != "partial_cmp" {
            continue;
        }
        // Skip `fn partial_cmp` — implementing PartialOrd is fine.
        if i > 0 && lexed.ident(i - 1) == "fn" {
            continue;
        }
        if !lexed.punct(i + 1, '(') {
            continue;
        }
        // Walk over the balanced argument list.
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < lexed.toks.len() {
            if lexed.punct(j, '(') {
                depth += 1;
            } else if lexed.punct(j, ')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        if !lexed.punct(j + 1, '.') {
            continue;
        }
        let next = lexed.ident(j + 2);
        if matches!(next, "unwrap" | "expect" | "unwrap_or") {
            push(
                raw,
                "nan-ordering",
                path,
                lexed.toks[i].line,
                format!(
                    "`partial_cmp(…).{next}` is not NaN-total; use `total_cmp` so a \
                     NaN cannot panic a comparator or break sort ordering"
                ),
            );
        }
    }
}

/// `HashMap` / `HashSet` in report-producing code: iteration order is
/// randomized per process, so anything they feed into a committed report
/// diff is nondeterministic. Use `BTreeMap` / `BTreeSet`.
fn nondeterministic_iteration(path: &str, lexed: &Lexed, raw: &mut Vec<Violation>) {
    for (i, t) in lexed.toks.iter().enumerate() {
        let name = lexed.ident(i);
        if name == "HashMap" || name == "HashSet" {
            push(
                raw,
                "nondeterministic-iteration",
                path,
                t.line,
                format!(
                    "`{name}` has nondeterministic iteration order and this file \
                     produces committed reports; use `BTree{}`",
                    &name[4..]
                ),
            );
        }
    }
}

/// RNG construction without an explicit seed: every random stream in this
/// workspace must be derivable from a recorded seed or pinned-seed
/// baselines stop reproducing.
fn unseeded_rng(path: &str, lexed: &Lexed, raw: &mut Vec<Violation>) {
    for (i, t) in lexed.toks.iter().enumerate() {
        let name = lexed.ident(i);
        let hit = match name {
            "thread_rng" | "from_entropy" | "from_os_rng" | "OsRng" | "ThreadRng" => {
                Some(name.to_string())
            }
            "random" if i >= 3 && lexed.ident(i - 3) == "rand" && lexed.path_sep(i - 2) => {
                Some("rand::random".to_string())
            }
            _ => None,
        };
        if let Some(what) = hit {
            push(
                raw,
                "unseeded-rng",
                path,
                t.line,
                format!(
                    "`{what}` constructs an unseeded RNG; derive every stream from an \
                     explicit recorded seed (`seed_from_u64`)"
                ),
            );
        }
    }
}

/// `unwrap` / `expect` / panicking macros in realtime worker files: a panic
/// on a replica worker thread silently kills serving for that replica.
/// Invariant `assert!`s with diagnostics are allowed (they fail loudly and
/// name the condition); recoverable errors must be handled. Test modules
/// are exempt.
fn no_panic_in_worker(
    path: &str,
    lexed: &Lexed,
    in_test: &dyn Fn(u32) -> bool,
    raw: &mut Vec<Violation>,
) {
    for i in 0..lexed.toks.len() {
        let line = lexed.toks[i].line;
        if in_test(line) {
            continue;
        }
        let name = lexed.ident(i);
        let hit = match name {
            "unwrap" | "expect" if lexed.punct(i.wrapping_sub(1), '.') => true,
            "panic" | "unreachable" | "todo" | "unimplemented" if lexed.punct(i + 1, '!') => true,
            _ => false,
        };
        if hit {
            push(
                raw,
                "no-panic-in-worker",
                path,
                line,
                format!(
                    "`{name}` can panic in a realtime worker file; handle the error \
                     (or pragma a driver-thread-only site with a reason)"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn pragma_with_reason_suppresses_line_below() {
        let src = "// metis-lint: allow(wall-clock) reason=\"measuring the wall is the point\"\n\
                   let t = Instant::now();";
        let v = lint_source("x.rs", src, FileRole::default());
        assert!(v.is_empty(), "suppressed: {v:?}");
    }

    #[test]
    fn pragma_trailing_on_same_line_suppresses() {
        let src = "let t = Instant::now(); // metis-lint: allow(wall-clock) reason=\"intentional\"";
        assert!(lint_source("x.rs", src, FileRole::default()).is_empty());
    }

    #[test]
    fn pragma_without_reason_is_a_violation_and_does_not_suppress() {
        let src = "// metis-lint: allow(wall-clock)\nlet t = Instant::now();";
        let v = lint_source("x.rs", src, FileRole::default());
        assert_eq!(rules_of(&v), vec!["pragma", "wall-clock"]);
    }

    #[test]
    fn pragma_with_empty_reason_is_rejected() {
        let src = "// metis-lint: allow(wall-clock) reason=\"\"\nlet t = Instant::now();";
        let v = lint_source("x.rs", src, FileRole::default());
        assert_eq!(rules_of(&v), vec!["pragma", "wall-clock"]);
    }

    #[test]
    fn pragma_for_unknown_rule_is_rejected() {
        let src = "// metis-lint: allow(no-such-rule) reason=\"x\"\nfn f() {}";
        let v = lint_source("x.rs", src, FileRole::default());
        assert_eq!(rules_of(&v), vec!["pragma"]);
        assert!(v[0].msg.contains("unknown rule"));
    }

    #[test]
    fn pragma_for_a_different_rule_does_not_suppress() {
        let src = "// metis-lint: allow(nan-ordering) reason=\"x\"\nlet t = Instant::now();";
        let v = lint_source("x.rs", src, FileRole::default());
        assert_eq!(rules_of(&v), vec!["wall-clock"]);
    }

    #[test]
    fn multiline_partial_cmp_chain_is_caught() {
        let src = "a.partial_cmp(\n&b,\n)\n.unwrap();";
        let v = lint_source("x.rs", src, FileRole::default());
        assert_eq!(rules_of(&v), vec!["nan-ordering"]);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn defining_partial_cmp_is_not_a_violation() {
        let src = "impl PartialOrd for X { fn partial_cmp(&self, o: &Self) -> Option<Ordering> \
                   { Some(self.cmp(o)) } }";
        assert!(lint_source("x.rs", src, FileRole::default()).is_empty());
    }

    #[test]
    fn report_role_gates_hashmap() {
        let src = "use std::collections::HashMap;";
        assert!(lint_source("x.rs", src, FileRole::default()).is_empty());
        let v = lint_source(
            "x.rs",
            src,
            FileRole {
                report: true,
                ..FileRole::default()
            },
        );
        assert_eq!(rules_of(&v), vec!["nondeterministic-iteration"]);
    }

    #[test]
    fn worker_role_gates_panics_outside_tests() {
        let src = "fn w() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }";
        let role = FileRole {
            worker: true,
            ..FileRole::default()
        };
        let v = lint_source("x.rs", src, role);
        assert_eq!(rules_of(&v), vec!["no-panic-in-worker"]);
        assert_eq!(v[0].line, 1, "the test-module unwrap is exempt");
    }

    #[test]
    fn wallclock_ok_role_exempts_clock_impls() {
        let src = "let e = Instant::now(); std::thread::sleep(d);";
        let role = FileRole {
            wallclock_ok: true,
            ..FileRole::default()
        };
        assert!(lint_source("clock.rs", src, role).is_empty());
        assert_eq!(
            rules_of(&lint_source("other.rs", src, FileRole::default())),
            vec!["wall-clock", "wall-clock"]
        );
    }

    #[test]
    fn idents_inside_strings_and_comments_do_not_fire() {
        let src = "// Instant::now() in prose\nlet s = \"thread::sleep\"; /* HashMap */";
        let role = FileRole {
            report: true,
            ..FileRole::default()
        };
        assert!(lint_source("x.rs", src, role).is_empty());
    }

    #[test]
    fn unseeded_rng_constructors_fire() {
        let v = lint_source(
            "x.rs",
            "let r = rand::thread_rng(); let x = rand::random::<u64>();",
            FileRole::default(),
        );
        assert_eq!(rules_of(&v), vec!["unseeded-rng", "unseeded-rng"]);
    }
}

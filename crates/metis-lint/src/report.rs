//! The machine-readable lint report (`metis-lint --json PATH`), built on
//! [`metis_metrics::json`] — the same dependency-free writer the bench
//! reports use, so the report round-trips byte-for-byte through the same
//! parser CI and tooling already trust.
//!
//! Schema (version 1):
//!
//! ```json
//! {
//!   "schema": "metis-lint-report",
//!   "version": 1,
//!   "rules": ["wall-clock", "std-time-import", …],
//!   "findings": [
//!     {"rule": "…", "path": "…", "line": 7, "msg": "…"}
//!   ],
//!   "suppressions": [
//!     {"rule": "…", "path": "…", "line": 3, "reason": "…", "used": true}
//!   ],
//!   "summary": {
//!     "crates": 13, "files": 90,
//!     "findings": 0, "suppressions": 12, "unused_suppressions": 0
//!   }
//! }
//! ```
//!
//! `findings` and `suppressions` come pre-sorted by (path, line, rule) from
//! [`crate::workspace::lint_workspace`]; the rendering is `render_pretty(2)`
//! plus a trailing newline, so two runs over the same tree produce
//! byte-identical files.

use metis_metrics::json::Json;

use crate::rules::{self, Suppression, Violation};
use crate::workspace::WorkspaceOutcome;

/// Schema identifier, checked by downstream consumers before reading.
pub const SCHEMA: &str = "metis-lint-report";
/// Schema version; bump on any structural change.
pub const VERSION: u64 = 1;

fn finding_json(v: &Violation) -> Json {
    Json::Obj(vec![
        ("rule".into(), Json::Str(v.rule.to_string())),
        ("path".into(), Json::Str(v.path.clone())),
        ("line".into(), Json::UInt(u64::from(v.line))),
        ("msg".into(), Json::Str(v.msg.clone())),
    ])
}

fn suppression_json(s: &Suppression) -> Json {
    Json::Obj(vec![
        ("rule".into(), Json::Str(s.rule.clone())),
        ("path".into(), Json::Str(s.path.clone())),
        ("line".into(), Json::UInt(u64::from(s.line))),
        ("reason".into(), Json::Str(s.reason.clone())),
        ("used".into(), Json::Bool(s.used)),
    ])
}

/// Builds the versioned report value for one workspace lint outcome.
pub fn report_json(outcome: &WorkspaceOutcome) -> Json {
    let unused = outcome.suppressions.iter().filter(|s| !s.used).count();
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.to_string())),
        ("version".into(), Json::UInt(VERSION)),
        (
            "rules".into(),
            Json::Arr(
                rules::RULE_NAMES
                    .iter()
                    .map(|r| Json::Str((*r).to_string()))
                    .collect(),
            ),
        ),
        (
            "findings".into(),
            Json::Arr(outcome.violations.iter().map(finding_json).collect()),
        ),
        (
            "suppressions".into(),
            Json::Arr(outcome.suppressions.iter().map(suppression_json).collect()),
        ),
        (
            "summary".into(),
            Json::Obj(vec![
                ("crates".into(), Json::UInt(outcome.crates as u64)),
                ("files".into(), Json::UInt(outcome.files as u64)),
                (
                    "findings".into(),
                    Json::UInt(outcome.violations.len() as u64),
                ),
                (
                    "suppressions".into(),
                    Json::UInt(outcome.suppressions.len() as u64),
                ),
                ("unused_suppressions".into(), Json::UInt(unused as u64)),
            ]),
        ),
    ])
}

/// Renders the report to its canonical on-disk form: 2-space pretty JSON
/// with a trailing newline, byte-stable across runs over the same tree.
pub fn render_report(outcome: &WorkspaceOutcome) -> String {
    let mut text = report_json(outcome).render_pretty(2);
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WorkspaceOutcome {
        WorkspaceOutcome {
            violations: vec![Violation {
                rule: "wall-clock",
                path: "crates/x/src/lib.rs".into(),
                line: 7,
                msg: "msg with \"quotes\" and \\backslash".into(),
            }],
            suppressions: vec![Suppression {
                rule: "no-panic-in-worker".into(),
                path: "crates/x/src/worker.rs".into(),
                line: 3,
                reason: "driver thread only".into(),
                used: true,
            }],
            files: 2,
            crates: 1,
        }
    }

    #[test]
    fn report_round_trips_byte_for_byte() {
        let text = render_report(&sample());
        let parsed = Json::parse(text.trim_end()).expect("report parses");
        let mut re = parsed.render_pretty(2);
        re.push('\n');
        assert_eq!(text, re, "render → parse → render must be byte-identical");
    }

    #[test]
    fn report_shape_matches_schema() {
        let v = report_json(&sample());
        assert_eq!(v.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(v.get("version").and_then(Json::as_u64), Some(VERSION));
        let rules = v.get("rules").and_then(Json::as_arr).unwrap();
        assert_eq!(rules.len(), rules::RULE_NAMES.len());
        let f = &v.get("findings").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(f.get("rule").and_then(Json::as_str), Some("wall-clock"));
        assert_eq!(f.get("line").and_then(Json::as_u64), Some(7));
        let s = &v.get("suppressions").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(s.get("used").and_then(Json::as_bool), Some(true));
        let sum = v.get("summary").unwrap();
        assert_eq!(sum.get("findings").and_then(Json::as_u64), Some(1));
        assert_eq!(
            sum.get("unused_suppressions").and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn unused_suppressions_are_counted() {
        let mut o = sample();
        o.suppressions[0].used = false;
        let v = report_json(&o);
        let sum = v.get("summary").unwrap();
        assert_eq!(
            sum.get("unused_suppressions").and_then(Json::as_u64),
            Some(1)
        );
    }
}

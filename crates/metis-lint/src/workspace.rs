//! Workspace discovery: member enumeration, per-crate role metadata, the
//! dependency edges the layering rule walks, the file walk, and the
//! manifest-level `bench-registration` rule.
//!
//! Roles are read from each crate's `Cargo.toml`:
//!
//! ```toml
//! [package.metadata.metis-lint]
//! # The crate's layer in the architecture order (see [`crate::graph`]).
//! layer = "runtime"
//! # Whole-crate roles. "report": src/ produces committed reports, so
//! # nondeterministic-iteration is denied there. "io": the crate's job is
//! # I/O (cli/bench/lint), so io-confinement does not apply.
//! roles = ["report", "io"]
//! # Crate-relative files where wall-clock reads ARE the implementation.
//! wallclock-files = ["src/clock.rs"]
//! # Crate-relative files holding realtime worker loops (no-panic,
//! # blocking-under-lock, channel-unwrap rules).
//! worker-files = ["src/realtime.rs"]
//! # File-granular report role for crates where only one module reports.
//! report-files = ["src/runner.rs"]
//! # Crate-relative path prefixes excluded from linting (rule fixtures
//! # that exist to contain violations).
//! skip-files = ["tests/fixtures/"]
//! # Vendored shims: not ours to lint.
//! skip = true
//! ```
//!
//! The `Cargo.toml` parser handles exactly the subset these manifests use:
//! sections, string/bool values, single-line string arrays, and dependency
//! keys (`metis-llm.workspace = true`, `metis-text = { path = "…" }`).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::graph;
use crate::lexer::lex;
use crate::rules::{apply_pragmas, file_rules, parse_pragmas, FileRole, Suppression, Violation};
use crate::syntax;

/// Per-crate lint metadata from `[package.metadata.metis-lint]`.
#[derive(Clone, Debug, Default)]
pub struct LintMeta {
    pub skip: bool,
    pub layer: Option<String>,
    pub roles: Vec<String>,
    pub wallclock_files: Vec<String>,
    pub worker_files: Vec<String>,
    pub report_files: Vec<String>,
    pub skip_files: Vec<String>,
}

/// One dependency edge from `[dependencies]` / `[dev-dependencies]` /
/// `[build-dependencies]`: the crate name and its manifest line.
#[derive(Clone, Debug)]
pub struct Dep {
    pub name: String,
    pub line: u32,
}

/// One `[[bench]]` section: its manifest line, name, harness, path.
#[derive(Clone, Debug, Default)]
pub struct BenchEntry {
    pub line: u32,
    pub name: Option<String>,
    pub harness: Option<bool>,
    pub path: Option<String>,
}

/// The subset of a `Cargo.toml` the linter cares about.
#[derive(Clone, Debug, Default)]
pub struct Manifest {
    pub package_name: Option<String>,
    pub is_workspace: bool,
    pub members: Vec<String>,
    pub lint: LintMeta,
    pub benches: Vec<BenchEntry>,
    pub deps: Vec<Dep>,
}

/// Strips a `#` comment that is outside any string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_escape = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_escape => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    line
}

/// Parses a TOML value of the subset: `"str"`, `true`/`false`, `["a","b"]`.
#[derive(Debug, PartialEq)]
enum Value {
    Str(String),
    Bool(bool),
    Array(Vec<String>),
    Other,
}

fn parse_value(v: &str) -> Value {
    let v = v.trim();
    if v == "true" {
        return Value::Bool(true);
    }
    if v == "false" {
        return Value::Bool(false);
    }
    if let Some(inner) = v.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        return Value::Str(inner.to_string());
    }
    if let Some(inner) = v.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let items = inner
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .filter_map(|s| s.strip_prefix('"').and_then(|r| r.strip_suffix('"')))
            .map(str::to_string)
            .collect();
        return Value::Array(items);
    }
    Value::Other
}

/// Parses the manifest subset. Never fails: unknown constructs are skipped
/// (the compiler validates manifests; the linter only reads them).
pub fn parse_manifest(text: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            section = format!("[[{h}]]");
            if h.trim() == "bench" {
                m.benches.push(BenchEntry {
                    line: idx as u32 + 1,
                    ..BenchEntry::default()
                });
            }
            continue;
        }
        if let Some(h) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = h.trim().to_string();
            if section == "workspace" {
                m.is_workspace = true;
            }
            continue;
        }
        let Some((key, val)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        // A dependency key may be dotted (`metis-llm.workspace = true`);
        // the crate name is the first segment either way.
        if matches!(
            section.as_str(),
            "dependencies" | "dev-dependencies" | "build-dependencies"
        ) {
            let name = key.split('.').next().unwrap_or(key).trim_matches('"');
            if !name.is_empty() && (key.contains('.') || !key.contains(' ')) {
                m.deps.push(Dep {
                    name: name.to_string(),
                    line: idx as u32 + 1,
                });
            }
            continue;
        }
        let val = parse_value(val);
        match (section.as_str(), key) {
            ("package", "name") => {
                if let Value::Str(s) = val {
                    m.package_name = Some(s);
                }
            }
            ("workspace", "members") => {
                if let Value::Array(a) = val {
                    m.members = a;
                }
            }
            ("package.metadata.metis-lint", _) => match (key, val) {
                ("skip", Value::Bool(b)) => m.lint.skip = b,
                ("layer", Value::Str(s)) => m.lint.layer = Some(s),
                ("roles", Value::Array(a)) => m.lint.roles = a,
                ("wallclock-files", Value::Array(a)) => m.lint.wallclock_files = a,
                ("worker-files", Value::Array(a)) => m.lint.worker_files = a,
                ("report-files", Value::Array(a)) => m.lint.report_files = a,
                ("skip-files", Value::Array(a)) => m.lint.skip_files = a,
                _ => {}
            },
            ("[[bench]]", _) => {
                if let Some(b) = m.benches.last_mut() {
                    match (key, val) {
                        ("name", Value::Str(s)) => b.name = Some(s),
                        ("harness", Value::Bool(h)) => b.harness = Some(h),
                        ("path", Value::Str(s)) => b.path = Some(s),
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    m
}

/// One workspace member ready to lint.
#[derive(Debug)]
pub struct CrateInfo {
    /// Directory, absolute.
    pub dir: PathBuf,
    /// Directory relative to the workspace root ("" for the root package).
    pub rel: String,
    pub manifest: Manifest,
}

/// Finds the enclosing workspace root (a `Cargo.toml` with `[workspace]`)
/// starting from `start` and walking up.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if parse_manifest(&text).is_workspace {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Enumerates workspace members (expanding trailing-`/*` globs) plus the
/// root package itself when the root manifest has `[package]`.
pub fn members(root: &Path) -> Result<Vec<CrateInfo>, String> {
    let root_manifest_path = root.join("Cargo.toml");
    let text = std::fs::read_to_string(&root_manifest_path)
        .map_err(|e| format!("read {}: {e}", root_manifest_path.display()))?;
    let root_manifest = parse_manifest(&text);
    if !root_manifest.is_workspace {
        return Err(format!(
            "{} has no [workspace] section",
            root_manifest_path.display()
        ));
    }
    // BTreeMap keyed on the relative dir: deterministic lint order — the
    // linter holds itself to its own iteration-order rule.
    let mut dirs: BTreeMap<String, PathBuf> = BTreeMap::new();
    for pat in &root_manifest.members {
        if let Some(prefix) = pat.strip_suffix("/*") {
            let base = root.join(prefix);
            let entries =
                std::fs::read_dir(&base).map_err(|e| format!("read_dir {prefix}: {e}"))?;
            for entry in entries {
                let entry = entry.map_err(|e| format!("read_dir {prefix}: {e}"))?;
                let dir = entry.path();
                if dir.join("Cargo.toml").is_file() {
                    let name = entry.file_name().to_string_lossy().into_owned();
                    dirs.insert(format!("{prefix}/{name}"), dir);
                }
            }
        } else if root.join(pat).join("Cargo.toml").is_file() {
            dirs.insert(pat.clone(), root.join(pat));
        }
    }
    let mut out = Vec::new();
    if root_manifest.package_name.is_some() {
        out.push(CrateInfo {
            dir: root.to_path_buf(),
            rel: String::new(),
            manifest: root_manifest,
        });
    }
    for (rel, dir) in dirs {
        let mtext = std::fs::read_to_string(dir.join("Cargo.toml"))
            .map_err(|e| format!("read {rel}/Cargo.toml: {e}"))?;
        out.push(CrateInfo {
            dir,
            rel,
            manifest: parse_manifest(&mtext),
        });
    }
    Ok(out)
}

/// Collects the crate's Rust sources: `src/`, `tests/`, `benches/`,
/// `examples/` (recursively) and `build.rs`. Paths come back crate-relative
/// with `/` separators, sorted; `skip-files` prefixes are excluded.
fn rust_files(dir: &Path, meta: &LintMeta) -> Vec<String> {
    fn walk(base: &Path, rel: &str, out: &mut Vec<String>) {
        let Ok(entries) = std::fs::read_dir(base.join(rel)) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let child = if rel.is_empty() {
                name.clone()
            } else {
                format!("{rel}/{name}")
            };
            let path = entry.path();
            if path.is_dir() {
                walk(base, &child, out);
            } else if name.ends_with(".rs") {
                out.push(child);
            }
        }
    }
    let mut out = Vec::new();
    for top in ["src", "tests", "benches", "examples"] {
        walk(dir, top, &mut out);
    }
    if dir.join("build.rs").is_file() {
        out.push("build.rs".to_string());
    }
    out.retain(|f| !meta.skip_files.iter().any(|p| f.starts_with(p.as_str())));
    out.sort();
    out
}

/// The role the manifest metadata assigns to one crate-relative file.
fn role_of(meta: &LintMeta, file: &str) -> FileRole {
    let io_role = meta.roles.iter().any(|r| r == "io");
    FileRole {
        wallclock_ok: meta.wallclock_files.iter().any(|f| f == file),
        worker: meta.worker_files.iter().any(|f| f == file),
        report: meta.report_files.iter().any(|f| f == file)
            || (meta.roles.iter().any(|r| r == "report") && file.starts_with("src/")),
        io_confined: !io_role && file.starts_with("src/"),
    }
}

/// The manifest-level rule: with `autobenches = false`, a `benches/*.rs`
/// file that has no `[[bench]]` entry silently never builds again, and an
/// entry without `harness = false` runs under the libtest harness that
/// swallows the target's `fn main`. Both directions are checked, replacing
/// the CI shell loop that grepped the manifest.
pub fn check_bench_registration(krate: &CrateInfo) -> Vec<Violation> {
    let mut out = Vec::new();
    let manifest_path = join_rel(&krate.rel, "Cargo.toml");
    let bench_files: Vec<String> = rust_files(&krate.dir, &krate.manifest.lint)
        .into_iter()
        .filter(|f| f.starts_with("benches/") && !f[8..].contains('/'))
        .collect();
    for file in &bench_files {
        let stem = file
            .trim_start_matches("benches/")
            .trim_end_matches(".rs")
            .to_string();
        let entry =
            krate.manifest.benches.iter().find(|b| {
                b.name.as_deref() == Some(&stem) || b.path.as_deref() == Some(file.as_str())
            });
        match entry {
            None => out.push(Violation {
                rule: "bench-registration",
                path: join_rel(&krate.rel, file),
                line: 1,
                msg: format!(
                    "bench file has no [[bench]] entry named \"{stem}\" in {manifest_path}; \
                     with autobenches = false it will silently never build"
                ),
            }),
            Some(b) if b.harness != Some(false) => out.push(Violation {
                rule: "bench-registration",
                path: manifest_path.clone(),
                line: b.line,
                msg: format!("[[bench]] \"{stem}\" must set `harness = false`"),
            }),
            Some(_) => {}
        }
    }
    for b in &krate.manifest.benches {
        let Some(name) = &b.name else {
            out.push(Violation {
                rule: "bench-registration",
                path: manifest_path.clone(),
                line: b.line,
                msg: "[[bench]] entry has no name".to_string(),
            });
            continue;
        };
        let file = b
            .path
            .clone()
            .unwrap_or_else(|| format!("benches/{name}.rs"));
        if !krate.dir.join(&file).is_file() {
            out.push(Violation {
                rule: "bench-registration",
                path: manifest_path.clone(),
                line: b.line,
                msg: format!("[[bench]] \"{name}\" points at missing file {file}"),
            });
        }
    }
    out
}

fn join_rel(crate_rel: &str, file: &str) -> String {
    if crate_rel.is_empty() {
        file.to_string()
    } else {
        format!("{crate_rel}/{file}")
    }
}

/// Everything one workspace lint run produced: surviving violations, the
/// full suppression audit, and the coverage counts the report summarizes.
#[derive(Debug, Default)]
pub struct WorkspaceOutcome {
    pub violations: Vec<Violation>,
    pub suppressions: Vec<Suppression>,
    /// Rust files linted (after `skip` / `skip-files` exclusion).
    pub files: usize,
    /// Member crates linted (after `skip` exclusion).
    pub crates: usize,
}

/// Lints every member crate of the workspace at `root`: manifest-level
/// rules (crate layering, bench registration), then every Rust file
/// through lex → item tree → file rules + import layering → pragmas.
pub fn lint_workspace(root: &Path) -> Result<WorkspaceOutcome, String> {
    let all = members(root)?;
    let layers = graph::layer_map(&all);
    let mut out = WorkspaceOutcome {
        violations: graph::check_crate_layering(&all),
        ..WorkspaceOutcome::default()
    };
    for krate in &all {
        if krate.manifest.lint.skip {
            continue;
        }
        out.crates += 1;
        out.violations.extend(check_bench_registration(krate));
        let crate_name = krate.manifest.package_name.clone().unwrap_or_default();
        for file in rust_files(&krate.dir, &krate.manifest.lint) {
            let abs = krate.dir.join(&file);
            let source = std::fs::read_to_string(&abs)
                .map_err(|e| format!("read {}: {e}", abs.display()))?;
            let role = role_of(&krate.manifest.lint, &file);
            let path = join_rel(&krate.rel, &file);
            let lexed = lex(&source);
            let items = syntax::parse(&lexed);
            let (pragmas, bad) = parse_pragmas(&lexed, &path);
            let mut raw = file_rules(&path, &lexed, &items, role);
            raw.extend(graph::check_import_layering(
                &crate_name,
                &path,
                &syntax::collect_uses(&items),
                &syntax::collect_mod_names(&items),
                &layers,
            ));
            let (kept, suppressions) = apply_pragmas(raw, &pragmas, &path);
            out.violations.extend(bad);
            out.violations.extend(kept);
            out.suppressions.extend(suppressions);
            out.files += 1;
        }
    }
    out.violations
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out.suppressions
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_subset_parses() {
        let m = parse_manifest(
            r#"
[package]
name = "demo" # trailing comment
[package.metadata.metis-lint]
layer = "runtime"
roles = ["report"]
wallclock-files = ["src/clock.rs", "src/other.rs"]
skip-files = ["tests/fixtures/"]
skip = false
[[bench]]
name = "fig"
harness = false
[[bench]]
name = "micro"
"#,
        );
        assert_eq!(m.package_name.as_deref(), Some("demo"));
        assert_eq!(m.lint.layer.as_deref(), Some("runtime"));
        assert_eq!(m.lint.roles, vec!["report"]);
        assert_eq!(m.lint.wallclock_files, vec!["src/clock.rs", "src/other.rs"]);
        assert_eq!(m.lint.skip_files, vec!["tests/fixtures/"]);
        assert!(!m.lint.skip);
        assert_eq!(m.benches.len(), 2);
        assert_eq!(m.benches[0].name.as_deref(), Some("fig"));
        assert_eq!(m.benches[0].harness, Some(false));
        assert_eq!(m.benches[1].harness, None);
    }

    #[test]
    fn dependency_edges_capture_name_and_line() {
        let m = parse_manifest(
            "[package]\nname = \"demo\"\n\n[dependencies]\nmetis-llm.workspace = true\n\
             metis-text = { path = \"../metis-text\" }\n\n[dev-dependencies]\n\
             proptest.workspace = true\n",
        );
        let edges: Vec<(&str, u32)> = m.deps.iter().map(|d| (d.name.as_str(), d.line)).collect();
        assert_eq!(
            edges,
            vec![("metis-llm", 5), ("metis-text", 6), ("proptest", 9)]
        );
    }

    #[test]
    fn comment_stripping_respects_strings() {
        assert_eq!(strip_comment(r#"name = "a#b" # real"#), r#"name = "a#b" "#);
    }

    #[test]
    fn roles_scope_report_to_src() {
        let meta = LintMeta {
            roles: vec!["report".into()],
            ..LintMeta::default()
        };
        assert!(role_of(&meta, "src/lib.rs").report);
        assert!(!role_of(&meta, "tests/t.rs").report);
        let granular = LintMeta {
            report_files: vec!["src/runner.rs".into()],
            ..LintMeta::default()
        };
        assert!(role_of(&granular, "src/runner.rs").report);
        assert!(!role_of(&granular, "src/lib.rs").report);
    }

    #[test]
    fn io_confinement_applies_to_src_of_non_io_crates_only() {
        let sim = LintMeta::default();
        assert!(role_of(&sim, "src/lib.rs").io_confined);
        assert!(!role_of(&sim, "tests/t.rs").io_confined);
        assert!(!role_of(&sim, "benches/b.rs").io_confined);
        let io = LintMeta {
            roles: vec!["io".into()],
            ..LintMeta::default()
        };
        assert!(!role_of(&io, "src/main.rs").io_confined);
    }
}

//! Workspace discovery: member enumeration, per-crate role metadata, the
//! file walk, and the manifest-level `bench-registration` rule.
//!
//! Roles are read from each crate's `Cargo.toml`:
//!
//! ```toml
//! [package.metadata.metis-lint]
//! # Whole-crate roles. "report": src/ produces committed reports, so
//! # nondeterministic-iteration is denied there.
//! roles = ["report"]
//! # Crate-relative files where wall-clock reads ARE the implementation.
//! wallclock-files = ["src/clock.rs"]
//! # Crate-relative files holding realtime worker loops (no-panic rule).
//! worker-files = ["src/realtime.rs"]
//! # File-granular report role for crates where only one module reports.
//! report-files = ["src/runner.rs"]
//! # Vendored shims: not ours to lint.
//! skip = true
//! ```
//!
//! The `Cargo.toml` parser handles exactly the subset these manifests use:
//! sections, string/bool values, and single-line string arrays.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::rules::{lint_source, FileRole, Violation};

/// Per-crate lint metadata from `[package.metadata.metis-lint]`.
#[derive(Clone, Debug, Default)]
pub struct LintMeta {
    pub skip: bool,
    pub roles: Vec<String>,
    pub wallclock_files: Vec<String>,
    pub worker_files: Vec<String>,
    pub report_files: Vec<String>,
}

/// One `[[bench]]` section: its manifest line, name, harness, path.
#[derive(Clone, Debug, Default)]
pub struct BenchEntry {
    pub line: u32,
    pub name: Option<String>,
    pub harness: Option<bool>,
    pub path: Option<String>,
}

/// The subset of a `Cargo.toml` the linter cares about.
#[derive(Clone, Debug, Default)]
pub struct Manifest {
    pub package_name: Option<String>,
    pub is_workspace: bool,
    pub members: Vec<String>,
    pub lint: LintMeta,
    pub benches: Vec<BenchEntry>,
}

/// Strips a `#` comment that is outside any string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_escape = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_escape => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    line
}

/// Parses a TOML value of the subset: `"str"`, `true`/`false`, `["a","b"]`.
#[derive(Debug, PartialEq)]
enum Value {
    Str(String),
    Bool(bool),
    Array(Vec<String>),
    Other,
}

fn parse_value(v: &str) -> Value {
    let v = v.trim();
    if v == "true" {
        return Value::Bool(true);
    }
    if v == "false" {
        return Value::Bool(false);
    }
    if let Some(inner) = v.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        return Value::Str(inner.to_string());
    }
    if let Some(inner) = v.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let items = inner
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .filter_map(|s| s.strip_prefix('"').and_then(|r| r.strip_suffix('"')))
            .map(str::to_string)
            .collect();
        return Value::Array(items);
    }
    Value::Other
}

/// Parses the manifest subset. Never fails: unknown constructs are skipped
/// (the compiler validates manifests; the linter only reads them).
pub fn parse_manifest(text: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            section = format!("[[{h}]]");
            if h.trim() == "bench" {
                m.benches.push(BenchEntry {
                    line: idx as u32 + 1,
                    ..BenchEntry::default()
                });
            }
            continue;
        }
        if let Some(h) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = h.trim().to_string();
            if section == "workspace" {
                m.is_workspace = true;
            }
            continue;
        }
        let Some((key, val)) = line.split_once('=') else {
            continue;
        };
        let (key, val) = (key.trim(), parse_value(val));
        match (section.as_str(), key) {
            ("package", "name") => {
                if let Value::Str(s) = val {
                    m.package_name = Some(s);
                }
            }
            ("workspace", "members") => {
                if let Value::Array(a) = val {
                    m.members = a;
                }
            }
            ("package.metadata.metis-lint", _) => match (key, val) {
                ("skip", Value::Bool(b)) => m.lint.skip = b,
                ("roles", Value::Array(a)) => m.lint.roles = a,
                ("wallclock-files", Value::Array(a)) => m.lint.wallclock_files = a,
                ("worker-files", Value::Array(a)) => m.lint.worker_files = a,
                ("report-files", Value::Array(a)) => m.lint.report_files = a,
                _ => {}
            },
            ("[[bench]]", _) => {
                if let Some(b) = m.benches.last_mut() {
                    match (key, val) {
                        ("name", Value::Str(s)) => b.name = Some(s),
                        ("harness", Value::Bool(h)) => b.harness = Some(h),
                        ("path", Value::Str(s)) => b.path = Some(s),
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    m
}

/// One workspace member ready to lint.
#[derive(Debug)]
pub struct CrateInfo {
    /// Directory, absolute.
    pub dir: PathBuf,
    /// Directory relative to the workspace root ("" for the root package).
    pub rel: String,
    pub manifest: Manifest,
}

/// Finds the enclosing workspace root (a `Cargo.toml` with `[workspace]`)
/// starting from `start` and walking up.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if parse_manifest(&text).is_workspace {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Enumerates workspace members (expanding trailing-`/*` globs) plus the
/// root package itself when the root manifest has `[package]`.
pub fn members(root: &Path) -> Result<Vec<CrateInfo>, String> {
    let root_manifest_path = root.join("Cargo.toml");
    let text = std::fs::read_to_string(&root_manifest_path)
        .map_err(|e| format!("read {}: {e}", root_manifest_path.display()))?;
    let root_manifest = parse_manifest(&text);
    if !root_manifest.is_workspace {
        return Err(format!(
            "{} has no [workspace] section",
            root_manifest_path.display()
        ));
    }
    // BTreeMap keyed on the relative dir: deterministic lint order — the
    // linter holds itself to its own iteration-order rule.
    let mut dirs: BTreeMap<String, PathBuf> = BTreeMap::new();
    for pat in &root_manifest.members {
        if let Some(prefix) = pat.strip_suffix("/*") {
            let base = root.join(prefix);
            let entries =
                std::fs::read_dir(&base).map_err(|e| format!("read_dir {prefix}: {e}"))?;
            for entry in entries {
                let entry = entry.map_err(|e| format!("read_dir {prefix}: {e}"))?;
                let dir = entry.path();
                if dir.join("Cargo.toml").is_file() {
                    let name = entry.file_name().to_string_lossy().into_owned();
                    dirs.insert(format!("{prefix}/{name}"), dir);
                }
            }
        } else if root.join(pat).join("Cargo.toml").is_file() {
            dirs.insert(pat.clone(), root.join(pat));
        }
    }
    let mut out = Vec::new();
    if root_manifest.package_name.is_some() {
        out.push(CrateInfo {
            dir: root.to_path_buf(),
            rel: String::new(),
            manifest: root_manifest,
        });
    }
    for (rel, dir) in dirs {
        let mtext = std::fs::read_to_string(dir.join("Cargo.toml"))
            .map_err(|e| format!("read {rel}/Cargo.toml: {e}"))?;
        out.push(CrateInfo {
            dir,
            rel,
            manifest: parse_manifest(&mtext),
        });
    }
    Ok(out)
}

/// Collects the crate's Rust sources: `src/`, `tests/`, `benches/`,
/// `examples/` (recursively) and `build.rs`. Paths come back crate-relative
/// with `/` separators, sorted.
fn rust_files(dir: &Path) -> Vec<String> {
    fn walk(base: &Path, rel: &str, out: &mut Vec<String>) {
        let Ok(entries) = std::fs::read_dir(base.join(rel)) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let child = if rel.is_empty() {
                name.clone()
            } else {
                format!("{rel}/{name}")
            };
            let path = entry.path();
            if path.is_dir() {
                walk(base, &child, out);
            } else if name.ends_with(".rs") {
                out.push(child);
            }
        }
    }
    let mut out = Vec::new();
    for top in ["src", "tests", "benches", "examples"] {
        walk(dir, top, &mut out);
    }
    if dir.join("build.rs").is_file() {
        out.push("build.rs".to_string());
    }
    out.sort();
    out
}

/// The role the manifest metadata assigns to one crate-relative file.
fn role_of(meta: &LintMeta, file: &str) -> FileRole {
    FileRole {
        wallclock_ok: meta.wallclock_files.iter().any(|f| f == file),
        worker: meta.worker_files.iter().any(|f| f == file),
        report: meta.report_files.iter().any(|f| f == file)
            || (meta.roles.iter().any(|r| r == "report") && file.starts_with("src/")),
    }
}

/// The manifest-level rule: with `autobenches = false`, a `benches/*.rs`
/// file that has no `[[bench]]` entry silently never builds again, and an
/// entry without `harness = false` runs under the libtest harness that
/// swallows the target's `fn main`. Both directions are checked, replacing
/// the CI shell loop that grepped the manifest.
pub fn check_bench_registration(krate: &CrateInfo) -> Vec<Violation> {
    let mut out = Vec::new();
    let manifest_path = join_rel(&krate.rel, "Cargo.toml");
    let bench_files: Vec<String> = rust_files(&krate.dir)
        .into_iter()
        .filter(|f| f.starts_with("benches/") && !f[8..].contains('/'))
        .collect();
    for file in &bench_files {
        let stem = file
            .trim_start_matches("benches/")
            .trim_end_matches(".rs")
            .to_string();
        let entry =
            krate.manifest.benches.iter().find(|b| {
                b.name.as_deref() == Some(&stem) || b.path.as_deref() == Some(file.as_str())
            });
        match entry {
            None => out.push(Violation {
                rule: "bench-registration",
                path: join_rel(&krate.rel, file),
                line: 1,
                msg: format!(
                    "bench file has no [[bench]] entry named \"{stem}\" in {manifest_path}; \
                     with autobenches = false it will silently never build"
                ),
            }),
            Some(b) if b.harness != Some(false) => out.push(Violation {
                rule: "bench-registration",
                path: manifest_path.clone(),
                line: b.line,
                msg: format!("[[bench]] \"{stem}\" must set `harness = false`"),
            }),
            Some(_) => {}
        }
    }
    for b in &krate.manifest.benches {
        let Some(name) = &b.name else {
            out.push(Violation {
                rule: "bench-registration",
                path: manifest_path.clone(),
                line: b.line,
                msg: "[[bench]] entry has no name".to_string(),
            });
            continue;
        };
        let file = b
            .path
            .clone()
            .unwrap_or_else(|| format!("benches/{name}.rs"));
        if !krate.dir.join(&file).is_file() {
            out.push(Violation {
                rule: "bench-registration",
                path: manifest_path.clone(),
                line: b.line,
                msg: format!("[[bench]] \"{name}\" points at missing file {file}"),
            });
        }
    }
    out
}

fn join_rel(crate_rel: &str, file: &str) -> String {
    if crate_rel.is_empty() {
        file.to_string()
    } else {
        format!("{crate_rel}/{file}")
    }
}

/// Lints every member crate of the workspace at `root`.
pub fn lint_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    let mut out = Vec::new();
    for krate in members(root)? {
        if krate.manifest.lint.skip {
            continue;
        }
        out.extend(check_bench_registration(&krate));
        for file in rust_files(&krate.dir) {
            let abs = krate.dir.join(&file);
            let source = std::fs::read_to_string(&abs)
                .map_err(|e| format!("read {}: {e}", abs.display()))?;
            let role = role_of(&krate.manifest.lint, &file);
            out.extend(lint_source(&join_rel(&krate.rel, &file), &source, role));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_subset_parses() {
        let m = parse_manifest(
            r#"
[package]
name = "demo" # trailing comment
[package.metadata.metis-lint]
roles = ["report"]
wallclock-files = ["src/clock.rs", "src/other.rs"]
skip = false
[[bench]]
name = "fig"
harness = false
[[bench]]
name = "micro"
"#,
        );
        assert_eq!(m.package_name.as_deref(), Some("demo"));
        assert_eq!(m.lint.roles, vec!["report"]);
        assert_eq!(m.lint.wallclock_files, vec!["src/clock.rs", "src/other.rs"]);
        assert!(!m.lint.skip);
        assert_eq!(m.benches.len(), 2);
        assert_eq!(m.benches[0].name.as_deref(), Some("fig"));
        assert_eq!(m.benches[0].harness, Some(false));
        assert_eq!(m.benches[1].harness, None);
    }

    #[test]
    fn comment_stripping_respects_strings() {
        assert_eq!(strip_comment(r#"name = "a#b" # real"#), r#"name = "a#b" "#);
    }

    #[test]
    fn roles_scope_report_to_src() {
        let meta = LintMeta {
            roles: vec!["report".into()],
            ..LintMeta::default()
        };
        assert!(role_of(&meta, "src/lib.rs").report);
        assert!(!role_of(&meta, "tests/t.rs").report);
        let granular = LintMeta {
            report_files: vec!["src/runner.rs".into()],
            ..LintMeta::default()
        };
        assert!(role_of(&granular, "src/runner.rs").report);
        assert!(!role_of(&granular, "src/lib.rs").report);
    }
}

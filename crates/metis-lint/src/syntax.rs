//! A lightweight item-tree parser over the lexed token stream.
//!
//! The lexer ([`crate::lexer`]) guarantees tokens are real code (nothing
//! from strings or comments); this module recovers just enough *structure*
//! from them for the import-resolved and scope-aware rules: which paths a
//! file `use`s (with `{…}` groups expanded and `as` renames tracked), where
//! items begin and end, and which tokens form the body of a `fn`, `mod`,
//! `impl`, or `trait`.
//!
//! It is not a Rust parser — no expressions, no types, no precedence. The
//! design contract, pinned by a property test, is *exact span coverage*:
//!
//! * sibling item spans are ascending and never overlap,
//! * the top-level items cover every token of the file exactly,
//! * an item with a parsed `body` has children that cover the tokens
//!   strictly inside its braces exactly.
//!
//! That invariant is what lets rules attribute every token to exactly one
//! item (and therefore one scope) without ever re-scanning the file.
//! Statements the grammar does not model (expressions, `let`, control
//! flow) become [`ItemKind::Other`] leaves that run to the next `;` at
//! brace depth zero — deterministic, coverage-preserving, and precise
//! enough for rules that only need enclosing-scope boundaries.

use crate::lexer::Lexed;

/// A token-index range `[start, end)` into [`Lexed::toks`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    /// Number of tokens covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span covers no tokens.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// One expanded `use` leaf: `use std::time::{Duration, Instant as I};`
/// yields `std::time::Duration` (name `Duration`) and `std::time::Instant`
/// (name `I`). Globs yield a trailing `*` segment with name `*`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseLeaf {
    /// 1-based line of the leaf's last segment.
    pub line: u32,
    /// Full `::`-joined path (`std::time::Instant`).
    pub path: String,
    /// The name the import binds (`as` rename, else the last segment).
    pub name: String,
}

/// What kind of item a tree node is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// A `use` declaration with its expanded leaves.
    Use(Vec<UseLeaf>),
    /// `mod name;` or `mod name { … }`.
    Mod { name: String },
    /// `fn name(…) { … }` (or a bodyless trait-method signature).
    Fn { name: String },
    /// `impl … { … }`.
    Impl,
    /// `trait Name { … }` or `extern "…" { … }`.
    Trait,
    /// `struct` / `enum` / `union` definitions.
    Struct { name: String },
    /// A macro invocation or `macro_rules!` definition.
    Macro { name: String },
    /// Anything else: statements, expressions, `let`, stray tokens. Runs
    /// to the next `;` at depth zero (consuming balanced groups).
    Other,
}

/// One node of the item tree.
#[derive(Clone, Debug)]
pub struct Item {
    pub kind: ItemKind,
    /// Every token of the item, attributes included.
    pub span: Span,
    /// 1-based line of the item's first token.
    pub line: u32,
    /// Token indices of the `{` and matching `}` when the item's body was
    /// parsed into children (`fn`/`mod`/`impl`/`trait` bodies only).
    pub body: Option<(usize, usize)>,
    /// Items parsed from the body interior; empty when `body` is `None`.
    pub children: Vec<Item>,
}

/// Parses the whole token stream into a top-level item list.
pub fn parse(lexed: &Lexed) -> Vec<Item> {
    parse_region(lexed, 0, lexed.toks.len())
}

/// Collects every [`UseLeaf`] in the tree, recursively (function-local
/// `use` declarations count: an import confined to one `fn` still brings
/// the path into scope).
pub fn collect_uses(items: &[Item]) -> Vec<UseLeaf> {
    let mut out = Vec::new();
    fn walk(items: &[Item], out: &mut Vec<UseLeaf>) {
        for item in items {
            if let ItemKind::Use(leaves) = &item.kind {
                out.extend(leaves.iter().cloned());
            }
            walk(&item.children, out);
        }
    }
    walk(items, &mut out);
    out
}

/// Every module name declared anywhere in the tree (`mod name;` or
/// `mod name { … }`): a `use` path whose head names one of these is a
/// module path, not an external-crate edge.
pub fn collect_mod_names(items: &[Item]) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    fn walk(items: &[Item], out: &mut std::collections::BTreeSet<String>) {
        for item in items {
            if let ItemKind::Mod { name } = &item.kind {
                out.insert(name.clone());
            }
            walk(&item.children, out);
        }
    }
    walk(items, &mut out);
    out
}

/// Skips a balanced `open`…`close` group starting at `i` (which must hold
/// `open`); returns the index just past the matching `close`, clamped to
/// `end` for unterminated input.
fn skip_balanced(lexed: &Lexed, i: usize, open: char, close: char, end: usize) -> usize {
    debug_assert!(lexed.punct(i, open));
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        if lexed.punct(j, open) {
            depth += 1;
        } else if lexed.punct(j, close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    end
}

/// Scans from `i` to just past the next `;` at group depth zero, consuming
/// balanced `()`, `[]`, and `{}` groups whole; stops at `end`.
fn skip_to_semi(lexed: &Lexed, mut i: usize, end: usize) -> usize {
    while i < end {
        if lexed.punct(i, '(') {
            i = skip_balanced(lexed, i, '(', ')', end);
        } else if lexed.punct(i, '[') {
            i = skip_balanced(lexed, i, '[', ']', end);
        } else if lexed.punct(i, '{') {
            i = skip_balanced(lexed, i, '{', '}', end);
        } else if lexed.punct(i, ';') {
            return i + 1;
        } else {
            i += 1;
        }
    }
    end
}

/// Finds the opening `{` of an item body scanning from `i`: the first `{`
/// at `()`/`[]` depth zero. Returns `Err(j)` when a depth-zero `;` (a
/// bodyless item) or `end` is reached first, with `j` just past the `;`.
fn find_body_open(lexed: &Lexed, mut i: usize, end: usize) -> Result<usize, usize> {
    while i < end {
        if lexed.punct(i, '(') {
            i = skip_balanced(lexed, i, '(', ')', end);
        } else if lexed.punct(i, '[') {
            i = skip_balanced(lexed, i, '[', ']', end);
        } else if lexed.punct(i, '{') {
            return Ok(i);
        } else if lexed.punct(i, ';') {
            return Err(i + 1);
        } else {
            i += 1;
        }
    }
    Err(end)
}

/// Item-introducing keywords whose layout the parser models.
fn is_item_keyword(word: &str) -> bool {
    matches!(
        word,
        "use"
            | "mod"
            | "fn"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "union"
            | "macro_rules"
            | "extern"
    )
}

/// Parses the tokens of `[start, end)` into items covering it exactly.
fn parse_region(lexed: &Lexed, start: usize, end: usize) -> Vec<Item> {
    let mut items = Vec::new();
    let mut i = start;
    while i < end {
        let item_start = i;
        let line = lexed.toks[i].line;

        // Leading attributes: `#[…]` / `#![…]`, any number.
        while lexed.punct(i, '#') {
            let mut j = i + 1;
            if lexed.punct(j, '!') {
                j += 1;
            }
            if !lexed.punct(j, '[') {
                break;
            }
            i = skip_balanced(lexed, j, '[', ']', end);
        }

        // Qualifiers before the item keyword: `pub(crate) unsafe fn …`.
        loop {
            match lexed.ident(i) {
                "pub" => {
                    i += 1;
                    if lexed.punct(i, '(') {
                        i = skip_balanced(lexed, i, '(', ')', end);
                    }
                }
                // `const`/`async`/`unsafe`/`default` are qualifiers only
                // when an item keyword (or another qualifier) follows;
                // `const X: u32 = 1;` and `unsafe { … }` are not.
                "const" | "async" | "unsafe" | "default"
                    if is_item_keyword(lexed.ident(i + 1))
                        || matches!(
                            lexed.ident(i + 1),
                            "pub" | "const" | "async" | "unsafe" | "default"
                        ) =>
                {
                    i += 1;
                }
                _ => break,
            }
        }

        let (kind, next) = parse_item_at(lexed, i, end);
        // Guarantee progress even on degenerate input (e.g. a trailing
        // attribute with nothing after it).
        let next = next.max(item_start + 1).min(end);
        let (body, children) = match &kind {
            ItemKind::Mod { .. } | ItemKind::Fn { .. } | ItemKind::Impl | ItemKind::Trait => {
                body_of(lexed, item_start, next)
            }
            _ => (None, Vec::new()),
        };
        items.push(Item {
            kind,
            span: Span {
                start: item_start,
                end: next,
            },
            line,
            body,
            children,
        });
        i = next;
    }
    items
}

/// Locates the trailing `{…}` body inside `[start, end)` (the item parser
/// arranged for body-bearing items to end exactly at their closing brace)
/// and parses its interior.
fn body_of(lexed: &Lexed, start: usize, end: usize) -> (Option<(usize, usize)>, Vec<Item>) {
    if end <= start || !lexed.punct(end - 1, '}') {
        return (None, Vec::new()); // `mod name;`, trait-method signature.
    }
    // The matching `{` is the one that balances the final `}`.
    let mut depth = 0i32;
    let mut j = end;
    while j > start {
        j -= 1;
        if lexed.punct(j, '}') {
            depth += 1;
        } else if lexed.punct(j, '{') {
            depth -= 1;
            if depth == 0 {
                let children = parse_region(lexed, j + 1, end - 1);
                return (Some((j, end - 1)), children);
            }
        }
    }
    (None, Vec::new())
}

/// Parses one item starting at `i` (attributes and qualifiers already
/// consumed); returns its kind and the index just past its last token.
fn parse_item_at(lexed: &Lexed, i: usize, end: usize) -> (ItemKind, usize) {
    match lexed.ident(i) {
        "use" => {
            let semi = skip_to_semi(lexed, i + 1, end);
            let leaves = parse_use_tree(lexed, i + 1, semi);
            (ItemKind::Use(leaves), semi)
        }
        "mod" => {
            let name = lexed.ident(i + 1).to_string();
            if lexed.punct(i + 2, ';') {
                (ItemKind::Mod { name }, i + 3)
            } else {
                match find_body_open(lexed, i + 1, end) {
                    Ok(open) => (
                        ItemKind::Mod { name },
                        skip_balanced(lexed, open, '{', '}', end),
                    ),
                    Err(next) => (ItemKind::Mod { name }, next),
                }
            }
        }
        "fn" => {
            let name = lexed.ident(i + 1).to_string();
            match find_body_open(lexed, i + 2, end) {
                Ok(open) => (
                    ItemKind::Fn { name },
                    skip_balanced(lexed, open, '{', '}', end),
                ),
                // Trait-method signature: ends at the `;`.
                Err(next) => (ItemKind::Fn { name }, next),
            }
        }
        "impl" => match find_body_open(lexed, i + 1, end) {
            Ok(open) => (ItemKind::Impl, skip_balanced(lexed, open, '{', '}', end)),
            Err(next) => (ItemKind::Impl, next),
        },
        "trait" | "extern" => match find_body_open(lexed, i + 1, end) {
            Ok(open) => (ItemKind::Trait, skip_balanced(lexed, open, '{', '}', end)),
            Err(next) => (ItemKind::Trait, next),
        },
        kw @ ("struct" | "enum" | "union") => {
            let name = lexed.ident(i + 1).to_string();
            // `struct X;` / `struct X(T);` end at `;`; braced definitions
            // end at their `}` (no trailing semicolon). `union` is only a
            // keyword when a name follows.
            if kw == "union" && lexed.ident(i + 1).is_empty() {
                (ItemKind::Other, skip_to_semi(lexed, i, end))
            } else {
                match find_body_open(lexed, i + 1, end) {
                    Ok(open) => (
                        ItemKind::Struct { name },
                        skip_balanced(lexed, open, '{', '}', end),
                    ),
                    Err(next) => (ItemKind::Struct { name }, next),
                }
            }
        }
        "macro_rules" if lexed.punct(i + 1, '!') => {
            let name = lexed.ident(i + 2).to_string();
            match find_body_open(lexed, i + 3, end) {
                Ok(open) => (
                    ItemKind::Macro { name },
                    skip_balanced(lexed, open, '{', '}', end),
                ),
                Err(next) => (ItemKind::Macro { name }, next),
            }
        }
        name if !name.is_empty() && macro_bang_at(lexed, i) => {
            // `path::to::mac! { … }` ends at its brace; `mac!(…)` and
            // `mac![…]` run on to the statement's `;`.
            let mut j = i;
            while !lexed.punct(j, '!') {
                j += 1;
            }
            if lexed.punct(j + 1, '{') {
                (
                    ItemKind::Macro {
                        name: name.to_string(),
                    },
                    skip_balanced(lexed, j + 1, '{', '}', end),
                )
            } else {
                (
                    ItemKind::Macro {
                        name: name.to_string(),
                    },
                    skip_to_semi(lexed, j + 1, end),
                )
            }
        }
        _ => (ItemKind::Other, skip_to_semi(lexed, i, end)),
    }
}

/// Whether tokens at `i` form a macro invocation head: a `::`-separated
/// identifier path followed directly by `!`.
fn macro_bang_at(lexed: &Lexed, mut i: usize) -> bool {
    if lexed.ident(i).is_empty() {
        return false;
    }
    i += 1;
    while lexed.path_sep(i) && !lexed.ident(i + 2).is_empty() {
        i += 3;
    }
    lexed.punct(i, '!')
}

/// Parses the use-tree tokens of `[i, end)` (after the `use` keyword, up
/// to and including the `;`) into expanded leaves.
fn parse_use_tree(lexed: &Lexed, i: usize, end: usize) -> Vec<UseLeaf> {
    let mut leaves = Vec::new();
    let mut prefix: Vec<String> = Vec::new();
    walk_use(lexed, i, end, &mut prefix, &mut leaves);
    leaves
}

/// Recursive descent over one use-tree alternative list. `prefix` holds
/// the segments accumulated so far; restored on exit so siblings in a
/// group see the same base.
fn walk_use(
    lexed: &Lexed,
    mut i: usize,
    end: usize,
    prefix: &mut Vec<String>,
    leaves: &mut Vec<UseLeaf>,
) -> usize {
    let base_len = prefix.len();
    let mut last_line = lexed.toks.get(i).map_or(1, |t| t.line);
    loop {
        if i >= end || lexed.punct(i, ';') || lexed.punct(i, ',') || lexed.punct(i, '}') {
            // End of this alternative: emit a leaf if any segments were
            // accumulated beyond the shared base.
            if prefix.len() > base_len {
                push_leaf(prefix, None, last_line, leaves);
            }
            prefix.truncate(base_len);
            return i;
        }
        if lexed.punct(i, '{') {
            // Group: each comma-separated alternative extends the prefix.
            i += 1;
            loop {
                i = walk_use(lexed, i, end, prefix, leaves);
                if lexed.punct(i, ',') {
                    i += 1;
                    continue;
                }
                break;
            }
            if lexed.punct(i, '}') {
                i += 1;
            }
            prefix.truncate(base_len);
            // A group always ends the alternative (`use a::{b, c};`).
            // Consume up to the separator for the caller.
            continue;
        }
        if lexed.punct(i, '*') {
            last_line = lexed.toks[i].line;
            prefix.push("*".to_string());
            i += 1;
            continue;
        }
        if lexed.ident(i) == "as" && !lexed.ident(i + 1).is_empty() {
            let rename = lexed.ident(i + 1).to_string();
            let line = lexed.toks[i + 1].line;
            if prefix.len() > base_len {
                push_leaf(prefix, Some(rename), line, leaves);
            }
            prefix.truncate(base_len);
            // Skip to this alternative's separator.
            i += 2;
            while i < end && !lexed.punct(i, ',') && !lexed.punct(i, ';') && !lexed.punct(i, '}') {
                i += 1;
            }
            continue;
        }
        if !lexed.ident(i).is_empty() {
            last_line = lexed.toks[i].line;
            prefix.push(lexed.ident(i).to_string());
            i += 1;
            continue;
        }
        // `::` separators and anything unexpected: skip.
        i += 1;
    }
}

fn push_leaf(prefix: &[String], rename: Option<String>, line: u32, leaves: &mut Vec<UseLeaf>) {
    let path = prefix.join("::");
    let name = rename.unwrap_or_else(|| prefix.last().cloned().unwrap_or_default());
    leaves.push(UseLeaf { line, path, name });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn uses_of(src: &str) -> Vec<(String, String)> {
        let lexed = lex(src);
        collect_uses(&parse(&lexed))
            .into_iter()
            .map(|u| (u.path, u.name))
            .collect()
    }

    #[test]
    fn use_groups_expand_with_renames_and_globs() {
        let got = uses_of("use std::time::{Duration, Instant as I};\nuse std::fs::*;\n");
        assert_eq!(
            got,
            vec![
                ("std::time::Duration".to_string(), "Duration".to_string()),
                ("std::time::Instant".to_string(), "I".to_string()),
                ("std::fs::*".to_string(), "*".to_string()),
            ]
        );
    }

    #[test]
    fn nested_use_groups_expand() {
        let got = uses_of("use a::{b::{c, d}, e};");
        let paths: Vec<&str> = got.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["a::b::c", "a::b::d", "a::e"]);
    }

    #[test]
    fn function_local_uses_are_collected() {
        let got = uses_of("fn f() { use std::process::Command; }\n");
        assert_eq!(
            got,
            vec![("std::process::Command".to_string(), "Command".to_string())]
        );
    }

    #[test]
    fn item_kinds_and_bodies() {
        let src = "use a::b;\npub fn f(x: u32) -> u32 { x + 1 }\nmod m { fn g() {} }\n\
                   impl Foo { fn h(&self) {} }\nstruct S { a: u32 }\nenum E { A, B }\n";
        let lexed = lex(src);
        let items = parse(&lexed);
        let kinds: Vec<&ItemKind> = items.iter().map(|i| &i.kind).collect();
        assert!(matches!(kinds[0], ItemKind::Use(_)));
        assert!(matches!(kinds[1], ItemKind::Fn { name } if name == "f"));
        assert!(matches!(kinds[2], ItemKind::Mod { name } if name == "m"));
        assert!(matches!(kinds[3], ItemKind::Impl));
        assert!(matches!(kinds[4], ItemKind::Struct { name } if name == "S"));
        assert!(matches!(kinds[5], ItemKind::Struct { name } if name == "E"));
        // The mod body contains one fn child; the impl body one fn child.
        assert!(matches!(&items[2].children[0].kind, ItemKind::Fn { name } if name == "g"));
        assert!(matches!(&items[3].children[0].kind, ItemKind::Fn { name } if name == "h"));
    }

    #[test]
    fn spans_cover_exactly_and_never_overlap() {
        let src = "use a::b;\n#[derive(Debug)]\nstruct S;\nfn f() { let x = 1; if x > 0 { } }\n\
                   macro_rules! m { () => {} }\nproptest! { fn p() {} }\nfn g() {}\n";
        let lexed = lex(src);
        let items = parse(&lexed);
        assert_cover(&items, 0, lexed.toks.len());
    }

    fn assert_cover(items: &[Item], start: usize, end: usize) {
        let mut at = start;
        for item in items {
            assert_eq!(item.span.start, at, "gap or overlap before {:?}", item.kind);
            assert!(
                item.span.end > item.span.start,
                "empty span {:?}",
                item.kind
            );
            if let Some((open, close)) = item.body {
                assert!(item.span.start <= open && close < item.span.end);
                assert_cover(&item.children, open + 1, close);
            } else {
                assert!(item.children.is_empty());
            }
            at = item.span.end;
        }
        assert_eq!(at, end, "items do not cover the region");
    }

    #[test]
    fn trait_method_signatures_parse_bodyless() {
        let src = "trait T { fn a(&self); fn b(&self) { } }";
        let lexed = lex(src);
        let items = parse(&lexed);
        assert!(matches!(items[0].kind, ItemKind::Trait));
        let kids = &items[0].children;
        assert!(matches!(&kids[0].kind, ItemKind::Fn { name } if name == "a"));
        assert!(kids[0].body.is_none());
        assert!(matches!(&kids[1].kind, ItemKind::Fn { name } if name == "b"));
        assert!(kids[1].body.is_some());
    }
}

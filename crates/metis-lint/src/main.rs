//! CLI entry point: `cargo run -p metis-lint -- --workspace [--root DIR]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use metis_lint::{find_workspace_root, lint_workspace};

const USAGE: &str = "usage: metis-lint --workspace [--root DIR]\n\n\
    Lints every member crate of the enclosing cargo workspace (or the one\n\
    rooted at DIR) against the repo's invariant rules. See README.md\n\
    \"Invariants\" for the rule list and the suppression pragma.";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !workspace {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("current_dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("no enclosing cargo workspace found from {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    match lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("metis-lint: workspace clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!(
                "metis-lint: {} violation{} — fix, or suppress with \
                 `// metis-lint: allow(<rule>) reason=\"…\"`",
                violations.len(),
                if violations.len() == 1 { "" } else { "s" }
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("metis-lint: {e}");
            ExitCode::from(2)
        }
    }
}

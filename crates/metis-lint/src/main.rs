//! CLI entry point: `cargo run -p metis-lint -- --workspace [--root DIR]
//! [--json PATH]`, or `--explain <rule-id>`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error. The
//! `--json` report is written on clean *and* violating outcomes (CI
//! uploads it either way); only a usage/I/O failure skips it.

use std::path::PathBuf;
use std::process::ExitCode;

use metis_lint::report::render_report;
use metis_lint::rules::RULE_NAMES;
use metis_lint::{explain, find_workspace_root, lint_workspace};

const USAGE: &str = "usage: metis-lint --workspace [--root DIR] [--json PATH]\n\
    \u{20}      metis-lint --explain <rule-id>\n\n\
    Lints every member crate of the enclosing cargo workspace (or the one\n\
    rooted at DIR) against the repo's invariant rules. See README.md\n\
    \"Invariants\" for the rule list and the suppression pragma.\n\n\
    --json PATH     also write a versioned machine-readable report\n\
    --explain RULE  print what a rule enforces, with examples, and exit";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json requires a file path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--explain" => {
                return match args.next() {
                    Some(rule) => match explain(&rule) {
                        Some(text) => {
                            println!("{text}");
                            ExitCode::SUCCESS
                        }
                        None => {
                            eprintln!(
                                "unknown rule `{rule}`; known rules:\n  {}\n  \
                                 (plus the meta-rules `pragma` and `unused-pragma`)",
                                RULE_NAMES.join("\n  ")
                            );
                            ExitCode::from(2)
                        }
                    },
                    None => {
                        eprintln!("--explain requires a rule id\n{USAGE}");
                        ExitCode::from(2)
                    }
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !workspace {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("current_dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("no enclosing cargo workspace found from {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let outcome = match lint_workspace(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("metis-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, render_report(&outcome)) {
            eprintln!("metis-lint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if outcome.violations.is_empty() {
        println!(
            "metis-lint: workspace clean ({} crates, {} files, {} suppressions) — {}",
            outcome.crates,
            outcome.files,
            outcome.suppressions.len(),
            root.display()
        );
        ExitCode::SUCCESS
    } else {
        for v in &outcome.violations {
            println!("{v}");
        }
        println!(
            "metis-lint: {} violation{} — fix, or suppress with \
             `// metis-lint: allow(<rule>) reason=\"…\"` (see --explain <rule>)",
            outcome.violations.len(),
            if outcome.violations.len() == 1 {
                ""
            } else {
                "s"
            }
        );
        ExitCode::FAILURE
    }
}

//! One injected-violation fixture per rule: each asserts the rule fires
//! with the right file and line, and that the matching pragma (with a
//! reason) is the only thing that silences it.

use metis_lint::{lint_source, FileRole, Violation};

fn only(violations: Vec<Violation>) -> Violation {
    assert_eq!(
        violations.len(),
        1,
        "expected exactly one violation, got: {violations:?}"
    );
    violations.into_iter().next().unwrap()
}

#[test]
fn wall_clock_fires_with_file_and_line() {
    // An inline-qualified call hits both the call-site rule and the
    // import-confinement rule, on the same line — defense in depth.
    let src = "fn pace() {\n    let t0 = std::time::Instant::now();\n}\n";
    let v = lint_source("crates/demo/src/lib.rs", src, FileRole::default());
    assert_eq!(v.len(), 2, "{v:?}");
    assert_eq!((v[0].rule, v[0].line), ("std-time-import", 2));
    assert_eq!((v[1].rule, v[1].line), ("wall-clock", 2));
    assert_eq!(v[1].path, "crates/demo/src/lib.rs");

    let sys = "fn stamp() { let t = SystemTime::now(); }";
    assert_eq!(
        only(lint_source("x.rs", sys, FileRole::default())).rule,
        "wall-clock"
    );
    let sleep = "fn nap() { std::thread::sleep(d); }";
    assert_eq!(
        only(lint_source("x.rs", sleep, FileRole::default())).rule,
        "wall-clock"
    );
}

#[test]
fn nan_ordering_fires_on_every_escape_hatch() {
    for tail in [
        "unwrap()",
        "expect(\"finite\")",
        "unwrap_or(Ordering::Equal)",
    ] {
        let src =
            format!("fn s(v: &mut [f32]) {{\n    v.sort_by(|a, b| a.partial_cmp(b).{tail});\n}}\n");
        let v = only(lint_source("score.rs", &src, FileRole::default()));
        assert_eq!(v.rule, "nan-ordering", "tail: {tail}");
        assert_eq!(v.line, 2);
    }
    // total_cmp is the sanctioned replacement — clean.
    let ok = "fn s(v: &mut [f32]) { v.sort_by(|a, b| a.total_cmp(b)); }";
    assert!(lint_source("score.rs", ok, FileRole::default()).is_empty());
}

#[test]
fn nondeterministic_iteration_fires_only_under_report_role() {
    let src =
        "use std::collections::HashMap;\nfn agg() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
    let report = FileRole {
        report: true,
        ..FileRole::default()
    };
    let v = lint_source("crates/metis-metrics/src/f1.rs", src, report);
    assert_eq!(v.len(), 3, "every HashMap mention: {v:?}");
    assert!(v.iter().all(|x| x.rule == "nondeterministic-iteration"));
    assert_eq!(v[0].line, 1);
    // The same source outside a report path is allowed.
    assert!(lint_source(
        "crates/metis-engine/src/kvcache.rs",
        src,
        FileRole::default()
    )
    .is_empty());
}

#[test]
fn unseeded_rng_fires_with_line() {
    let src = "fn noise() {\n    let mut rng = rand::thread_rng();\n}\n";
    let v = only(lint_source("gen.rs", src, FileRole::default()));
    assert_eq!(v.rule, "unseeded-rng");
    assert_eq!(v.line, 2);
    // Seeded construction is the sanctioned form.
    let ok = "fn noise(seed: u64) { let mut rng = StdRng::seed_from_u64(seed); }";
    assert!(lint_source("gen.rs", ok, FileRole::default()).is_empty());
}

#[test]
fn no_panic_in_worker_fires_in_worker_files_only() {
    let src = "fn worker() {\n    let v = rx.recv().unwrap();\n    panic!(\"boom\");\n}\n";
    let worker = FileRole {
        worker: true,
        ..FileRole::default()
    };
    let v = lint_source("crates/metis-engine/src/realtime.rs", src, worker);
    assert_eq!(v.len(), 2, "{v:?}");
    // The channel unwrap is claimed by the more specific rule; the bare
    // panic stays with no-panic-in-worker.
    assert_eq!((v[0].rule, v[0].line), ("channel-unwrap", 2));
    assert_eq!((v[1].rule, v[1].line), ("no-panic-in-worker", 3));
    // Same source in a non-worker file: allowed.
    assert!(lint_source("crates/metis-cli/src/main.rs", src, FileRole::default()).is_empty());
}

#[test]
fn pragma_with_reason_is_the_only_way_out() {
    let bare = "let t = Instant::now();";
    assert_eq!(
        only(lint_source("x.rs", bare, FileRole::default())).rule,
        "wall-clock"
    );

    let allowed = "// metis-lint: allow(wall-clock) reason=\"serve prints wall vs virtual time\"\n\
                   let t = Instant::now();";
    assert!(lint_source("x.rs", allowed, FileRole::default()).is_empty());

    let reasonless = "// metis-lint: allow(wall-clock) reason=\"\"\nlet t = Instant::now();";
    let v = lint_source("x.rs", reasonless, FileRole::default());
    assert_eq!(
        v.len(),
        2,
        "reasonless pragma is rejected AND does not suppress"
    );
}

//! Fixture-based rule tests: each source file under `tests/fixtures/`
//! contains deliberate positives *and* negatives for one rule family; this
//! test lints it with the role the rule is gated on and pins the exact
//! (rule, path, line) of every finding. The fixtures are excluded from the
//! workspace walk by this crate's `skip-files` metadata, so they can stay
//! violating forever.

use metis_lint::{lint_source, FileRole};

fn findings(path: &str, source: &str, role: FileRole) -> Vec<(String, String, u32)> {
    lint_source(path, source, role)
        .into_iter()
        .map(|v| (v.rule.to_string(), v.path, v.line))
        .collect()
}

#[test]
fn std_time_import_fixture() {
    let path = "crates/demo/src/pace.rs";
    let got = findings(
        path,
        include_str!("fixtures/std_time_import.rs"),
        FileRole::default(),
    );
    let p = |rule: &str, line: u32| (rule.to_string(), path.to_string(), line);
    assert_eq!(
        got,
        vec![
            // The `use std::time::Duration` import itself.
            p("std-time-import", 4),
            // The inline-qualified call fires the import rule AND the
            // call-site rule; the custom `Instant` on line 10 fires neither.
            p("std-time-import", 9),
            p("wall-clock", 9),
        ]
    );
}

#[test]
fn io_confinement_fixture() {
    let path = "crates/demo/src/sim.rs";
    let role = FileRole {
        io_confined: true,
        ..FileRole::default()
    };
    let src = include_str!("fixtures/io_confinement.rs");
    let got = findings(path, src, role);
    let p = |line: u32| ("io-confinement".to_string(), path.to_string(), line);
    assert_eq!(
        got,
        vec![
            p(4), // use std::fs
            p(5), // use std::net::TcpListener
            p(7), // -> std::process::ExitStatus
            p(8), // std::process::Command::new
        ]
    );
    // The same file inside an io-role crate is clean.
    assert!(findings(path, src, FileRole::default()).is_empty());
}

#[test]
fn unit_mismatch_fixture() {
    let path = "crates/demo/src/deadline.rs";
    let got = findings(
        path,
        include_str!("fixtures/unit_mismatch.rs"),
        FileRole::default(),
    );
    let p = |line: u32| ("unit-mismatch".to_string(), path.to_string(), line);
    assert_eq!(
        got,
        vec![
            p(5),  // start_nanos + timeout_secs
            p(6),  // end_nanos - budget_tokens
            p(8),  // total_nanos += lag_ms
            p(12), // end_nanos - cfg.slo_secs (field chain carries the unit)
        ],
        "conversion calls, same units, and multiplication stay clean"
    );
}

#[test]
fn blocking_under_lock_fixture() {
    let path = "crates/demo/src/realtime.rs";
    let role = FileRole {
        worker: true,
        ..FileRole::default()
    };
    let got = findings(path, include_str!("fixtures/blocking_under_lock.rs"), role);
    let p = |line: u32| ("blocking-under-lock".to_string(), path.to_string(), line);
    assert_eq!(
        got,
        vec![
            p(6),  // recv_timeout while the guard from line 5 is live
            p(22), // second .lock() while the first guard is live
        ],
        "drop(guard), scope-exit snapshots, and guard-free waits stay clean"
    );
}

#[test]
fn channel_unwrap_fixture() {
    let path = "crates/demo/src/worker.rs";
    let role = FileRole {
        worker: true,
        ..FileRole::default()
    };
    let src = include_str!("fixtures/channel_unwrap.rs");
    let got = findings(path, src, role);
    let p = |line: u32| ("channel-unwrap".to_string(), path.to_string(), line);
    assert_eq!(
        got,
        vec![
            p(5), // rx.recv().unwrap()
            p(6), // rx.try_recv().expect(…)
            p(7), // tx.send(…).unwrap()
        ],
        "matching on the error (and unwrap_or) stays clean; channel \
         unwraps are claimed by this rule, not double-reported by \
         no-panic-in-worker"
    );
    // Outside worker files none of this applies.
    assert!(findings(path, src, FileRole::default()).is_empty());
}

//! Property test for the item-tree parser: seeded generators produce
//! balanced, Rust-shaped token streams — nested items, attributes, stray
//! statements, macro invocations, adversarial-but-balanced noise — and
//! every generated source must round-trip through [`metis_lint::syntax`]
//! with spans that cover the token stream exactly and never overlap:
//! sibling spans are ascending and contiguous, the top level covers
//! `[0, n)`, and each item's children cover its body interior exactly.

use metis_lint::lexer::lex;
use metis_lint::syntax::{parse, Item};
use proptest::prelude::*;

/// Small deterministic generator state (splitmix64): the whole source is a
/// pure function of the seed, so failures replay exactly.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn ident(&mut self) -> String {
        const NAMES: &[&str] = &[
            "alpha",
            "beta",
            "gamma",
            "delta",
            "kv",
            "engine",
            "replica",
            "span",
            "x",
            "y",
            "deadline_nanos",
            "budget_tokens",
            "r#match",
        ];
        NAMES[self.pick(NAMES.len() as u64) as usize].to_string()
    }
}

/// Balanced expression-level noise: literals, idents, lifetimes, operators,
/// nested parens/brackets, strings with escapes — everything the lexer can
/// produce, always delimiter-balanced.
fn gen_noise(g: &mut Gen, depth: u32, out: &mut String) {
    for _ in 0..g.pick(4) {
        match g.pick(if depth > 0 { 8 } else { 6 }) {
            0 => out.push_str(&format!("{} ", g.ident())),
            1 => out.push_str(&format!("{} ", g.pick(100_000))),
            2 => out.push_str("\"str \\\" with :: tokens\" "),
            3 => out.push_str("'c' "),
            4 => out.push_str("&'a mut "),
            5 => out.push_str(&format!("{}.{}() ", g.ident(), g.ident())),
            6 => {
                out.push('(');
                gen_noise(g, depth - 1, out);
                out.push_str(") ");
            }
            _ => {
                out.push('[');
                gen_noise(g, depth - 1, out);
                out.push_str("] ");
            }
        }
    }
}

/// One statement inside a fn body: let bindings, nested blocks, ifs, fn-
/// local items, macro calls.
fn gen_stmt(g: &mut Gen, depth: u32, out: &mut String) {
    match g.pick(if depth > 0 { 6 } else { 3 }) {
        0 => {
            out.push_str(&format!("let {} = ", g.ident()));
            gen_noise(g, depth, out);
            out.push_str(";\n");
        }
        1 => {
            out.push_str(&format!("{}!(", g.ident()));
            gen_noise(g, depth, out);
            out.push_str(");\n");
        }
        2 => {
            out.push_str(&format!("use {}::{};\n", g.ident(), g.ident()));
        }
        3 => {
            out.push_str("{\n");
            for _ in 0..g.pick(3) {
                gen_stmt(g, depth - 1, out);
            }
            out.push_str("}\n");
        }
        4 => {
            out.push_str("if ");
            gen_noise(g, depth, out);
            out.push_str("{\n");
            gen_stmt(g, depth - 1, out);
            out.push_str("}\n");
        }
        _ => gen_item(g, depth - 1, out),
    }
}

/// One item: use (plain, grouped, renamed, glob), fn, mod, struct, enum,
/// impl, trait, static, macro definition/invocation — with optional
/// attributes and visibility qualifiers.
fn gen_item(g: &mut Gen, depth: u32, out: &mut String) {
    if g.pick(4) == 0 {
        out.push_str("#[derive(Debug, Clone)]\n");
    }
    if g.pick(3) == 0 {
        out.push_str("pub ");
    } else if g.pick(5) == 0 {
        out.push_str("pub(crate) ");
    }
    match g.pick(if depth > 0 { 10 } else { 5 }) {
        0 => out.push_str(&format!("use {}::{};\n", g.ident(), g.ident())),
        1 => out.push_str(&format!(
            "use {}::{{{} as {}, {}::*}};\n",
            g.ident(),
            g.ident(),
            g.ident(),
            g.ident()
        )),
        2 => out.push_str(&format!("struct {}({}, u64);\n", g.ident(), g.ident())),
        3 => out.push_str(&format!("static {}: u64 = {};\n", g.ident(), g.pick(10))),
        4 => out.push_str(&format!("mod {};\n", g.ident())),
        5 => {
            out.push_str(&format!("fn {}(a: u64) {{\n", g.ident()));
            for _ in 0..g.pick(4) {
                gen_stmt(g, depth - 1, out);
            }
            out.push_str("}\n");
        }
        6 => {
            out.push_str(&format!("mod {} {{\n", g.ident()));
            for _ in 0..g.pick(3) {
                gen_item(g, depth - 1, out);
            }
            out.push_str("}\n");
        }
        7 => {
            out.push_str(&format!("impl {} {{\n", g.ident()));
            for _ in 0..g.pick(3) {
                out.push_str(&format!("fn {}(&self) {{\n", g.ident()));
                gen_stmt(g, depth - 1, out);
                out.push_str("}\n");
            }
            out.push_str("}\n");
        }
        8 => {
            out.push_str(&format!(
                "trait {} {{\nfn {}(&self);\n}}\n",
                g.ident(),
                g.ident()
            ));
        }
        _ => {
            out.push_str(&format!("macro_rules! {} {{ () => {{ ", g.ident()));
            gen_noise(g, depth, out);
            out.push_str(" }} }\n");
        }
    }
}

fn gen_source(seed: u64) -> String {
    let mut g = Gen(seed);
    let mut out = String::new();
    let items = 1 + g.pick(6);
    for _ in 0..items {
        gen_item(&mut g, 3, &mut out);
    }
    out
}

/// The invariant: sibling spans are contiguous and ascending over exactly
/// `[start, end)`; every body's children cover its interior exactly.
fn assert_cover(items: &[Item], start: usize, end: usize, src: &str) {
    let mut at = start;
    for item in items {
        assert_eq!(
            item.span.start, at,
            "gap or overlap before {:?} in:\n{src}",
            item.kind
        );
        assert!(
            item.span.end > item.span.start,
            "empty span {:?} in:\n{src}",
            item.kind
        );
        if let Some((open, close)) = item.body {
            assert!(
                item.span.start <= open && open < close && close < item.span.end,
                "body outside span for {:?} in:\n{src}",
                item.kind
            );
            assert_cover(&item.children, open + 1, close, src);
        } else {
            assert!(
                item.children.is_empty(),
                "children without a body on {:?} in:\n{src}",
                item.kind
            );
        }
        at = item.span.end;
    }
    assert_eq!(at, end, "items do not cover the region in:\n{src}");
}

proptest! {
    /// Generated balanced sources round-trip through the item tree with
    /// exact, non-overlapping span coverage.
    #[test]
    fn generated_sources_have_exact_span_coverage(seed in any::<u64>()) {
        let src = gen_source(seed);
        let lexed = lex(&src);
        let items = parse(&lexed);
        assert_cover(&items, 0, lexed.toks.len(), &src);
    }
}

#[test]
fn generator_exercises_every_item_kind() {
    // Not a tautology check on the generator: if a refactor quietly made it
    // emit only trivial sources, the property above would pass vacuously.
    let mut all = String::new();
    for seed in 0..64u64 {
        all.push_str(&gen_source(seed));
    }
    for needle in [
        "use ",
        "fn ",
        "mod ",
        "impl ",
        "trait ",
        "macro_rules!",
        "struct ",
        "static ",
    ] {
        assert!(all.contains(needle), "generator never emits {needle:?}");
    }
}

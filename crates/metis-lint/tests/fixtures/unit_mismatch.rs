//! Fixture: `unit-mismatch` positives and negatives. Linted by
//! `fixture_findings.rs` with the default role; excluded from the
//! workspace walk by `skip-files`. Lines are pinned by the test.
fn mix(start_nanos: u64, timeout_secs: u64, budget_tokens: u64, lag_ms: u64) -> u64 {
    let end_nanos = start_nanos + timeout_secs;
    let drift = end_nanos - budget_tokens;
    let mut total_nanos = end_nanos;
    total_nanos += lag_ms;
    let converted_nanos = start_nanos + secs_to_nanos(timeout_secs);
    let same_nanos = start_nanos + end_nanos;
    let product_bytes = budget_tokens * bytes_per_token;
    let field_mix = end_nanos - cfg.slo_secs;
    drift.max(converted_nanos.max(same_nanos.max(product_bytes.max(field_mix))))
}

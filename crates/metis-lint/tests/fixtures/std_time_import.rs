//! Fixture: `std-time-import` positives and negatives. Linted by
//! `fixture_findings.rs` with the default role; excluded from the
//! workspace walk by `skip-files`. Lines are pinned by the test.
use std::time::Duration;

use crate::faketime::Instant;

fn pace(d: Duration) -> u64 {
    let t0 = std::time::Instant::now();
    let t1 = Instant::now();
    t0.wallify(t1, d)
}

//! Fixture: `io-confinement` positives and negatives. Linted by
//! `fixture_findings.rs` as the `src/` of a non-`io` crate; excluded from
//! the workspace walk by `skip-files`. Lines are pinned by the test.
use std::fs;
use std::net::TcpListener;

fn shell_out() -> std::process::ExitStatus {
    std::process::Command::new("ls").status().unwrap()
}

fn pure(spec: &str) -> usize {
    spec.len()
}

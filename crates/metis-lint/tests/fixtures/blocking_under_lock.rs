//! Fixture: `blocking-under-lock` positives and negatives. Linted by
//! `fixture_findings.rs` with the worker role; excluded from the workspace
//! walk by `skip-files`. Lines are pinned by the test.
fn hold_and_wait(shared: &Mutex<State>, rx: &Receiver<Req>) -> Req {
    let st = shared.lock().unwrap_or_else(|e| e.into_inner());
    let req = rx.recv_timeout(st.wait);
    drop(st);
    let fine = rx.recv_timeout(idle_wait);
    fine.or(req)
}

fn scoped_snapshot(shared: &Mutex<State>, rx: &Receiver<Req>) -> Req {
    let snap = {
        let st = shared.lock().unwrap_or_else(|e| e.into_inner());
        st.copy_out()
    };
    rx.recv_timeout(snap.wait)
}

fn lock_order_inversion(a: &Mutex<State>, b: &Mutex<State>) {
    let ga = a.lock().unwrap_or_else(|e| e.into_inner());
    let gb = b.lock().unwrap_or_else(|e| e.into_inner());
    ga.merge(gb);
}

//! Fixture: `channel-unwrap` positives and negatives. Linted by
//! `fixture_findings.rs` with the worker role; excluded from the workspace
//! walk by `skip-files`. Lines are pinned by the test.
fn worker_loop(rx: &Receiver<Req>, tx: &Sender<Resp>) {
    let req = rx.recv().unwrap();
    let more = rx.try_recv().expect("queue alive");
    tx.send(serve(req, more)).unwrap();
    loop {
        match rx.recv() {
            Ok(r) => tx.send(serve_one(r)).unwrap_or(()),
            Err(_) => break,
        }
    }
}

//! End-to-end workspace walking over a synthetic workspace written to
//! `CARGO_TARGET_TMPDIR`: member-glob expansion, role metadata from crate
//! manifests, `skip` / `skip-files` exclusion, crate layering at both the
//! manifest and the import level, and both directions of the
//! `bench-registration` rule.

use std::fs;
use std::path::{Path, PathBuf};

use metis_lint::workspace::lint_workspace;

fn write(path: &Path, content: &str) {
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(path, content).unwrap();
}

/// Builds a workspace with one crate per scenario and returns its root.
fn synthetic_workspace(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&root);

    write(
        &root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\", \"vendor/*\"]\n",
    );

    // A report-role crate with a HashMap in src/ and one in tests/ (only
    // src/ is in scope for the report role).
    write(
        &root.join("crates/reporter/Cargo.toml"),
        "[package]\nname = \"reporter\"\n[package.metadata.metis-lint]\n\
         layer = \"model\"\nroles = [\"report\"]\n",
    );
    write(
        &root.join("crates/reporter/src/lib.rs"),
        "use std::collections::HashMap;\n",
    );
    write(
        &root.join("crates/reporter/tests/t.rs"),
        "use std::collections::HashMap;\n",
    );

    // A clock crate whose clock.rs is sanctioned for wall reads, with a
    // violation elsewhere in the same crate.
    write(
        &root.join("crates/clocked/Cargo.toml"),
        "[package]\nname = \"clocked\"\n[package.metadata.metis-lint]\n\
         layer = \"model\"\nwallclock-files = [\"src/clock.rs\"]\n",
    );
    write(
        &root.join("crates/clocked/src/clock.rs"),
        "pub fn epoch() -> Instant { Instant::now() }\n",
    );
    write(
        &root.join("crates/clocked/src/leak.rs"),
        "pub fn t() -> Instant { Instant::now() }\n",
    );

    // A bench crate: one registered bench (harness = false, fine), one
    // registered without harness = false, one file never registered, and
    // one [[bench]] entry pointing at a missing file. Its `io` role keeps
    // io-confinement out of the picture.
    write(
        &root.join("crates/benched/Cargo.toml"),
        "[package]\nname = \"benched\"\nautobenches = false\n\
         [package.metadata.metis-lint]\nlayer = \"top\"\nroles = [\"io\"]\n\
         [[bench]]\nname = \"good\"\nharness = false\n\
         [[bench]]\nname = \"harnessed\"\n\
         [[bench]]\nname = \"ghost\"\nharness = false\n",
    );
    write(
        &root.join("crates/benched/benches/good.rs"),
        "fn main() {}\n",
    );
    write(
        &root.join("crates/benched/benches/harnessed.rs"),
        "fn main() {}\n",
    );
    write(
        &root.join("crates/benched/benches/orphan.rs"),
        "fn main() {}\n",
    );

    // Layering, both detection levels: `metis-upward` sits on `model` but
    // depends on (line 5) and imports (line 1) the `top`-layer crate.
    write(
        &root.join("crates/metis-upward/Cargo.toml"),
        "[package]\nname = \"metis-upward\"\n\n[dependencies]\n\
         metis-apex.workspace = true\n\n[package.metadata.metis-lint]\n\
         layer = \"model\"\n",
    );
    write(
        &root.join("crates/metis-upward/src/lib.rs"),
        "use metis_apex::Everything;\n",
    );
    write(
        &root.join("crates/metis-apex/Cargo.toml"),
        "[package]\nname = \"metis-apex\"\n[package.metadata.metis-lint]\n\
         layer = \"top\"\nroles = [\"io\"]\n",
    );
    write(
        &root.join("crates/metis-apex/src/lib.rs"),
        "pub struct Everything;\n",
    );

    // A crate that declares no layer at all.
    write(
        &root.join("crates/unplaced/Cargo.toml"),
        "[package]\nname = \"unplaced\"\n",
    );
    write(&root.join("crates/unplaced/src/lib.rs"), "pub fn f() {}\n");

    // skip-files: a fixtures directory full of violations, excluded by
    // prefix; a sibling test file is still linted (pragma check).
    write(
        &root.join("crates/fixtured/Cargo.toml"),
        "[package]\nname = \"fixtured\"\n[package.metadata.metis-lint]\n\
         layer = \"app\"\nroles = [\"io\"]\nskip-files = [\"tests/fixtures/\"]\n",
    );
    write(&root.join("crates/fixtured/src/lib.rs"), "pub fn f() {}\n");
    write(
        &root.join("crates/fixtured/tests/fixtures/bad.rs"),
        "fn t() { let x = Instant::now(); rand::thread_rng(); }\n",
    );
    write(
        &root.join("crates/fixtured/tests/linted.rs"),
        "// metis-lint: allow(wall-clock) reason=\"stale on purpose\"\nfn t() {}\n",
    );

    // A vendored shim full of violations, skipped by metadata.
    write(
        &root.join("vendor/shim/Cargo.toml"),
        "[package]\nname = \"shim\"\n[package.metadata.metis-lint]\nskip = true\n",
    );
    write(
        &root.join("vendor/shim/src/lib.rs"),
        "pub fn t() -> Instant { std::thread::sleep(d); Instant::now() }\n",
    );

    root
}

#[test]
fn workspace_walk_applies_roles_skip_layering_and_bench_registration() {
    let root = synthetic_workspace("metis-lint-ws");
    let outcome = lint_workspace(&root).expect("walk succeeds");
    let keys: Vec<(String, String, u32)> = outcome
        .violations
        .iter()
        .map(|v| (v.rule.to_string(), v.path.clone(), v.line))
        .collect();

    // Report role: src/ flagged (use + type mention = the walker found it),
    // tests/ not.
    assert!(
        keys.iter()
            .any(|(r, p, _)| r == "nondeterministic-iteration" && p == "crates/reporter/src/lib.rs"),
        "{keys:?}"
    );
    assert!(
        !keys
            .iter()
            .any(|(_, p, _)| p == "crates/reporter/tests/t.rs"),
        "report role must not reach tests/: {keys:?}"
    );

    // Wall-clock: sanctioned file clean, sibling flagged.
    assert!(!keys
        .iter()
        .any(|(_, p, _)| p == "crates/clocked/src/clock.rs"));
    assert!(keys
        .iter()
        .any(|(r, p, l)| r == "wall-clock" && p == "crates/clocked/src/leak.rs" && *l == 1));

    // Bench registration, all three failure modes with file/line:
    assert!(keys
        .iter()
        .any(|(r, p, _)| r == "bench-registration" && p == "crates/benched/benches/orphan.rs"));
    let manifest_hits = keys
        .iter()
        .filter(|(r, p, _)| r == "bench-registration" && p == "crates/benched/Cargo.toml")
        .count();
    assert_eq!(
        manifest_hits, 2,
        "missing harness=false AND ghost file: {keys:?}"
    );

    // Crate layering: the upward manifest dependency is pinned to its
    // [dependencies] line, the upward import to its use line, and the
    // layerless crate to its manifest.
    assert!(
        keys.iter().any(|(r, p, l)| r == "crate-layering"
            && p == "crates/metis-upward/Cargo.toml"
            && *l == 5),
        "manifest edge: {keys:?}"
    );
    assert!(
        keys.iter().any(|(r, p, l)| r == "crate-layering"
            && p == "crates/metis-upward/src/lib.rs"
            && *l == 1),
        "import edge: {keys:?}"
    );
    assert!(
        keys.iter()
            .any(|(r, p, _)| r == "crate-layering" && p == "crates/unplaced/Cargo.toml"),
        "missing layer: {keys:?}"
    );

    // skip-files: the fixtures dir is invisible; the sibling test file is
    // linted (its stale pragma is an unused-pragma hard error) and its
    // suppression shows up in the audit as unused.
    assert!(!keys.iter().any(|(_, p, _)| p.contains("tests/fixtures/")));
    assert!(
        keys.iter()
            .any(|(r, p, _)| r == "unused-pragma" && p == "crates/fixtured/tests/linted.rs"),
        "{keys:?}"
    );
    assert!(outcome
        .suppressions
        .iter()
        .any(|s| s.path == "crates/fixtured/tests/linted.rs" && !s.used));

    // Vendored shim: skipped entirely, in findings and counts.
    assert!(!keys.iter().any(|(_, p, _)| p.starts_with("vendor/")));
    assert!(outcome.crates >= 7, "linted crates: {}", outcome.crates);
    assert!(outcome.files >= 10, "linted files: {}", outcome.files);
}

/// The real workspace must stay clean: this is the same check CI's
/// `invariants` job runs, kept in tier-1 so a violation fails `cargo test`
/// even where CI is not watching.
#[test]
fn real_workspace_is_clean() {
    let crate_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = crate_dir.parent().unwrap().parent().unwrap();
    let outcome = lint_workspace(root).expect("workspace walk succeeds");
    assert!(
        outcome.violations.is_empty(),
        "workspace invariant violations:\n{}",
        outcome
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Every in-tree suppression must still earn its keep (an unused one
    // would already be a violation above; this pins the audit too).
    assert!(
        outcome.suppressions.iter().all(|s| s.used),
        "stale suppressions: {:?}",
        outcome
            .suppressions
            .iter()
            .filter(|s| !s.used)
            .collect::<Vec<_>>()
    );
}

//! The three embedding models.
//!
//! All three are bag-of-features hashing embedders over token ids, differing
//! in featurization (unigrams vs unigrams+bigrams), dimensionality, and hash
//! seed — mirroring the real models they stand in for:
//!
//! | Simulated model | Stands in for | dim | features |
//! |---|---|---|---|
//! | [`HashEmbed`] | Cohere-embed-v3.0 | 1024 | unigrams, 2 probes |
//! | [`NgramEmbed`] | All-mpnet-base-v2 | 768 | unigrams + bigrams |
//! | [`ProjEmbed`] | text-embedding-3-large-256 | 768* | unigrams, 3 probes |
//!
//! *`ProjEmbed` matches its counterpart's retrieval quality rather than its
//! storage width — see its type-level docs.
//!
//! Term frequency is damped sublinearly (`1 + ln tf`), as in standard text
//! retrieval, so a chunk stuffed with one repeated topic word does not
//! dominate chunks with diverse query-relevant words.

use std::collections::HashMap;

use metis_text::TokenId;

use crate::hashers::{bucket_and_sign, mix2, splitmix64};
use crate::similarity::l2_normalize;

/// A text embedder: token ids in, unit-normalized vector out.
pub trait Embedder: Send + Sync {
    /// Human-readable model name (used in reports).
    fn name(&self) -> &str;

    /// Output dimensionality.
    fn dim(&self) -> usize;

    /// Embeds a token sequence into a unit-L2 vector of [`Self::dim`] floats.
    fn embed(&self, tokens: &[TokenId]) -> Vec<f32>;

    /// Abstract cost of embedding a `token_count`-token text, in
    /// feature-hash units (one unit per hashed feature probe). The
    /// retrieval latency model converts units to simulated time, so models
    /// that hash more features per token report proportionally more work.
    fn embed_work(&self, token_count: usize) -> u64 {
        token_count as u64
    }
}

/// Identifies one of the built-in embedding models.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EmbedderKind {
    /// Simulates Cohere-embed-v3.0 (the paper's default).
    CohereSim,
    /// Simulates All-mpnet-base-v2.
    MpnetSim,
    /// Simulates text-embedding-3-large-256.
    Te3Sim,
}

impl EmbedderKind {
    /// Instantiates the embedder.
    pub fn build(self) -> Box<dyn Embedder> {
        match self {
            EmbedderKind::CohereSim => Box::new(HashEmbed::default()),
            EmbedderKind::MpnetSim => Box::new(NgramEmbed::default()),
            EmbedderKind::Te3Sim => Box::new(ProjEmbed::default()),
        }
    }

    /// All built-in models, default first.
    pub fn all() -> [EmbedderKind; 3] {
        [
            EmbedderKind::CohereSim,
            EmbedderKind::MpnetSim,
            EmbedderKind::Te3Sim,
        ]
    }
}

/// Computes sublinearly damped term frequencies.
fn tf_weights(tokens: &[TokenId]) -> HashMap<TokenId, f32> {
    let mut counts: HashMap<TokenId, u32> = HashMap::new();
    for &t in tokens {
        *counts.entry(t).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .map(|(t, c)| (t, 1.0 + (c as f32).ln()))
        .collect()
}

fn hash_unigrams(tokens: &[TokenId], dim: usize, seed: u64, probes: u32, out: &mut [f32]) {
    for (t, w) in tf_weights(tokens) {
        for p in 0..probes {
            let h = mix2(seed ^ u64::from(p) << 32, u64::from(t.0));
            let (b, s) = bucket_and_sign(splitmix64(h), dim);
            out[b] += s * w / (probes as f32);
        }
    }
}

/// Unigram feature-hashing embedder ("Cohere-embed-v3.0 simulator").
#[derive(Clone, Debug)]
pub struct HashEmbed {
    dim: usize,
    seed: u64,
}

impl Default for HashEmbed {
    fn default() -> Self {
        Self {
            dim: 1024,
            seed: 0xC0_FEE3,
        }
    }
}

impl HashEmbed {
    /// Creates an embedder with a custom dimension and seed.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self { dim, seed }
    }
}

impl Embedder for HashEmbed {
    fn name(&self) -> &str {
        "cohere-embed-v3-sim"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, tokens: &[TokenId]) -> Vec<f32> {
        let mut v = vec![0.0; self.dim];
        hash_unigrams(tokens, self.dim, self.seed, 2, &mut v);
        l2_normalize(&mut v);
        v
    }

    fn embed_work(&self, token_count: usize) -> u64 {
        // Two hash probes per unigram feature.
        2 * token_count as u64
    }
}

/// Unigram+bigram feature-hashing embedder ("All-mpnet-base-v2 simulator").
#[derive(Clone, Debug)]
pub struct NgramEmbed {
    dim: usize,
    seed: u64,
    /// Relative weight of bigram features vs unigram features.
    bigram_weight: f32,
}

impl Default for NgramEmbed {
    fn default() -> Self {
        Self {
            dim: 768,
            seed: 0x3AB_5EED,
            bigram_weight: 0.12,
        }
    }
}

impl Embedder for NgramEmbed {
    fn name(&self) -> &str {
        "all-mpnet-base-v2-sim"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, tokens: &[TokenId]) -> Vec<f32> {
        let mut v = vec![0.0; self.dim];
        hash_unigrams(tokens, self.dim, self.seed, 2, &mut v);
        for pair in tokens.windows(2) {
            let h = mix2(
                self.seed ^ 0xB16A,
                mix2(u64::from(pair[0].0), u64::from(pair[1].0)),
            );
            let (b, s) = bucket_and_sign(h, self.dim);
            v[b] += s * self.bigram_weight;
        }
        l2_normalize(&mut v);
        v
    }

    fn embed_work(&self, token_count: usize) -> u64 {
        // Two unigram probes per token plus one bigram probe per window.
        2 * token_count as u64 + token_count.saturating_sub(1) as u64
    }
}

/// Independent-seed unigram embedder ("text-embedding-3-large-256
/// simulator").
///
/// The real model is a *learned* 256-dim embedding whose retrieval quality
/// matches the larger models; a 256-bucket feature hash would not (hash
/// collisions are noise, learned dimensions are not), so this simulator
/// matches the model's retrieval quality with a wider hash under an
/// independent seed rather than its storage width.
#[derive(Clone, Debug)]
pub struct ProjEmbed {
    dim: usize,
    seed: u64,
}

impl Default for ProjEmbed {
    fn default() -> Self {
        Self {
            dim: 768,
            seed: 0x7E3_1A26E,
        }
    }
}

impl Embedder for ProjEmbed {
    fn name(&self) -> &str {
        "text-embedding-3-large-256-sim"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, tokens: &[TokenId]) -> Vec<f32> {
        let mut v = vec![0.0; self.dim];
        hash_unigrams(tokens, self.dim, self.seed, 3, &mut v);
        l2_normalize(&mut v);
        v
    }

    fn embed_work(&self, token_count: usize) -> u64 {
        // Three hash probes per unigram feature.
        3 * token_count as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{cosine, dot};

    fn toks(ids: &[u32]) -> Vec<TokenId> {
        ids.iter().map(|&i| TokenId(i)).collect()
    }

    #[test]
    fn embeddings_are_unit_norm() {
        for kind in EmbedderKind::all() {
            let e = kind.build();
            let v = e.embed(&toks(&[1, 2, 3, 4, 5]));
            assert_eq!(v.len(), e.dim());
            assert!((dot(&v, &v).sqrt() - 1.0).abs() < 1e-5, "{}", e.name());
        }
    }

    #[test]
    fn embedding_is_deterministic() {
        let e = HashEmbed::default();
        assert_eq!(e.embed(&toks(&[9, 8, 7])), e.embed(&toks(&[9, 8, 7])));
    }

    #[test]
    fn overlapping_texts_are_closer_than_disjoint() {
        for kind in EmbedderKind::all() {
            let e = kind.build();
            let base = e.embed(&toks(&[1, 2, 3, 4, 5, 6, 7, 8]));
            let overlap = e.embed(&toks(&[1, 2, 3, 4, 100, 101, 102, 103]));
            let disjoint = e.embed(&toks(&[200, 201, 202, 203, 204, 205, 206, 207]));
            assert!(
                cosine(&base, &overlap) > cosine(&base, &disjoint),
                "{} fails overlap ordering",
                e.name()
            );
        }
    }

    #[test]
    fn tf_damping_bounds_repeated_tokens() {
        let e = HashEmbed::default();
        let diverse = e.embed(&toks(&[1, 2, 3, 4]));
        let spam = e.embed(&toks(&[5; 64]));
        let mixed = e.embed(&toks(&[1, 2, 3, 4, 5, 5, 5, 5, 5, 5, 5, 5]));
        // The diverse half should still dominate similarity.
        assert!(cosine(&mixed, &diverse) > cosine(&mixed, &spam) * 0.5);
    }

    #[test]
    fn bigram_model_distinguishes_order() {
        let e = NgramEmbed::default();
        let ab = e.embed(&toks(&[1, 2, 1, 2, 1, 2]));
        let ba = e.embed(&toks(&[2, 1, 2, 1, 2, 1]));
        assert!(cosine(&ab, &ba) < 0.9999);
    }

    #[test]
    fn unigram_model_is_order_invariant() {
        let e = HashEmbed::default();
        let ab = e.embed(&toks(&[1, 2, 3]));
        let ba = e.embed(&toks(&[3, 2, 1]));
        assert!((cosine(&ab, &ba) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_text_embeds_to_zero_vector() {
        let e = HashEmbed::default();
        let v = e.embed(&[]);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn embed_work_scales_with_featurization() {
        let t = 40usize;
        assert_eq!(HashEmbed::default().embed_work(t), 80);
        assert_eq!(ProjEmbed::default().embed_work(t), 120);
        // The bigram model hashes unigrams plus one window per adjacent pair.
        assert_eq!(NgramEmbed::default().embed_work(t), 80 + 39);
        assert_eq!(NgramEmbed::default().embed_work(0), 0);
    }

    #[test]
    fn models_have_distinct_names_and_dims() {
        let names: Vec<String> = EmbedderKind::all()
            .iter()
            .map(|k| k.build().name().to_owned())
            .collect();
        assert_eq!(names.len(), 3);
        assert_ne!(names[0], names[1]);
        assert_ne!(names[1], names[2]);
    }
}

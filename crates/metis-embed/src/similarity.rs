//! Vector similarity primitives.

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// L2 (Euclidean) distance: the square root of the summed squared
/// component differences.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
#[inline]
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f32>()
        .sqrt()
}

/// Cosine similarity; returns 0 for zero vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// Normalizes `v` to unit L2 norm in place; zero vectors are left unchanged.
#[inline]
pub fn l2_normalize(v: &mut [f32]) {
    let norm = dot(v, v).sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_l2_basics() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert_eq!(dot(&a, &b), 0.0);
        assert!((l2_distance(&a, &b) - std::f32::consts::SQRT_2).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_parallel_vectors_is_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut v = vec![3.0, 4.0];
        l2_normalize(&mut v);
        assert!((dot(&v, &v).sqrt() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_is_noop() {
        let mut v = vec![0.0, 0.0];
        l2_normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn l2_distance_relates_to_cosine_for_unit_vectors() {
        // For unit vectors, d^2 = 2 - 2 cos, so smaller distance = higher cosine.
        let mut a = vec![0.9, 0.1, 0.3];
        let mut b = vec![0.8, 0.2, 0.1];
        let mut c = vec![-0.9, 0.4, 0.2];
        l2_normalize(&mut a);
        l2_normalize(&mut b);
        l2_normalize(&mut c);
        assert!(l2_distance(&a, &b) < l2_distance(&a, &c));
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}

//! Deterministic integer hashing used by the feature-hashing embedders.
//!
//! We use the SplitMix64 finalizer: fast, well-distributed, stable across
//! platforms, and dependency-free. Each embedder seeds it differently so the
//! three models land tokens in uncorrelated buckets.

/// SplitMix64 finalizer: maps a 64-bit input to a well-mixed 64-bit output.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mixes two values into one hash (order-sensitive).
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(a) ^ b.wrapping_mul(0xff51_afd7_ed55_8ccd))
}

/// Derives a bucket index in `0..dim` and a sign in `{-1.0, +1.0}` for a
/// feature hash, the standard signed feature-hashing construction.
#[inline]
pub fn bucket_and_sign(hash: u64, dim: usize) -> (usize, f32) {
    debug_assert!(dim > 0);
    let bucket = (hash % dim as u64) as usize;
    let sign = if (hash >> 63) == 0 { 1.0 } else { -1.0 };
    (bucket, sign)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Adjacent inputs should differ in many bits.
        let d = (splitmix64(100) ^ splitmix64(101)).count_ones();
        assert!(d > 16, "poor avalanche: {d} bits");
    }

    #[test]
    fn mix2_is_order_sensitive() {
        assert_ne!(mix2(1, 2), mix2(2, 1));
    }

    #[test]
    fn bucket_in_range_and_signs_balanced() {
        let dim = 64;
        let mut pos = 0;
        for i in 0..1000u64 {
            let (b, s) = bucket_and_sign(splitmix64(i), dim);
            assert!(b < dim);
            if s > 0.0 {
                pos += 1;
            }
        }
        assert!((400..600).contains(&pos), "sign imbalance: {pos}/1000");
    }
}

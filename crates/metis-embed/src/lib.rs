//! Embedding substrate for the METIS reproduction.
//!
//! The paper retrieves with Cohere-embed-v3 over a FAISS flat-L2 index and
//! reports (§A.2) that swapping the embedding model (All-mpnet-base-v2,
//! text-embedding-3-large-256) moves F1 by less than 1%. This crate provides
//! three deterministic feature-hashing embedders with the same interface and
//! closely matched retrieval behaviour over the synthetic token space, which
//! is exactly the property that appendix experiment needs.
//!
//! All embedders produce unit-L2-normalized vectors, so L2 distance is a
//! monotone transform of cosine similarity (as with normalized neural
//! embeddings).

pub mod hashers;
pub mod models;
pub mod similarity;

pub use models::{Embedder, EmbedderKind, HashEmbed, NgramEmbed, ProjEmbed};
pub use similarity::{cosine, dot, l2_distance, l2_normalize};

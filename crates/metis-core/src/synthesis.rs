//! Synthesis pipelines: `stuff`, `map_rerank`, `map_reduce` (Fig. 3).
//!
//! Given a configuration and the retrieved chunks, a pipeline assembles the
//! LLM call structure and runs the generation model to produce the actual
//! answer tokens. The result is a [`SynthesisPlan`]: the quality outcome
//! (answer + coverage) plus the exact prompt/output token counts of every
//! call, which the runner feeds to the serving engine for timing.
//!
//! Quality and timing are decoupled on purpose: the generation model decides
//! *what* comes out of each call, the engine decides *when* — matching the
//! real system, where the tokens an LLM emits do not depend on queueing.

use metis_llm::{GenerationModel, QueryTruth};
use metis_text::{AnnotatedText, TokenId};
use metis_vectordb::RetrievalResult;

use crate::config::{RagConfig, SynthesisMethod};
use crate::memory::PROMPT_OVERHEAD;

/// One LLM call of a plan, sized for the engine.
#[derive(Clone, Copy, Debug)]
pub struct PlannedCall {
    /// Prompt tokens (context + query + instruction overhead).
    pub prompt_tokens: u64,
    /// Output tokens the call will emit.
    pub output_tokens: u64,
}

/// A fully planned (and quality-resolved) synthesis for one query.
#[derive(Clone, Debug)]
pub struct SynthesisPlan {
    /// The configuration executed.
    pub config: RagConfig,
    /// First-wave calls: the single `stuff` call, or every map call.
    pub map_calls: Vec<PlannedCall>,
    /// The `map_reduce` reduce call, submitted after all maps finish.
    pub reduce_call: Option<PlannedCall>,
    /// The final answer tokens.
    pub answer: Vec<TokenId>,
    /// Fraction of needed facts the answer covers (diagnostic).
    pub coverage: f64,
}

impl SynthesisPlan {
    /// Total LLM calls in the plan.
    pub fn call_count(&self) -> usize {
        self.map_calls.len() + usize::from(self.reduce_call.is_some())
    }

    /// Total prompt tokens across all calls.
    pub fn total_prompt_tokens(&self) -> u64 {
        self.map_calls.iter().map(|c| c.prompt_tokens).sum::<u64>()
            + self.reduce_call.map_or(0, |c| c.prompt_tokens)
    }
}

/// Inputs shared by every synthesis call of one query.
#[derive(Clone, Copy)]
pub struct SynthesisInputs<'a> {
    /// The serving model's generation model.
    pub gen: &'a GenerationModel,
    /// The query's ground truth.
    pub truth: &'a QueryTruth,
    /// The query text tokens (appended to every prompt).
    pub query_tokens: &'a [TokenId],
    /// Boilerplate token pool for non-answer output words.
    pub boilerplate: &'a [TokenId],
}

/// Executes the configured synthesis over the retrieved chunks.
///
/// `retrieved` should contain at least `config.num_chunks` results when the
/// database allows; fewer are used as-is (the retriever returns what
/// exists). Deterministic in `seed`.
pub fn plan_synthesis(
    inputs: &SynthesisInputs<'_>,
    config: &RagConfig,
    retrieved: &[RetrievalResult],
    seed: u64,
) -> SynthesisPlan {
    // The one shared clamp (`RagConfig::effective_chunks`): the runner times
    // the engine against the same count the quality path consumes here.
    let k = config.effective_chunks(retrieved.len());
    let chunks = &retrieved[..k];
    match config.synthesis {
        SynthesisMethod::Stuff => stuff(inputs, config, chunks, seed),
        SynthesisMethod::MapRerank => map_rerank(inputs, config, chunks, seed),
        SynthesisMethod::MapReduce => map_reduce(inputs, config, chunks, seed),
    }
}

fn prompt_len(context_tokens: usize, query_tokens: usize) -> u64 {
    context_tokens as u64 + query_tokens as u64 + PROMPT_OVERHEAD
}

fn stuff(
    inputs: &SynthesisInputs<'_>,
    config: &RagConfig,
    chunks: &[RetrievalResult],
    seed: u64,
) -> SynthesisPlan {
    let mut context = AnnotatedText::new();
    for c in chunks {
        context.push_text(&c.text);
    }
    context.push_tokens(inputs.query_tokens);
    let out = inputs.gen.answer(
        seed,
        inputs.truth,
        &context,
        inputs.boilerplate,
        chunks.len(),
    );
    SynthesisPlan {
        config: *config,
        map_calls: vec![PlannedCall {
            prompt_tokens: prompt_len(context.len(), inputs.query_tokens.len()),
            output_tokens: out.tokens.len().max(1) as u64,
        }],
        reduce_call: None,
        answer: out.tokens,
        coverage: out.coverage,
    }
}

fn map_rerank(
    inputs: &SynthesisInputs<'_>,
    config: &RagConfig,
    chunks: &[RetrievalResult],
    seed: u64,
) -> SynthesisPlan {
    let mut calls = Vec::with_capacity(chunks.len());
    let mut best: Option<(f64, Vec<TokenId>, f64)> = None;
    for (i, c) in chunks.iter().enumerate() {
        let mut context = c.text.clone();
        context.push_tokens(inputs.query_tokens);
        let out = inputs.gen.answer(
            seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
            inputs.truth,
            &context,
            inputs.boilerplate,
            1,
        );
        calls.push(PlannedCall {
            prompt_tokens: prompt_len(context.len(), inputs.query_tokens.len()),
            output_tokens: out.tokens.len().max(1) as u64,
        });
        // Keep the highest-confidence single-chunk answer (Fig. 3b).
        let better = best
            .as_ref()
            .is_none_or(|(conf, _, _)| out.confidence > *conf);
        if better {
            best = Some((out.confidence, out.tokens, out.coverage));
        }
    }
    let (_, answer, coverage) = best.unwrap_or((0.0, Vec::new(), 0.0));
    SynthesisPlan {
        config: *config,
        map_calls: calls,
        reduce_call: None,
        answer,
        coverage,
    }
}

fn map_reduce(
    inputs: &SynthesisInputs<'_>,
    config: &RagConfig,
    chunks: &[RetrievalResult],
    seed: u64,
) -> SynthesisPlan {
    let budget = config.intermediate_length.max(1) as usize;
    let mut calls = Vec::with_capacity(chunks.len());
    let mut reduce_context = AnnotatedText::new();
    for (i, c) in chunks.iter().enumerate() {
        let summary = inputs.gen.summarize(
            seed.wrapping_add(i as u64).wrapping_mul(0xC2B2_AE35),
            inputs.truth,
            &c.text,
            budget,
        );
        calls.push(PlannedCall {
            prompt_tokens: prompt_len(c.text.len(), inputs.query_tokens.len()),
            output_tokens: summary.text.len().max(1) as u64,
        });
        reduce_context.push_text(&summary.text);
    }
    reduce_context.push_tokens(inputs.query_tokens);
    let out = inputs.gen.answer(
        seed ^ 0xED0C,
        inputs.truth,
        &reduce_context,
        inputs.boilerplate,
        chunks.len(),
    );
    SynthesisPlan {
        config: *config,
        map_calls: calls,
        reduce_call: Some(PlannedCall {
            prompt_tokens: prompt_len(reduce_context.len(), inputs.query_tokens.len()),
            output_tokens: out.tokens.len().max(1) as u64,
        }),
        answer: out.tokens,
        coverage: out.coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_datasets::{build_dataset, DatasetKind};
    use metis_llm::{GenModelConfig, GenerationModel, ModelSpec};
    use metis_metrics::f1_score;

    struct Fixture {
        dataset: metis_datasets::Dataset,
        gen: GenerationModel,
    }

    fn fixture(kind: DatasetKind) -> Fixture {
        Fixture {
            dataset: build_dataset(kind, 12, 77),
            gen: GenerationModel::new(&ModelSpec::mistral_7b_awq(), GenModelConfig::default()),
        }
    }

    fn mean_f1(fx: &Fixture, config: RagConfig) -> f64 {
        let mut sum = 0.0;
        for (i, q) in fx.dataset.queries.iter().enumerate() {
            let retrieved = fx
                .dataset
                .db
                .retrieve(&q.tokens, config.num_chunks as usize);
            let inputs = SynthesisInputs {
                gen: &fx.gen,
                truth: &q.truth,
                query_tokens: &q.tokens,
                boilerplate: &fx.dataset.boilerplate,
            };
            let plan = plan_synthesis(&inputs, &config, &retrieved, 1000 + i as u64);
            sum += f1_score(&plan.answer, &q.gold_answer());
        }
        sum / fx.dataset.queries.len() as f64
    }

    #[test]
    fn stuff_plan_has_single_call_sized_to_context() {
        let fx = fixture(DatasetKind::Musique);
        let q = &fx.dataset.queries[0];
        let retrieved = fx.dataset.db.retrieve(&q.tokens, 4);
        let inputs = SynthesisInputs {
            gen: &fx.gen,
            truth: &q.truth,
            query_tokens: &q.tokens,
            boilerplate: &fx.dataset.boilerplate,
        };
        let plan = plan_synthesis(&inputs, &RagConfig::stuff(4), &retrieved, 3);
        assert_eq!(plan.call_count(), 1);
        let ctx: u64 = retrieved.iter().map(|r| r.text.len() as u64).sum();
        assert_eq!(
            plan.map_calls[0].prompt_tokens,
            ctx + 2 * q.tokens.len() as u64 + PROMPT_OVERHEAD
        );
    }

    #[test]
    fn map_rerank_plans_one_call_per_chunk() {
        let fx = fixture(DatasetKind::Squad);
        let q = &fx.dataset.queries[0];
        let retrieved = fx.dataset.db.retrieve(&q.tokens, 5);
        let inputs = SynthesisInputs {
            gen: &fx.gen,
            truth: &q.truth,
            query_tokens: &q.tokens,
            boilerplate: &fx.dataset.boilerplate,
        };
        let plan = plan_synthesis(&inputs, &RagConfig::map_rerank(5), &retrieved, 3);
        assert_eq!(plan.map_calls.len(), 5);
        assert!(plan.reduce_call.is_none());
    }

    #[test]
    fn map_reduce_has_reduce_call_over_summaries() {
        let fx = fixture(DatasetKind::Qmsum);
        let q = &fx.dataset.queries[0];
        let retrieved = fx.dataset.db.retrieve(&q.tokens, 6);
        let inputs = SynthesisInputs {
            gen: &fx.gen,
            truth: &q.truth,
            query_tokens: &q.tokens,
            boilerplate: &fx.dataset.boilerplate,
        };
        let plan = plan_synthesis(&inputs, &RagConfig::map_reduce(6, 80), &retrieved, 3);
        assert_eq!(plan.map_calls.len(), 6);
        let reduce = plan.reduce_call.expect("reduce call");
        // The reduce prompt is far shorter than the stuff prompt would be.
        let stuff_ctx: u64 = retrieved.iter().map(|r| r.text.len() as u64).sum();
        assert!(reduce.prompt_tokens < stuff_ctx / 2);
        // Map outputs respect the intermediate-length budget.
        for c in &plan.map_calls {
            assert!(c.output_tokens <= 80);
        }
    }

    #[test]
    fn map_rerank_fails_joint_queries_where_stuff_succeeds() {
        // Fig. 4a: cross-chunk queries need joint reasoning, which
        // map_rerank's isolated calls cannot do.
        let fx = fixture(DatasetKind::Musique);
        let joint: Vec<_> = fx
            .dataset
            .queries
            .iter()
            .filter(|q| q.profile.joint)
            .collect();
        assert!(!joint.is_empty());
        let mut rerank_f1 = 0.0;
        let mut stuff_f1 = 0.0;
        for (i, q) in joint.iter().enumerate() {
            let retrieved = fx.dataset.db.retrieve(&q.tokens, 8);
            let inputs = SynthesisInputs {
                gen: &fx.gen,
                truth: &q.truth,
                query_tokens: &q.tokens,
                boilerplate: &fx.dataset.boilerplate,
            };
            let r = plan_synthesis(
                &inputs,
                &RagConfig::map_rerank(8),
                &retrieved,
                50 + i as u64,
            );
            let s = plan_synthesis(&inputs, &RagConfig::stuff(8), &retrieved, 50 + i as u64);
            rerank_f1 += f1_score(&r.answer, &q.gold_answer());
            stuff_f1 += f1_score(&s.answer, &q.gold_answer());
        }
        assert!(
            stuff_f1 > rerank_f1 + 0.06 * joint.len() as f64,
            "stuff {stuff_f1:.2} vs rerank {rerank_f1:.2} over {} queries",
            joint.len()
        );
    }

    #[test]
    fn quality_rises_then_falls_with_chunks() {
        // Fig. 4b: too few chunks miss evidence; too many dilute it.
        let fx = fixture(DatasetKind::Musique);
        let few = mean_f1(&fx, RagConfig::stuff(1));
        let right = mean_f1(&fx, RagConfig::stuff(6));
        let excess = mean_f1(&fx, RagConfig::stuff(35));
        assert!(right > few + 0.05, "few={few:.3} right={right:.3}");
        assert!(right > excess, "right={right:.3} excess={excess:.3}");
    }

    #[test]
    fn tiny_intermediate_length_hurts_map_reduce() {
        // Fig. 4c: summaries too short to carry the facts lose quality.
        let fx = fixture(DatasetKind::Qmsum);
        let starved = mean_f1(&fx, RagConfig::map_reduce(8, 4));
        let enough = mean_f1(&fx, RagConfig::map_reduce(8, 90));
        assert!(
            enough > starved + 0.10,
            "starved={starved:.3} enough={enough:.3}"
        );
    }

    #[test]
    fn engine_and_quality_paths_share_one_chunk_clamp() {
        // The runner retrieves `effective_chunks(db.len())` chunks and the
        // plan consumes `effective_chunks(retrieved.len())`: for every
        // request size (including 0 and beyond the corpus) the two counts
        // must be identical, so engine-timed work equals quality-path work.
        let fx = fixture(DatasetKind::Squad);
        let q = &fx.dataset.queries[0];
        let inputs = SynthesisInputs {
            gen: &fx.gen,
            truth: &q.truth,
            query_tokens: &q.tokens,
            boilerplate: &fx.dataset.boilerplate,
        };
        for requested in [0u32, 3, 10_000] {
            let cfg = RagConfig::map_rerank(requested);
            let k = cfg.effective_chunks(fx.dataset.db.len());
            let retrieved = fx.dataset.db.retrieve(&q.tokens, k);
            assert_eq!(retrieved.len(), k, "retriever returned what exists");
            let plan = plan_synthesis(&inputs, &cfg, &retrieved, 1);
            // map_rerank plans exactly one call per consumed chunk.
            assert_eq!(plan.map_calls.len(), cfg.effective_chunks(retrieved.len()));
            assert_eq!(plan.map_calls.len(), k);
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let fx = fixture(DatasetKind::FinSec);
        let q = &fx.dataset.queries[1];
        let retrieved = fx.dataset.db.retrieve(&q.tokens, 6);
        let inputs = SynthesisInputs {
            gen: &fx.gen,
            truth: &q.truth,
            query_tokens: &q.tokens,
            boilerplate: &fx.dataset.boilerplate,
        };
        let a = plan_synthesis(&inputs, &RagConfig::map_reduce(6, 60), &retrieved, 9);
        let b = plan_synthesis(&inputs, &RagConfig::map_reduce(6, 60), &retrieved, 9);
        assert_eq!(a.answer, b.answer);
        assert_eq!(a.total_prompt_tokens(), b.total_prompt_tokens());
    }
}

//! Workload run driver.
//!
//! Executes a full workload (one dataset, one arrival process) against one
//! serving system — METIS, vLLM-fixed, Parrot\*, or AdaptiveRAG\* — over the
//! discrete-event engine, producing per-query F1/delay records and aggregate
//! cost. This is the reproduction's equivalent of the paper's testbed runs:
//! every evaluation figure is a set of `Runner::run` calls.
//!
//! The driver interleaves three event kinds on one virtual timeline:
//! profiler completions (API calls, off-GPU), configuration decisions
//! (which, for METIS, read the engine's free KV memory *at decision time* —
//! the joint part of joint scheduling), and engine iterations.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use metis_datasets::Dataset;
use metis_engine::{
    Completion, Engine, EngineConfig, GroupId, LlmRequest, PrefixCache, RequestId, SchedPolicy,
    Stage,
};
use metis_llm::{
    nanos_to_secs, secs_to_nanos, GenModelConfig, GenerationModel, GpuCluster, LatencyModel,
    ModelKind, ModelSpec, Nanos,
};
use metis_metrics::{f1_score, LatencySummary, ThroughputSummary};
use metis_profiler::{EstimatedProfile, LlmProfiler, ProfilerKind};

use crate::baselines::{adaptive_rag_pick, median_pick};
use crate::bestfit::{choose_config, BestFitInputs};
use crate::config::{PrunedSpace, RagConfig, SynthesisMethod};
use crate::mapping::{map_profile, ProfileHistory};
use crate::synthesis::{plan_synthesis, SynthesisInputs, SynthesisPlan};

/// Confidence threshold below which METIS distrusts the profile (§5).
pub const CONFIDENCE_THRESHOLD: f64 = 0.90;
/// Expected final-answer output tokens used for memory sizing.
const EXPECTED_OUTPUT: u64 = 48;
/// Retrieval latency: base plus per-chunk scan cost (retrieval is >100×
/// cheaper than synthesis, §2).
const RETRIEVAL_BASE_NANOS: Nanos = 5_000_000;
const RETRIEVAL_PER_CHUNK_NANOS: Nanos = 20_000;

/// How METIS picks from the pruned space (ablation axis, Fig. 12).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PickPolicy {
    /// Full METIS: resource-aware best fit (§4.3).
    BestFit,
    /// Ablation: median knob values, resource-oblivious.
    Median,
}

/// METIS feature switches (ablation axes for Figs. 12, 14, 16, 17).
#[derive(Clone, Copy, Debug)]
pub struct MetisOptions {
    /// Which LLM backs the profiler.
    pub profiler: ProfilerKind,
    /// Configuration pick policy.
    pub pick: PickPolicy,
    /// Parrot-style gang scheduling of a query's calls.
    pub gang: bool,
    /// Tune the synthesis method (off → always `stuff`).
    pub tune_method: bool,
    /// Tune `intermediate_length` (off → fixed 100).
    pub tune_ilen: bool,
    /// Golden-configuration profiler feedback (§5, Fig. 14).
    pub feedback: bool,
    /// Low-confidence fallback to recent pruned spaces (§5).
    pub confidence_fallback: bool,
    /// Optional per-query latency SLO in seconds (§4.3's "SLO-based
    /// constraints"): the best-fit selection is restricted to configurations
    /// whose estimated execution fits the budget.
    pub slo_secs: Option<f64>,
}

impl MetisOptions {
    /// Full METIS as evaluated in the paper's headline results.
    pub fn full() -> Self {
        Self {
            profiler: ProfilerKind::Gpt4o,
            pick: PickPolicy::BestFit,
            gang: true,
            tune_method: true,
            tune_ilen: true,
            feedback: false,
            confidence_fallback: true,
            slo_secs: None,
        }
    }
}

/// The system under test.
#[derive(Clone, Copy, Debug)]
pub enum SystemKind {
    /// METIS (ours).
    Metis(MetisOptions),
    /// vLLM with one fixed configuration for every query.
    VllmFixed {
        /// The static configuration.
        config: RagConfig,
    },
    /// Parrot\*: fixed configuration + application-aware gang scheduling.
    Parrot {
        /// The static configuration.
        config: RagConfig,
    },
    /// AdaptiveRAG\*: per-query quality-maximizing choice, resource-oblivious.
    AdaptiveRag {
        /// Which LLM backs its profiler.
        profiler: ProfilerKind,
    },
}

impl SystemKind {
    fn policy(&self) -> SchedPolicy {
        match self {
            SystemKind::Metis(o) if o.gang => SchedPolicy::GangByGroup,
            SystemKind::Parrot { .. } => SchedPolicy::GangByGroup,
            _ => SchedPolicy::Fcfs,
        }
    }

    fn uses_profiler(&self) -> Option<ProfilerKind> {
        match self {
            SystemKind::Metis(o) => Some(o.profiler),
            SystemKind::AdaptiveRag { profiler } => Some(*profiler),
            _ => None,
        }
    }
}

/// One run's parameters.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// The system under test.
    pub system: SystemKind,
    /// Serving model.
    pub model: ModelSpec,
    /// GPU cluster.
    pub cluster: GpuCluster,
    /// Generation-model tuning.
    pub gen: GenModelConfig,
    /// Engine parameters (policy is overridden by the system kind).
    pub engine: EngineConfig,
    /// Per-query arrival times; must match the dataset's query count
    /// (ignored beyond the first entry in closed-loop mode).
    pub arrivals: Vec<Nanos>,
    /// Closed loop: send each query when the previous one completes
    /// (the paper's low-load experiment, Fig. 19).
    pub closed_loop: bool,
    /// Optional chunk-level KV prefix cache (§8's KV reuse): bytes of GPU
    /// memory dedicated to caching per-chunk KV across queries. Cached
    /// chunks skip prefill compute. `None` disables reuse (the paper's
    /// default — it leaves KV reuse to future work).
    pub prefix_cache_bytes: Option<u64>,
    /// Master seed for all stochastic components.
    pub seed: u64,
}

impl RunConfig {
    /// A standard open-loop run of `system` on Mistral-7B / one A40.
    pub fn standard(system: SystemKind, arrivals: Vec<Nanos>, seed: u64) -> Self {
        Self {
            system,
            model: ModelSpec::mistral_7b_awq(),
            cluster: GpuCluster::single_a40(),
            gen: GenModelConfig::default(),
            engine: EngineConfig::default(),
            arrivals,
            closed_loop: false,
            prefix_cache_bytes: None,
            seed,
        }
    }
}

/// Per-query outcome.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Index of the query in the dataset.
    pub query_index: usize,
    /// Token F1 against the gold answer.
    pub f1: f64,
    /// End-to-end delay in seconds (arrival → final token, §2).
    pub delay_secs: f64,
    /// Profiler latency in seconds (0 for fixed-config systems).
    pub profiler_secs: f64,
    /// The executed configuration.
    pub config: RagConfig,
    /// Whether the §4.3 memory fallback fired.
    pub fallback: bool,
    /// Arrival time in seconds.
    pub arrival_secs: f64,
    /// Completion time in seconds.
    pub finish_secs: f64,
}

/// Aggregate outcome of one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Per-query records, in query order.
    pub per_query: Vec<QueryResult>,
    /// GPU busy seconds (for the cost model).
    pub gpu_busy_secs: f64,
    /// API dollars spent (profiler and/or API serving).
    pub api_cost_usd: f64,
    /// First arrival → last completion, seconds.
    pub makespan_secs: f64,
    /// Chunk-KV prefix-cache hit rate (0 when the cache is disabled).
    pub prefix_hit_rate: f64,
}

impl RunResult {
    /// Mean F1 across queries.
    pub fn mean_f1(&self) -> f64 {
        if self.per_query.is_empty() {
            return 0.0;
        }
        self.per_query.iter().map(|q| q.f1).sum::<f64>() / self.per_query.len() as f64
    }

    /// Mean end-to-end delay in seconds.
    pub fn mean_delay_secs(&self) -> f64 {
        self.latency().mean()
    }

    /// Full latency distribution.
    pub fn latency(&self) -> LatencySummary {
        LatencySummary::new(self.per_query.iter().map(|q| q.delay_secs).collect())
    }

    /// Throughput over the run.
    pub fn throughput(&self) -> ThroughputSummary {
        ThroughputSummary {
            completed: self.per_query.len(),
            makespan_secs: self.makespan_secs,
        }
    }

    /// Mean fraction of the delay spent profiling (Fig. 18).
    pub fn mean_profiler_fraction(&self) -> f64 {
        if self.per_query.is_empty() {
            return 0.0;
        }
        self.per_query
            .iter()
            .map(|q| {
                if q.delay_secs > 0.0 {
                    q.profiler_secs / q.delay_secs
                } else {
                    0.0
                }
            })
            .sum::<f64>()
            / self.per_query.len() as f64
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EventKind {
    /// Run the profiler (or skip straight to retrieval for fixed systems).
    Profile(usize),
    /// Choose the configuration and submit the synthesis calls.
    Decide(usize),
}

struct PendingQuery {
    /// When the query logically arrived (its Profile event time).
    arrival: Nanos,
    space: Option<PrunedSpace>,
    estimate: Option<EstimatedProfile>,
    profiler_nanos: Nanos,
}

struct ActiveQuery {
    query_index: usize,
    arrival: Nanos,
    profiler_nanos: Nanos,
    plan: SynthesisPlan,
    remaining: usize,
    reduce_submitted: bool,
    fallback: bool,
    synthetic: bool,
}

/// The workload runner.
pub struct Runner<'a> {
    dataset: &'a Dataset,
    cfg: RunConfig,
}

impl<'a> Runner<'a> {
    /// Creates a runner for one dataset and run configuration.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` does not provide one entry per query.
    pub fn new(dataset: &'a Dataset, cfg: RunConfig) -> Self {
        assert_eq!(
            cfg.arrivals.len(),
            dataset.queries.len(),
            "need one arrival per query"
        );
        Self { dataset, cfg }
    }

    /// Executes the run to completion.
    pub fn run(self) -> RunResult {
        let api_mode = self.cfg.model.kind == ModelKind::Api;
        let latency = LatencyModel::new(self.cfg.model.clone(), self.cfg.cluster);
        let gen = GenerationModel::new(&self.cfg.model, self.cfg.gen);
        let mut engine = Engine::new(
            LatencyModel::new(self.cfg.model.clone(), self.cfg.cluster),
            EngineConfig {
                policy: self.cfg.system.policy(),
                ..self.cfg.engine
            },
        );
        let mut profiler = self.cfg.system.uses_profiler().map(LlmProfiler::new);
        let mut history = ProfileHistory::default();
        let metadata = self.dataset.db.metadata().clone();

        // Event queue: (time, seq) → event.
        let mut heap: BinaryHeap<Reverse<(Nanos, u64)>> = BinaryHeap::new();
        let mut events: HashMap<u64, EventKind> = HashMap::new();
        let mut seq: u64 = 0;
        let push = |heap: &mut BinaryHeap<Reverse<(Nanos, u64)>>,
                    events: &mut HashMap<u64, EventKind>,
                    seq: &mut u64,
                    t: Nanos,
                    e: EventKind| {
            heap.push(Reverse((t, *seq)));
            events.insert(*seq, e);
            *seq += 1;
        };

        if self.cfg.closed_loop {
            push(
                &mut heap,
                &mut events,
                &mut seq,
                self.cfg.arrivals[0],
                EventKind::Profile(0),
            );
        } else {
            for (i, &t) in self.cfg.arrivals.iter().enumerate() {
                push(&mut heap, &mut events, &mut seq, t, EventKind::Profile(i));
            }
        }

        let mut prefix_cache = self
            .cfg
            .prefix_cache_bytes
            .map(|bytes| PrefixCache::new(bytes / self.cfg.model.kv_bytes_per_token().max(1)));
        let mut pending: HashMap<usize, PendingQuery> = HashMap::new();
        let mut active: Vec<ActiveQuery> = Vec::new();
        let mut req_to_active: HashMap<RequestId, usize> = HashMap::new();
        let mut next_req: u64 = 0;
        let mut next_group: u64 = 0;
        let mut results: Vec<QueryResult> = Vec::new();
        let mut api_cost = 0.0f64;
        let mut pending_feedback = 0usize;

        loop {
            let next_event = heap.peek().map(|Reverse((t, s))| (*t, *s));
            match next_event {
                Some((t, s)) => {
                    // Advance the engine to (at least) t before acting.
                    if !api_mode {
                        loop {
                            let can_step = engine.now() < t
                                && (engine.has_active_work()
                                    || engine.next_pending_arrival().is_some_and(|a| a <= t));
                            if !can_step {
                                break;
                            }
                            let before = engine.now();
                            let done = engine.step();
                            let progressed = engine.now() > before || !done.is_empty();
                            self.process_completions(
                                &done,
                                &mut active,
                                &mut req_to_active,
                                &mut engine,
                                &mut next_req,
                                &mut results,
                                &mut profiler,
                                &mut pending_feedback,
                                |t, e| push(&mut heap, &mut events, &mut seq, t, e),
                            );
                            assert!(progressed, "engine stuck while advancing to event");
                        }
                    }
                    heap.pop();
                    let event = events.remove(&s).expect("event for popped seq");
                    match event {
                        EventKind::Profile(q) => {
                            let (p, decide_at) = self.profile_query(
                                q,
                                t,
                                &mut profiler,
                                &metadata,
                                &mut history,
                                &mut api_cost,
                            );
                            pending.insert(q, p);
                            push(
                                &mut heap,
                                &mut events,
                                &mut seq,
                                decide_at,
                                EventKind::Decide(q),
                            );
                        }
                        EventKind::Decide(q) => {
                            let p = pending.remove(&q).expect("profiled before decide");
                            self.decide_and_submit(
                                q,
                                t,
                                p,
                                &gen,
                                &latency,
                                &mut engine,
                                api_mode,
                                &mut active,
                                &mut req_to_active,
                                &mut next_req,
                                &mut next_group,
                                &mut results,
                                &mut api_cost,
                                &mut profiler,
                                &mut pending_feedback,
                                &mut prefix_cache,
                                |t, e| push(&mut heap, &mut events, &mut seq, t, e),
                            );
                        }
                    }
                }
                None => {
                    if api_mode || engine.is_idle() {
                        break;
                    }
                    let before = engine.now();
                    let done = engine.step();
                    let progressed = engine.now() > before || !done.is_empty();
                    self.process_completions(
                        &done,
                        &mut active,
                        &mut req_to_active,
                        &mut engine,
                        &mut next_req,
                        &mut results,
                        &mut profiler,
                        &mut pending_feedback,
                        |t, e| push(&mut heap, &mut events, &mut seq, t, e),
                    );
                    assert!(
                        progressed || engine.is_idle(),
                        "engine stuck while draining"
                    );
                }
            }
        }

        results.sort_by_key(|r| r.query_index);
        let makespan_secs = {
            let first = results
                .iter()
                .map(|r| r.arrival_secs)
                .fold(f64::MAX, f64::min);
            let last = results.iter().map(|r| r.finish_secs).fold(0.0, f64::max);
            if results.is_empty() {
                0.0
            } else {
                (last - first).max(0.0)
            }
        };
        RunResult {
            per_query: results,
            gpu_busy_secs: nanos_to_secs(engine.stats().busy),
            api_cost_usd: api_cost,
            makespan_secs,
            prefix_hit_rate: prefix_cache.map_or(0.0, |p| p.hit_rate()),
        }
    }

    /// Runs the profiler step for query `q` arriving at `t`; returns the
    /// pending state and the decision time.
    fn profile_query(
        &self,
        q: usize,
        t: Nanos,
        profiler: &mut Option<LlmProfiler>,
        metadata: &metis_vectordb::DbMetadata,
        history: &mut ProfileHistory,
        api_cost: &mut f64,
    ) -> (PendingQuery, Nanos) {
        let query = &self.dataset.queries[q];
        match (&self.cfg.system, profiler.as_mut()) {
            (SystemKind::Metis(opts), Some(p)) => {
                let out = p.profile(query, metadata, self.cfg.seed ^ 0xF0F1);
                *api_cost += out.cost_usd;
                let trusted =
                    !opts.confidence_fallback || out.estimate.confidence >= CONFIDENCE_THRESHOLD;
                let space = if trusted {
                    let s = map_profile(&out.estimate);
                    history.push(s.clone());
                    s
                } else {
                    // §5: fall back to the recent queries' pruned spaces.
                    history
                        .fallback()
                        .unwrap_or_else(|| map_profile(&out.estimate))
                };
                let space = self.apply_tuning(space, opts);
                (
                    PendingQuery {
                        arrival: t,
                        space: Some(space),
                        estimate: Some(out.estimate),
                        profiler_nanos: out.latency,
                    },
                    t + out.latency + self.retrieval_nanos(),
                )
            }
            (SystemKind::AdaptiveRag { .. }, Some(p)) => {
                let out = p.profile(query, metadata, self.cfg.seed ^ 0xF0F1);
                *api_cost += out.cost_usd;
                (
                    PendingQuery {
                        arrival: t,
                        space: Some(map_profile(&out.estimate)),
                        estimate: Some(out.estimate),
                        profiler_nanos: out.latency,
                    },
                    t + out.latency + self.retrieval_nanos(),
                )
            }
            _ => (
                PendingQuery {
                    arrival: t,
                    space: None,
                    estimate: None,
                    profiler_nanos: 0,
                },
                t + self.retrieval_nanos(),
            ),
        }
    }

    fn apply_tuning(&self, mut space: PrunedSpace, opts: &MetisOptions) -> PrunedSpace {
        if !opts.tune_method {
            space.methods = vec![SynthesisMethod::Stuff];
        }
        if !opts.tune_ilen {
            space.intermediate_length = (100, 100);
        }
        space
    }

    fn retrieval_nanos(&self) -> Nanos {
        RETRIEVAL_BASE_NANOS + RETRIEVAL_PER_CHUNK_NANOS * self.dataset.db.len() as Nanos
    }

    /// Chooses the configuration for `q` at decision time `t` and submits
    /// its synthesis calls.
    #[allow(clippy::too_many_arguments)]
    fn decide_and_submit(
        &self,
        q: usize,
        t: Nanos,
        pending: PendingQuery,
        gen: &GenerationModel,
        latency: &LatencyModel,
        engine: &mut Engine,
        api_mode: bool,
        active: &mut Vec<ActiveQuery>,
        req_to_active: &mut HashMap<RequestId, usize>,
        next_req: &mut u64,
        next_group: &mut u64,
        results: &mut Vec<QueryResult>,
        api_cost: &mut f64,
        profiler: &mut Option<LlmProfiler>,
        pending_feedback: &mut usize,
        prefix_cache: &mut Option<PrefixCache>,
        mut push_event: impl FnMut(Nanos, EventKind),
    ) {
        let query = &self.dataset.queries[q];
        let chunk_size = self.dataset.db.metadata().chunk_size as u64;
        let (config, fallback) = match &self.cfg.system {
            SystemKind::VllmFixed { config } | SystemKind::Parrot { config } => (*config, false),
            SystemKind::AdaptiveRag { .. } => (
                adaptive_rag_pick(pending.space.as_ref().expect("profiled")),
                false,
            ),
            SystemKind::Metis(opts) => {
                let space = pending.space.as_ref().expect("profiled");
                let joint = pending.estimate.map(|e| e.joint).unwrap_or(true);
                match opts.pick {
                    PickPolicy::Median => (median_pick(space), false),
                    PickPolicy::BestFit => {
                        let bf = BestFitInputs {
                            free_kv_tokens: engine.free_kv_tokens(),
                            chunk_size,
                            query_tokens: query.tokens.len() as u64,
                            expected_output: EXPECTED_OUTPUT,
                            buffer_frac: 0.02,
                        };
                        let chosen = match opts.slo_secs {
                            Some(budget) => crate::slo::choose_config_with_slo(
                                space,
                                joint,
                                &bf,
                                latency,
                                crate::slo::LatencySlo(budget),
                            ),
                            None => choose_config(space, joint, &bf),
                        };
                        (chosen.config, chosen.fallback)
                    }
                }
            }
        };

        let retrieved = self
            .dataset
            .db
            .retrieve(&query.tokens, config.num_chunks.max(1) as usize);
        let inputs = SynthesisInputs {
            gen,
            truth: &query.truth,
            query_tokens: &query.tokens,
            boilerplate: &self.dataset.boilerplate,
        };
        let plan = plan_synthesis(
            &inputs,
            &config,
            &retrieved,
            self.cfg.seed ^ (q as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );

        if api_mode {
            // API serving (Fig. 13's GPT-4o comparison): map calls run
            // concurrently against the provider; the reduce (if any) follows.
            let map_nanos = plan
                .map_calls
                .iter()
                .map(|c| latency.api_call(c.prompt_tokens, c.output_tokens))
                .max()
                .unwrap_or(0);
            for c in &plan.map_calls {
                *api_cost += latency.api_cost_usd(c.prompt_tokens, c.output_tokens);
            }
            let reduce_nanos = plan.reduce_call.map_or(0, |c| {
                *api_cost += latency.api_cost_usd(c.prompt_tokens, c.output_tokens);
                latency.api_call(c.prompt_tokens, c.output_tokens)
            });
            let finish = t + map_nanos + reduce_nanos;
            let arrival = pending.arrival;
            results.push(QueryResult {
                query_index: q,
                f1: f1_score(&plan.answer, &query.gold_answer()),
                delay_secs: nanos_to_secs(finish.saturating_sub(arrival)),
                profiler_secs: nanos_to_secs(pending.profiler_nanos),
                config,
                fallback,
                arrival_secs: nanos_to_secs(arrival),
                finish_secs: nanos_to_secs(finish),
            });
            if self.cfg.closed_loop && q + 1 < self.dataset.queries.len() {
                push_event(finish, EventKind::Profile(q + 1));
            }
            return;
        }

        // Chunk-level KV reuse (§8): consult the prefix cache for every
        // chunk this plan reads; cached chunks skip prefill compute.
        let k_used = plan
            .map_calls
            .len()
            .min(retrieved.len())
            .max(usize::from(!retrieved.is_empty()));
        let cached_per_call: Vec<u64> = match prefix_cache.as_mut() {
            None => vec![0; plan.map_calls.len()],
            Some(pc) => match config.synthesis {
                SynthesisMethod::Stuff => {
                    let total: u64 = retrieved
                        .iter()
                        .take(config.num_chunks.max(1) as usize)
                        .map(|r| pc.lookup_or_insert(r.hit.chunk, r.text.len() as u64))
                        .sum();
                    vec![total]
                }
                _ => retrieved
                    .iter()
                    .take(k_used)
                    .map(|r| pc.lookup_or_insert(r.hit.chunk, r.text.len() as u64))
                    .collect(),
            },
        };

        // Submit the first wave (maps / the single stuff call).
        let group = GroupId(*next_group);
        *next_group += 1;
        let idx = active.len();
        let stage = if plan.reduce_call.is_some() {
            Stage::Map
        } else {
            Stage::Single
        };
        let call_count = plan.map_calls.len();
        for (ci, c) in plan.map_calls.iter().enumerate() {
            let id = RequestId(*next_req);
            *next_req += 1;
            engine.submit(LlmRequest {
                id,
                group,
                stage,
                prompt_tokens: c.prompt_tokens,
                output_tokens: c.output_tokens,
                cached_prompt_tokens: cached_per_call.get(ci).copied().unwrap_or(0),
                arrival: t,
            });
            req_to_active.insert(id, idx);
        }
        active.push(ActiveQuery {
            query_index: q,
            arrival: pending.arrival,
            profiler_nanos: pending.profiler_nanos,
            plan,
            remaining: call_count,
            reduce_submitted: false,
            fallback,
            synthetic: false,
        });

        // §5 feedback: every 30th profiled query triggers one golden-config
        // run whose completion grounds the profiler.
        if let (SystemKind::Metis(opts), Some(p)) = (&self.cfg.system, profiler.as_mut()) {
            if opts.feedback && p.wants_feedback() {
                let golden = RagConfig::golden();
                let retrieved = self
                    .dataset
                    .db
                    .retrieve(&query.tokens, golden.num_chunks as usize);
                let plan = plan_synthesis(
                    &inputs,
                    &golden,
                    &retrieved,
                    self.cfg.seed ^ 0x601D ^ q as u64,
                );
                let group = GroupId(*next_group);
                *next_group += 1;
                let gidx = active.len();
                let n = plan.map_calls.len();
                for c in &plan.map_calls {
                    let id = RequestId(*next_req);
                    *next_req += 1;
                    engine.submit(LlmRequest {
                        id,
                        group,
                        stage: Stage::Map,
                        prompt_tokens: c.prompt_tokens,
                        output_tokens: c.output_tokens,
                        cached_prompt_tokens: 0,
                        arrival: t,
                    });
                    req_to_active.insert(id, gidx);
                }
                active.push(ActiveQuery {
                    query_index: q,
                    arrival: t,
                    profiler_nanos: 0,
                    plan,
                    remaining: n,
                    reduce_submitted: false,
                    fallback: false,
                    synthetic: true,
                });
                *pending_feedback += 1;
            }
        }
        let _ = push_event; // Only used by closed-loop finalization below.
    }

    /// Handles engine completions: map → reduce chaining and finalization.
    #[allow(clippy::too_many_arguments)]
    fn process_completions(
        &self,
        completions: &[Completion],
        active: &mut [ActiveQuery],
        req_to_active: &mut HashMap<RequestId, usize>,
        engine: &mut Engine,
        next_req: &mut u64,
        results: &mut Vec<QueryResult>,
        profiler: &mut Option<LlmProfiler>,
        pending_feedback: &mut usize,
        mut push_event: impl FnMut(Nanos, EventKind),
    ) {
        for c in completions {
            let Some(&idx) = req_to_active.get(&c.id) else {
                continue;
            };
            req_to_active.remove(&c.id);
            let a = &mut active[idx];
            a.remaining = a.remaining.saturating_sub(1);
            if a.remaining > 0 {
                continue;
            }
            if let (Some(reduce), false) = (a.plan.reduce_call, a.reduce_submitted) {
                // All maps done: submit the reduce call now.
                let id = RequestId(*next_req);
                *next_req += 1;
                engine.submit(LlmRequest {
                    id,
                    group: c.group,
                    stage: Stage::Reduce,
                    prompt_tokens: reduce.prompt_tokens,
                    output_tokens: reduce.output_tokens,
                    cached_prompt_tokens: 0,
                    arrival: c.finish,
                });
                req_to_active.insert(id, idx);
                a.reduce_submitted = true;
                a.remaining = 1;
                continue;
            }
            // Query complete.
            if a.synthetic {
                if *pending_feedback > 0 {
                    *pending_feedback -= 1;
                    if let Some(p) = profiler.as_mut() {
                        p.add_feedback();
                    }
                }
                continue;
            }
            let query = &self.dataset.queries[a.query_index];
            results.push(QueryResult {
                query_index: a.query_index,
                f1: f1_score(&a.plan.answer, &query.gold_answer()),
                delay_secs: nanos_to_secs(c.finish.saturating_sub(a.arrival)),
                profiler_secs: nanos_to_secs(a.profiler_nanos),
                config: a.plan.config,
                fallback: a.fallback,
                arrival_secs: nanos_to_secs(a.arrival),
                finish_secs: nanos_to_secs(c.finish),
            });
            if self.cfg.closed_loop {
                let next = results.len();
                if next < self.dataset.queries.len() {
                    push_event(c.finish, EventKind::Profile(next));
                }
            }
        }
    }
}

/// Convenience: build Poisson arrivals matching the paper's default workload
/// (λ queries/second) for `n` queries.
pub fn poisson(seed: u64, qps: f64, n: usize) -> Vec<Nanos> {
    metis_datasets::poisson_arrivals(seed, qps, n)
}

/// Convenience: convert seconds to the runner's time unit.
pub fn at_secs(s: f64) -> Nanos {
    secs_to_nanos(s)
}

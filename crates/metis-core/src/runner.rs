//! Workload runner.
//!
//! Executes a full workload (one dataset, one arrival process) against one
//! serving system, producing per-query F1/delay records and aggregate
//! cost. This is the reproduction's equivalent of the paper's testbed
//! runs: every evaluation figure is a set of `Runner::run` calls.
//!
//! The runner is *system-agnostic*: all per-system policy (profiling,
//! configuration choice, scheduling preferences, feedback) lives behind
//! the [`ConfigController`] trait, built once from the run's
//! [`SystemKind`]. It is also *driver-agnostic*: the serving substrate is
//! a [`Driver`] built from [`RunConfig::driver`] — the deterministic
//! simulator by default, or the live multithreaded realtime driver — and
//! the event loop only ever talks to the pump interface, so the same
//! controller and engine code serves both.
//!
//! The runner interleaves four event kinds on one virtual timeline —
//! per query: **Profile** (API call, off-GPU) → **Decide** (read the routed
//! replica's free KV memory *at decision time* — the joint part of joint
//! scheduling — and pick the configuration) → **Retrieve** (execute the
//! index search the decided `num_chunks` asks for, charged by measured
//! search work via [`RetrievalModel`]) → submit the synthesis calls to the
//! driver's replicas. Retrieval deliberately follows the decision: the
//! real `index.search(query, top_k)` cannot run before `top_k` exists.
//! Between events the driver is pumped for completions; under the
//! simulator that advances replicas in deterministic most-lagging order,
//! under the realtime driver it waits for the scaled wall clock — which is
//! exactly where arrival pacing physically happens.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use metis_datasets::Dataset;
use metis_engine::{
    Completion, Driver, DriverKind, DriverSpec, Engine, EngineConfig, GroupId, LlmRequest,
    PrefixCache, Priority, ReplicaId, RequestId, RouterPolicy, Stage,
};
use metis_llm::{
    nanos_to_secs, secs_to_nanos, FleetSpec, GenModelConfig, GenerationModel, GpuCluster,
    LatencyModel, ModelKind, ModelSpec, Nanos, ReplicaSpec,
};
use metis_metrics::{f1_score, CellReport, LatencySummary, SummaryStats, ThroughputSummary};
use metis_vectordb::{IndexSpec, Quantization, RetrievalOutcome, RetrievalResult, SearchWork};

use crate::autoscaler::{Autoscaler, AutoscalerState, ScaleAction};
use crate::config::{RagConfig, SynthesisMethod};
use crate::controllers::{ConfigController, DecisionContext, ProfileOutcome, SystemKind};
use crate::retrieval::RetrievalModel;
use crate::synthesis::{plan_synthesis, SynthesisInputs, SynthesisPlan};

/// One run's parameters.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// The system under test.
    pub system: SystemKind,
    /// Serving model.
    pub model: ModelSpec,
    /// GPU cluster backing *each replica*.
    pub cluster: GpuCluster,
    /// Number of independent engine replicas (each gets its own
    /// `cluster`-shaped GPU group; clamped to at least 1).
    pub replicas: usize,
    /// Heterogeneous fleet override: when set, the initial fleet is built
    /// from these per-replica specs (mixed GPU classes, per-replica
    /// warm-up) instead of `replicas` copies of `cluster`. Replicas the
    /// autoscaler adds later cycle through these specs too.
    pub replica_specs: Option<Vec<ReplicaSpec>>,
    /// How queries are dispatched across replicas.
    pub router: RouterPolicy,
    /// Fleet elasticity: when set, this policy is evaluated on the event
    /// timeline (under both drivers) and adds/drains replicas through the
    /// driver. `None` (the default) keeps the fixed fleet.
    pub autoscale: Option<Autoscaler>,
    /// Generation-model tuning.
    pub gen: GenModelConfig,
    /// Engine parameters (policy is overridden by the system kind).
    pub engine: EngineConfig,
    /// Per-query arrival times; must match the dataset's query count
    /// (ignored beyond the first entry in closed-loop mode).
    pub arrivals: Vec<Nanos>,
    /// Closed loop: send each query when the previous one completes
    /// (the paper's low-load experiment, Fig. 19).
    pub closed_loop: bool,
    /// Optional chunk-level KV prefix cache (§8's KV reuse): bytes of GPU
    /// memory *per replica* dedicated to caching per-chunk KV across
    /// queries. Each replica keeps its own cache (replicas share no KV), and
    /// cached chunks skip prefill compute on that replica only. `None`
    /// disables reuse (the paper's default — it leaves KV reuse to future
    /// work).
    pub prefix_cache_bytes: Option<u64>,
    /// The retrieval index the run serves against. Must match the index the
    /// dataset's database was built with (see
    /// [`build_dataset_with_index`](metis_datasets::build_dataset_with_index));
    /// [`Runner::new`] checks the two agree so the report never claims an
    /// index the searches didn't use.
    pub index: IndexSpec,
    /// How the index stores and scores vectors: exact f32 or sq8 scalar
    /// quantization. Must match the dataset's database, like `index`
    /// ([`Runner::new`] checks both).
    pub quant: Quantization,
    /// Converts measured per-query retrieval work into timeline nanos.
    pub retrieval: RetrievalModel,
    /// Who executes the run: the deterministic simulator (the default) or
    /// the live multithreaded driver on scaled wall time. API-serving runs
    /// (`model.kind == Api`) always simulate — there is no local engine to
    /// drive in real time.
    pub driver: DriverSpec,
    /// Master seed for all stochastic components.
    pub seed: u64,
}

impl RunConfig {
    /// A standard open-loop run of `system` on one Mistral-7B / A40 replica.
    pub fn standard(system: SystemKind, arrivals: Vec<Nanos>, seed: u64) -> Self {
        Self {
            system,
            model: ModelSpec::mistral_7b_awq(),
            cluster: GpuCluster::single_a40(),
            replicas: 1,
            replica_specs: None,
            router: RouterPolicy::RoundRobin,
            autoscale: None,
            gen: GenModelConfig::default(),
            engine: EngineConfig::default(),
            arrivals,
            closed_loop: false,
            prefix_cache_bytes: None,
            index: IndexSpec::Flat,
            quant: Quantization::F32,
            retrieval: RetrievalModel::default(),
            driver: DriverSpec::Sim,
            seed,
        }
    }

    /// The same run spread over `n` replicas behind `router`.
    pub fn replicated(mut self, n: usize, router: RouterPolicy) -> Self {
        self.replicas = n.max(1);
        self.router = router;
        self
    }

    /// The same run executed by `driver`.
    pub fn with_driver(mut self, driver: DriverSpec) -> Self {
        self.driver = driver;
        self
    }

    /// The same run with fleet elasticity governed by `policy`. The run
    /// starts at `replicas` (or `replica_specs`) and the policy adds or
    /// drains replicas from there, within its own bounds.
    pub fn with_autoscale(mut self, policy: Autoscaler) -> Self {
        self.autoscale = Some(policy);
        self
    }

    /// The same run served by an explicit heterogeneous fleet.
    pub fn with_replica_specs(mut self, specs: Vec<ReplicaSpec>) -> Self {
        self.replica_specs = Some(specs);
        self
    }
}

/// Where one query's wall time went, stage by stage, in timeline nanos.
///
/// The stages partition the end-to-end delay along the query's *critical
/// chain*: profile → decide → retrieve → then, inside the engine, the call
/// that gated each wave (the last-finishing map, then the reduce). Engine
/// stages are wall time on that chain — a map call's prefill nanos include
/// the iterations it shared with other sequences, and a preempted victim's
/// queue time counts its re-queue wait — so the six fields sum *exactly* to
/// `finish − arrival` (see [`Completion::prefill_done`]'s telescoping
/// identity; an integration test pins this). In API-serving mode there is
/// no local queue or prefill accounting: the provider call time lands in
/// `decode` and the engine stages are 0.
///
/// [`Completion::prefill_done`]: metis_engine::Completion::prefill_done
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Profiler latency (API call, off-GPU).
    pub profile: Nanos,
    /// Configuration decision. The decision itself is modeled as
    /// instantaneous (the controller runs off the critical path), so this
    /// is 0 today; the field exists so the report schema already has the
    /// slot when decision cost gets modeled.
    pub decide: Nanos,
    /// Index search + query embedding, charged by measured work.
    pub retrieve: Nanos,
    /// Engine queue wait along the critical chain (submit → admission,
    /// summed over the chain's calls).
    pub queue_wait: Nanos,
    /// Prefill wall time along the critical chain.
    pub prefill: Nanos,
    /// Decode wall time along the critical chain.
    pub decode: Nanos,
}

impl StageBreakdown {
    /// Sum of all stages — equals the query's end-to-end delay in nanos.
    pub fn total(&self) -> Nanos {
        self.profile + self.decide + self.retrieve + self.queue_wait + self.prefill + self.decode
    }
}

/// Mean seconds per stage across a run — what a Fig-12-style delay
/// breakdown plots. Produced by [`RunResult::stage_breakdown`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageMeans {
    /// Mean profiler seconds.
    pub profile: f64,
    /// Mean decision seconds (0 today; see [`StageBreakdown::decide`]).
    pub decide: f64,
    /// Mean retrieval seconds.
    pub retrieve: f64,
    /// Mean critical-chain queue-wait seconds.
    pub queue_wait: f64,
    /// Mean critical-chain prefill seconds.
    pub prefill: f64,
    /// Mean critical-chain decode seconds.
    pub decode: f64,
}

impl StageMeans {
    /// Sum of the stage means — equals the run's mean end-to-end delay.
    pub fn total(&self) -> f64 {
        self.profile + self.decide + self.retrieve + self.queue_wait + self.prefill + self.decode
    }

    /// `(name, mean secs)` pairs in pipeline order.
    pub fn named(&self) -> [(&'static str, f64); 6] {
        [
            ("profile", self.profile),
            ("decide", self.decide),
            ("retrieve", self.retrieve),
            ("queue_wait", self.queue_wait),
            ("prefill", self.prefill),
            ("decode", self.decode),
        ]
    }
}

/// Per-query outcome.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Index of the query in the dataset.
    pub query_index: usize,
    /// Token F1 against the gold answer.
    pub f1: f64,
    /// End-to-end delay in seconds (arrival → final token, §2).
    pub delay_secs: f64,
    /// Profiler latency in seconds (0 for fixed-config systems).
    pub profiler_secs: f64,
    /// Retrieval latency in seconds: the measured index-search work (plus
    /// query embedding) of this query's retrieval, converted by the run's
    /// [`RetrievalModel`].
    pub retrieval_secs: f64,
    /// Fraction of the query's needed base facts present in the retrieved
    /// chunks — ground-truth retrieval recall at the executed `num_chunks`
    /// (approximate indexes and shallow configurations both lower it).
    pub retrieval_recall: f64,
    /// The measured index-search work behind `retrieval_secs`: distance
    /// evaluations (exact and quantized), centroids ranked, lists probed,
    /// graph hops. Zero except for the search itself (embedding is charged
    /// separately).
    pub work: SearchWork,
    /// The executed configuration.
    pub config: RagConfig,
    /// Whether the §4.3 memory fallback fired.
    pub fallback: bool,
    /// The replica that served the query (0 in API-serving mode).
    pub replica: u32,
    /// Arrival time in seconds.
    pub arrival_secs: f64,
    /// Completion time in seconds.
    pub finish_secs: f64,
    /// Worst engine queueing delay over the query's calls (submit → last
    /// admission), in seconds — what SLO-class scheduling optimizes for
    /// high-priority traffic. 0 in API-serving mode (no local queue).
    pub queue_wait_secs: f64,
    /// The scheduling class the query's calls ran at.
    pub priority: Priority,
    /// Per-stage wall-nanos along the critical chain; sums exactly to the
    /// end-to-end delay.
    pub stages: StageBreakdown,
}

/// Aggregate outcome of one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Per-query records, in query order.
    pub per_query: Vec<QueryResult>,
    /// Number of engine replicas that served the run.
    pub replicas: usize,
    /// GPU busy seconds summed across replicas (for the cost model).
    pub gpu_busy_secs: f64,
    /// API dollars spent (profiler and/or API serving).
    pub api_cost_usd: f64,
    /// First arrival → last completion, seconds.
    pub makespan_secs: f64,
    /// Chunk-KV prefix-cache hit rate (0 when the cache is disabled).
    pub prefix_hit_rate: f64,
    /// Preemptions across all replicas (0 under non-preemptive policies).
    pub preemptions: u64,
    /// Tokens discarded and recomputed by preemptions (0 under
    /// [`PreemptMode::Migrate`](metis_engine::PreemptMode) when every
    /// victim found headroom).
    pub preempted_tokens: u64,
    /// Preemption victims moved to another replica instead of recomputed.
    pub migrations: u64,
    /// Tokens of computed KV shipped between replicas by migrations.
    pub migrated_tokens: u64,
    /// High-water mark of concurrently live replicas (equals `replicas`
    /// for a fixed fleet).
    pub peak_replicas: usize,
    /// Integrated capacity cost in replica-seconds: each replica slot
    /// billed from spawn to retirement (or end of run). The autoscaler's
    /// cost axis; a fixed fleet of `n` bills `n ×` the run's span.
    pub replica_seconds: f64,
    /// Which driver executed the run.
    pub driver: DriverKind,
    /// The realtime time-scale knob (1.0 for simulated runs).
    pub time_scale: f64,
    /// The index the run searched.
    pub index_spec: IndexSpec,
    /// How the index stored and scored vectors.
    pub quant: Quantization,
    /// Total index-search work across all (non-synthetic) queries.
    pub index_work: SearchWork,
    /// Chunk bytes served from the store's hot (decoded) tier during the
    /// run.
    pub store_bytes_hot: u64,
    /// Chunk bytes decoded from the store's cold (serialized) tier during
    /// the run.
    pub store_bytes_cold: u64,
}

impl RunResult {
    /// Mean F1 across queries.
    pub fn mean_f1(&self) -> f64 {
        if self.per_query.is_empty() {
            return 0.0;
        }
        self.per_query.iter().map(|q| q.f1).sum::<f64>() / self.per_query.len() as f64
    }

    /// Mean end-to-end delay in seconds.
    pub fn mean_delay_secs(&self) -> f64 {
        self.latency().mean()
    }

    /// Full latency distribution.
    pub fn latency(&self) -> LatencySummary {
        LatencySummary::new(self.per_query.iter().map(|q| q.delay_secs).collect())
    }

    /// Retrieval-latency distribution across queries.
    pub fn retrieval(&self) -> LatencySummary {
        LatencySummary::new(self.per_query.iter().map(|q| q.retrieval_secs).collect())
    }

    /// Mean ground-truth retrieval recall across queries.
    pub fn mean_retrieval_recall(&self) -> f64 {
        if self.per_query.is_empty() {
            return 0.0;
        }
        self.per_query
            .iter()
            .map(|q| q.retrieval_recall)
            .sum::<f64>()
            / self.per_query.len() as f64
    }

    /// End-to-end delay distribution of one scheduling class.
    pub fn latency_of(&self, priority: Priority) -> LatencySummary {
        LatencySummary::new(
            self.per_query
                .iter()
                .filter(|q| q.priority == priority)
                .map(|q| q.delay_secs)
                .collect(),
        )
    }

    /// Engine queueing-delay distribution, optionally restricted to one
    /// scheduling class — the figure of merit for preemptive scheduling
    /// (high-priority waits should stay flat under bursts).
    pub fn queue_wait(&self, priority: Option<Priority>) -> LatencySummary {
        LatencySummary::new(
            self.per_query
                .iter()
                .filter(|q| priority.is_none_or(|p| q.priority == p))
                .map(|q| q.queue_wait_secs)
                .collect(),
        )
    }

    /// Throughput over the run.
    pub fn throughput(&self) -> ThroughputSummary {
        ThroughputSummary {
            completed: self.per_query.len(),
            makespan_secs: self.makespan_secs,
        }
    }

    /// Completed-query counts per replica, in replica-id order.
    pub fn completions_by_replica(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.replicas.max(1)];
        for q in &self.per_query {
            let idx = q.replica as usize;
            if idx >= counts.len() {
                counts.resize(idx + 1, 0);
            }
            counts[idx] += 1;
        }
        counts
    }

    /// Mean seconds per pipeline stage across the run — the Fig-12-style
    /// delay decomposition. `stage_breakdown().total()` equals
    /// [`mean_delay_secs`](Self::mean_delay_secs) (up to float summation),
    /// because each query's stages partition its delay exactly.
    pub fn stage_breakdown(&self) -> StageMeans {
        if self.per_query.is_empty() {
            return StageMeans::default();
        }
        let n = self.per_query.len() as f64;
        let mut sums = StageMeans::default();
        for q in &self.per_query {
            sums.profile += nanos_to_secs(q.stages.profile);
            sums.decide += nanos_to_secs(q.stages.decide);
            sums.retrieve += nanos_to_secs(q.stages.retrieve);
            sums.queue_wait += nanos_to_secs(q.stages.queue_wait);
            sums.prefill += nanos_to_secs(q.stages.prefill);
            sums.decode += nanos_to_secs(q.stages.decode);
        }
        StageMeans {
            profile: sums.profile / n,
            decide: sums.decide / n,
            retrieve: sums.retrieve / n,
            queue_wait: sums.queue_wait / n,
            prefill: sums.prefill / n,
            decode: sums.decode / n,
        }
    }

    /// Lowers the run into one report cell — the uniform currency of the
    /// bench harness and the CI perf gate (see
    /// [`metis_metrics::report`]).
    ///
    /// Realtime runs are marked with a `driver = realtime` knob and a
    /// `time_scale` extra metric so they are distinguishable in committed
    /// baselines (and so the perf gate can skip them — wall-paced numbers
    /// are machine-dependent). Simulated cells deliberately carry *no*
    /// driver marker: the simulator is the default and has always been, and
    /// pre-refactor golden reports must stay byte-for-byte valid. For the
    /// same reason, index-work extras (`index_*`, `store_bytes_*`) are
    /// emitted only when the run used a non-default index or vector storage
    /// — a flat/f32 cell renders exactly as it did before the ANN subsystem
    /// existed.
    pub fn cell_report(&self, id: impl Into<String>, seed: u64) -> CellReport {
        let cell = CellReport {
            queries: self.per_query.len() as u64,
            f1: self.mean_f1(),
            latency: SummaryStats::of(&self.latency()),
            queue_wait: SummaryStats::of(&self.queue_wait(None)),
            retrieval: SummaryStats::of(&self.retrieval()),
            stages: self
                .stage_breakdown()
                .named()
                .iter()
                .map(|&(name, secs)| (name.to_owned(), secs))
                .collect(),
            throughput_qps: self.throughput().qps(),
            preemptions: self.preemptions,
            gpu_busy_secs: self.gpu_busy_secs,
            api_cost_usd: self.api_cost_usd,
            retrieval_recall: self.mean_retrieval_recall(),
            ..CellReport::new(id, seed)
        };
        let cell = if self.driver == DriverKind::Realtime {
            cell.knob("driver", DriverKind::Realtime.name())
                .metric("time_scale", self.time_scale)
        } else {
            cell
        };
        // Elasticity extras only when the fleet actually changed shape or
        // migrations happened: fixed-fleet recompute cells (everything that
        // existed before elasticity) must render byte-identically.
        let cell = if self.peak_replicas != self.replicas {
            cell.metric("peak_replicas", self.peak_replicas as f64)
                .metric("replica_seconds", self.replica_seconds)
        } else {
            cell
        };
        let cell = if self.migrations > 0 {
            cell.metric("migrations", self.migrations as f64)
                .metric("migrated_tokens", self.migrated_tokens as f64)
                .metric("preempted_tokens", self.preempted_tokens as f64)
        } else {
            cell
        };
        if self.index_spec != IndexSpec::Flat || self.quant != Quantization::F32 {
            cell.knob("quantize", self.quant.name())
                .metric(
                    "index_distance_evals",
                    self.index_work.vectors_scored as f64,
                )
                .metric(
                    "index_quantized_evals",
                    self.index_work.quantized_scored as f64,
                )
                .metric("index_hops", self.index_work.graph_hops as f64)
                .metric("index_lists_probed", self.index_work.lists_probed as f64)
                .metric("store_bytes_hot", self.store_bytes_hot as f64)
                .metric("store_bytes_cold", self.store_bytes_cold as f64)
        } else {
            cell
        }
    }

    /// Mean fraction of the delay spent profiling (Fig. 18).
    pub fn mean_profiler_fraction(&self) -> f64 {
        if self.per_query.is_empty() {
            return 0.0;
        }
        self.per_query
            .iter()
            .map(|q| {
                if q.delay_secs > 0.0 {
                    q.profiler_secs / q.delay_secs
                } else {
                    0.0
                }
            })
            .sum::<f64>()
            / self.per_query.len() as f64
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EventKind {
    /// Run the profiler (or skip straight to deciding for fixed systems).
    Profile(usize),
    /// Choose the configuration (sized against the routed replica's free
    /// memory) and start the retrieval its `num_chunks` asks for.
    Decide(usize),
    /// Retrieval finished: plan synthesis over the fetched chunks and
    /// submit the calls.
    Retrieve(usize),
    /// Periodic autoscaler evaluation: read queue depth and preemption
    /// pressure, add or drain a replica.
    Autoscale,
}

struct PendingQuery {
    /// When the query logically arrived (its Profile event time).
    arrival: Nanos,
    outcome: ProfileOutcome,
}

/// A query between its Decide and Retrieve events: the decision is made and
/// the index search is in flight.
struct StagedQuery {
    arrival: Nanos,
    profiler_nanos: Nanos,
    retrieval_nanos: Nanos,
    retrieval_recall: f64,
    work: SearchWork,
    priority: Priority,
    config: RagConfig,
    fallback: bool,
    replica: ReplicaId,
    retrieved: Vec<RetrievalResult>,
}

struct ActiveQuery {
    query_index: usize,
    arrival: Nanos,
    profiler_nanos: Nanos,
    retrieval_nanos: Nanos,
    retrieval_recall: f64,
    work: SearchWork,
    plan: SynthesisPlan,
    replica: ReplicaId,
    remaining: usize,
    reduce_submitted: bool,
    fallback: bool,
    synthetic: bool,
    priority: Priority,
    /// Worst (submit → admission) delay seen across the query's calls.
    queue_wait: Nanos,
    /// Per-stage accounting: profile/retrieve filled at submission, engine
    /// stages accumulated from the completion that gates each wave.
    stages: StageBreakdown,
}

/// Mutable bookkeeping shared by the event handlers: the set of in-flight
/// queries and the finished records.
#[derive(Default)]
struct Flight {
    active: Vec<ActiveQuery>,
    req_to_active: BTreeMap<RequestId, usize>,
    next_req: u64,
    next_group: u64,
    results: Vec<QueryResult>,
    api_cost: f64,
}

impl Flight {
    fn fresh_request(&mut self) -> RequestId {
        let id = RequestId(self.next_req);
        self.next_req += 1;
        id
    }

    fn fresh_group(&mut self) -> GroupId {
        let id = GroupId(self.next_group);
        self.next_group += 1;
        id
    }
}

/// The workload runner: a system- and driver-agnostic event loop over one
/// [`ConfigController`] and an engine [`Driver`].
pub struct Runner<'a> {
    dataset: &'a Dataset,
    cfg: RunConfig,
}

impl<'a> Runner<'a> {
    /// Creates a runner for one dataset and run configuration.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` does not provide one entry per query.
    pub fn new(dataset: &'a Dataset, cfg: RunConfig) -> Self {
        assert_eq!(
            cfg.arrivals.len(),
            dataset.queries.len(),
            "need one arrival per query"
        );
        assert_eq!(
            cfg.index,
            dataset.db.index_meta().spec,
            "RunConfig.index must match the dataset's index — build the \
             dataset with build_dataset_with_index(.., cfg.index)"
        );
        assert_eq!(
            cfg.quant,
            dataset.db.index_meta().quant,
            "RunConfig.quant must match the dataset's vector storage — build \
             the dataset with build_dataset_with_spec(.., cfg.index, cfg.quant)"
        );
        Self { dataset, cfg }
    }

    /// Executes the run to completion.
    pub fn run(self) -> RunResult {
        let api_mode = self.cfg.model.kind == ModelKind::Api;
        let latency = LatencyModel::new(self.cfg.model.clone(), self.cfg.cluster);
        let gen = GenerationModel::new(&self.cfg.model, self.cfg.gen);
        let mut controller = self.cfg.system.controller();
        // API serving has no local replicas: collapse to one engine (never
        // stepped) so the run report doesn't invent idle backends.
        let replica_count = if api_mode {
            1
        } else {
            self.cfg.replicas.max(1)
        };
        let fleet = match &self.cfg.replica_specs {
            Some(specs) if !api_mode => {
                FleetSpec::heterogeneous(self.cfg.model.clone(), specs.clone())
            }
            _ => FleetSpec::new(self.cfg.model.clone(), self.cfg.cluster, replica_count),
        };
        let engine_cfg = EngineConfig {
            policy: controller.sched_policy(),
            ..self.cfg.engine
        };
        let engines: Vec<Engine> = fleet
            .latency_models()
            .into_iter()
            .map(|lat| Engine::new(lat, engine_cfg))
            .collect();
        // API serving never steps an engine, so the driver choice is moot
        // there; force the simulator rather than spawning idle workers.
        let spec = if api_mode {
            DriverSpec::Sim
        } else {
            self.cfg.driver
        };
        let mut driver: Box<dyn Driver> = spec.build(engines, self.cfg.router);
        let metadata = self.dataset.db.metadata().clone();
        // Snapshot the chunk store's tier counters so the run report can
        // attribute hot/cold traffic to this run alone (the store's counters
        // are cumulative across runs sharing a dataset).
        let store_stats_at_start = self.dataset.db.store().stats();

        // Event queue: (time, seq) → event.
        let mut heap: BinaryHeap<Reverse<(Nanos, u64)>> = BinaryHeap::new();
        let mut events: BTreeMap<u64, EventKind> = BTreeMap::new();
        let mut seq: u64 = 0;
        let push = |heap: &mut BinaryHeap<Reverse<(Nanos, u64)>>,
                    events: &mut BTreeMap<u64, EventKind>,
                    seq: &mut u64,
                    t: Nanos,
                    e: EventKind| {
            heap.push(Reverse((t, *seq)));
            events.insert(*seq, e);
            *seq += 1;
        };

        if self.cfg.closed_loop {
            push(
                &mut heap,
                &mut events,
                &mut seq,
                self.cfg.arrivals[0],
                EventKind::Profile(0),
            );
        } else {
            for (i, &t) in self.cfg.arrivals.iter().enumerate() {
                push(&mut heap, &mut events, &mut seq, t, EventKind::Profile(i));
            }
        }

        // One prefix cache per replica: chunk KV materialized on one backend
        // is invisible to the others. Replicas added by the autoscaler get
        // their own (cold) cache of the same size.
        let prefix_tokens = self
            .cfg
            .prefix_cache_bytes
            .map(|bytes| bytes / self.cfg.model.kv_bytes_per_token().max(1));
        let mut prefix_caches: Option<Vec<PrefixCache>> = prefix_tokens.map(|tokens| {
            (0..driver.replicas())
                .map(|_| PrefixCache::new(tokens))
                .collect()
        });

        // Fleet elasticity: schedule the first autoscaler tick one interval
        // after the first arrival; each tick reschedules the next while
        // external events remain.
        let autoscale = if api_mode { None } else { self.cfg.autoscale };
        let mut scaler_state = AutoscalerState::default();
        if let Some(policy) = &autoscale {
            if let Some(&first) = self.cfg.arrivals.iter().min() {
                push(
                    &mut heap,
                    &mut events,
                    &mut seq,
                    first + policy.eval_interval_nanos,
                    EventKind::Autoscale,
                );
            }
        }
        let mut pending: BTreeMap<usize, PendingQuery> = BTreeMap::new();
        let mut staged: BTreeMap<usize, StagedQuery> = BTreeMap::new();
        let mut flight = Flight::default();

        loop {
            let next_event = heap.peek().map(|Reverse((t, s))| (*t, *s));
            match next_event {
                Some((t, s)) => {
                    // Let the driver make progress (and collect completions)
                    // until the event at `t` is due: the simulator steps the
                    // most-lagging replica up to `t`, the realtime driver
                    // waits for the wall to reach `t`. Completions are
                    // processed batch by batch so follow-up submissions (a
                    // query's reduce) chain off each batch before the driver
                    // runs any further.
                    if !api_mode {
                        while let Some(done) = driver.pump_before(t) {
                            self.process_completions(
                                &done,
                                &mut flight,
                                driver.as_mut(),
                                controller.as_mut(),
                                |t, e| push(&mut heap, &mut events, &mut seq, t, e),
                            );
                        }
                    }
                    heap.pop();
                    let event = events.remove(&s).expect("event for popped seq");
                    match event {
                        EventKind::Profile(q) => {
                            let outcome = controller.on_profile(
                                &self.dataset.queries[q],
                                &metadata,
                                self.cfg.seed ^ 0xF0F1,
                            );
                            flight.api_cost += outcome.cost_usd;
                            let decide_at = t + outcome.profiler_nanos;
                            pending.insert(
                                q,
                                PendingQuery {
                                    arrival: t,
                                    outcome,
                                },
                            );
                            push(
                                &mut heap,
                                &mut events,
                                &mut seq,
                                decide_at,
                                EventKind::Decide(q),
                            );
                        }
                        EventKind::Decide(q) => {
                            let p = pending.remove(&q).expect("profiled before decide");
                            let (stage, retrieve_at) = self.decide_and_retrieve(
                                q,
                                t,
                                p,
                                &latency,
                                driver.as_mut(),
                                api_mode,
                                controller.as_mut(),
                            );
                            staged.insert(q, stage);
                            push(
                                &mut heap,
                                &mut events,
                                &mut seq,
                                retrieve_at,
                                EventKind::Retrieve(q),
                            );
                        }
                        EventKind::Retrieve(q) => {
                            let stage = staged.remove(&q).expect("decided before retrieve");
                            self.submit_after_retrieval(
                                q,
                                t,
                                stage,
                                &gen,
                                &latency,
                                driver.as_mut(),
                                api_mode,
                                &mut flight,
                                controller.as_mut(),
                                &mut prefix_caches,
                                |t, e| push(&mut heap, &mut events, &mut seq, t, e),
                            );
                        }
                        EventKind::Autoscale => {
                            let policy =
                                autoscale.as_ref().expect("autoscale event without policy");
                            let active = driver.active_replicas(t);
                            let queue_depth = driver.queue_depth();
                            // Worst pressure over the replicas still taking
                            // routes: retired slots keep their (frozen)
                            // stats and must not gate future decisions.
                            let pressure = (0..driver.replicas())
                                .map(|i| ReplicaId(i as u32))
                                .filter(|&id| driver.is_routable(id, t))
                                .map(|id| driver.preemption_pressure(id))
                                .fold(0.0_f64, f64::max);
                            match policy.evaluate(
                                t,
                                active,
                                queue_depth,
                                pressure,
                                &mut scaler_state,
                            ) {
                                ScaleAction::Up => {
                                    // New slots cycle through the fleet's
                                    // replica specs, so a heterogeneous mix
                                    // grows in kind.
                                    let slot = driver.replicas();
                                    let spec = fleet.replicas[slot % fleet.replicas.len()];
                                    let lat =
                                        LatencyModel::new(self.cfg.model.clone(), spec.cluster);
                                    let warmup = spec.warmup_nanos.max(policy.warmup_nanos);
                                    driver.add_replica(Engine::new(lat, engine_cfg), t, warmup);
                                    if let (Some(caches), Some(tokens)) =
                                        (prefix_caches.as_mut(), prefix_tokens)
                                    {
                                        caches.push(PrefixCache::new(tokens));
                                    }
                                }
                                ScaleAction::Down => {
                                    // Drain the newest routable slot; the
                                    // driver refuses the last one.
                                    for i in (0..driver.replicas()).rev() {
                                        let id = ReplicaId(i as u32);
                                        if driver.is_routable(id, t) && driver.drain_replica(id, t)
                                        {
                                            break;
                                        }
                                    }
                                }
                                ScaleAction::Hold => {}
                            }
                            // Keep ticking while external events remain;
                            // once only the drain is left the fleet is
                            // frozen and the run can empty its heap.
                            if !events.is_empty() {
                                push(
                                    &mut heap,
                                    &mut events,
                                    &mut seq,
                                    t + policy.eval_interval_nanos,
                                    EventKind::Autoscale,
                                );
                            }
                        }
                    }
                }
                None => {
                    // No external events left: drain. Keep pumping (and
                    // chaining reduce submissions) until the driver reports
                    // every submitted request complete.
                    if api_mode {
                        break;
                    }
                    match driver.pump_idle() {
                        Some(done) => self.process_completions(
                            &done,
                            &mut flight,
                            driver.as_mut(),
                            controller.as_mut(),
                            |t, e| push(&mut heap, &mut events, &mut seq, t, e),
                        ),
                        None => break,
                    }
                }
            }
        }

        // Tear the driver down (joining worker threads for realtime) and
        // collect run totals.
        let driver_stats = driver.finish();

        let Flight {
            mut results,
            api_cost,
            ..
        } = flight;
        results.sort_by_key(|r| r.query_index);
        let makespan_secs = {
            let first = results
                .iter()
                .map(|r| r.arrival_secs)
                .fold(f64::MAX, f64::min);
            let last = results.iter().map(|r| r.finish_secs).fold(0.0, f64::max);
            if results.is_empty() {
                0.0
            } else {
                (last - first).max(0.0)
            }
        };
        let mut index_work = SearchWork::default();
        for r in &results {
            index_work.add(&r.work);
        }
        let store_delta = self.dataset.db.store().stats().since(&store_stats_at_start);
        RunResult {
            per_query: results,
            replicas: driver_stats.replicas,
            gpu_busy_secs: driver_stats.busy_secs(),
            api_cost_usd: api_cost,
            makespan_secs,
            preemptions: driver_stats.preemptions,
            preempted_tokens: driver_stats.preempted_tokens,
            migrations: driver_stats.migrations,
            migrated_tokens: driver_stats.migrated_tokens,
            peak_replicas: driver_stats.peak_replicas,
            replica_seconds: driver_stats.replica_seconds,
            driver: spec.kind(),
            time_scale: spec.time_scale(),
            index_spec: self.cfg.index,
            quant: self.cfg.quant,
            index_work,
            store_bytes_hot: store_delta.bytes_hot_touched,
            store_bytes_cold: store_delta.bytes_cold_touched,
            prefix_hit_rate: prefix_caches.map_or(0.0, |caches| {
                let (hits, lookups) = caches
                    .iter()
                    .fold((0u64, 0u64), |(h, l), c| (h + c.hits(), l + c.lookups()));
                if lookups == 0 {
                    0.0
                } else {
                    hits as f64 / lookups as f64
                }
            }),
        }
    }

    /// Chooses the configuration for `q` at decision time `t` (against the
    /// routed replica's memory snapshot), executes the index search the
    /// decided `num_chunks` asks for, and returns the staged query plus the
    /// timeline instant its retrieval completes — the measured search work
    /// converted by the run's [`RetrievalModel`].
    #[allow(clippy::too_many_arguments)]
    fn decide_and_retrieve(
        &self,
        q: usize,
        t: Nanos,
        pending: PendingQuery,
        latency: &LatencyModel,
        driver: &mut dyn Driver,
        api_mode: bool,
        controller: &mut dyn ConfigController,
    ) -> (StagedQuery, Nanos) {
        let query = &self.dataset.queries[q];
        let chunk_size = self.dataset.db.metadata().chunk_size as u64;
        // Route first, then let the controller size its configuration
        // against that replica's free memory: per-backend joint
        // configuration/scheduling.
        let replica = if api_mode {
            ReplicaId(0)
        } else {
            driver.route(t)
        };
        let decision = controller.decide(&DecisionContext {
            space: pending.outcome.space.as_ref(),
            estimate: pending.outcome.estimate.as_ref(),
            free_kv_tokens: driver.free_kv_tokens(replica),
            preemption_pressure: if api_mode {
                0.0
            } else {
                driver.preemption_pressure(replica)
            },
            chunk_size,
            query_tokens: query.tokens.len() as u64,
            index: self.dataset.db.index_meta(),
            latency,
        });
        let (config, fallback) = (decision.config, decision.fallback);

        // The real index search, sized by the decision's top-k through the
        // one shared clamp, with per-search work accounting.
        let top_k = config.effective_chunks(self.dataset.db.len());
        let RetrievalOutcome {
            results: retrieved,
            work,
            embed_units,
        } = self.dataset.db.retrieve_counted(&query.tokens, top_k);
        let retrieval_nanos = self.cfg.retrieval.nanos(&work, embed_units);
        let retrieval_recall = fact_recall(query, &retrieved);
        (
            StagedQuery {
                arrival: pending.arrival,
                profiler_nanos: pending.outcome.profiler_nanos,
                retrieval_nanos,
                retrieval_recall,
                work,
                priority: pending.outcome.priority,
                config,
                fallback,
                replica,
                retrieved,
            },
            t + retrieval_nanos,
        )
    }

    /// Retrieval for `q` finished at `t`: plan synthesis over the fetched
    /// chunks and submit the calls to the replica routed at decide time.
    #[allow(clippy::too_many_arguments)]
    fn submit_after_retrieval(
        &self,
        q: usize,
        t: Nanos,
        stage: StagedQuery,
        gen: &GenerationModel,
        latency: &LatencyModel,
        driver: &mut dyn Driver,
        api_mode: bool,
        flight: &mut Flight,
        controller: &mut dyn ConfigController,
        prefix_caches: &mut Option<Vec<PrefixCache>>,
        mut push_event: impl FnMut(Nanos, EventKind),
    ) {
        let query = &self.dataset.queries[q];
        let StagedQuery {
            arrival,
            profiler_nanos,
            retrieval_nanos,
            retrieval_recall,
            work,
            priority,
            config,
            fallback,
            replica,
            retrieved,
        } = stage;
        let inputs = SynthesisInputs {
            gen,
            truth: &query.truth,
            query_tokens: &query.tokens,
            boilerplate: &self.dataset.boilerplate,
        };
        let plan = plan_synthesis(
            &inputs,
            &config,
            &retrieved,
            self.cfg.seed ^ (q as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );

        if api_mode {
            // API serving (Fig. 13's GPT-4o comparison): map calls run
            // concurrently against the provider; the reduce (if any) follows.
            let map_nanos = plan
                .map_calls
                .iter()
                .map(|c| latency.api_call(c.prompt_tokens, c.output_tokens))
                .max()
                .unwrap_or(0);
            for c in &plan.map_calls {
                flight.api_cost += latency.api_cost_usd(c.prompt_tokens, c.output_tokens);
            }
            let reduce_nanos = plan.reduce_call.map_or(0, |c| {
                flight.api_cost += latency.api_cost_usd(c.prompt_tokens, c.output_tokens);
                latency.api_call(c.prompt_tokens, c.output_tokens)
            });
            let finish = t + map_nanos + reduce_nanos;
            flight.results.push(QueryResult {
                query_index: q,
                f1: f1_score(&plan.answer, &query.gold_answer()),
                delay_secs: nanos_to_secs(finish.saturating_sub(arrival)),
                profiler_secs: nanos_to_secs(profiler_nanos),
                retrieval_secs: nanos_to_secs(retrieval_nanos),
                retrieval_recall,
                work,
                config,
                fallback,
                replica: 0,
                arrival_secs: nanos_to_secs(arrival),
                finish_secs: nanos_to_secs(finish),
                queue_wait_secs: 0.0,
                priority,
                // No local queue or prefill accounting against a provider:
                // the whole API call lands in `decode`.
                stages: StageBreakdown {
                    profile: profiler_nanos,
                    retrieve: retrieval_nanos,
                    decode: map_nanos + reduce_nanos,
                    ..StageBreakdown::default()
                },
            });
            if self.cfg.closed_loop && q + 1 < self.dataset.queries.len() {
                push_event(finish, EventKind::Profile(q + 1));
            }
            return;
        }

        // Chunk-level KV reuse (§8): consult the prefix cache for every
        // chunk this plan reads; cached chunks skip prefill compute.
        let k_used = plan
            .map_calls
            .len()
            .min(retrieved.len())
            .max(usize::from(!retrieved.is_empty()));
        // Prefix-aware routing: the decide-time route was a least-KV
        // fallback (the retrieved chunks were unknown). Now they are known,
        // so re-route to the routable replica whose cache already holds the
        // most of their KV — and only switch when some cache actually
        // overlaps, otherwise the memory-sized fallback stands.
        let replica = match (&self.cfg.router, prefix_caches.as_ref()) {
            (RouterPolicy::PrefixAware, Some(caches)) if !api_mode => {
                let considered = match config.synthesis {
                    SynthesisMethod::Stuff => config.effective_chunks(retrieved.len()),
                    _ => k_used,
                };
                let overlap_of = |cache: &PrefixCache| -> u64 {
                    retrieved
                        .iter()
                        .take(considered)
                        .map(|r| cache.peek_tokens(r.hit.chunk, r.text.len() as u64))
                        .sum()
                };
                caches
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| {
                        driver.is_routable(ReplicaId(*i as u32), t) || *i == replica.0 as usize
                    })
                    .map(|(i, cache)| (overlap_of(cache), i))
                    .max_by_key(|&(overlap, i)| (overlap, std::cmp::Reverse(i)))
                    .filter(|&(overlap, _)| overlap > 0)
                    .map_or(replica, |(_, i)| ReplicaId(i as u32))
            }
            _ => replica,
        };
        // The routed replica's own cache: KV cached elsewhere doesn't help.
        let prefix_cache = prefix_caches
            .as_mut()
            .map(|caches| &mut caches[replica.0 as usize]);
        let cached_per_call: Vec<u64> = match prefix_cache {
            None => vec![0; plan.map_calls.len()],
            Some(pc) => match config.synthesis {
                SynthesisMethod::Stuff => {
                    let total: u64 = retrieved
                        .iter()
                        .take(config.effective_chunks(retrieved.len()))
                        .map(|r| pc.lookup_or_insert(r.hit.chunk, r.text.len() as u64))
                        .sum();
                    vec![total]
                }
                _ => retrieved
                    .iter()
                    .take(k_used)
                    .map(|r| pc.lookup_or_insert(r.hit.chunk, r.text.len() as u64))
                    .collect(),
            },
        };

        // Submit the first wave (maps / the single stuff call).
        let wave_stage = if plan.reduce_call.is_some() {
            Stage::Map
        } else {
            Stage::Single
        };
        self.submit_wave(
            driver,
            flight,
            SubmitWave {
                query_index: q,
                arrival,
                profiler_nanos,
                retrieval_nanos,
                retrieval_recall,
                work,
                plan,
                replica,
                stage: wave_stage,
                cached_per_call: &cached_per_call,
                now: t,
                fallback,
                synthetic: false,
                priority,
            },
        );

        // §5 feedback: the controller may ask for one golden-configuration
        // run whose completion grounds the profiler. Its retrieval is
        // background measurement and is not charged to the timeline.
        if controller.feedback_due() {
            let golden = RagConfig::golden();
            let retrieved = self.dataset.db.retrieve(
                &query.tokens,
                golden.effective_chunks(self.dataset.db.len()),
            );
            let plan = plan_synthesis(
                &inputs,
                &golden,
                &retrieved,
                self.cfg.seed ^ 0x601D ^ q as u64,
            );
            let replica = driver.route(t);
            self.submit_wave(
                driver,
                flight,
                SubmitWave {
                    query_index: q,
                    arrival: t,
                    profiler_nanos: 0,
                    retrieval_nanos: 0,
                    retrieval_recall: 0.0,
                    work: SearchWork::default(),
                    plan,
                    replica,
                    stage: Stage::Map,
                    cached_per_call: &[],
                    now: t,
                    fallback: false,
                    synthetic: true,
                    // Golden feedback runs are background measurement: they
                    // yield to real traffic under a preemptive scheduler.
                    priority: Priority::Batch,
                },
            );
        }
    }

    /// Submits one query's first wave of calls to its routed replica and
    /// records it as active.
    fn submit_wave(&self, driver: &mut dyn Driver, flight: &mut Flight, wave: SubmitWave<'_>) {
        let group = flight.fresh_group();
        let idx = flight.active.len();
        let call_count = wave.plan.map_calls.len();
        for (ci, c) in wave.plan.map_calls.iter().enumerate() {
            let id = flight.fresh_request();
            driver.submit(
                wave.replica,
                LlmRequest {
                    id,
                    group,
                    stage: wave.stage,
                    prompt_tokens: c.prompt_tokens,
                    output_tokens: c.output_tokens,
                    cached_prompt_tokens: wave.cached_per_call.get(ci).copied().unwrap_or(0),
                    arrival: wave.now,
                    priority: wave.priority,
                },
            );
            flight.req_to_active.insert(id, idx);
        }
        flight.active.push(ActiveQuery {
            query_index: wave.query_index,
            arrival: wave.arrival,
            profiler_nanos: wave.profiler_nanos,
            retrieval_nanos: wave.retrieval_nanos,
            retrieval_recall: wave.retrieval_recall,
            work: wave.work,
            plan: wave.plan,
            replica: wave.replica,
            remaining: call_count,
            reduce_submitted: false,
            fallback: wave.fallback,
            synthetic: wave.synthetic,
            priority: wave.priority,
            queue_wait: 0,
            stages: StageBreakdown {
                profile: wave.profiler_nanos,
                retrieve: wave.retrieval_nanos,
                ..StageBreakdown::default()
            },
        });
    }

    /// Handles engine completions: map → reduce chaining and finalization.
    fn process_completions(
        &self,
        completions: &[Completion],
        flight: &mut Flight,
        driver: &mut dyn Driver,
        controller: &mut dyn ConfigController,
        mut push_event: impl FnMut(Nanos, EventKind),
    ) {
        for c in completions {
            let Some(&idx) = flight.req_to_active.get(&c.id) else {
                continue;
            };
            flight.req_to_active.remove(&c.id);
            let a = &mut flight.active[idx];
            a.remaining = a.remaining.saturating_sub(1);
            // The query's queueing delay is its worst call's wait
            // (submit → last admission; re-admissions after preemption
            // count — that wait is real).
            a.queue_wait = a.queue_wait.max(c.admitted.saturating_sub(c.arrival));
            if a.remaining > 0 {
                continue;
            }
            // `c` gated its wave (last map before the reduce, or the final
            // call): its queue/prefill/decode decomposition *is* the
            // critical chain's — within one engine iteration all finishes
            // coincide, and the reduce's arrival equals this finish, so the
            // chain sums telescope to the query's end-to-end delay.
            a.stages.queue_wait += c.admitted.saturating_sub(c.arrival);
            a.stages.prefill += c.prefill_done.saturating_sub(c.admitted);
            a.stages.decode += c.finish.saturating_sub(c.prefill_done);
            if let (Some(reduce), false) = (a.plan.reduce_call, a.reduce_submitted) {
                // All maps done: submit the reduce call now, to the same
                // replica (the query's KV and gang stay on one backend).
                let replica = a.replica;
                let priority = a.priority;
                a.reduce_submitted = true;
                a.remaining = 1;
                let id = flight.fresh_request();
                driver.submit(
                    replica,
                    LlmRequest {
                        id,
                        group: c.group,
                        stage: Stage::Reduce,
                        prompt_tokens: reduce.prompt_tokens,
                        output_tokens: reduce.output_tokens,
                        cached_prompt_tokens: 0,
                        arrival: c.finish,
                        priority,
                    },
                );
                flight.req_to_active.insert(id, idx);
                continue;
            }
            // Query complete.
            let a = &flight.active[idx];
            controller.on_query_complete(a.synthetic);
            if a.synthetic {
                continue;
            }
            let query = &self.dataset.queries[a.query_index];
            flight.results.push(QueryResult {
                query_index: a.query_index,
                f1: f1_score(&a.plan.answer, &query.gold_answer()),
                delay_secs: nanos_to_secs(c.finish.saturating_sub(a.arrival)),
                profiler_secs: nanos_to_secs(a.profiler_nanos),
                retrieval_secs: nanos_to_secs(a.retrieval_nanos),
                retrieval_recall: a.retrieval_recall,
                work: a.work,
                config: a.plan.config,
                fallback: a.fallback,
                replica: c.replica.0,
                arrival_secs: nanos_to_secs(a.arrival),
                finish_secs: nanos_to_secs(c.finish),
                queue_wait_secs: nanos_to_secs(a.queue_wait),
                priority: a.priority,
                stages: a.stages,
            });
            if self.cfg.closed_loop {
                let next = flight.results.len();
                if next < self.dataset.queries.len() {
                    push_event(c.finish, EventKind::Profile(next));
                }
            }
        }
    }
}

/// One wave of submissions: a query's map calls (or single stuff call)
/// bound for one replica.
struct SubmitWave<'a> {
    query_index: usize,
    arrival: Nanos,
    profiler_nanos: Nanos,
    retrieval_nanos: Nanos,
    retrieval_recall: f64,
    work: SearchWork,
    plan: SynthesisPlan,
    replica: ReplicaId,
    stage: Stage,
    cached_per_call: &'a [u64],
    now: Nanos,
    fallback: bool,
    synthetic: bool,
    priority: Priority,
}

/// Fraction of the query's needed base facts present in `retrieved` —
/// ground-truth retrieval recall at the executed depth. Queries that need
/// no facts (never generated) would trivially score 1.
fn fact_recall(query: &metis_datasets::QuerySpec, retrieved: &[RetrievalResult]) -> f64 {
    if query.truth.base.is_empty() {
        return 1.0;
    }
    let found: std::collections::BTreeSet<_> =
        retrieved.iter().flat_map(|r| r.text.fact_ids()).collect();
    let hit = query
        .truth
        .base
        .iter()
        .filter(|b| found.contains(&b.id))
        .count();
    hit as f64 / query.truth.base.len() as f64
}

/// Convenience: build Poisson arrivals matching the paper's default workload
/// (λ queries/second) for `n` queries.
pub fn poisson(seed: u64, qps: f64, n: usize) -> Vec<Nanos> {
    metis_datasets::poisson_arrivals(seed, qps, n)
}

/// Convenience: convert seconds to the runner's time unit.
pub fn at_secs(s: f64) -> Nanos {
    secs_to_nanos(s)
}

//! Algorithm 1: rule-based mapping from query profiles to pruned
//! configuration spaces (§4.2), plus the low-confidence fallback of §5.
//!
//! ```text
//! if joint reasoning required == "no":
//!     synthesis_method = map_rerank
//! else if query complexity == "low":
//!     synthesis_method = stuff
//! else:
//!     synthesis_method = {stuff, map_reduce}
//! num_chunks           = [pieces, 3 × pieces]
//! intermediate_length  = summary range
//! ```

use std::collections::VecDeque;

use metis_datasets::Complexity;
use metis_profiler::EstimatedProfile;

use crate::config::{PrunedSpace, SynthesisMethod};

/// Maximum `num_chunks` the mapping will request (full-space cap).
pub const MAX_CHUNKS: u32 = 35;

/// Applies Algorithm 1 to a profile estimate.
pub fn map_profile(profile: &EstimatedProfile) -> PrunedSpace {
    let methods = if !profile.joint {
        vec![SynthesisMethod::MapRerank]
    } else if profile.complexity == Complexity::Low {
        vec![SynthesisMethod::Stuff]
    } else {
        vec![SynthesisMethod::Stuff, SynthesisMethod::MapReduce]
    };
    let n = profile.pieces.max(1);
    PrunedSpace {
        methods,
        num_chunks: (n, (3 * n).min(MAX_CHUNKS)),
        intermediate_length: profile.summary_range,
    }
}

/// Rolling history of recent pruned spaces, backing the §5 fallback: when a
/// profile's confidence is below the 90% threshold, METIS reuses the pruned
/// configuration space of the recent 10 queries instead of trusting the
/// low-confidence estimate.
#[derive(Clone, Debug)]
pub struct ProfileHistory {
    window: usize,
    recent: VecDeque<PrunedSpace>,
}

impl Default for ProfileHistory {
    fn default() -> Self {
        Self::new(10)
    }
}

impl ProfileHistory {
    /// Creates a history over the last `window` queries.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            recent: VecDeque::new(),
        }
    }

    /// Records a trusted pruned space.
    pub fn push(&mut self, space: PrunedSpace) {
        if self.recent.len() == self.window {
            self.recent.pop_front();
        }
        self.recent.push_back(space);
    }

    /// Number of recorded spaces.
    pub fn len(&self) -> usize {
        self.recent.len()
    }

    /// Returns `true` when no space has been recorded.
    pub fn is_empty(&self) -> bool {
        self.recent.is_empty()
    }

    /// The fallback space: the union of methods and the average bounds over
    /// the recorded window. Returns `None` when no history exists (the
    /// caller then uses a conservative default).
    pub fn fallback(&self) -> Option<PrunedSpace> {
        if self.recent.is_empty() {
            return None;
        }
        let mut methods: Vec<SynthesisMethod> = Vec::new();
        let (mut clo, mut chi, mut llo, mut lhi) = (0u64, 0u64, 0u64, 0u64);
        for s in &self.recent {
            for &m in &s.methods {
                if !methods.contains(&m) {
                    methods.push(m);
                }
            }
            clo += u64::from(s.num_chunks.0);
            chi += u64::from(s.num_chunks.1);
            llo += u64::from(s.intermediate_length.0);
            lhi += u64::from(s.intermediate_length.1);
        }
        let n = self.recent.len() as u64;
        Some(PrunedSpace {
            methods,
            num_chunks: (((clo + n / 2) / n) as u32, ((chi + n / 2) / n) as u32),
            intermediate_length: (((llo + n / 2) / n) as u32, ((lhi + n / 2) / n) as u32),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(joint: bool, complexity: Complexity, pieces: u32) -> EstimatedProfile {
        EstimatedProfile {
            complexity,
            joint,
            pieces,
            summary_range: (30, 120),
            confidence: 0.95,
        }
    }

    #[test]
    fn no_joint_maps_to_map_rerank() {
        let p = map_profile(&profile(false, Complexity::High, 1));
        assert_eq!(p.methods, vec![SynthesisMethod::MapRerank]);
    }

    #[test]
    fn joint_low_complexity_maps_to_stuff() {
        let p = map_profile(&profile(true, Complexity::Low, 3));
        assert_eq!(p.methods, vec![SynthesisMethod::Stuff]);
    }

    #[test]
    fn joint_high_complexity_maps_to_both() {
        let p = map_profile(&profile(true, Complexity::High, 3));
        assert_eq!(
            p.methods,
            vec![SynthesisMethod::Stuff, SynthesisMethod::MapReduce]
        );
    }

    #[test]
    fn chunk_range_is_one_to_three_times_pieces() {
        let p = map_profile(&profile(true, Complexity::High, 4));
        assert_eq!(p.num_chunks, (4, 12));
    }

    #[test]
    fn chunk_range_caps_at_full_space() {
        let p = map_profile(&profile(true, Complexity::High, 20));
        assert_eq!(p.num_chunks, (20, MAX_CHUNKS));
    }

    #[test]
    fn summary_range_passes_through() {
        let p = map_profile(&profile(true, Complexity::High, 2));
        assert_eq!(p.intermediate_length, (30, 120));
    }

    #[test]
    fn history_window_rolls() {
        let mut h = ProfileHistory::new(2);
        for k in 1..=3u32 {
            h.push(map_profile(&profile(true, Complexity::High, k)));
        }
        assert_eq!(h.len(), 2);
        // Oldest (pieces=1) evicted: average over pieces 2 and 3.
        let f = h.fallback().unwrap();
        assert_eq!(f.num_chunks, (3, 8)); // avg(2,3)=2.5→3, avg(6,9)=7.5→8.
    }

    #[test]
    fn fallback_unions_methods() {
        let mut h = ProfileHistory::default();
        h.push(map_profile(&profile(false, Complexity::Low, 1)));
        h.push(map_profile(&profile(true, Complexity::High, 3)));
        let f = h.fallback().unwrap();
        assert!(f.methods.contains(&SynthesisMethod::MapRerank));
        assert!(f.methods.contains(&SynthesisMethod::Stuff));
        assert!(f.methods.contains(&SynthesisMethod::MapReduce));
    }

    #[test]
    fn empty_history_has_no_fallback() {
        assert!(ProfileHistory::default().fallback().is_none());
    }
}

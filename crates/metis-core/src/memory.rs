//! KV-cache demand estimation for RAG configurations (§4.3).
//!
//! The joint scheduler must know, *before* executing a configuration, how
//! much GPU memory it will need: "the memory required (e.g., the KV cache
//! size) is measured from the input token length, parameters of the serving
//! model and the quantization". Demand is expressed in KV *tokens* (the
//! engine's allocator unit); callers convert to bytes with the model's
//! `kv_bytes_per_token` when needed.

use crate::config::{RagConfig, SynthesisMethod};

/// Instruction/template tokens added to every LLM call's prompt.
pub const PROMPT_OVERHEAD: u64 = 32;

/// Mappers the scheduler plans to keep co-resident when a map-based plan
/// streams through constrained memory (Fig. 8: "METIS can start putting the
/// mappers which fit in memory into the current running_batch"). Prefill is
/// throughput-bound, so a small window loses almost no latency vs running
/// all mappers at once.
pub const STREAM_WINDOW: u64 = 4;

/// Fraction of a map-based plan's mappers assumed co-resident when memory is
/// moderately contended: the engine admits mappers eagerly, so a realistic
/// scheduling footprint is half the mappers (but at least the stream
/// window).
fn resident_maps(k: u64) -> u64 {
    STREAM_WINDOW.max(k / 2).min(k)
}

/// Estimated KV demand of one configuration's synthesis plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanDemand {
    /// KV tokens if every call of the plan were resident at once — the
    /// ranking metric ("highest memory requirement", §4.3).
    pub total_tokens: u64,
    /// Smallest unit that must fit for the plan to *start* without queueing:
    /// the whole prompt for `stuff`, a single map call for the map-based
    /// methods (Fig. 8's insight — mappers can trickle into the batch).
    pub min_tokens: u64,
    /// What must be co-resident for the plan to run at full speed: the whole
    /// prompt for `stuff`, a [`STREAM_WINDOW`] of mappers for the map-based
    /// methods. This is the §4.3 fit criterion.
    pub sched_tokens: u64,
}

impl PlanDemand {
    /// Estimates demand for `config` given the database chunk size, the
    /// query length, and an expected final-answer output length.
    pub fn estimate(
        config: &RagConfig,
        chunk_size: u64,
        query_tokens: u64,
        expected_output: u64,
    ) -> Self {
        let k = u64::from(config.num_chunks.max(1));
        match config.synthesis {
            SynthesisMethod::Stuff => {
                let prompt = k * chunk_size + query_tokens + PROMPT_OVERHEAD;
                let total = prompt + expected_output;
                PlanDemand {
                    total_tokens: total,
                    min_tokens: total,
                    sched_tokens: total,
                }
            }
            SynthesisMethod::MapRerank => {
                let call = chunk_size + query_tokens + PROMPT_OVERHEAD + expected_output;
                PlanDemand {
                    total_tokens: k * call,
                    min_tokens: call,
                    sched_tokens: call * resident_maps(k),
                }
            }
            SynthesisMethod::MapReduce => {
                // A map call reads one chunk and writes up to an
                // intermediate_length summary; in practice summaries average
                // about half the budget (facts + carried-over words).
                let ilen = u64::from(config.intermediate_length.max(1));
                let summary_est = (ilen / 2).max(8);
                let map_call = chunk_size + query_tokens + PROMPT_OVERHEAD + ilen;
                let reduce = k * summary_est + query_tokens + PROMPT_OVERHEAD + expected_output;
                PlanDemand {
                    total_tokens: k * map_call + reduce,
                    min_tokens: map_call.max(reduce),
                    sched_tokens: (map_call * resident_maps(k)).max(reduce),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuff_min_equals_total() {
        let d = PlanDemand::estimate(&RagConfig::stuff(10), 512, 40, 48);
        assert_eq!(d.min_tokens, d.total_tokens);
        assert_eq!(d.total_tokens, 10 * 512 + 40 + PROMPT_OVERHEAD + 48);
    }

    #[test]
    fn map_methods_start_with_one_call() {
        let d = PlanDemand::estimate(&RagConfig::map_rerank(10), 512, 40, 48);
        assert_eq!(d.min_tokens, 512 + 40 + PROMPT_OVERHEAD + 48);
        assert_eq!(d.total_tokens, 10 * d.min_tokens);
    }

    #[test]
    fn fig8_asymmetry_stuff_needs_more_upfront_than_map_reduce() {
        // The Fig. 8 scenario: 20 chunks. stuff must fit the whole 20-chunk
        // prompt at once; map_reduce starts as soon as one mapper fits.
        let stuff = PlanDemand::estimate(&RagConfig::stuff(20), 1_000, 40, 48);
        let mr = PlanDemand::estimate(&RagConfig::map_reduce(20, 100), 1_000, 40, 48);
        assert!(mr.min_tokens < stuff.min_tokens / 10);
        // While map_reduce's *total* work is larger (it is the expensive,
        // high-quality configuration).
        assert!(mr.total_tokens > stuff.total_tokens);
    }

    #[test]
    fn demand_is_monotone_in_chunks_and_length() {
        let base = PlanDemand::estimate(&RagConfig::map_reduce(5, 50), 512, 40, 48);
        let more_chunks = PlanDemand::estimate(&RagConfig::map_reduce(8, 50), 512, 40, 48);
        let longer = PlanDemand::estimate(&RagConfig::map_reduce(5, 200), 512, 40, 48);
        assert!(more_chunks.total_tokens > base.total_tokens);
        assert!(longer.total_tokens > base.total_tokens);
    }

    #[test]
    fn zero_chunks_clamps_to_one() {
        let d = PlanDemand::estimate(&RagConfig::stuff(0), 512, 40, 48);
        assert_eq!(d.total_tokens, 512 + 40 + PROMPT_OVERHEAD + 48);
    }
}

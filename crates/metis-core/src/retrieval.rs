//! Retrieval latency model: measured search work → simulated time.
//!
//! Retrieval used to be charged as one hardcoded constant that scanned the
//! whole corpus whatever the index; now the vector database reports what
//! each search actually did ([`SearchWork`]: vectors scored, centroids
//! ranked, lists probed — full scan for flat, probed-list sizes for IVF)
//! plus the embedder's per-query feature-hash units, and this model converts
//! that work into nanoseconds on the discrete-event timeline. The constants
//! keep the paper's regime — retrieval is >100× cheaper than synthesis
//! (§2) — while making index choice, corpus scale, and probe depth visible
//! in end-to-end latency.

use metis_llm::Nanos;
use metis_vectordb::SearchWork;

/// Converts measured retrieval work into simulated nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetrievalModel {
    /// Fixed per-query overhead (query setup, top-k merge, payload fetch).
    pub base_nanos: Nanos,
    /// Cost per embedder feature-hash unit (query embedding).
    pub embed_nanos_per_unit: Nanos,
    /// Cost per corpus vector scored.
    pub vector_nanos: Nanos,
    /// Cost per coarse-quantizer centroid scored (IVF only).
    pub centroid_nanos: Nanos,
    /// Cost per inverted list visited (pointer chasing; IVF only).
    pub list_nanos: Nanos,
}

impl Default for RetrievalModel {
    fn default() -> Self {
        // The scan terms are calibrated to the old constant model (5 ms +
        // 20 µs per chunk), so a flat run lands within ~0.2 ms of its
        // pre-subsystem timing — the newly charged query-embedding term
        // (~2 units/token × 2 µs) is the only shift.
        Self {
            base_nanos: 5_000_000,
            embed_nanos_per_unit: 2_000,
            vector_nanos: 20_000,
            centroid_nanos: 20_000,
            list_nanos: 5_000,
        }
    }
}

impl RetrievalModel {
    /// Nanoseconds for one retrieval that performed `work` index-search
    /// operations and `embed_units` of query embedding.
    pub fn nanos(&self, work: &SearchWork, embed_units: u64) -> Nanos {
        self.base_nanos
            + self.embed_nanos_per_unit * embed_units
            + self.vector_nanos * work.vectors_scored as Nanos
            + self.centroid_nanos * work.centroids_scored as Nanos
            + self.list_nanos * work.lists_probed as Nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_work_costs_the_base_only() {
        let m = RetrievalModel::default();
        assert_eq!(m.nanos(&SearchWork::default(), 0), m.base_nanos);
    }

    #[test]
    fn flat_scan_matches_the_old_constant_model() {
        // The pre-subsystem runner charged 5 ms + 20 µs × corpus size.
        let m = RetrievalModel::default();
        let n = 300;
        let flat = m.nanos(&SearchWork::full_scan(n), 0);
        assert_eq!(flat, 5_000_000 + 20_000 * n as Nanos);
    }

    #[test]
    fn probing_fewer_vectors_is_strictly_cheaper() {
        let m = RetrievalModel::default();
        let corpus = 1_000usize;
        let flat = m.nanos(&SearchWork::full_scan(corpus), 80);
        let ivf = m.nanos(
            &SearchWork {
                vectors_scored: corpus / 8,
                centroids_scored: 64,
                lists_probed: 8,
            },
            80,
        );
        assert!(ivf < flat, "ivf {ivf} !< flat {flat}");
    }

    #[test]
    fn cost_is_monotone_in_every_work_component() {
        let m = RetrievalModel::default();
        let base = SearchWork {
            vectors_scored: 100,
            centroids_scored: 16,
            lists_probed: 4,
        };
        let c0 = m.nanos(&base, 10);
        for grown in [
            SearchWork {
                vectors_scored: 101,
                ..base
            },
            SearchWork {
                centroids_scored: 17,
                ..base
            },
            SearchWork {
                lists_probed: 5,
                ..base
            },
        ] {
            assert!(m.nanos(&grown, 10) > c0);
        }
        assert!(m.nanos(&base, 11) > c0);
    }
}

//! Retrieval latency model: measured search work → simulated time.
//!
//! Retrieval used to be charged as one hardcoded constant that scanned the
//! whole corpus whatever the index; now the vector database reports what
//! each search actually did ([`SearchWork`]: vectors scored, centroids
//! ranked, lists probed — full scan for flat, probed-list sizes for IVF)
//! plus the embedder's per-query feature-hash units, and this model converts
//! that work into nanoseconds on the discrete-event timeline. The constants
//! keep the paper's regime — retrieval is >100× cheaper than synthesis
//! (§2) — while making index choice, corpus scale, and probe depth visible
//! in end-to-end latency.

use metis_llm::Nanos;
use metis_vectordb::SearchWork;

/// Converts measured retrieval work into simulated nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetrievalModel {
    /// Fixed per-query overhead (query setup, top-k merge, payload fetch).
    pub base_nanos: Nanos,
    /// Cost per embedder feature-hash unit (query embedding).
    pub embed_nanos_per_unit: Nanos,
    /// Cost per corpus vector scored exactly (f32).
    pub vector_nanos: Nanos,
    /// Cost per corpus vector scored in the quantized (sq8) domain — a
    /// handful of table lookups instead of a full f32 distance, so several
    /// times cheaper than [`RetrievalModel::vector_nanos`].
    pub quantized_nanos: Nanos,
    /// Cost per coarse-quantizer centroid scored (IVF only).
    pub centroid_nanos: Nanos,
    /// Cost per inverted list visited (pointer chasing; IVF only).
    pub list_nanos: Nanos,
    /// Cost per HNSW graph hop: one node expansion's pointer chase and
    /// neighbor-list walk, charged on top of the distance evals it
    /// triggers.
    pub hop_nanos: Nanos,
}

impl Default for RetrievalModel {
    fn default() -> Self {
        // The scan terms are calibrated to the old constant model (5 ms +
        // 20 µs per chunk), so a flat run lands within ~0.2 ms of its
        // pre-subsystem timing — the newly charged query-embedding term
        // (~2 units/token × 2 µs) is the only shift.
        // The sq8 and HNSW terms only bill work the new index kinds
        // report; flat and IVF runs cost exactly what they did before.
        Self {
            base_nanos: 5_000_000,
            embed_nanos_per_unit: 2_000,
            vector_nanos: 20_000,
            quantized_nanos: 4_000,
            centroid_nanos: 20_000,
            list_nanos: 5_000,
            hop_nanos: 50_000,
        }
    }
}

impl RetrievalModel {
    /// Nanoseconds for one retrieval that performed `work` index-search
    /// operations and `embed_units` of query embedding.
    pub fn nanos(&self, work: &SearchWork, embed_units: u64) -> Nanos {
        self.base_nanos
            + self.embed_nanos_per_unit * embed_units
            + self.vector_nanos * work.vectors_scored as Nanos
            + self.quantized_nanos * work.quantized_scored as Nanos
            + self.centroid_nanos * work.centroids_scored as Nanos
            + self.list_nanos * work.lists_probed as Nanos
            + self.hop_nanos * work.graph_hops as Nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_work_costs_the_base_only() {
        let m = RetrievalModel::default();
        assert_eq!(m.nanos(&SearchWork::default(), 0), m.base_nanos);
    }

    #[test]
    fn flat_scan_matches_the_old_constant_model() {
        // The pre-subsystem runner charged 5 ms + 20 µs × corpus size.
        let m = RetrievalModel::default();
        let n = 300;
        let flat = m.nanos(&SearchWork::full_scan(n), 0);
        assert_eq!(flat, 5_000_000 + 20_000 * n as Nanos);
    }

    #[test]
    fn probing_fewer_vectors_is_strictly_cheaper() {
        let m = RetrievalModel::default();
        let corpus = 1_000usize;
        let flat = m.nanos(&SearchWork::full_scan(corpus), 80);
        let ivf = m.nanos(
            &SearchWork {
                vectors_scored: corpus / 8,
                centroids_scored: 64,
                lists_probed: 8,
                ..SearchWork::default()
            },
            80,
        );
        assert!(ivf < flat, "ivf {ivf} !< flat {flat}");
    }

    #[test]
    fn hnsw_with_sq8_undercuts_the_ivf_frontier() {
        // Representative work at a 10⁶-vector corpus: IVF probes 16 of 256
        // lists (~62k exact evals); HNSW expands ~80 nodes, LUT-scores
        // ~2.5k candidates, and exact-reranks 40.
        let m = RetrievalModel::default();
        let ivf = m.nanos(
            &SearchWork {
                vectors_scored: 62_500,
                centroids_scored: 256,
                lists_probed: 16,
                ..SearchWork::default()
            },
            80,
        );
        let hnsw = m.nanos(
            &SearchWork {
                vectors_scored: 40,
                quantized_scored: 2_500,
                graph_hops: 80,
                ..SearchWork::default()
            },
            80,
        );
        assert!(
            hnsw * 10 < ivf,
            "hnsw {hnsw} should be well under ivf {ivf}"
        );
    }

    #[test]
    fn cost_is_monotone_in_every_work_component() {
        let m = RetrievalModel::default();
        let base = SearchWork {
            vectors_scored: 100,
            quantized_scored: 50,
            centroids_scored: 16,
            lists_probed: 4,
            graph_hops: 12,
        };
        let c0 = m.nanos(&base, 10);
        for grown in [
            SearchWork {
                vectors_scored: 101,
                ..base
            },
            SearchWork {
                quantized_scored: 51,
                ..base
            },
            SearchWork {
                centroids_scored: 17,
                ..base
            },
            SearchWork {
                lists_probed: 5,
                ..base
            },
            SearchWork {
                graph_hops: 13,
                ..base
            },
        ] {
            assert!(m.nanos(&grown, 10) > c0);
        }
        assert!(m.nanos(&base, 11) > c0);
    }
}

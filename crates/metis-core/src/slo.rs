//! SLO-constrained configuration selection.
//!
//! §4.3 notes that the loose decoupling of configuration from scheduling
//! "also allows SLO-based constraints on RAG queries if certain queries have
//! strict budgets on their generation latency". This module implements that
//! extension: a per-query latency budget filters the pruned space down to
//! configurations whose *estimated* execution time fits the budget, before
//! the best-fit memory selection runs.
//!
//! Estimation uses the same analytical latency model the engine runs on, so
//! the filter is consistent with what the query will actually experience on
//! an unloaded GPU (queueing can still push a query past its budget — an SLO
//! here is a budget the scheduler respects, not a hard real-time guarantee).

use metis_datasets::QuerySpec;
use metis_engine::Priority;
use metis_llm::{nanos_to_secs, LatencyModel};

use crate::bestfit::{choose_config, BestFitInputs, Chosen};
use crate::config::{PrunedSpace, RagConfig, SynthesisMethod};
use crate::memory::{PlanDemand, PROMPT_OVERHEAD};

/// A per-query latency budget in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySlo(pub f64);

impl LatencySlo {
    /// Returns `true` when `estimate_secs` fits the budget.
    pub fn admits(&self, estimate_secs: f64) -> bool {
        estimate_secs <= self.0
    }
}

/// Context-token boundary below which a query is an interactive short
/// answer (Table 1: Squad-scale inputs).
const INTERACTIVE_MAX_CONTEXT: usize = 2_048;
/// Context-token boundary above which a query is document-scale batch work
/// (Table 1: QMSUM-scale inputs).
const STANDARD_MAX_CONTEXT: usize = 8_192;

/// A query's SLO tier: the latency class its user contract puts it in,
/// which the serving stack turns into a scheduling [`Priority`].
///
/// Tiers follow the Table 1 input scales: short single-hop QA is what a
/// user is actively waiting on; document-level QA sits in the middle; long
/// summarization is throughput work that tolerates queueing. A run opts in
/// via `--priority-from-slo` (otherwise every query serves at
/// [`Priority::Standard`], the pre-priority behavior).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SloTier {
    /// Tight budget: a user is waiting on this answer.
    Interactive,
    /// Ordinary request-response traffic.
    Standard,
    /// Long-running summarization/analysis; latency-tolerant.
    Batch,
}

impl SloTier {
    /// Classifies a query by its source-document scale.
    pub fn for_query(query: &QuerySpec) -> Self {
        if query.context_tokens <= INTERACTIVE_MAX_CONTEXT {
            SloTier::Interactive
        } else if query.context_tokens <= STANDARD_MAX_CONTEXT {
            SloTier::Standard
        } else {
            SloTier::Batch
        }
    }

    /// The engine scheduling class this tier maps to.
    pub fn priority(self) -> Priority {
        match self {
            SloTier::Interactive => Priority::Interactive,
            SloTier::Standard => Priority::Standard,
            SloTier::Batch => Priority::Batch,
        }
    }

    /// Short stable name, for reports.
    pub fn name(self) -> &'static str {
        match self {
            SloTier::Interactive => "interactive",
            SloTier::Standard => "standard",
            SloTier::Batch => "batch",
        }
    }
}

/// Estimates the unloaded execution time of `config` in seconds: chunked
/// prefill of all calls plus sequential decode of the longest call chain
/// (maps run batched; the reduce call follows them).
pub fn estimate_exec_secs(
    config: &RagConfig,
    latency: &LatencyModel,
    chunk_size: u64,
    query_tokens: u64,
    expected_output: u64,
) -> f64 {
    let k = u64::from(config.num_chunks.max(1));
    let per_call_prompt = chunk_size + query_tokens + PROMPT_OVERHEAD;
    match config.synthesis {
        SynthesisMethod::Stuff => {
            let prompt = k * chunk_size + query_tokens + PROMPT_OVERHEAD;
            let prefill = latency.prefill_estimate(prompt);
            let decode = latency.decode_estimate(expected_output, prompt);
            nanos_to_secs(prefill + decode)
        }
        SynthesisMethod::MapRerank => {
            let prefill = latency.prefill_estimate(k * per_call_prompt);
            let decode = latency.decode_estimate(expected_output, k * per_call_prompt);
            nanos_to_secs(prefill + decode)
        }
        SynthesisMethod::MapReduce => {
            let ilen = u64::from(config.intermediate_length.max(1));
            let summary_est = (ilen / 2).max(8);
            let map_prefill = latency.prefill_estimate(k * per_call_prompt);
            let map_decode = latency.decode_estimate(summary_est, k * per_call_prompt);
            let reduce_prompt = k * summary_est + query_tokens + PROMPT_OVERHEAD;
            let reduce = latency.prefill_estimate(reduce_prompt)
                + latency.decode_estimate(expected_output, reduce_prompt);
            nanos_to_secs(map_prefill + map_decode + reduce)
        }
    }
}

/// [`choose_config`] under a latency SLO: configurations whose estimated
/// execution exceeds the budget are removed from the pruned space first.
/// When *nothing* fits the budget, the cheapest estimated configuration is
/// selected (best effort — the SLO was infeasible for this query).
pub fn choose_config_with_slo(
    space: &PrunedSpace,
    joint_required: bool,
    inputs: &BestFitInputs,
    latency: &LatencyModel,
    slo: LatencySlo,
) -> Chosen {
    let estimate = |cfg: &RagConfig| {
        estimate_exec_secs(
            cfg,
            latency,
            inputs.chunk_size,
            inputs.query_tokens,
            inputs.expected_output,
        )
    };
    // Restrict the chunk range until some candidate fits the budget.
    let mut narrowed = space.clone();
    loop {
        let any_fits = narrowed
            .candidates()
            .iter()
            .any(|c| slo.admits(estimate(c)));
        if any_fits {
            break;
        }
        if narrowed.num_chunks.1 <= narrowed.num_chunks.0 {
            // Infeasible SLO: best effort with the cheapest candidate.
            let cheapest = narrowed
                .candidates()
                .into_iter()
                .min_by(|a, b| estimate(a).total_cmp(&estimate(b)))
                .expect("non-empty candidates");
            return Chosen {
                config: cheapest,
                fallback: true,
            };
        }
        narrowed.num_chunks.1 -= 1;
    }
    // Drop candidates above the budget by trimming methods that cannot fit
    // at any chunk count in the narrowed range.
    let feasible: Vec<RagConfig> = narrowed
        .candidates()
        .into_iter()
        .filter(|c| slo.admits(estimate(c)))
        .collect();
    narrowed
        .methods
        .retain(|m| feasible.iter().any(|c| c.synthesis == *m));
    if narrowed.methods.is_empty() {
        narrowed.methods = space.methods.clone();
    }
    // Memory best-fit within the SLO-feasible space; then verify the chosen
    // config honours the budget (the memory pick might select an
    // over-budget sibling, e.g. a longer intermediate_length).
    let chosen = choose_config(&narrowed, joint_required, inputs);
    if slo.admits(estimate(&chosen.config)) {
        return chosen;
    }
    let best_fitting = narrowed
        .candidates()
        .into_iter()
        .filter(|c| {
            slo.admits(estimate(c))
                && PlanDemand::estimate(
                    c,
                    inputs.chunk_size,
                    inputs.query_tokens,
                    inputs.expected_output,
                )
                .sched_tokens
                    <= inputs.usable()
        })
        .max_by_key(|c| {
            PlanDemand::estimate(
                c,
                inputs.chunk_size,
                inputs.query_tokens,
                inputs.expected_output,
            )
            .total_tokens
        });
    match best_fitting {
        Some(config) => Chosen {
            config,
            fallback: false,
        },
        None => chosen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_llm::{GpuCluster, ModelSpec};

    fn latency() -> LatencyModel {
        LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40())
    }

    fn space() -> PrunedSpace {
        PrunedSpace {
            methods: vec![SynthesisMethod::Stuff, SynthesisMethod::MapReduce],
            num_chunks: (4, 12),
            intermediate_length: (40, 120),
        }
    }

    fn inputs() -> BestFitInputs {
        BestFitInputs {
            free_kv_tokens: 1_000_000,
            chunk_size: 1_000,
            query_tokens: 40,
            expected_output: 48,
            buffer_frac: 0.02,
        }
    }

    #[test]
    fn slo_tiers_track_query_scale() {
        let d = metis_datasets::build_dataset(metis_datasets::DatasetKind::Musique, 24, 3);
        let mut seen = std::collections::HashSet::new();
        for q in &d.queries {
            let tier = SloTier::for_query(q);
            seen.insert(tier.name());
            // The mapping is monotone in context size.
            if q.context_tokens <= 2_048 {
                assert_eq!(tier, SloTier::Interactive);
            } else if q.context_tokens > 8_192 {
                assert_eq!(tier, SloTier::Batch);
            }
            assert_eq!(tier.priority().name(), tier.name());
        }
        assert!(
            seen.len() >= 2,
            "Musique (1K–5K inputs) should mix tiers, got {seen:?}"
        );
    }

    #[test]
    fn estimates_are_monotone_in_chunks() {
        let l = latency();
        let small = estimate_exec_secs(&RagConfig::stuff(4), &l, 1_000, 40, 48);
        let big = estimate_exec_secs(&RagConfig::stuff(12), &l, 1_000, 40, 48);
        assert!(big > small);
        assert!(small > 0.0);
    }

    #[test]
    fn generous_slo_matches_plain_best_fit() {
        let plain = choose_config(&space(), true, &inputs());
        let slo = choose_config_with_slo(&space(), true, &inputs(), &latency(), LatencySlo(60.0));
        assert_eq!(plain.config, slo.config);
    }

    #[test]
    fn tight_slo_shrinks_the_configuration() {
        let l = latency();
        let generous = choose_config_with_slo(&space(), true, &inputs(), &l, LatencySlo(60.0));
        let tight = choose_config_with_slo(&space(), true, &inputs(), &l, LatencySlo(1.35));
        let e_gen = estimate_exec_secs(&generous.config, &l, 1_000, 40, 48);
        let e_tight = estimate_exec_secs(&tight.config, &l, 1_000, 40, 48);
        assert!(e_tight < e_gen, "{e_tight} !< {e_gen}");
        assert!(
            e_tight <= 1.35,
            "budget violated: {e_tight} by {:?}",
            tight.config
        );
    }

    #[test]
    fn infeasible_slo_is_best_effort_cheapest() {
        let l = latency();
        let chosen = choose_config_with_slo(&space(), true, &inputs(), &l, LatencySlo(0.001));
        assert!(chosen.fallback, "infeasible SLO must flag fallback");
        // It picked the cheapest estimated configuration in the space.
        let e = estimate_exec_secs(&chosen.config, &l, 1_000, 40, 48);
        for c in space().candidates() {
            assert!(
                e <= estimate_exec_secs(&c, &l, 1_000, 40, 48) + 1e-9,
                "{:?} cheaper than chosen {:?}",
                c,
                chosen.config
            );
        }
    }

    #[test]
    fn slo_respects_memory_too() {
        let l = latency();
        let tight_mem = BestFitInputs {
            free_kv_tokens: 6_000,
            ..inputs()
        };
        let chosen = choose_config_with_slo(&space(), true, &tight_mem, &l, LatencySlo(5.0));
        let d = PlanDemand::estimate(&chosen.config, 1_000, 40, 48);
        if !chosen.fallback {
            assert!(d.sched_tokens <= tight_mem.usable());
        }
    }
}

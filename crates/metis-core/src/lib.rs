//! METIS: the RAG controller (the paper's primary contribution).
//!
//! METIS is the first RAG system that adapts multiple configuration knobs on
//! a per-query basis *and* makes configuration and scheduling decisions
//! jointly. The controller has two stages (§4, Fig. 6/7):
//!
//! 1. **Configuration-space pruning** — an LLM profiler estimates each
//!    query's profile (`metis-profiler`); Algorithm 1 ([`mapping`]) maps the
//!    profile to a *pruned space*: a set of candidate synthesis methods, a
//!    `num_chunks` range of `[n, 3n]`, and an `intermediate_length` range —
//!    a 50–100× reduction of the full combinatorial space while keeping
//!    quality high.
//! 2. **Joint configuration/scheduling** — the [`bestfit`] scheduler picks,
//!    from the pruned space, the configuration with the highest memory
//!    requirement *that fits the currently free GPU memory* (with a 2%
//!    safety buffer), falling back to a cheaper fitting configuration when
//!    nothing in the pruned space fits (§4.3).
//!
//! The crate also implements the three baselines the paper compares against
//! (vLLM with fixed configurations, Parrot\*, AdaptiveRAG\*) as
//! [`controllers`] behind the [`ConfigController`] trait, and the workload
//! runner ([`runner`]) — a system- and driver-agnostic event loop over a
//! controller and an engine [`Driver`](metis_engine::Driver) — that
//! executes full workloads over the serving engines (deterministic
//! simulation or live multithreaded serving, per
//! [`RunConfig::driver`](runner::RunConfig::driver)), producing measured
//! F1, delay, throughput, and cost.

pub mod agentic;
pub mod autoscaler;
pub mod baselines;
pub mod bestfit;
pub mod config;
pub mod controllers;
pub mod extensions;
pub mod mapping;
pub mod memory;
pub mod retrieval;
pub mod runner;
pub mod slo;
pub mod synthesis;

pub use agentic::{plan_agentic, AgenticInputs};
pub use autoscaler::{Autoscaler, AutoscalerState, ScaleAction};
pub use baselines::{adaptive_rag_pick, fixed_config_grid, median_pick};
pub use bestfit::{choose_config, BestFitInputs, Chosen};
pub use config::{ConfigSpace, PrunedSpace, RagConfig, SynthesisMethod};
pub use controllers::{
    AdaptiveRagController, ConfigController, Decision, DecisionContext, FixedController,
    MetisController, MetisOptions, ParrotController, PickPolicy, ProfileOutcome, SystemKind,
    CONFIDENCE_THRESHOLD,
};
pub use extensions::{rerank_hits, rewrite_query, ExtKnobs};
pub use mapping::{map_profile, ProfileHistory};
pub use memory::PlanDemand;
pub use metis_engine::{DriverKind, DriverSpec};
pub use retrieval::RetrievalModel;
pub use runner::{QueryResult, RunConfig, RunResult, Runner, StageBreakdown, StageMeans};
pub use slo::{choose_config_with_slo, estimate_exec_secs, LatencySlo, SloTier};
pub use synthesis::{plan_synthesis, PlannedCall, SynthesisPlan};

//! The Parrot\* baseline controller: fixed configuration + gang scheduling.

use metis_datasets::QuerySpec;
use metis_engine::SchedPolicy;
use metis_vectordb::DbMetadata;

use crate::config::RagConfig;
use crate::controllers::{ConfigController, Decision, DecisionContext, ProfileOutcome};

/// Parrot\* (§7.1): the same static configuration as vLLM-fixed, but with
/// application-aware gang scheduling — a query's map calls are admitted
/// together and its reduce call jumps the queue, the DAG awareness Parrot
/// contributes without any configuration adaptation.
pub struct ParrotController {
    config: RagConfig,
}

impl ParrotController {
    /// Builds the controller around its static configuration.
    pub fn new(config: RagConfig) -> Self {
        Self { config }
    }

    /// The static configuration served to every query.
    pub fn config(&self) -> RagConfig {
        self.config
    }
}

impl ConfigController for ParrotController {
    fn name(&self) -> &'static str {
        "parrot"
    }

    fn sched_policy(&self) -> SchedPolicy {
        SchedPolicy::GangByGroup
    }

    fn on_profile(&mut self, _: &QuerySpec, _: &DbMetadata, _: u64) -> ProfileOutcome {
        ProfileOutcome::skipped()
    }

    fn decide(&mut self, _: &DecisionContext<'_>) -> Decision {
        Decision {
            config: self.config,
            fallback: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differs_from_fixed_only_in_scheduling() {
        let c = ParrotController::new(RagConfig::map_reduce(8, 100));
        assert_eq!(c.sched_policy(), SchedPolicy::GangByGroup);
        assert_eq!(c.config(), RagConfig::map_reduce(8, 100));
    }
}

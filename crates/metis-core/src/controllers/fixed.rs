//! The vLLM-fixed baseline controller: one static configuration, FCFS.

use metis_datasets::QuerySpec;
use metis_engine::SchedPolicy;
use metis_vectordb::DbMetadata;

use crate::config::RagConfig;
use crate::controllers::{ConfigController, Decision, DecisionContext, ProfileOutcome};

/// vLLM with one fixed configuration for every query (§7.1): no profiler,
/// no adaptation, plain first-come-first-served admission — the static
/// menu existing RAG systems pick from offline.
pub struct FixedController {
    config: RagConfig,
}

impl FixedController {
    /// Builds the controller around its static configuration.
    pub fn new(config: RagConfig) -> Self {
        Self { config }
    }

    /// The static configuration served to every query.
    pub fn config(&self) -> RagConfig {
        self.config
    }
}

impl ConfigController for FixedController {
    fn name(&self) -> &'static str {
        "vllm-fixed"
    }

    fn sched_policy(&self) -> SchedPolicy {
        SchedPolicy::Fcfs
    }

    fn on_profile(&mut self, _: &QuerySpec, _: &DbMetadata, _: u64) -> ProfileOutcome {
        ProfileOutcome::skipped()
    }

    fn decide(&mut self, _: &DecisionContext<'_>) -> Decision {
        Decision {
            config: self.config,
            fallback: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_llm::{GpuCluster, LatencyModel, ModelSpec};
    use metis_vectordb::IndexMeta;

    #[test]
    fn always_serves_the_static_config() {
        let mut c = FixedController::new(RagConfig::stuff(8));
        let latency = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        for free in [0u64, 1_000, 1_000_000] {
            let d = c.decide(&DecisionContext {
                space: None,
                estimate: None,
                free_kv_tokens: free,
                preemption_pressure: 0.0,
                chunk_size: 512,
                query_tokens: 30,
                index: IndexMeta::flat(64),
                latency: &latency,
            });
            assert_eq!(d.config, RagConfig::stuff(8));
            assert!(!d.fallback);
        }
        assert!(!c.feedback_due());
    }
}

//! The AdaptiveRAG\* baseline controller: adaptive but resource-oblivious.

use metis_datasets::QuerySpec;
use metis_engine::SchedPolicy;
use metis_profiler::{LlmProfiler, ProfilerKind};
use metis_vectordb::DbMetadata;

use crate::baselines::adaptive_rag_pick;
use crate::controllers::{ConfigController, Decision, DecisionContext, ProfileOutcome};
use crate::mapping::map_profile;

/// AdaptiveRAG\* (§7.1): profiles every query like METIS but then takes the
/// quality-maximizing configuration with no regard for resource cost — the
/// adaptation-without-joint-scheduling ablation the paper compares against.
pub struct AdaptiveRagController {
    profiler: LlmProfiler,
}

impl AdaptiveRagController {
    /// Builds the controller with a fresh profiler of the given kind.
    pub fn new(kind: ProfilerKind) -> Self {
        Self {
            profiler: LlmProfiler::new(kind),
        }
    }
}

impl ConfigController for AdaptiveRagController {
    fn name(&self) -> &'static str {
        "adaptive-rag"
    }

    fn sched_policy(&self) -> SchedPolicy {
        SchedPolicy::Fcfs
    }

    fn on_profile(
        &mut self,
        query: &QuerySpec,
        metadata: &DbMetadata,
        seed: u64,
    ) -> ProfileOutcome {
        let out = self.profiler.profile(query, metadata, seed);
        ProfileOutcome {
            space: Some(map_profile(&out.estimate)),
            estimate: Some(out.estimate),
            profiler_nanos: out.latency,
            cost_usd: out.cost_usd,
            ..ProfileOutcome::skipped()
        }
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Decision {
        Decision {
            config: adaptive_rag_pick(ctx.space.expect("profiled before deciding")),
            fallback: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_llm::{GpuCluster, LatencyModel, ModelSpec};
    use metis_vectordb::IndexMeta;

    #[test]
    fn pick_ignores_free_memory() {
        let d = metis_datasets::build_dataset(metis_datasets::DatasetKind::FinSec, 2, 9);
        let mut c = AdaptiveRagController::new(ProfilerKind::Gpt4o);
        let meta = d.db.metadata().clone();
        let outcome = c.on_profile(&d.queries[0], &meta, 3);
        assert!(outcome.cost_usd > 0.0);
        let latency = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        let mut decide = |free: u64| {
            c.decide(&DecisionContext {
                space: outcome.space.as_ref(),
                estimate: outcome.estimate.as_ref(),
                free_kv_tokens: free,
                preemption_pressure: 0.0,
                chunk_size: 512,
                query_tokens: 20,
                index: IndexMeta::flat(64),
                latency: &latency,
            })
        };
        // Resource-oblivious: the pick is identical at 1k and 1M free tokens.
        let tight = decide(1_000);
        let roomy = decide(1_000_000);
        assert_eq!(tight.config, roomy.config);
        assert!(!tight.fallback);
    }
}

//! Per-system configuration controllers.
//!
//! Every serving system the paper evaluates — METIS and the three baselines
//! — differs from the others only in *policy*: how it reacts to a query's
//! profile, how it picks a RAG configuration at decision time, and what it
//! wants from the scheduler. The [`ConfigController`] trait captures exactly
//! that surface, so the [`Runner`](crate::runner::Runner) stays a
//! system-agnostic discrete-event loop and adding the next system is a
//! one-file change under this module:
//!
//! * [`MetisController`] — profiler → Algorithm 1 pruning → best-fit joint
//!   configuration/scheduling (§4), with confidence fallback and feedback.
//! * [`FixedController`] — vLLM with one static configuration.
//! * [`ParrotController`] — the same static configuration plus gang
//!   scheduling.
//! * [`AdaptiveRagController`] — per-query quality-maximizing choice,
//!   resource-oblivious.
//!
//! [`SystemKind`] remains the user-facing description of a system under
//! test, but it is now purely a *constructor* enum: its one job is
//! [`SystemKind::controller`].

pub mod adaptive;
pub mod fixed;
pub mod metis;
pub mod parrot;

pub use adaptive::AdaptiveRagController;
pub use fixed::FixedController;
pub use metis::{MetisController, MetisOptions, PickPolicy, CONFIDENCE_THRESHOLD};
pub use parrot::ParrotController;

use metis_datasets::QuerySpec;
use metis_engine::{Priority, SchedPolicy};
use metis_llm::{LatencyModel, Nanos};
use metis_profiler::{EstimatedProfile, ProfilerKind};
use metis_vectordb::{DbMetadata, IndexMeta};

use crate::config::{PrunedSpace, RagConfig};

/// What a controller learned about one query at profile time (the
/// decide-on-profile hook's result). Fixed-configuration systems return
/// [`ProfileOutcome::skipped`].
#[derive(Clone, Debug)]
pub struct ProfileOutcome {
    /// The pruned configuration space, if the system profiles queries.
    pub space: Option<PrunedSpace>,
    /// The raw profiler estimate backing `space`.
    pub estimate: Option<EstimatedProfile>,
    /// Profiler API latency (0 when no profiler ran).
    pub profiler_nanos: Nanos,
    /// Profiler API dollars spent on this query.
    pub cost_usd: f64,
    /// Scheduling class for this query's engine calls (derived from the
    /// query's SLO tier by priority-aware controllers;
    /// [`Priority::Standard`] otherwise).
    pub priority: Priority,
}

impl ProfileOutcome {
    /// The no-profiler outcome: decide immediately, at no cost.
    pub fn skipped() -> Self {
        Self {
            space: None,
            estimate: None,
            profiler_nanos: 0,
            cost_usd: 0.0,
            priority: Priority::Standard,
        }
    }
}

/// Everything a controller may read when choosing a configuration: the
/// query's profile outcome plus a snapshot of the *routed replica's* state.
/// With a multi-replica cluster the router picks the backend first and the
/// controller sizes against that backend's free memory — per-replica joint
/// configuration/scheduling.
pub struct DecisionContext<'a> {
    /// Pruned space from the profile step (`None` for fixed systems).
    pub space: Option<&'a PrunedSpace>,
    /// Profiler estimate from the profile step.
    pub estimate: Option<&'a EstimatedProfile>,
    /// Free KV-cache tokens on the replica this query was routed to.
    pub free_kv_tokens: u64,
    /// Preemptions per submitted request on that replica so far — the
    /// scheduler's back-pressure signal. A non-zero value means the free-KV
    /// snapshot overstates what a configuration can safely claim (admitted
    /// work is being evicted), so memory-aware controllers should size more
    /// conservatively. 0 under non-preemptive policies.
    pub preemption_pressure: f64,
    /// Tokens per retrieval chunk.
    pub chunk_size: u64,
    /// Query length in tokens.
    pub query_tokens: u64,
    /// Metadata of the retrieval index serving this run (family, effective
    /// `nlist`/`nprobe`, corpus size): controllers weighing deeper
    /// retrieval can estimate its cost via [`IndexMeta::expected_scored`]
    /// instead of assuming a free or constant-cost retriever.
    pub index: IndexMeta,
    /// Latency model of the serving replicas (for SLO-constrained picks).
    pub latency: &'a LatencyModel,
}

/// A controller's configuration decision for one query.
#[derive(Clone, Copy, Debug)]
pub struct Decision {
    /// The configuration to execute.
    pub config: RagConfig,
    /// Whether the §4.3 out-of-memory fallback fired.
    pub fallback: bool,
}

/// The per-system policy surface: how a serving system profiles queries,
/// picks configurations, and hooks the scheduler. Implementations own all
/// their mutable state (profiler, history, feedback counters), so the
/// runner needs no system-specific branches.
///
/// Controllers are built from a [`SystemKind`], never constructed ad hoc
/// by the runner:
///
/// ```
/// use metis_core::{MetisOptions, SystemKind};
/// use metis_engine::SchedPolicy;
///
/// let controller = SystemKind::Metis(MetisOptions::full()).controller();
/// assert_eq!(controller.name(), "metis");
/// // Full METIS asks the engine for SLO-class-aware admission.
/// assert_eq!(controller.sched_policy(), SchedPolicy::Preemptive);
/// ```
pub trait ConfigController {
    /// Short stable name, for reports.
    fn name(&self) -> &'static str;

    /// Admission policy the serving engine should run under.
    fn sched_policy(&self) -> SchedPolicy;

    /// Decide-on-profile hook, called once per query at arrival: run the
    /// profiler (if the system has one) and derive the pruned space. The
    /// runner charges `cost_usd` to the run and schedules the decision
    /// `profiler_nanos` (plus retrieval) later.
    fn on_profile(&mut self, query: &QuerySpec, metadata: &DbMetadata, seed: u64)
        -> ProfileOutcome;

    /// Joint decision hook, called at decision time with the routed
    /// replica's memory snapshot: pick the configuration to execute.
    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Decision;

    /// Admission hook: whether the runner should co-submit a synthetic
    /// golden-configuration run *now* to ground the profiler (§5 feedback).
    /// Returning `true` commits the controller to one pending feedback run.
    fn feedback_due(&mut self) -> bool {
        false
    }

    /// Decide-on-completion hook, called when a query's last call finishes;
    /// `synthetic` marks golden-configuration feedback runs.
    fn on_query_complete(&mut self, synthetic: bool) {
        let _ = synthetic;
    }
}

/// The system under test. Purely a constructor enum: [`Self::controller`]
/// builds the policy object the runner drives; nothing else inspects the
/// variants.
#[derive(Clone, Copy, Debug)]
pub enum SystemKind {
    /// METIS (ours).
    Metis(MetisOptions),
    /// vLLM with one fixed configuration for every query.
    VllmFixed {
        /// The static configuration.
        config: RagConfig,
    },
    /// Parrot\*: fixed configuration + application-aware gang scheduling.
    Parrot {
        /// The static configuration.
        config: RagConfig,
    },
    /// AdaptiveRAG\*: per-query quality-maximizing choice, resource-oblivious.
    AdaptiveRag {
        /// Which LLM backs its profiler.
        profiler: ProfilerKind,
    },
}

impl SystemKind {
    /// Builds the controller implementing this system's policy.
    pub fn controller(&self) -> Box<dyn ConfigController> {
        match self {
            SystemKind::Metis(opts) => Box::new(MetisController::new(*opts)),
            SystemKind::VllmFixed { config } => Box::new(FixedController::new(*config)),
            SystemKind::Parrot { config } => Box::new(ParrotController::new(*config)),
            SystemKind::AdaptiveRag { profiler } => Box::new(AdaptiveRagController::new(*profiler)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_engine::SchedPolicy;

    #[test]
    fn constructor_enum_builds_the_matching_controller() {
        let cases: Vec<(SystemKind, &str, SchedPolicy)> = vec![
            (
                SystemKind::Metis(MetisOptions::full()),
                "metis",
                SchedPolicy::Preemptive,
            ),
            (
                SystemKind::VllmFixed {
                    config: RagConfig::stuff(8),
                },
                "vllm-fixed",
                SchedPolicy::Fcfs,
            ),
            (
                SystemKind::Parrot {
                    config: RagConfig::stuff(8),
                },
                "parrot",
                SchedPolicy::GangByGroup,
            ),
            (
                SystemKind::AdaptiveRag {
                    profiler: ProfilerKind::Gpt4o,
                },
                "adaptive-rag",
                SchedPolicy::Fcfs,
            ),
        ];
        for (kind, name, policy) in cases {
            let c = kind.controller();
            assert_eq!(c.name(), name);
            assert_eq!(c.sched_policy(), policy);
        }
    }

    #[test]
    fn gangless_metis_runs_fcfs() {
        let mut opts = MetisOptions::full();
        opts.gang = false;
        opts.preemptive = false;
        assert_eq!(
            SystemKind::Metis(opts).controller().sched_policy(),
            SchedPolicy::Fcfs
        );
        // Preemptive subsumes the gang keys: it wins when both are set.
        let mut both = MetisOptions::full();
        both.gang = true;
        both.preemptive = true;
        assert_eq!(
            SystemKind::Metis(both).controller().sched_policy(),
            SchedPolicy::Preemptive
        );
        // The paper's plain gang configuration is still expressible.
        let mut gang_only = MetisOptions::full();
        gang_only.preemptive = false;
        assert_eq!(
            SystemKind::Metis(gang_only).controller().sched_policy(),
            SchedPolicy::GangByGroup
        );
    }
}

//! The METIS controller: profiler-pruned spaces + best-fit joint
//! configuration/scheduling (§4–5).

use metis_datasets::QuerySpec;
use metis_engine::{Priority, SchedPolicy};
use metis_profiler::{LlmProfiler, ProfilerKind};
use metis_vectordb::DbMetadata;

use crate::bestfit::{choose_config, BestFitInputs};
use crate::config::{PrunedSpace, SynthesisMethod};
use crate::controllers::{ConfigController, Decision, DecisionContext, ProfileOutcome};
use crate::mapping::{map_profile, ProfileHistory};
use crate::slo::{choose_config_with_slo, LatencySlo, SloTier};

/// Confidence threshold below which METIS distrusts the profile (§5).
pub const CONFIDENCE_THRESHOLD: f64 = 0.90;
/// Expected final-answer output tokens used for memory sizing.
const EXPECTED_OUTPUT: u64 = 48;
/// Base fraction of free KV memory held back by the best-fit (§4.3's 2%
/// safety buffer).
const BASE_BUFFER_FRAC: f64 = 0.02;
/// Additional buffer at full preemption pressure (one preemption per
/// submission): when the scheduler is evicting admitted work, the free-KV
/// snapshot overstates what a configuration can safely claim, so best-fit
/// backs off proportionally.
const PRESSURE_BUFFER_FRAC: f64 = 0.10;

/// How METIS picks from the pruned space (ablation axis, Fig. 12).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PickPolicy {
    /// Full METIS: resource-aware best fit (§4.3).
    BestFit,
    /// Ablation: median knob values, resource-oblivious.
    Median,
}

/// METIS feature switches (ablation axes for Figs. 12, 14, 16, 17).
#[derive(Clone, Copy, Debug)]
pub struct MetisOptions {
    /// Which LLM backs the profiler.
    pub profiler: ProfilerKind,
    /// Configuration pick policy.
    pub pick: PickPolicy,
    /// Parrot-style gang scheduling of a query's calls.
    pub gang: bool,
    /// Preemptive SLO-class-aware scheduling: rank admission by priority
    /// (keeping the gang keys within a class) and evict lower-class running
    /// work under KV pressure instead of head-of-line blocking. Subsumes
    /// `gang` when set.
    pub preemptive: bool,
    /// Derive each query's scheduling [`Priority`] from its SLO tier
    /// ([`SloTier::for_query`]); off → every query is `Standard`.
    pub priority_from_slo: bool,
    /// Tune the synthesis method (off → always `stuff`).
    pub tune_method: bool,
    /// Tune `intermediate_length` (off → fixed 100).
    pub tune_ilen: bool,
    /// Golden-configuration profiler feedback (§5, Fig. 14).
    pub feedback: bool,
    /// Low-confidence fallback to recent pruned spaces (§5).
    pub confidence_fallback: bool,
    /// Optional per-query latency SLO in seconds (§4.3's "SLO-based
    /// constraints"): the best-fit selection is restricted to configurations
    /// whose estimated execution fits the budget.
    pub slo_secs: Option<f64>,
}

impl MetisOptions {
    /// Full METIS as evaluated in the paper's headline results, plus the
    /// preemptive scheduler (which strictly extends the paper's gang
    /// scheduling; see the README's scheduler section for the behavior
    /// change this introduces relative to pre-preemption benches).
    pub fn full() -> Self {
        Self {
            profiler: ProfilerKind::Gpt4o,
            pick: PickPolicy::BestFit,
            gang: true,
            preemptive: true,
            priority_from_slo: false,
            tune_method: true,
            tune_ilen: true,
            feedback: false,
            confidence_fallback: true,
            slo_secs: None,
        }
    }
}

/// The full METIS policy: LLM profiler → Algorithm 1 pruning (with
/// confidence fallback) → resource-aware best fit against the routed
/// replica's free memory, plus the §5 feedback loop.
pub struct MetisController {
    opts: MetisOptions,
    profiler: LlmProfiler,
    history: ProfileHistory,
    /// Feedback runs promised via [`ConfigController::feedback_due`] whose
    /// completions have not yet grounded the profiler.
    pending_feedback: usize,
}

impl MetisController {
    /// Builds the controller with a fresh profiler and empty history.
    pub fn new(opts: MetisOptions) -> Self {
        Self {
            opts,
            profiler: LlmProfiler::new(opts.profiler),
            history: ProfileHistory::default(),
            pending_feedback: 0,
        }
    }

    /// The options this controller runs with.
    pub fn options(&self) -> &MetisOptions {
        &self.opts
    }

    fn apply_tuning(&self, mut space: PrunedSpace) -> PrunedSpace {
        if !self.opts.tune_method {
            space.methods = vec![SynthesisMethod::Stuff];
        }
        if !self.opts.tune_ilen {
            space.intermediate_length = (100, 100);
        }
        space
    }
}

impl ConfigController for MetisController {
    fn name(&self) -> &'static str {
        "metis"
    }

    fn sched_policy(&self) -> SchedPolicy {
        if self.opts.preemptive {
            SchedPolicy::Preemptive
        } else if self.opts.gang {
            SchedPolicy::GangByGroup
        } else {
            SchedPolicy::Fcfs
        }
    }

    fn on_profile(
        &mut self,
        query: &QuerySpec,
        metadata: &DbMetadata,
        seed: u64,
    ) -> ProfileOutcome {
        let out = self.profiler.profile(query, metadata, seed);
        let trusted =
            !self.opts.confidence_fallback || out.estimate.confidence >= CONFIDENCE_THRESHOLD;
        let space = if trusted {
            let s = map_profile(&out.estimate);
            self.history.push(s.clone());
            s
        } else {
            // §5: fall back to the recent queries' pruned spaces.
            self.history
                .fallback()
                .unwrap_or_else(|| map_profile(&out.estimate))
        };
        ProfileOutcome {
            space: Some(self.apply_tuning(space)),
            estimate: Some(out.estimate),
            profiler_nanos: out.latency,
            cost_usd: out.cost_usd,
            priority: if self.opts.priority_from_slo {
                SloTier::for_query(query).priority()
            } else {
                Priority::Standard
            },
        }
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Decision {
        let space = ctx.space.expect("METIS profiles before deciding");
        let joint = ctx.estimate.map(|e| e.joint).unwrap_or(true);
        match self.opts.pick {
            PickPolicy::Median => Decision {
                config: crate::baselines::median_pick(space),
                fallback: false,
            },
            PickPolicy::BestFit => {
                let bf = BestFitInputs {
                    free_kv_tokens: ctx.free_kv_tokens,
                    chunk_size: ctx.chunk_size,
                    query_tokens: ctx.query_tokens,
                    expected_output: EXPECTED_OUTPUT,
                    // Preemption pressure widens the §4.3 safety buffer:
                    // when the routed replica is evicting admitted work,
                    // its free-KV reading is optimistic.
                    buffer_frac: BASE_BUFFER_FRAC
                        + PRESSURE_BUFFER_FRAC * ctx.preemption_pressure.clamp(0.0, 1.0),
                };
                let chosen = match self.opts.slo_secs {
                    Some(budget) => {
                        choose_config_with_slo(space, joint, &bf, ctx.latency, LatencySlo(budget))
                    }
                    None => choose_config(space, joint, &bf),
                };
                Decision {
                    config: chosen.config,
                    fallback: chosen.fallback,
                }
            }
        }
    }

    fn feedback_due(&mut self) -> bool {
        if self.opts.feedback && self.profiler.wants_feedback() {
            self.pending_feedback += 1;
            true
        } else {
            false
        }
    }

    fn on_query_complete(&mut self, synthetic: bool) {
        if synthetic && self.pending_feedback > 0 {
            self.pending_feedback -= 1;
            self.profiler.add_feedback();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_llm::{GpuCluster, LatencyModel, ModelSpec};
    use metis_vectordb::IndexMeta;

    fn metadata() -> DbMetadata {
        DbMetadata {
            description: "test corpus of financial filings".into(),
            chunk_size: 512,
            num_chunks: 64,
        }
    }

    fn query(d: &metis_datasets::Dataset) -> &QuerySpec {
        &d.queries[0]
    }

    #[test]
    fn profile_then_decide_is_memory_aware() {
        let d = metis_datasets::build_dataset(metis_datasets::DatasetKind::Musique, 4, 11);
        let mut c = MetisController::new(MetisOptions::full());
        let outcome = c.on_profile(query(&d), &metadata(), 7);
        assert!(outcome.space.is_some());
        assert!(outcome.cost_usd > 0.0);
        assert!(outcome.profiler_nanos > 0);

        let latency = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        let decide = |c: &mut MetisController, free: u64| {
            c.decide(&DecisionContext {
                space: outcome.space.as_ref(),
                estimate: outcome.estimate.as_ref(),
                free_kv_tokens: free,
                preemption_pressure: 0.0,
                chunk_size: 512,
                query_tokens: 24,
                index: IndexMeta::flat(64),
                latency: &latency,
            })
        };
        let roomy = decide(&mut c, 250_000);
        let tight = decide(&mut c, 2_000);
        // Plenty of memory: the pick is from the pruned space. Tight memory:
        // the §4.3 fallback fires and the plan shrinks.
        assert!(!roomy.fallback);
        assert!(tight.fallback);
        assert!(tight.config.num_chunks <= roomy.config.num_chunks);
    }

    #[test]
    fn preemption_pressure_widens_the_safety_buffer() {
        let d = metis_datasets::build_dataset(metis_datasets::DatasetKind::Qmsum, 4, 2);
        let mut c = MetisController::new(MetisOptions::full());
        let outcome = c.on_profile(query(&d), &metadata(), 7);
        let latency = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        let decide = |c: &mut MetisController, pressure: f64| {
            c.decide(&DecisionContext {
                space: outcome.space.as_ref(),
                estimate: outcome.estimate.as_ref(),
                // Tight enough that the buffer width changes what fits.
                free_kv_tokens: 30_000,
                preemption_pressure: pressure,
                chunk_size: 512,
                query_tokens: 24,
                index: IndexMeta::flat(64),
                latency: &latency,
            })
        };
        let calm = decide(&mut c, 0.0);
        let stressed = decide(&mut c, 1.0);
        let demand = |cfg: &crate::config::RagConfig| {
            crate::memory::PlanDemand::estimate(cfg, 512, 24, 48).sched_tokens
        };
        assert!(
            demand(&stressed.config) <= demand(&calm.config),
            "pressure must never grow the footprint: {:?} vs {:?}",
            stressed.config,
            calm.config
        );
    }

    #[test]
    fn slo_tier_priorities_flow_from_profiles() {
        let d = metis_datasets::build_dataset(metis_datasets::DatasetKind::Musique, 24, 11);
        let mut opts = MetisOptions::full();
        opts.priority_from_slo = true;
        let mut c = MetisController::new(opts);
        let mut seen = std::collections::HashSet::new();
        for q in &d.queries {
            let outcome = c.on_profile(q, &metadata(), 7);
            assert_eq!(outcome.priority, SloTier::for_query(q).priority());
            seen.insert(outcome.priority);
        }
        assert!(seen.len() >= 2, "Musique should mix tiers, got {seen:?}");
        // Off by default: every query serves at Standard.
        let mut plain = MetisController::new(MetisOptions::full());
        for q in &d.queries {
            assert_eq!(
                plain.on_profile(q, &metadata(), 7).priority,
                Priority::Standard
            );
        }
    }

    #[test]
    fn feedback_promise_is_settled_by_completion() {
        let d = metis_datasets::build_dataset(metis_datasets::DatasetKind::Squad, 4, 3);
        let mut opts = MetisOptions::full();
        opts.feedback = true;
        let mut c = MetisController::new(opts);
        // The profiler wants feedback every 30th query.
        let mut due = 0;
        for _ in 0..30 {
            let _ = c.on_profile(query(&d), &metadata(), 5);
            if c.feedback_due() {
                due += 1;
            }
        }
        assert_eq!(due, 1, "one golden run per 30 profiled queries");
        assert_eq!(c.pending_feedback, 1);
        c.on_query_complete(false); // Real queries don't settle feedback.
        assert_eq!(c.pending_feedback, 1);
        c.on_query_complete(true);
        assert_eq!(c.pending_feedback, 0);
        assert_eq!(c.profiler.feedback_len(), 1);
    }
}

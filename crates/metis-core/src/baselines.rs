//! Baseline configuration policies (§7.1).
//!
//! * **vLLM** and **Parrot\*** serve *fixed* configurations; the evaluation
//!   sweeps a grid of fixed configurations ([`fixed_config_grid`]) and picks
//!   the Pareto-relevant ones.
//! * **AdaptiveRAG\*** adapts per query but maximizes F1 with no regard for
//!   resource cost: it takes the most expensive configuration in the pruned
//!   space ([`adaptive_rag_pick`]).
//! * [`median_pick`] is the Fig. 12 ablation: use the profiler's pruned
//!   space but take the median value of each knob, ignoring resources.

use crate::config::{PrunedSpace, RagConfig, SynthesisMethod};

/// The grid of fixed configurations the fixed-config baselines sweep.
///
/// Covers all three methods across the chunk range with representative
/// intermediate lengths — the kind of hand-picked static menu the paper
/// says existing RAG systems choose from offline.
pub fn fixed_config_grid() -> Vec<RagConfig> {
    let mut grid = Vec::new();
    for k in [1, 2, 4, 8, 12, 16, 24, 35] {
        grid.push(RagConfig::map_rerank(k));
        grid.push(RagConfig::stuff(k));
        for l in [30, 100, 200] {
            grid.push(RagConfig::map_reduce(k, l));
        }
    }
    grid
}

/// AdaptiveRAG\*'s choice: per-query, F1-maximizing, resource-oblivious
/// (§7.1: "choose the configuration which maximizes the F1-score, without
/// considering the system resource cost"). Complexity only steers *which*
/// workflow is used; within it, AdaptiveRAG\* buys all the quality it can —
/// deep retrieval and long summaries — which is exactly why it inflates
/// serving latency.
pub fn adaptive_rag_pick(space: &PrunedSpace) -> RagConfig {
    if space.methods.contains(&SynthesisMethod::MapReduce)
        || space.methods.contains(&SynthesisMethod::Stuff)
    {
        // Reasoning workflow: retrieve beyond the profile-implied depth and
        // use generous summaries (quality-first, delay-oblivious).
        RagConfig::map_reduce(
            (space.num_chunks.1 + 4).min(30),
            space.intermediate_length.1.max(200),
        )
    } else {
        // Simple lookup workflow: per-chunk answering, but still deep.
        RagConfig::map_rerank(space.num_chunks.1.max(8))
    }
}

/// The Fig. 12 "profiler + median" ablation: median knob values from the
/// pruned space, no resource awareness. When both reasoning methods are in
/// the space, the quality-robust `map_reduce` is the representative choice.
pub fn median_pick(space: &PrunedSpace) -> RagConfig {
    let method = if space.methods.contains(&SynthesisMethod::MapReduce) {
        SynthesisMethod::MapReduce
    } else {
        *space.methods.first().unwrap_or(&SynthesisMethod::Stuff)
    };
    RagConfig {
        num_chunks: (space.num_chunks.0 + space.num_chunks.1) / 2,
        synthesis: method,
        intermediate_length: (space.intermediate_length.0 + space.intermediate_length.1) / 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(methods: Vec<SynthesisMethod>) -> PrunedSpace {
        PrunedSpace {
            methods,
            num_chunks: (4, 12),
            intermediate_length: (30, 90),
        }
    }

    #[test]
    fn grid_covers_all_methods() {
        let grid = fixed_config_grid();
        for m in SynthesisMethod::all() {
            assert!(grid.iter().any(|c| c.synthesis == m));
        }
        assert!(grid.len() >= 30);
    }

    #[test]
    fn adaptive_rag_takes_the_quality_maximizing_config() {
        let pick = adaptive_rag_pick(&space(vec![
            SynthesisMethod::Stuff,
            SynthesisMethod::MapReduce,
        ]));
        assert_eq!(pick.synthesis, SynthesisMethod::MapReduce);
        // Resource-oblivious: at least as deep as the pruned top, pushed to
        // the quality-saturating end of the full space.
        assert!(pick.num_chunks >= 12);
        assert!(pick.intermediate_length >= 200);
    }

    #[test]
    fn adaptive_rag_respects_method_availability() {
        let pick = adaptive_rag_pick(&space(vec![SynthesisMethod::MapRerank]));
        assert_eq!(pick.synthesis, SynthesisMethod::MapRerank);
    }

    #[test]
    fn median_takes_knob_midpoints() {
        let pick = median_pick(&space(vec![
            SynthesisMethod::Stuff,
            SynthesisMethod::MapReduce,
        ]));
        assert_eq!(pick.synthesis, SynthesisMethod::MapReduce);
        assert_eq!(pick.num_chunks, 8);
        assert_eq!(pick.intermediate_length, 60);
    }
}

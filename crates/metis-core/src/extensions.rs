//! Extended configuration knobs beyond the paper's core three (§4.2).
//!
//! "Algorithm 1 is central to METIS' design ... and this is extendable to
//! other RAG configurations. For instance, a particular RAG pipeline might
//! use an external re-ranker, query re-writer or perform an external
//! web-search along with database retrieval. The mapping algorithm can map
//! the profiling LLM's output and be used to guide such decisions."
//!
//! This module implements that extension point:
//!
//! * [`ExtKnobs`] — the extended knob set (re-ranker on/off, query-rewrite
//!   on/off) with its rule-based mapping from the query profile.
//! * [`rerank_hits`] — a lightweight cross-encoder-style re-ranker over
//!   retrieved chunks: re-scores hits by query-token overlap (exact lexical
//!   evidence), which recovers weakly-embedded fact chunks at the price of a
//!   small latency adder.
//! * [`rewrite_query`] — a query re-writer that expands the query with its
//!   own highest-signal tokens duplicated (a pseudo-relevance-feedback
//!   expansion), improving retrieval of weakly-mentioned facts for complex
//!   queries.

use std::collections::HashMap;

use metis_datasets::Complexity;
use metis_llm::Nanos;
use metis_profiler::EstimatedProfile;
use metis_text::TokenId;
use metis_vectordb::RetrievalResult;

/// Extended knobs selected per query by the extended mapping.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExtKnobs {
    /// Re-rank retrieved chunks with a lexical cross-scorer before synthesis.
    pub rerank: bool,
    /// Rewrite (expand) the query before retrieval.
    pub rewrite: bool,
}

impl ExtKnobs {
    /// Extended rule-based mapping (the §4.2 pattern): complex queries that
    /// need many pieces benefit from the re-ranker (their marginal evidence
    /// ranks low), and high-complexity queries benefit from query expansion.
    pub fn map_profile(profile: &EstimatedProfile) -> Self {
        Self {
            rerank: profile.pieces >= 4,
            rewrite: profile.complexity == Complexity::High && profile.joint,
        }
    }

    /// Latency adder of the enabled knobs (the re-ranker scores `k` chunks;
    /// the re-writer is one cheap LLM-free expansion).
    pub fn latency_nanos(&self, k: usize) -> Nanos {
        let mut total: Nanos = 0;
        if self.rerank {
            // ~1.5 ms per chunk pair-score (a small cross-encoder).
            total += 1_500_000 * k as Nanos;
        }
        if self.rewrite {
            total += 2_000_000;
        }
        total
    }
}

/// Re-scores retrieved chunks by exact query-token overlap and stably
/// re-orders them (highest overlap first). Embedding similarity is kept as
/// the tie-breaker via the stable sort.
pub fn rerank_hits(query: &[TokenId], hits: Vec<RetrievalResult>) -> Vec<RetrievalResult> {
    let mut qcount: HashMap<TokenId, u32> = HashMap::new();
    for &t in query {
        *qcount.entry(t).or_insert(0) += 1;
    }
    let score = |r: &RetrievalResult| -> u32 {
        let mut remaining = qcount.clone();
        let mut s = 0;
        for t in r.text.tokens() {
            if let Some(c) = remaining.get_mut(t) {
                if *c > 0 {
                    *c -= 1;
                    s += 1;
                }
            }
        }
        s
    };
    let mut scored: Vec<(u32, RetrievalResult)> =
        hits.into_iter().map(|r| (score(&r), r)).collect();
    scored.sort_by_key(|(s, _)| std::cmp::Reverse(*s));
    scored.into_iter().map(|(_, r)| r).collect()
}

/// Expands the query by doubling its rarest tokens (those appearing exactly
/// once — in our corpus model these are the subject words), sharpening the
/// retrieval signal towards the entities the query names.
pub fn rewrite_query(query: &[TokenId]) -> Vec<TokenId> {
    let mut counts: HashMap<TokenId, u32> = HashMap::new();
    for &t in query {
        *counts.entry(t).or_insert(0) += 1;
    }
    let mut out = query.to_vec();
    for &t in query {
        if counts.get(&t) == Some(&1) {
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_datasets::Complexity;
    use metis_text::{AnnotatedText, ChunkId};
    use metis_vectordb::Hit;

    fn profile(pieces: u32, complexity: Complexity, joint: bool) -> EstimatedProfile {
        EstimatedProfile {
            complexity,
            joint,
            pieces,
            summary_range: (20, 80),
            confidence: 0.95,
        }
    }

    fn result(id: u32, tokens: &[u32]) -> RetrievalResult {
        let mut text = AnnotatedText::new();
        text.push_tokens(&tokens.iter().map(|&t| TokenId(t)).collect::<Vec<_>>());
        RetrievalResult {
            hit: Hit {
                chunk: ChunkId(id),
                distance: id as f32,
            },
            text,
        }
    }

    #[test]
    fn mapping_enables_knobs_for_hard_queries() {
        let easy = ExtKnobs::map_profile(&profile(1, Complexity::Low, false));
        assert_eq!(easy, ExtKnobs::default());
        let hard = ExtKnobs::map_profile(&profile(6, Complexity::High, true));
        assert!(hard.rerank && hard.rewrite);
    }

    #[test]
    fn reranker_promotes_lexical_matches() {
        let query: Vec<TokenId> = [1, 2, 3].iter().map(|&t| TokenId(t)).collect();
        // Chunk 9 has all three query tokens but worse embedding distance.
        let hits = vec![result(0, &[7, 8, 9]), result(9, &[1, 2, 3, 4])];
        let reranked = rerank_hits(&query, hits);
        assert_eq!(reranked[0].hit.chunk, ChunkId(9));
    }

    #[test]
    fn reranker_respects_multiplicity() {
        let query: Vec<TokenId> = [5, 5].iter().map(|&t| TokenId(t)).collect();
        let hits = vec![result(0, &[5]), result(1, &[5, 5])];
        let reranked = rerank_hits(&query, hits);
        assert_eq!(reranked[0].hit.chunk, ChunkId(1));
    }

    #[test]
    fn rewrite_doubles_unique_tokens_only() {
        let query: Vec<TokenId> = [1, 2, 2, 3].iter().map(|&t| TokenId(t)).collect();
        let rewritten = rewrite_query(&query);
        // 1 and 3 doubled; 2 left alone.
        let count = |t: u32| rewritten.iter().filter(|x| x.0 == t).count();
        assert_eq!(count(1), 2);
        assert_eq!(count(2), 2);
        assert_eq!(count(3), 2);
    }

    #[test]
    fn knob_latency_scales_with_chunks() {
        let knobs = ExtKnobs {
            rerank: true,
            rewrite: true,
        };
        assert!(knobs.latency_nanos(20) > knobs.latency_nanos(5));
        assert_eq!(ExtKnobs::default().latency_nanos(10), 0);
    }
}

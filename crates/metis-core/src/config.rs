//! RAG configuration knobs and configuration spaces (§2).

/// How retrieved chunks are synthesized into an answer (Fig. 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SynthesisMethod {
    /// Answer from each chunk separately; keep the most confident answer.
    /// Cheapest, but cannot reason across chunks.
    MapRerank,
    /// Concatenate all chunks into one prompt. Middle ground; suffers
    /// lost-in-the-middle on long inputs.
    Stuff,
    /// Summarize each chunk (to `intermediate_length` tokens), then answer
    /// over the summaries. Most compute, best at denoising long contexts.
    MapReduce,
}

impl SynthesisMethod {
    /// All methods, cheapest first.
    pub fn all() -> [SynthesisMethod; 3] {
        [
            SynthesisMethod::MapRerank,
            SynthesisMethod::Stuff,
            SynthesisMethod::MapReduce,
        ]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            SynthesisMethod::MapRerank => "map_rerank",
            SynthesisMethod::Stuff => "stuff",
            SynthesisMethod::MapReduce => "map_reduce",
        }
    }
}

/// One concrete RAG configuration (the paper's three knobs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RagConfig {
    /// How many chunks to retrieve (knob 1).
    pub num_chunks: u32,
    /// How to synthesize (knob 2).
    pub synthesis: SynthesisMethod,
    /// Summary length for `map_reduce` (knob 3; ignored otherwise).
    pub intermediate_length: u32,
}

impl RagConfig {
    /// A `stuff` configuration.
    pub fn stuff(num_chunks: u32) -> Self {
        Self {
            num_chunks,
            synthesis: SynthesisMethod::Stuff,
            intermediate_length: 0,
        }
    }

    /// A `map_rerank` configuration.
    pub fn map_rerank(num_chunks: u32) -> Self {
        Self {
            num_chunks,
            synthesis: SynthesisMethod::MapRerank,
            intermediate_length: 0,
        }
    }

    /// A `map_reduce` configuration.
    pub fn map_reduce(num_chunks: u32, intermediate_length: u32) -> Self {
        Self {
            num_chunks,
            synthesis: SynthesisMethod::MapReduce,
            intermediate_length,
        }
    }

    /// The paper's golden configuration for profiler feedback (§5):
    /// `map_reduce` with 30 chunks and 300-token summaries.
    pub fn golden() -> Self {
        Self::map_reduce(30, 300)
    }

    /// The number of chunks this configuration actually consumes against
    /// `available` chunks (a corpus size or a retrieval result length): at
    /// least one whenever anything is available, never more than requested
    /// or available. This is the *single* clamp shared by the runner's
    /// engine-timed retrieval and the synthesis quality path — both must
    /// call it so the two chunk counts can never drift apart.
    pub fn effective_chunks(&self, available: usize) -> usize {
        (self.num_chunks.max(1) as usize).min(available)
    }

    /// Short display form, e.g. `stuff(k=8)` or `map_reduce(k=8,l=100)`.
    pub fn label(&self) -> String {
        match self.synthesis {
            SynthesisMethod::MapReduce => format!(
                "map_reduce(k={},l={})",
                self.num_chunks, self.intermediate_length
            ),
            m => format!("{}(k={})", m.name(), self.num_chunks),
        }
    }
}

/// Bounds of the *full* configuration space (§3: "30 values for num_chunks
/// and 50 values for intermediate_length leads to 1500 configurations").
#[derive(Clone, Copy, Debug)]
pub struct ConfigSpace {
    /// Inclusive `num_chunks` range.
    pub num_chunks: (u32, u32),
    /// Inclusive `intermediate_length` range (map_reduce only).
    pub intermediate_length: (u32, u32),
}

impl Default for ConfigSpace {
    fn default() -> Self {
        Self {
            num_chunks: (1, 35),
            intermediate_length: (1, 300),
        }
    }
}

impl ConfigSpace {
    /// Size of the full space (every method × chunks × lengths).
    pub fn size(&self) -> u64 {
        let chunks = u64::from(self.num_chunks.1 - self.num_chunks.0 + 1);
        let lens = u64::from(self.intermediate_length.1 - self.intermediate_length.0 + 1);
        // map_rerank and stuff ignore intermediate_length.
        chunks * 2 + chunks * lens
    }
}

/// The pruned, per-query configuration space produced by Algorithm 1.
#[derive(Clone, Debug, PartialEq)]
pub struct PrunedSpace {
    /// Candidate synthesis methods.
    pub methods: Vec<SynthesisMethod>,
    /// Inclusive `num_chunks` range (`[n, 3n]` from the profile).
    pub num_chunks: (u32, u32),
    /// Inclusive `intermediate_length` range (profiler's summary range).
    pub intermediate_length: (u32, u32),
}

impl PrunedSpace {
    /// Number of configurations in the pruned space.
    pub fn size(&self) -> u64 {
        let chunks = u64::from(self.num_chunks.1 - self.num_chunks.0 + 1);
        let lens = u64::from(self.intermediate_length.1 - self.intermediate_length.0 + 1);
        self.methods
            .iter()
            .map(|m| match m {
                SynthesisMethod::MapReduce => chunks * lens,
                _ => chunks,
            })
            .sum()
    }

    /// Whether `config` lies inside this space.
    pub fn contains(&self, config: &RagConfig) -> bool {
        self.methods.contains(&config.synthesis)
            && (self.num_chunks.0..=self.num_chunks.1).contains(&config.num_chunks)
            && (config.synthesis != SynthesisMethod::MapReduce
                || (self.intermediate_length.0..=self.intermediate_length.1)
                    .contains(&config.intermediate_length))
    }

    /// Enumerates representative configurations: every method × every chunk
    /// count, with `intermediate_length` sampled at the range edges and
    /// midpoint for `map_reduce` (full enumeration of lengths is never
    /// needed — demand is monotone in the length).
    pub fn candidates(&self) -> Vec<RagConfig> {
        let mut out = Vec::new();
        let (clo, chi) = self.num_chunks;
        let (llo, lhi) = self.intermediate_length;
        let lmid = (llo + lhi) / 2;
        for &m in &self.methods {
            for k in clo..=chi {
                match m {
                    SynthesisMethod::MapReduce => {
                        for l in [llo, lmid, lhi] {
                            let cfg = RagConfig::map_reduce(k, l);
                            if !out.contains(&cfg) {
                                out.push(cfg);
                            }
                        }
                    }
                    SynthesisMethod::Stuff => out.push(RagConfig::stuff(k)),
                    SynthesisMethod::MapRerank => out.push(RagConfig::map_rerank(k)),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_space_is_combinatorial() {
        let s = ConfigSpace::default();
        // 35 × 2 + 35 × 300 = 10570 — the §3 "prohibitive" scale.
        assert_eq!(s.size(), 10_570);
    }

    #[test]
    fn pruned_space_is_50_to_100x_smaller() {
        // A typical profile: pieces = 3 → chunks 3..9, summaries 20..80.
        let pruned = PrunedSpace {
            methods: vec![SynthesisMethod::Stuff, SynthesisMethod::MapReduce],
            num_chunks: (3, 9),
            intermediate_length: (20, 80),
        };
        let full = ConfigSpace::default().size();
        let ratio = full as f64 / pruned.size() as f64;
        assert!(ratio > 20.0, "reduction only {ratio:.0}x");
    }

    #[test]
    fn contains_respects_method_and_ranges() {
        let p = PrunedSpace {
            methods: vec![SynthesisMethod::Stuff],
            num_chunks: (2, 6),
            intermediate_length: (10, 50),
        };
        assert!(p.contains(&RagConfig::stuff(4)));
        assert!(!p.contains(&RagConfig::stuff(7)));
        assert!(!p.contains(&RagConfig::map_rerank(4)));
    }

    #[test]
    fn intermediate_length_only_constrains_map_reduce() {
        let p = PrunedSpace {
            methods: vec![SynthesisMethod::Stuff, SynthesisMethod::MapReduce],
            num_chunks: (1, 5),
            intermediate_length: (10, 20),
        };
        assert!(p.contains(&RagConfig::stuff(3))); // ilen 0 irrelevant.
        assert!(!p.contains(&RagConfig::map_reduce(3, 50)));
        assert!(p.contains(&RagConfig::map_reduce(3, 15)));
    }

    #[test]
    fn candidates_cover_methods_and_chunk_range() {
        let p = PrunedSpace {
            methods: vec![SynthesisMethod::Stuff, SynthesisMethod::MapReduce],
            num_chunks: (2, 4),
            intermediate_length: (10, 30),
        };
        let c = p.candidates();
        // 3 chunk values × (1 stuff + 3 map_reduce lengths) = 12.
        assert_eq!(c.len(), 12);
        assert!(c.iter().all(|cfg| p.contains(cfg)));
    }

    #[test]
    fn golden_config_matches_section5() {
        let g = RagConfig::golden();
        assert_eq!(g.synthesis, SynthesisMethod::MapReduce);
        assert_eq!(g.num_chunks, 30);
        assert_eq!(g.intermediate_length, 300);
    }

    #[test]
    fn effective_chunks_clamps_once_for_both_paths() {
        // Zero-chunk requests still read one chunk when one exists.
        assert_eq!(RagConfig::stuff(0).effective_chunks(10), 1);
        // Requests are capped by what exists.
        assert_eq!(RagConfig::stuff(8).effective_chunks(3), 3);
        assert_eq!(RagConfig::stuff(8).effective_chunks(100), 8);
        // An empty corpus yields nothing, whatever was requested.
        assert_eq!(RagConfig::stuff(8).effective_chunks(0), 0);
        // Idempotent under chaining: clamping against the corpus and then
        // against the (already clamped) retrieval result is a fixed point,
        // so the engine-timed count always equals the quality-path count.
        for requested in [0u32, 1, 5, 10_000] {
            for corpus in [0usize, 1, 7, 500] {
                let cfg = RagConfig::stuff(requested);
                let k = cfg.effective_chunks(corpus);
                assert_eq!(cfg.effective_chunks(k), k);
            }
        }
    }

    #[test]
    fn labels_are_readable() {
        assert_eq!(RagConfig::stuff(8).label(), "stuff(k=8)");
        assert_eq!(
            RagConfig::map_reduce(5, 100).label(),
            "map_reduce(k=5,l=100)"
        );
    }
}

//! Joint configuration/scheduling: the best-fit selector (§4.3).
//!
//! Within the pruned space (where every configuration is presumed
//! high-quality), the scheduler picks the configuration with the **highest
//! memory requirement among those that fit** the currently free GPU memory,
//! keeping a 2% safety buffer. Configurations that do not fit are never
//! queued; if *nothing* in the pruned space fits, METIS falls back to a
//! cheaper configuration just outside the range: `map_rerank` when the query
//! needs no joint reasoning, otherwise `stuff`, each with as many chunks as
//! fit (§4.3 "What if none of the configurations fit in the GPU?").

use crate::config::{PrunedSpace, RagConfig};
use crate::memory::{PlanDemand, PROMPT_OVERHEAD};

/// Resource snapshot and sizing constants for one decision.
#[derive(Clone, Copy, Debug)]
pub struct BestFitInputs {
    /// Free KV-cache tokens right now (from the engine allocator; the paper
    /// reads free GPU memory via pynvml).
    pub free_kv_tokens: u64,
    /// Tokens per retrieval chunk.
    pub chunk_size: u64,
    /// Query length in tokens.
    pub query_tokens: u64,
    /// Expected final-answer output tokens.
    pub expected_output: u64,
    /// Safety buffer fraction held back against OOM (paper: 2%).
    pub buffer_frac: f64,
}

impl BestFitInputs {
    /// Usable free tokens after the safety buffer.
    pub fn usable(&self) -> u64 {
        (self.free_kv_tokens as f64 * (1.0 - self.buffer_frac)).max(0.0) as u64
    }
}

/// A best-fit decision.
#[derive(Clone, Copy, Debug)]
pub struct Chosen {
    /// The selected configuration.
    pub config: RagConfig,
    /// Whether the §4.3 out-of-memory fallback was taken.
    pub fallback: bool,
}

/// Picks the best-fitting configuration from the pruned space.
///
/// `joint_required` steers the fallback path (it comes from the query
/// profile, which METIS already holds at this point).
pub fn choose_config(space: &PrunedSpace, joint_required: bool, inputs: &BestFitInputs) -> Chosen {
    let usable = inputs.usable();
    let mut best: Option<(u64, RagConfig)> = None;
    for cfg in space.candidates() {
        let demand = PlanDemand::estimate(
            &cfg,
            inputs.chunk_size,
            inputs.query_tokens,
            inputs.expected_output,
        );
        if demand.sched_tokens > usable {
            continue; // Would queue; never picked (§4.3).
        }
        // For stuff, the whole prompt must fit; map-based methods only need
        // their streaming window of mappers (Fig. 8). Rank the fitting
        // configurations by total memory requirement.
        let better = match &best {
            Some((total, _)) => demand.total_tokens > *total,
            None => true,
        };
        if better {
            best = Some((demand.total_tokens, cfg));
        }
    }
    if let Some((_, config)) = best {
        return Chosen {
            config,
            fallback: false,
        };
    }

    // Fallback: cheapest viable configuration just outside the range.
    let per_call_fixed = inputs.query_tokens + PROMPT_OVERHEAD + inputs.expected_output;
    if !joint_required {
        // map_rerank with as many chunks as fit (one call per chunk; each
        // call must fit individually, and we bound the count by how many
        // calls fit at once).
        let call = inputs.chunk_size + per_call_fixed;
        let k = (usable / call.max(1)).clamp(1, u64::from(space.num_chunks.1.max(1))) as u32;
        Chosen {
            config: RagConfig::map_rerank(k),
            fallback: true,
        }
    } else {
        // stuff with as many chunks as fit in the free memory.
        let k = (usable.saturating_sub(per_call_fixed) / inputs.chunk_size.max(1)).max(1) as u32;
        let k = k.min(space.num_chunks.1.max(1));
        Chosen {
            config: RagConfig::stuff(k),
            fallback: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthesisMethod;

    fn space() -> PrunedSpace {
        PrunedSpace {
            methods: vec![SynthesisMethod::Stuff, SynthesisMethod::MapReduce],
            num_chunks: (5, 10),
            intermediate_length: (40, 120),
        }
    }

    fn inputs(free: u64) -> BestFitInputs {
        BestFitInputs {
            free_kv_tokens: free,
            chunk_size: 1_000,
            query_tokens: 40,
            expected_output: 48,
            buffer_frac: 0.02,
        }
    }

    #[test]
    fn ample_memory_picks_most_expensive_config() {
        let c = choose_config(&space(), true, &inputs(1_000_000));
        assert!(!c.fallback);
        // Highest total demand: map_reduce with max chunks and max length.
        assert_eq!(c.config.synthesis, SynthesisMethod::MapReduce);
        assert_eq!(c.config.num_chunks, 10);
        assert_eq!(c.config.intermediate_length, 120);
    }

    #[test]
    fn stuff_never_exceeds_free_memory() {
        // Free memory fits stuff(6) but not stuff(7):
        // stuff(k) total = k*1000 + 40 + 32 + 48 = k*1000 + 120.
        let only_stuff = PrunedSpace {
            methods: vec![SynthesisMethod::Stuff],
            ..space()
        };
        let free = (7_120.0 / 0.98) as u64 - 100; // usable ≈ 6.9k < 7120.
        let c = choose_config(&only_stuff, true, &inputs(free));
        assert!(!c.fallback);
        assert_eq!(c.config.num_chunks, 6, "chose {:?}", c.config);
    }

    #[test]
    fn fig8_low_memory_prefers_map_reduce_over_stuff() {
        // Free memory holds a streaming window of mappers but not the
        // 10-chunk stuff prompt: the joint decision switches methods instead
        // of queueing (Fig. 8).
        let c = choose_config(&space(), true, &inputs(5_200));
        assert!(!c.fallback, "fallback fired: {:?}", c.config);
        assert_eq!(c.config.synthesis, SynthesisMethod::MapReduce);
        // And it still never picks something whose scheduling footprint
        // exceeds free memory: a window of its mappers fits.
        assert!(c.config.num_chunks >= 4);
    }

    #[test]
    fn oom_fallback_respects_joint_requirement() {
        // Nothing fits: a single mapper needs ≥ 1120 tokens.
        let c_no_joint = choose_config(&space(), false, &inputs(900));
        assert!(c_no_joint.fallback);
        assert_eq!(c_no_joint.config.synthesis, SynthesisMethod::MapRerank);
        assert_eq!(c_no_joint.config.num_chunks, 1);

        let c_joint = choose_config(&space(), true, &inputs(900));
        assert!(c_joint.fallback);
        assert_eq!(c_joint.config.synthesis, SynthesisMethod::Stuff);
        assert_eq!(c_joint.config.num_chunks, 1);
    }

    #[test]
    fn fallback_chunk_count_scales_with_memory() {
        let mr_only = PrunedSpace {
            methods: vec![SynthesisMethod::MapReduce],
            num_chunks: (20, 30),
            intermediate_length: (200, 300),
        };
        // One mapper = 1000 + 40 + 32 + 200..300; give room for none (the
        // mapper needs its summary output too) by shrinking memory.
        let c = choose_config(&mr_only, false, &inputs(1_100));
        assert!(c.fallback);
        assert!(c.config.num_chunks >= 1);
    }

    #[test]
    fn buffer_is_respected() {
        let i = inputs(10_000);
        assert_eq!(i.usable(), 9_800);
    }
}

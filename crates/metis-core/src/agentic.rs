//! Agentic RAG extension (§9).
//!
//! "For an agentic workflow, a key extension for METIS is to profile the
//! query-complexity and break down a query into multiple sub-queries for
//! planning (e.g., how many sub-queries are needed becomes a new
//! configuration knob). METIS complements such workflows and can continue to
//! perform the joint resource allocation for each sub-query."
//!
//! This module implements that workflow end to end:
//!
//! 1. **Plan** — the profiler's `pieces` estimate becomes the new knob: how
//!    many sub-queries to spawn (capped by the subject mentions actually
//!    present in the query text).
//! 2. **Solve** — each sub-query retrieves its own small context and runs a
//!    focused single-fact `stuff` call.
//! 3. **Combine** — a final call reads the concatenated sub-answers (which
//!    carry the extracted facts as annotated spans) and performs the joint
//!    reasoning over them.
//!
//! Each sub-query is an ordinary LLM call, so the METIS best-fit scheduler
//! treats an agentic plan exactly like a `map_reduce` plan: sub-query calls
//! stream through available memory, the combine call follows.

use metis_llm::{GenerationModel, QueryTruth};
use metis_text::AnnotatedText;
use metis_vectordb::VectorDb;

use crate::config::RagConfig;
use crate::memory::PROMPT_OVERHEAD;
use crate::synthesis::{PlannedCall, SynthesisPlan};

/// Retrieval depth per sub-query: each targets exactly one piece of
/// information, retrieved with the usual 1–3× leeway.
pub const SUBQUERY_CHUNKS: usize = 5;

/// Inputs to the agentic pipeline for one query.
pub struct AgenticInputs<'a> {
    /// The serving model's generation model.
    pub gen: &'a GenerationModel,
    /// The full query's ground truth.
    pub truth: &'a QueryTruth,
    /// Full query tokens.
    pub query_tokens: &'a [metis_text::TokenId],
    /// Per-fact subject spans inside `query_tokens` (from the planner).
    pub subject_spans: &'a [(usize, usize)],
    /// Boilerplate pool for non-answer output words.
    pub boilerplate: &'a [metis_text::TokenId],
}

/// Decomposes and executes the agentic workflow, returning a plan the
/// runner/engine can time like any other synthesis plan.
///
/// `sub_queries` is the new knob (how many sub-queries the planner spawns);
/// it is clamped to the number of subject mentions available.
pub fn plan_agentic(
    inputs: &AgenticInputs<'_>,
    db: &VectorDb,
    sub_queries: u32,
    seed: u64,
) -> SynthesisPlan {
    let n = (sub_queries.max(1) as usize).min(inputs.subject_spans.len().max(1));
    let mut calls = Vec::with_capacity(n);
    let mut combine_context = AnnotatedText::new();

    for (i, &(lo, hi)) in inputs.subject_spans.iter().take(n).enumerate() {
        // Sub-query text: this fact's subject plus the query's shared tail
        // (topic + question words follow the subject spans).
        let tail_start = inputs
            .subject_spans
            .last()
            .map(|&(_, end)| end)
            .unwrap_or(0);
        let mut sub_tokens = inputs.query_tokens[lo..hi.min(inputs.query_tokens.len())].to_vec();
        sub_tokens.extend_from_slice(&inputs.query_tokens[tail_start..]);

        let retrieved = db.retrieve(&sub_tokens, SUBQUERY_CHUNKS);
        let mut context = AnnotatedText::new();
        for r in &retrieved {
            context.push_text(&r.text);
        }
        context.push_tokens(&sub_tokens);

        // Focused truth: this sub-query only hunts its own fact.
        let focused = QueryTruth {
            base: inputs.truth.base.get(i).cloned().into_iter().collect(),
            derived: Vec::new(),
        };
        let out = inputs.gen.answer(
            seed.wrapping_add(i as u64).wrapping_mul(0xA5A5_1234),
            &focused,
            &context,
            inputs.boilerplate,
            retrieved.len().max(1),
        );
        calls.push(PlannedCall {
            prompt_tokens: context.len() as u64 + PROMPT_OVERHEAD,
            output_tokens: out.tokens.len().max(1) as u64,
        });
        // The sub-answer carries any extracted fact as an annotated span so
        // the combine call can reason over it.
        if let Some(fact) = focused.base.first() {
            if out.extracted.contains(&fact.id) {
                combine_context.push_fact(fact.id, &fact.answer);
            }
        }
        for t in out.tokens.iter().take(4) {
            combine_context.push_tokens(&[*t]);
        }
    }

    combine_context.push_tokens(inputs.query_tokens);
    let out = inputs.gen.answer(
        seed ^ 0xC0B1,
        inputs.truth,
        &combine_context,
        inputs.boilerplate,
        n,
    );
    let combine = PlannedCall {
        prompt_tokens: combine_context.len() as u64 + PROMPT_OVERHEAD,
        output_tokens: out.tokens.len().max(1) as u64,
    };
    SynthesisPlan {
        // Reported as a map_reduce-shaped plan: n sub-calls + 1 combine.
        config: RagConfig::map_reduce(n as u32 * SUBQUERY_CHUNKS as u32, 0),
        map_calls: calls,
        reduce_call: Some(combine),
        answer: out.tokens,
        coverage: out.coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_datasets::{build_dataset, DatasetKind};
    use metis_llm::{GenModelConfig, ModelSpec};
    use metis_metrics::f1_score;

    fn gen() -> GenerationModel {
        GenerationModel::new(&ModelSpec::mistral_7b_awq(), GenModelConfig::default())
    }

    #[test]
    fn agentic_plan_has_one_call_per_sub_query_plus_combine() {
        let d = build_dataset(DatasetKind::Musique, 10, 5);
        let q = d
            .queries
            .iter()
            .find(|q| q.profile.pieces >= 3)
            .expect("multi-piece query");
        let g = gen();
        let inputs = AgenticInputs {
            gen: &g,
            truth: &q.truth,
            query_tokens: &q.tokens,
            subject_spans: &q.subject_spans,
            boilerplate: &d.boilerplate,
        };
        let plan = plan_agentic(&inputs, &d.db, q.profile.pieces, 3);
        assert_eq!(plan.map_calls.len(), q.profile.pieces as usize);
        assert!(plan.reduce_call.is_some());
        // The combine prompt is tiny compared to raw chunks.
        assert!(plan.reduce_call.expect("combine").prompt_tokens < 500);
    }

    #[test]
    fn agentic_answers_multi_hop_queries() {
        let d = build_dataset(DatasetKind::Musique, 20, 9);
        let g = gen();
        let mut agentic_f1 = 0.0;
        let mut queries = 0;
        for (i, q) in d.queries.iter().enumerate() {
            if !q.profile.joint {
                continue;
            }
            queries += 1;
            let inputs = AgenticInputs {
                gen: &g,
                truth: &q.truth,
                query_tokens: &q.tokens,
                subject_spans: &q.subject_spans,
                boilerplate: &d.boilerplate,
            };
            let plan = plan_agentic(&inputs, &d.db, q.profile.pieces, 100 + i as u64);
            agentic_f1 += f1_score(&plan.answer, &q.gold_answer());
        }
        assert!(queries > 5);
        // Multi-hop chains multiply per-hop retrieval and extraction
        // success, so absolute F1 sits below single-prompt synthesis on this
        // metric; what matters is that the decomposition genuinely answers a
        // meaningful fraction of multi-hop questions from tiny contexts.
        assert!(
            agentic_f1 / queries as f64 > 0.15,
            "agentic F1 too low: {:.3}",
            agentic_f1 / queries as f64
        );
    }

    #[test]
    fn sub_query_knob_is_clamped_to_available_subjects() {
        let d = build_dataset(DatasetKind::Squad, 5, 2);
        let q = &d.queries[0];
        let g = gen();
        let inputs = AgenticInputs {
            gen: &g,
            truth: &q.truth,
            query_tokens: &q.tokens,
            subject_spans: &q.subject_spans,
            boilerplate: &d.boilerplate,
        };
        let plan = plan_agentic(&inputs, &d.db, 10, 1);
        assert_eq!(plan.map_calls.len(), q.subject_spans.len());
    }

    #[test]
    fn agentic_is_deterministic() {
        let d = build_dataset(DatasetKind::FinSec, 5, 4);
        let q = &d.queries[1];
        let g = gen();
        let inputs = AgenticInputs {
            gen: &g,
            truth: &q.truth,
            query_tokens: &q.tokens,
            subject_spans: &q.subject_spans,
            boilerplate: &d.boilerplate,
        };
        let a = plan_agentic(&inputs, &d.db, q.profile.pieces, 7);
        let b = plan_agentic(&inputs, &d.db, q.profile.pieces, 7);
        assert_eq!(a.answer, b.answer);
        assert_eq!(a.map_calls.len(), b.map_calls.len());
    }
}

//! Queue-driven fleet autoscaling with hysteresis.
//!
//! The paper's joint configuration/scheduling controller (§4.3) adapts
//! *within* a fixed fleet: it sizes each query's configuration against the
//! routed replica's free KV. This module adapts the fleet itself. An
//! [`Autoscaler`] is a pure policy evaluated on the run's event timeline
//! (under both the simulated and realtime drivers): every
//! `eval_interval_nanos` it reads two load signals — cluster queue depth
//! and the worst per-replica preemption pressure — and decides to add a
//! replica, drain one, or hold.
//!
//! Two mechanisms keep it from flapping:
//!
//! * **Hysteresis band** — scale-up triggers at
//!   `queue_depth >= scale_up_queue_depth`, scale-down only at
//!   `queue_depth <= scale_down_queue_depth`, with the up threshold
//!   strictly above the down threshold. Loads inside the band hold.
//! * **Cooldown** — after any scale action the policy holds for
//!   `cooldown_nanos`, long enough for the last action's effect (a warm-up,
//!   a drain) to show up in the signals it reads.
//!
//! The policy itself owns no fleet state; the runner applies its decisions
//! through [`Driver::add_replica`](metis_engine::Driver::add_replica) and
//! [`Driver::drain_replica`](metis_engine::Driver::drain_replica), and the
//! mutable evaluation state lives in a separate [`AutoscalerState`] so the
//! same policy value can parameterize many runs.

use metis_llm::Nanos;

/// What one evaluation decided.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScaleAction {
    /// Add one replica.
    Up,
    /// Drain one replica.
    Down,
    /// Do nothing this tick.
    Hold,
}

/// Mutable evaluation state: when the last scale action happened.
#[derive(Clone, Copy, Debug, Default)]
pub struct AutoscalerState {
    last_action_at: Option<Nanos>,
}

/// A queue-driven scale-up/down policy with hysteresis and cooldown.
///
/// # Examples
///
/// The policy is a plain value; [`evaluate`](Autoscaler::evaluate) is pure
/// given its state, so the hysteresis band is directly testable:
///
/// ```
/// use metis_core::autoscaler::{Autoscaler, AutoscalerState, ScaleAction};
///
/// let policy = Autoscaler::default();
/// let mut state = AutoscalerState::default();
/// // A deep queue on a small fleet scales up...
/// let depth = policy.scale_up_queue_depth;
/// assert_eq!(
///     policy.evaluate(0, 2, depth, 0.0, &mut state),
///     ScaleAction::Up
/// );
/// // ...and the cooldown holds the very next tick, even at the same depth.
/// assert_eq!(
///     policy.evaluate(1, 3, depth, 0.0, &mut state),
///     ScaleAction::Hold
/// );
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Autoscaler {
    /// Never drain below this many routable replicas.
    pub min_replicas: usize,
    /// Never grow beyond this many routable replicas.
    pub max_replicas: usize,
    /// Queue depth at or above which the fleet scales up.
    pub scale_up_queue_depth: u64,
    /// Queue depth at or below which the fleet may scale down (must be
    /// strictly below `scale_up_queue_depth` — the gap is the hysteresis
    /// band).
    pub scale_down_queue_depth: u64,
    /// Worst per-replica preemption pressure (preemptions per submission)
    /// at or above which the fleet scales up even with a shallow queue —
    /// KV thrashing is capacity starvation the queue depth can miss.
    pub scale_up_pressure: f64,
    /// How often the policy is evaluated on the run timeline.
    pub eval_interval_nanos: Nanos,
    /// Minimum time between scale actions.
    pub cooldown_nanos: Nanos,
    /// Warm-up charged to every replica this policy adds (its slot bills
    /// replica-seconds from spawn, but takes no routed work until warm).
    pub warmup_nanos: Nanos,
}

impl Default for Autoscaler {
    /// One to eight replicas; up at a queue of 8 (or preemption pressure
    /// 0.5), down at an empty queue; 1 s evaluation, 10 s cooldown, 5 s
    /// warm-up — roughly a vLLM-style engine start with weights already
    /// resident.
    fn default() -> Self {
        Self {
            min_replicas: 1,
            max_replicas: 8,
            scale_up_queue_depth: 8,
            scale_down_queue_depth: 0,
            scale_up_pressure: 0.5,
            eval_interval_nanos: 1_000_000_000,
            cooldown_nanos: 10_000_000_000,
            warmup_nanos: 5_000_000_000,
        }
    }
}

impl Autoscaler {
    /// Decides the action for the tick at `now`, given `active` routable
    /// replicas, the cluster `queue_depth`, and the worst per-replica
    /// preemption `pressure`. Records `now` in `state` when (and only
    /// when) the decision is not [`ScaleAction::Hold`].
    ///
    /// # Panics
    ///
    /// Panics if the policy is malformed: zero `min_replicas`,
    /// `max_replicas < min_replicas`, or a hysteresis band of zero or
    /// negative width.
    pub fn evaluate(
        &self,
        now: Nanos,
        active: usize,
        queue_depth: u64,
        pressure: f64,
        state: &mut AutoscalerState,
    ) -> ScaleAction {
        assert!(self.min_replicas >= 1, "min_replicas must be at least 1");
        assert!(
            self.max_replicas >= self.min_replicas,
            "max_replicas must be >= min_replicas"
        );
        assert!(
            self.scale_up_queue_depth > self.scale_down_queue_depth,
            "the hysteresis band must have positive width \
             (scale_up_queue_depth > scale_down_queue_depth)"
        );
        if let Some(last) = state.last_action_at {
            if now.saturating_sub(last) < self.cooldown_nanos {
                return ScaleAction::Hold;
            }
        }
        let overloaded =
            queue_depth >= self.scale_up_queue_depth || pressure >= self.scale_up_pressure;
        if overloaded && active < self.max_replicas {
            state.last_action_at = Some(now);
            return ScaleAction::Up;
        }
        let idle = queue_depth <= self.scale_down_queue_depth && pressure < self.scale_up_pressure;
        if idle && active > self.min_replicas {
            state.last_action_at = Some(now);
            return ScaleAction::Down;
        }
        ScaleAction::Hold
    }

    /// The policy bounded to a fixed band.
    pub fn bounded(mut self, min: usize, max: usize) -> Self {
        self.min_replicas = min;
        self.max_replicas = max;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Autoscaler {
        Autoscaler {
            min_replicas: 1,
            max_replicas: 4,
            scale_up_queue_depth: 6,
            scale_down_queue_depth: 1,
            scale_up_pressure: 0.5,
            eval_interval_nanos: 1,
            cooldown_nanos: 10,
            warmup_nanos: 0,
        }
    }

    #[test]
    fn deep_queue_scales_up_until_the_cap() {
        let p = quick();
        let mut s = AutoscalerState::default();
        assert_eq!(p.evaluate(0, 1, 10, 0.0, &mut s), ScaleAction::Up);
        assert_eq!(p.evaluate(20, 2, 10, 0.0, &mut s), ScaleAction::Up);
        // At the cap, an arbitrarily deep queue holds.
        assert_eq!(p.evaluate(40, 4, 1_000, 0.0, &mut s), ScaleAction::Hold);
    }

    #[test]
    fn empty_queue_scales_down_to_the_floor() {
        let p = quick();
        let mut s = AutoscalerState::default();
        assert_eq!(p.evaluate(0, 3, 0, 0.0, &mut s), ScaleAction::Down);
        assert_eq!(p.evaluate(20, 2, 0, 0.0, &mut s), ScaleAction::Down);
        assert_eq!(p.evaluate(40, 1, 0, 0.0, &mut s), ScaleAction::Hold);
    }

    #[test]
    fn loads_inside_the_hysteresis_band_hold() {
        let p = quick();
        let mut s = AutoscalerState::default();
        for depth in (p.scale_down_queue_depth + 1)..p.scale_up_queue_depth {
            assert_eq!(
                p.evaluate(0, 2, depth, 0.0, &mut s),
                ScaleAction::Hold,
                "depth {depth} is inside the band"
            );
        }
        assert!(s.last_action_at.is_none(), "holds never start a cooldown");
    }

    #[test]
    fn cooldown_suppresses_back_to_back_actions() {
        let p = quick();
        let mut s = AutoscalerState::default();
        assert_eq!(p.evaluate(0, 1, 10, 0.0, &mut s), ScaleAction::Up);
        // Cooldown swallows both directions, even a would-be scale-down.
        assert_eq!(p.evaluate(5, 2, 10, 0.0, &mut s), ScaleAction::Hold);
        assert_eq!(p.evaluate(9, 2, 0, 0.0, &mut s), ScaleAction::Hold);
        // Once the cooldown has elapsed, actions flow again.
        assert_eq!(p.evaluate(10, 2, 10, 0.0, &mut s), ScaleAction::Up);
    }

    #[test]
    fn preemption_pressure_alone_scales_up() {
        let p = quick();
        let mut s = AutoscalerState::default();
        // Shallow queue, but replicas thrash their KV pools.
        assert_eq!(p.evaluate(0, 2, 0, 0.9, &mut s), ScaleAction::Up);
        // The same pressure also vetoes scale-down at an empty queue.
        let mut s2 = AutoscalerState::default();
        assert_eq!(p.evaluate(0, 3, 0, 0.6, &mut s2), ScaleAction::Up);
    }

    #[test]
    fn square_wave_arrivals_do_not_flap() {
        // A square wave alternating between a deep queue (high phase) and
        // an empty queue (low phase) faster than the cooldown: the fleet
        // must not oscillate every tick. Count direction changes over a
        // simulated day of ticks.
        let p = Autoscaler {
            cooldown_nanos: 8,
            ..quick()
        };
        let mut s = AutoscalerState::default();
        let mut active: usize = 2;
        let mut flips = 0u32;
        let mut last_dir: Option<ScaleAction> = None;
        for tick in 0..200u64 {
            // Period-4 square wave: 2 ticks deep, 2 ticks empty.
            let depth = if (tick / 2) % 2 == 0 { 10 } else { 0 };
            let action = p.evaluate(tick, active, depth, 0.0, &mut s);
            match action {
                ScaleAction::Up => active += 1,
                ScaleAction::Down => active -= 1,
                ScaleAction::Hold => {}
            }
            if action != ScaleAction::Hold {
                if last_dir.is_some_and(|d| d != action) {
                    flips += 1;
                }
                last_dir = Some(action);
            }
        }
        // The cooldown admits at most one action per 8 ticks; a flapping
        // policy would reverse direction on nearly every action (~25
        // actions → ~24 flips). Requiring far fewer reversals pins the
        // damping without overfitting the exact sequence.
        assert!(
            flips <= 13,
            "fleet flapped {flips} direction changes on a square wave"
        );
        assert!((1..=4).contains(&active), "fleet stayed inside its bounds");
    }

    #[test]
    #[should_panic(expected = "hysteresis band")]
    fn inverted_thresholds_are_rejected() {
        let p = Autoscaler {
            scale_up_queue_depth: 1,
            scale_down_queue_depth: 3,
            ..quick()
        };
        let mut s = AutoscalerState::default();
        p.evaluate(0, 1, 0, 0.0, &mut s);
    }
}

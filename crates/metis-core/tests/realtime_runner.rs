//! End-to-end runner integration on the realtime driver: a full METIS
//! workload — profiler, pruning, joint scheduling, retrieval, map/reduce
//! synthesis — served by live worker threads instead of the simulator.
//!
//! High time compression keeps the wall cost to milliseconds. The checks
//! are structural, not golden (wall-clock jitter moves the numbers):
//!
//! * every query completes, with a plausible F1 and positive delay;
//! * the per-stage breakdown still telescopes *exactly* to the mean
//!   end-to-end delay — engine timestamps stay virtual under the realtime
//!   driver, so the partition identity is not merely approximate;
//! * the run is stamped as realtime-served (`DriverKind`, `time_scale`,
//!   and the report-cell `driver` knob the perf gate keys on).

use metis_core::{DriverKind, DriverSpec, MetisOptions, RunConfig, Runner, SystemKind};
use metis_datasets::{build_dataset, poisson_arrivals, DatasetKind};
use metis_engine::RouterPolicy;

const QUERIES: usize = 10;
const TIME_SCALE: f64 = 5_000.0;

#[test]
fn realtime_driver_serves_a_full_metis_workload() {
    let dataset = build_dataset(DatasetKind::Musique, QUERIES, 20_241_016);
    let arrivals = poisson_arrivals(99 ^ 0xA11, 0.55, QUERIES);
    let cfg = RunConfig::standard(SystemKind::Metis(MetisOptions::full()), arrivals, 99)
        .replicated(2, RouterPolicy::LeastKvLoad)
        .with_driver(DriverSpec::Realtime {
            time_scale: TIME_SCALE,
        });
    let r = Runner::new(&dataset, cfg).run();

    assert_eq!(r.per_query.len(), QUERIES, "every query completes");
    assert_eq!(r.driver, DriverKind::Realtime);
    assert_eq!(r.time_scale, TIME_SCALE);
    assert!(r.mean_f1() > 0.0, "queries are actually answered");
    assert!(r.gpu_busy_secs > 0.0, "workers accounted busy time");

    // The stage partition holds exactly per query: timestamps are virtual
    // under both drivers, so profile + decide + retrieve + queue-wait +
    // prefill + decode is the delay, not an approximation of it.
    for q in &r.per_query {
        let s = &q.stages;
        let sum = s.profile + s.decide + s.retrieve + s.queue_wait + s.prefill + s.decode;
        let delay_nanos = (q.delay_secs * 1e9).round() as i64;
        assert!(
            (sum as i64 - delay_nanos).abs() <= 1,
            "query {}: stage sum {sum} != delay {delay_nanos}",
            q.query_index
        );
        assert!(q.finish_secs >= q.arrival_secs, "time flows forward");
    }

    // The report cell carries the marker the perf gate skips on; a sim run
    // of the same workload stays unmarked (golden/baseline compatibility).
    let cell = r.cell_report("rt", 99);
    assert_eq!(cell.knob_value("driver"), Some("realtime"));
    assert_eq!(cell.extra_metric("time_scale"), Some(TIME_SCALE));
}

//! Golden-file pin of the deterministic simulator's *output*, not just its
//! schema: a fixed workload (pinned dataset seed, pinned Poisson arrivals,
//! preemptive METIS over a 2-replica least-KV cluster) must render the
//! byte-for-byte identical `CellReport` forever. This is the cross-driver
//! determinism contract behind the Clock/Driver refactor — the simulator is
//! the oracle the realtime driver is validated against, so the simulator
//! itself must never drift: any change to event ordering, engine arithmetic,
//! or float summation order shows up here as a byte diff.
//!
//! On an *intentional* behavior change, regenerate with
//! `METIS_REGEN_GOLDEN=1 cargo test -p metis-core --test sim_golden`,
//! review the numeric diff, and say why in the PR.

use metis_core::{MetisOptions, RunConfig, Runner, SystemKind};
use metis_datasets::{build_dataset, poisson_arrivals, DatasetKind};
use metis_engine::RouterPolicy;
use metis_metrics::BenchReport;

const GOLDEN: &str = include_str!("golden/sim_cell_report.json");
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/sim_cell_report.json"
);

const DATASET_SEED: u64 = 20_241_016;
const RUN_SEED: u64 = 99;
const QUERIES: usize = 16;

/// The pinned workload: bursty enough to exercise queueing and preemption
/// paths (METIS `full()` defaults to the preemptive policy), spread over two
/// replicas so cluster stepping order is pinned too.
fn pinned_run() -> BenchReport {
    let dataset = build_dataset(DatasetKind::Musique, QUERIES, DATASET_SEED);
    let arrivals = poisson_arrivals(RUN_SEED ^ 0xA11, 0.55, QUERIES);
    let cfg = RunConfig::standard(SystemKind::Metis(MetisOptions::full()), arrivals, RUN_SEED)
        .replicated(2, RouterPolicy::LeastKvLoad);
    let r = Runner::new(&dataset, cfg).run();
    let mut report = BenchReport::new("sim_golden", "SimDriver output pin");
    report.dataset_seed = DATASET_SEED;
    report.run_seed = RUN_SEED;
    report
        .cells
        .push(r.cell_report("musique/metis/2r", RUN_SEED));
    report
}

#[test]
fn sim_driver_reproduces_the_golden_report_byte_for_byte() {
    let rendered = pinned_run().render();
    if std::env::var("METIS_REGEN_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden");
        return;
    }
    assert_eq!(
        rendered, GOLDEN,
        "simulator output drift: the pinned workload no longer reproduces \
         tests/golden/sim_cell_report.json. The deterministic driver must \
         stay bit-for-bit stable across refactors; if this change is \
         intentional, rerun with METIS_REGEN_GOLDEN=1 and justify the \
         numeric diff in the PR."
    );
}

#[test]
fn golden_report_parses_and_is_plausible() {
    let parsed = BenchReport::parse(GOLDEN).expect("golden parses");
    assert_eq!(parsed.cells.len(), 1);
    let cell = &parsed.cells[0];
    assert_eq!(cell.queries, QUERIES as u64);
    assert!(cell.f1 > 0.0, "the pinned run answers queries");
    assert!(cell.latency.mean > 0.0, "the pinned run takes time");
}

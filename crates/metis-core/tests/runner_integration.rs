//! Integration tests for the workload runner: end-to-end METIS and baseline
//! runs over the discrete-event engine.

use metis_core::{MetisOptions, PickPolicy, RagConfig, RunConfig, Runner, SystemKind};
use metis_datasets::{
    build_dataset, build_dataset_with_index, burst_arrivals, poisson_arrivals, DatasetKind,
};
use metis_engine::{Priority, RouterPolicy};
use metis_llm::{GpuCluster, ModelSpec};
use metis_profiler::ProfilerKind;
use metis_vectordb::IndexSpec;

fn run(kind: DatasetKind, n: usize, system: SystemKind, qps: f64) -> metis_core::RunResult {
    let d = build_dataset(kind, n, 2024);
    let arrivals = poisson_arrivals(7, qps, n);
    Runner::new(&d, RunConfig::standard(system, arrivals, 99)).run()
}

/// Arrival rate at which the simulated A40 runs METIS at ~60% utilization
/// for each dataset (the paper's absolute 2 q/s is specific to its testbed).
fn base_qps(kind: DatasetKind) -> f64 {
    match kind {
        DatasetKind::Squad => 1.6,
        DatasetKind::Musique => 0.55,
        DatasetKind::FinSec => 0.20,
        DatasetKind::Qmsum => 0.17,
    }
}

#[test]
fn vllm_fixed_completes_all_queries() {
    let r = run(
        DatasetKind::Musique,
        30,
        SystemKind::VllmFixed {
            config: RagConfig::stuff(8),
        },
        base_qps(DatasetKind::Musique),
    );
    assert_eq!(r.per_query.len(), 30);
    assert!(r.mean_f1() > 0.05, "f1 = {}", r.mean_f1());
    assert!(r.mean_delay_secs() > 0.1);
    assert!(r.gpu_busy_secs > 0.0);
    // No profiler → no API cost, no profiler time.
    assert_eq!(r.api_cost_usd, 0.0);
    assert!(r.per_query.iter().all(|q| q.profiler_secs == 0.0));
}

#[test]
fn metis_completes_with_profiler_cost_and_adapted_configs() {
    let r = run(
        DatasetKind::Musique,
        30,
        SystemKind::Metis(MetisOptions::full()),
        base_qps(DatasetKind::Musique),
    );
    assert_eq!(r.per_query.len(), 30);
    assert!(r.api_cost_usd > 0.0, "profiler must cost dollars");
    assert!(r.per_query.iter().all(|q| q.profiler_secs > 0.0));
    // Configurations vary across queries (per-query adaptation).
    let distinct: std::collections::HashSet<_> =
        r.per_query.iter().map(|q| q.config.label()).collect();
    assert!(
        distinct.len() > 3,
        "only {} distinct configs",
        distinct.len()
    );
}

#[test]
fn metis_is_faster_than_adaptive_rag_at_similar_quality() {
    // The headline claim (Fig. 10): 1.64–2.54× lower delay, no F1 loss.
    let qps = base_qps(DatasetKind::FinSec);
    let metis = run(
        DatasetKind::FinSec,
        40,
        SystemKind::Metis(MetisOptions::full()),
        qps,
    );
    let adaptive = run(
        DatasetKind::FinSec,
        40,
        SystemKind::AdaptiveRag {
            profiler: ProfilerKind::Gpt4o,
        },
        qps,
    );
    assert!(
        metis.mean_delay_secs() < adaptive.mean_delay_secs(),
        "METIS {:.2}s vs AdaptiveRAG* {:.2}s",
        metis.mean_delay_secs(),
        adaptive.mean_delay_secs()
    );
    assert!(
        metis.mean_f1() > adaptive.mean_f1() - 0.05,
        "METIS F1 {:.3} vs AdaptiveRAG* {:.3}",
        metis.mean_f1(),
        adaptive.mean_f1()
    );
}

#[test]
fn metis_beats_fixed_config_quality_at_comparable_delay() {
    let qps = base_qps(DatasetKind::Qmsum);
    let metis = run(
        DatasetKind::Qmsum,
        40,
        SystemKind::Metis(MetisOptions::full()),
        qps,
    );
    // A fixed config with similar or higher delay.
    let fixed = run(
        DatasetKind::Qmsum,
        40,
        SystemKind::VllmFixed {
            config: RagConfig::stuff(12),
        },
        qps,
    );
    assert!(
        metis.mean_f1() > fixed.mean_f1(),
        "METIS F1 {:.3} vs fixed {:.3} (delays {:.2} vs {:.2})",
        metis.mean_f1(),
        fixed.mean_f1(),
        metis.mean_delay_secs(),
        fixed.mean_delay_secs()
    );
}

#[test]
fn parrot_is_faster_than_vllm_on_multi_call_configs() {
    let config = RagConfig::map_reduce(8, 80);
    let qps = base_qps(DatasetKind::FinSec) * 1.5;
    let vllm = run(
        DatasetKind::FinSec,
        30,
        SystemKind::VllmFixed { config },
        qps,
    );
    let parrot = run(DatasetKind::FinSec, 30, SystemKind::Parrot { config }, qps);
    // Same configs → same quality; gang scheduling cuts delay.
    assert!((vllm.mean_f1() - parrot.mean_f1()).abs() < 1e-9);
    assert!(
        parrot.mean_delay_secs() < vllm.mean_delay_secs() * 1.02,
        "parrot {:.2}s vs vllm {:.2}s",
        parrot.mean_delay_secs(),
        vllm.mean_delay_secs()
    );
}

#[test]
fn closed_loop_serializes_queries() {
    let d = build_dataset(DatasetKind::Squad, 10, 5);
    let mut cfg = RunConfig::standard(SystemKind::Metis(MetisOptions::full()), vec![0; 10], 1);
    cfg.closed_loop = true;
    let r = Runner::new(&d, cfg).run();
    assert_eq!(r.per_query.len(), 10);
    // No two queries overlap: each arrival >= previous finish.
    let mut results = r.per_query.clone();
    results.sort_by(|a, b| a.arrival_secs.total_cmp(&b.arrival_secs));
    for w in results.windows(2) {
        assert!(
            w[1].arrival_secs >= w[0].finish_secs - 1e-9,
            "overlap: {} arrives {:.3} before {} finishes {:.3}",
            w[1].query_index,
            w[1].arrival_secs,
            w[0].query_index,
            w[0].finish_secs
        );
    }
}

#[test]
fn api_serving_mode_runs_without_engine() {
    let d = build_dataset(DatasetKind::Squad, 8, 3);
    let mut cfg = RunConfig::standard(
        SystemKind::VllmFixed {
            config: RagConfig::stuff(4),
        },
        poisson_arrivals(1, 2.0, 8),
        1,
    );
    cfg.model = ModelSpec::gpt4o();
    let r = Runner::new(&d, cfg).run();
    assert_eq!(r.per_query.len(), 8);
    assert!(r.api_cost_usd > 0.0, "API serving must cost dollars");
    assert_eq!(r.gpu_busy_secs, 0.0);
}

#[test]
fn seventy_b_serving_works_on_dual_a40() {
    let d = build_dataset(DatasetKind::Musique, 12, 4);
    let mut cfg = RunConfig::standard(
        SystemKind::Metis(MetisOptions::full()),
        poisson_arrivals(2, 1.0, 12),
        1,
    );
    cfg.model = ModelSpec::llama31_70b_awq();
    cfg.cluster = GpuCluster::dual_a40();
    let r = Runner::new(&d, cfg).run();
    assert_eq!(r.per_query.len(), 12);
    assert!(r.mean_delay_secs() > 0.0);
}

#[test]
fn replicas_absorb_load_without_losing_quality() {
    // Twice the base rate saturates one replica; two replicas restore the
    // low-load delay at identical quality (same configs, just less queueing).
    let d = build_dataset(DatasetKind::Musique, 40, 2024);
    let qps = base_qps(DatasetKind::Musique) * 2.0;
    let go = |replicas: usize, router: RouterPolicy| {
        let arrivals = poisson_arrivals(7, qps, 40);
        let cfg = RunConfig::standard(SystemKind::Metis(MetisOptions::full()), arrivals, 99)
            .replicated(replicas, router);
        Runner::new(&d, cfg).run()
    };
    let one = go(1, RouterPolicy::RoundRobin);
    let two = go(2, RouterPolicy::LeastKvLoad);
    assert_eq!(two.per_query.len(), one.per_query.len());
    assert_eq!(two.replicas, 2);
    assert_eq!(two.completions_by_replica().iter().sum::<usize>(), 40);
    assert!(
        two.mean_delay_secs() < one.mean_delay_secs(),
        "2 replicas {:.2}s vs 1 replica {:.2}s",
        two.mean_delay_secs(),
        one.mean_delay_secs()
    );
    assert!(
        two.mean_f1() > one.mean_f1() - 0.05,
        "quality must not regress: {:.3} vs {:.3}",
        two.mean_f1(),
        one.mean_f1()
    );
}

#[test]
fn prefix_caches_are_per_replica() {
    // Replicas share no KV: splitting the same workload over two replicas
    // must not report more cache hits than serving it all on one (each
    // backend warms its own cache independently). The cache budget is made
    // effectively unbounded so no eviction happens — without eviction the
    // shared history's hits are a superset of the split histories', making
    // the ≤ comparison an invariant rather than a seed accident.
    let d = build_dataset(DatasetKind::Squad, 30, 8);
    let go = |replicas: usize| {
        let arrivals = poisson_arrivals(3, 2.0, 30);
        let mut cfg = RunConfig::standard(
            SystemKind::VllmFixed {
                config: RagConfig::stuff(6),
            },
            arrivals,
            5,
        )
        .replicated(replicas, RouterPolicy::RoundRobin);
        cfg.prefix_cache_bytes = Some(1 << 40);
        Runner::new(&d, cfg).run()
    };
    let one = go(1);
    let two = go(2);
    assert!(one.prefix_hit_rate > 0.0, "cache must see reuse");
    assert!(
        two.prefix_hit_rate <= one.prefix_hit_rate + 1e-12,
        "isolated per-replica caches cannot hit more often than one shared \
         history: {:.3} vs {:.3}",
        two.prefix_hit_rate,
        one.prefix_hit_rate
    );
}

#[test]
fn ivf_serving_cuts_retrieval_latency_below_flat_at_partial_probe() {
    // The PR's acceptance experiment: the same workload served once over
    // the exact flat index and once over IVF with nprobe < nlist. The IVF
    // run's retrieval latency must be strictly below the flat-scan
    // equivalent (it scores a fraction of the corpus), recall is reported,
    // and quality stays comparable.
    let n = 30;
    let kind = DatasetKind::Musique;
    let spec = IndexSpec::ivf(32, 8);
    let flat_d = build_dataset(kind, n, 2024);
    let ivf_d = build_dataset_with_index(kind, n, 2024, spec);
    let go = |d: &metis_datasets::Dataset, index: IndexSpec| {
        let arrivals = poisson_arrivals(7, base_qps(kind), n);
        let mut cfg = RunConfig::standard(SystemKind::Metis(MetisOptions::full()), arrivals, 99);
        cfg.index = index;
        Runner::new(d, cfg).run()
    };
    let flat = go(&flat_d, IndexSpec::Flat);
    let ivf = go(&ivf_d, spec);
    assert_eq!(flat.per_query.len(), n);
    assert_eq!(ivf.per_query.len(), n);
    // Strictly below at every percentile: IVF scores ~nprobe/nlist of the
    // corpus plus nlist centroids; flat scores everything.
    assert!(
        ivf.retrieval().p50() < flat.retrieval().p50(),
        "ivf p50 {:.4}s !< flat p50 {:.4}s",
        ivf.retrieval().p50(),
        flat.retrieval().p50()
    );
    assert!(
        ivf.retrieval().p99() < flat.retrieval().p99(),
        "ivf p99 {:.4}s !< flat p99 {:.4}s",
        ivf.retrieval().p99(),
        flat.retrieval().p99()
    );
    // Recall is measured and reported: flat recovers nearly all needed
    // facts at the executed depth; the approximate index pays a bounded
    // tax that end-to-end F1 inherits without collapsing.
    assert!(
        flat.mean_retrieval_recall() > 0.8,
        "flat fact recall {:.3}",
        flat.mean_retrieval_recall()
    );
    assert!(
        ivf.mean_retrieval_recall() > 0.5,
        "ivf fact recall {:.3}",
        ivf.mean_retrieval_recall()
    );
    assert!(
        ivf.mean_f1() > flat.mean_f1() * 0.7,
        "ivf F1 {:.3} vs flat {:.3}",
        ivf.mean_f1(),
        flat.mean_f1()
    );
}

#[test]
#[should_panic(expected = "RunConfig.index must match")]
fn mismatched_run_index_is_rejected_up_front() {
    // A run claiming an IVF index over a flat-built dataset would report
    // latencies its searches never paid; the runner refuses to start.
    let d = build_dataset(DatasetKind::Squad, 4, 1);
    let mut cfg = RunConfig::standard(
        SystemKind::Metis(MetisOptions::full()),
        poisson_arrivals(1, 1.0, 4),
        7,
    );
    cfg.index = IndexSpec::ivf(16, 4);
    let _ = Runner::new(&d, cfg);
}

#[test]
fn retrieval_is_charged_after_the_decision_that_sizes_it() {
    // The timeline is Profile → Decide → Retrieve → Submit: every query's
    // end-to-end delay must cover profiler + retrieval, and retrieval time
    // must be positive and below the total (the ordering bug charged a
    // whole-corpus constant before the decision existed).
    let r = run(
        DatasetKind::Musique,
        20,
        SystemKind::Metis(MetisOptions::full()),
        base_qps(DatasetKind::Musique),
    );
    for q in &r.per_query {
        assert!(q.retrieval_secs > 0.0, "q{}: free retrieval", q.query_index);
        assert!(
            q.profiler_secs + q.retrieval_secs < q.delay_secs,
            "q{}: profiler {:.3} + retrieval {:.3} !< delay {:.3}",
            q.query_index,
            q.profiler_secs,
            q.retrieval_secs,
            q.delay_secs
        );
        assert!((0.0..=1.0).contains(&q.retrieval_recall));
    }
}

#[test]
fn stage_breakdown_partitions_the_end_to_end_delay() {
    // The per-stage accounting must be exact, not approximate: for every
    // query, profile + decide + retrieve + queue_wait + prefill + decode
    // telescopes to finish − arrival. Exercised where it is hardest —
    // map_reduce chains (reduce arrival = last map finish), SLO-derived
    // priorities with preemption under burst, and 2 replicas.
    let n = 40;
    let d = build_dataset(DatasetKind::Musique, n, 2024);
    let mut opts = MetisOptions::full();
    opts.priority_from_slo = true;
    let arrivals = burst_arrivals(7, 0.9, 6.0, n);
    let mut cfg = RunConfig::standard(SystemKind::Metis(opts), arrivals, 99)
        .replicated(2, RouterPolicy::LeastKvLoad);
    cfg.engine.kv_pool_bytes_cap = Some(2 * (1 << 30));
    let r = Runner::new(&d, cfg).run();
    assert_eq!(r.per_query.len(), n);
    assert!(r.preemptions > 0, "the burst must force preemptions");
    for q in &r.per_query {
        let total = metis_llm::nanos_to_secs(q.stages.total());
        assert!(
            (total - q.delay_secs).abs() < 1e-9,
            "q{}: stages sum {:.9}s != delay {:.9}s ({:?})",
            q.query_index,
            total,
            q.delay_secs,
            q.stages
        );
        assert_eq!(q.stages.decide, 0, "decisions are modeled instantaneous");
        assert!(q.stages.profile > 0 && q.stages.retrieve > 0);
        assert!(q.stages.decode > 0, "every query decodes");
    }
    // Queries that hit engine contention show queue wait in the breakdown.
    assert!(
        r.per_query.iter().any(|q| q.stages.queue_wait > 0),
        "a burst at 2 GiB KV must queue someone"
    );
    // The aggregate view is consistent with the mean delay.
    let means = r.stage_breakdown();
    assert!(
        (means.total() - r.mean_delay_secs()).abs() < 1e-9,
        "mean stages {:.6}s != mean delay {:.6}s",
        means.total(),
        r.mean_delay_secs()
    );
}

#[test]
fn stage_breakdown_covers_api_serving_mode() {
    // No local engine: provider time lands in `decode`, engine stages are
    // 0, and the partition identity still holds exactly.
    let d = build_dataset(DatasetKind::Squad, 8, 3);
    let mut cfg = RunConfig::standard(
        SystemKind::VllmFixed {
            config: RagConfig::map_reduce(4, 60),
        },
        poisson_arrivals(1, 2.0, 8),
        1,
    );
    cfg.model = ModelSpec::gpt4o();
    let r = Runner::new(&d, cfg).run();
    for q in &r.per_query {
        assert_eq!(q.stages.queue_wait, 0);
        assert_eq!(q.stages.prefill, 0);
        assert!(q.stages.decode > 0);
        let total = metis_llm::nanos_to_secs(q.stages.total());
        assert!((total - q.delay_secs).abs() < 1e-9);
    }
}

#[test]
fn cell_report_mirrors_the_run_result() {
    let r = run(
        DatasetKind::Musique,
        20,
        SystemKind::Metis(MetisOptions::full()),
        base_qps(DatasetKind::Musique),
    );
    let cell = r.cell_report("musique/metis", 99);
    assert_eq!(cell.id, "musique/metis");
    assert_eq!(cell.seed, 99);
    assert_eq!(cell.queries, 20);
    assert_eq!(cell.f1, r.mean_f1());
    assert_eq!(cell.latency.mean, r.mean_delay_secs());
    assert_eq!(cell.latency.p99(), r.latency().p99());
    assert_eq!(cell.retrieval.p50(), r.retrieval().p50());
    assert_eq!(cell.throughput_qps, r.throughput().qps());
    assert_eq!(cell.retrieval_recall, r.mean_retrieval_recall());
    let stages: std::collections::HashMap<&str, f64> =
        cell.stages.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let means = r.stage_breakdown();
    assert_eq!(stages["profile"], means.profile);
    assert_eq!(stages["decode"], means.decode);
    assert_eq!(stages.len(), 6);
}

#[test]
fn run_is_deterministic() {
    let a = run(
        DatasetKind::Musique,
        15,
        SystemKind::Metis(MetisOptions::full()),
        base_qps(DatasetKind::Musique),
    );
    let b = run(
        DatasetKind::Musique,
        15,
        SystemKind::Metis(MetisOptions::full()),
        base_qps(DatasetKind::Musique),
    );
    assert_eq!(a.per_query.len(), b.per_query.len());
    for (x, y) in a.per_query.iter().zip(&b.per_query) {
        assert_eq!(x.f1, y.f1);
        assert_eq!(x.delay_secs, y.delay_secs);
        assert_eq!(x.config, y.config);
    }
}

#[test]
fn profiler_fraction_is_small() {
    // Fig. 18: the profiler adds at most ~1/10 of the end-to-end delay.
    let r = run(
        DatasetKind::Qmsum,
        30,
        SystemKind::Metis(MetisOptions::full()),
        base_qps(DatasetKind::Qmsum),
    );
    let frac = r.mean_profiler_fraction();
    assert!(frac < 0.35, "profiler fraction {frac:.2}");
    assert!(frac > 0.0);
}

#[test]
fn feedback_mode_runs_golden_configs() {
    let d = build_dataset(DatasetKind::FinSec, 65, 6);
    let mut opts = MetisOptions::full();
    opts.feedback = true;
    let r = Runner::new(
        &d,
        RunConfig::standard(
            SystemKind::Metis(opts),
            poisson_arrivals(3, base_qps(DatasetKind::FinSec), 65),
            11,
        ),
    )
    .run();
    // Every real query still completes exactly once.
    assert_eq!(r.per_query.len(), 65);
}

#[test]
fn median_pick_differs_from_best_fit() {
    let mut med = MetisOptions::full();
    med.pick = PickPolicy::Median;
    med.gang = false;
    let qps = base_qps(DatasetKind::FinSec);
    let m = run(DatasetKind::FinSec, 30, SystemKind::Metis(med), qps);
    let b = run(
        DatasetKind::FinSec,
        30,
        SystemKind::Metis(MetisOptions::full()),
        qps,
    );
    assert_eq!(m.per_query.len(), b.per_query.len());
    // Best-fit spends free memory on quality: never worse than median's F1.
    assert!(
        b.mean_f1() >= m.mean_f1() - 0.03,
        "best-fit F1 {:.3} vs median F1 {:.3}",
        b.mean_f1(),
        m.mean_f1()
    );
    // And the two policies genuinely choose differently.
    let diff = m
        .per_query
        .iter()
        .zip(&b.per_query)
        .filter(|(x, y)| x.config != y.config)
        .count();
    assert!(diff > 0, "median and best-fit never diverged");
}

#[test]
fn preemptive_scheduling_shields_interactive_queries_under_bursts() {
    // The PR's acceptance experiment at runner scale: identical bursty
    // workload (burst factor ≥ 4) with SLO-derived priorities, served once
    // under plain FCFS and once under the preemptive scheduler. The
    // preemptive run must strictly improve the interactive class's worst
    // queueing delay, at equal completion count.
    let n = 48;
    let d = build_dataset(DatasetKind::Musique, n, 2024);
    let go = |preemptive: bool| {
        let mut opts = MetisOptions::full();
        opts.priority_from_slo = true;
        opts.preemptive = preemptive;
        opts.gang = false; // The FCFS arm is plain vLLM admission.
        let arrivals = burst_arrivals(7, 0.8, 6.0, n);
        let mut cfg = RunConfig::standard(SystemKind::Metis(opts), arrivals, 99);
        // Bound the working memory to the low end of the paper's Fig. 8
        // scale: bursts must actually contend on KV for scheduling policy
        // to matter at all.
        cfg.engine.kv_pool_bytes_cap = Some(2 * (1 << 30));
        Runner::new(&d, cfg).run()
    };
    let fcfs = go(false);
    let preemptive = go(true);
    assert!(preemptive.preemptions > 0, "the burst must force evictions");
    assert_eq!(fcfs.per_query.len(), n);
    assert_eq!(preemptive.per_query.len(), n);
    assert_eq!(fcfs.preemptions, 0, "FCFS never preempts");
    let interactive = |r: &metis_core::RunResult| r.queue_wait(Some(Priority::Interactive));
    assert!(
        !interactive(&fcfs).is_empty(),
        "Musique must yield interactive-tier queries"
    );
    assert!(
        interactive(&preemptive).p99() < interactive(&fcfs).p99(),
        "interactive p99 queue wait: preemptive {:.2}s !< fcfs {:.2}s",
        interactive(&preemptive).p99(),
        interactive(&fcfs).p99()
    );
    // Quality is untouched: scheduling reorders work, it does not change
    // any query's configuration-driven answer.
    assert!((preemptive.mean_f1() - fcfs.mean_f1()).abs() < 0.05);
}

#[test]
fn slo_constrained_runs_use_cheaper_configs() {
    let d = build_dataset(DatasetKind::FinSec, 25, 2024);
    let qps = base_qps(DatasetKind::FinSec) * 0.5; // Light load: isolate the SLO effect.
    let mut tight = MetisOptions::full();
    tight.slo_secs = Some(2.0);
    let plain = run(
        DatasetKind::FinSec,
        25,
        SystemKind::Metis(MetisOptions::full()),
        qps,
    );
    let arrivals = poisson_arrivals(7, qps, 25);
    let constrained = Runner::new(
        &d,
        RunConfig::standard(SystemKind::Metis(tight), arrivals, 99),
    )
    .run();
    assert_eq!(constrained.per_query.len(), 25);
    // The SLO run picks smaller plans and completes faster on average.
    assert!(
        constrained.mean_delay_secs() < plain.mean_delay_secs(),
        "SLO {:.2}s vs plain {:.2}s",
        constrained.mean_delay_secs(),
        plain.mean_delay_secs()
    );
    // Cheaper configurations trade some quality, but not everything.
    assert!(constrained.mean_f1() > plain.mean_f1() * 0.6);
}

#[test]
fn autoscaler_grows_under_load_and_bills_fewer_replica_seconds_than_fixed() {
    // Fleet elasticity end to end: a diurnal day served from 1 replica
    // under an autoscaler must complete everything, grow past its starting
    // fleet at the peak, and bill strictly fewer replica-seconds than a
    // fixed fleet at the autoscaler's cap.
    let n = 40;
    let d = build_dataset(DatasetKind::Musique, n, 2024);
    let arrivals = metis_datasets::diurnal_arrivals(7, 1.1, n);
    let policy = metis_core::Autoscaler {
        max_replicas: 4,
        scale_up_queue_depth: 4,
        eval_interval_nanos: 500_000_000,
        cooldown_nanos: 2_000_000_000,
        warmup_nanos: 1_000_000_000,
        ..metis_core::Autoscaler::default()
    };
    let cfg = RunConfig::standard(
        SystemKind::Metis(MetisOptions::full()),
        arrivals.clone(),
        99,
    )
    .with_autoscale(policy);
    let r = Runner::new(&d, cfg).run();
    assert_eq!(r.per_query.len(), n, "every query completes exactly once");
    let mut seen: Vec<usize> = r.per_query.iter().map(|q| q.query_index).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), n, "no query completed twice");
    assert!(
        r.peak_replicas > 1,
        "the peak load must trigger scale-up (peak {})",
        r.peak_replicas
    );
    assert!(r.replica_seconds > 0.0);
    // A fixed fleet at the cap bills cap × makespan.
    let fixed = Runner::new(
        &d,
        RunConfig::standard(SystemKind::Metis(MetisOptions::full()), arrivals, 99)
            .replicated(4, RouterPolicy::RoundRobin),
    )
    .run();
    assert!(
        r.replica_seconds < fixed.replica_seconds,
        "autoscaled {:.1} replica-seconds !< fixed-4 {:.1}",
        r.replica_seconds,
        fixed.replica_seconds
    );
    // The stage identity survives elastic routing and drains.
    for q in &r.per_query {
        let total = metis_llm::nanos_to_secs(q.stages.total());
        assert!(
            (total - q.delay_secs).abs() < 1e-9,
            "q{}: stages {:.9}s != delay {:.9}s",
            q.query_index,
            total,
            q.delay_secs
        );
    }
}

#[test]
fn migration_spares_recompute_and_keeps_the_stage_identity() {
    // Preemption-with-migration at runner scale: the same contended burst
    // under recompute and migrate. Migration must fire, move real KV, and
    // cut the recomputed-token bill; every query's stage partition must
    // still telescope exactly (a migrated victim's transfer shows up as
    // queue wait, with its original arrival preserved).
    let n = 40;
    let d = build_dataset(DatasetKind::Musique, n, 2024);
    // Round-robin routing (not least-KV) so one replica can saturate while
    // a peer keeps headroom — migration needs somewhere to go.
    let go = |mode: metis_engine::PreemptMode| {
        let mut opts = MetisOptions::full();
        opts.priority_from_slo = true;
        let arrivals = burst_arrivals(7, 1.4, 8.0, n);
        let mut cfg = RunConfig::standard(SystemKind::Metis(opts), arrivals, 99)
            .replicated(3, RouterPolicy::RoundRobin);
        cfg.engine.kv_pool_bytes_cap = Some(1 << 30);
        cfg.engine.preempt_mode = mode;
        Runner::new(&d, cfg).run()
    };
    let recompute = go(metis_engine::PreemptMode::Recompute);
    let migrate = go(metis_engine::PreemptMode::Migrate);
    assert_eq!(recompute.per_query.len(), n);
    assert_eq!(migrate.per_query.len(), n);
    assert!(recompute.preemptions > 0, "the burst must force evictions");
    assert_eq!(recompute.migrations, 0);
    assert!(migrate.migrations > 0, "victims must actually move");
    assert!(migrate.migrated_tokens > 0);
    assert!(
        migrate.preempted_tokens < recompute.preempted_tokens,
        "migrate recomputes {} tokens !< recompute {}",
        migrate.preempted_tokens,
        recompute.preempted_tokens
    );
    for q in &migrate.per_query {
        let total = metis_llm::nanos_to_secs(q.stages.total());
        assert!(
            (total - q.delay_secs).abs() < 1e-9,
            "q{}: stages {:.9}s != delay {:.9}s under migration",
            q.query_index,
            total,
            q.delay_secs
        );
    }
}

#[test]
fn prefix_aware_routing_beats_least_kv_on_cache_hits() {
    // PrefixAware re-routes each query (after retrieval) to the replica
    // whose chunk-KV cache overlaps its retrieved chunks; with repeated
    // chunk access across queries this must not lose cache hits versus
    // memory-only routing, and the run must stay correct.
    let n = 36;
    let d = build_dataset(DatasetKind::Squad, n, 2024);
    let go = |router: RouterPolicy| {
        let arrivals = poisson_arrivals(7, base_qps(DatasetKind::Squad), n);
        let mut cfg = RunConfig::standard(SystemKind::Metis(MetisOptions::full()), arrivals, 99)
            .replicated(3, router);
        cfg.prefix_cache_bytes = Some(1 << 30);
        Runner::new(&d, cfg).run()
    };
    let aware = go(RouterPolicy::PrefixAware);
    let least = go(RouterPolicy::LeastKvLoad);
    assert_eq!(aware.per_query.len(), n);
    assert!(aware.prefix_hit_rate > 0.0, "repeats must hit the cache");
    assert!(
        aware.prefix_hit_rate >= least.prefix_hit_rate,
        "prefix-aware hit rate {:.3} < least-kv {:.3}",
        aware.prefix_hit_rate,
        least.prefix_hit_rate
    );
    // Routing changes placement, never answers.
    assert!((aware.mean_f1() - least.mean_f1()).abs() < 0.05);
}

//! Thread-safety stress for the realtime driver: many short spawn/join
//! cycles under `cargo test`, each pushing a contended workload (bursty
//! arrivals, mixed priorities, a small KV pool that forces preemptions)
//! through per-replica worker threads at a high time scale — then asserting
//! the accounting invariants that a lost wakeup, dropped channel message,
//! or double-delivered completion would break:
//!
//! * every submitted request completes **exactly once** (no loss, no
//!   double-count — checked per request id);
//! * completion timestamps are well-formed virtual instants
//!   (`arrival <= admitted <= finish`);
//! * driver teardown joins every worker and reports consistent totals.
//!
//! The repeated spawn/join is the point (a loom-style schedule explorer
//! without loom, which the container doesn't carry): each round runs the
//! same races — submit vs. drain, completion send vs. teardown hangup,
//! snapshot publish vs. route — under a fresh thread interleaving.

use std::collections::HashMap;

use metis_engine::{
    Driver, DriverSpec, Engine, EngineConfig, GroupId, LlmRequest, Priority, RequestId,
    RouterPolicy, SchedPolicy, Stage,
};
use metis_llm::{Clock, GpuCluster, LatencyModel, ModelSpec, Nanos, WallClock};

/// Virtual time runs 200 000× faster than the wall: a multi-minute virtual
/// workload costs milliseconds of test time, while wakeup jitter is
/// amplified enough to shake out ordering bugs.
const TIME_SCALE: f64 = 200_000.0;

fn engines(n: usize, kv_cap_tokens: u64) -> Vec<Engine> {
    (0..n)
        .map(|_| {
            let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
            let bytes = kv_cap_tokens * lat.model().kv_bytes_per_token();
            Engine::new(
                lat,
                EngineConfig {
                    policy: SchedPolicy::Preemptive,
                    kv_pool_bytes_cap: Some(bytes),
                    ..EngineConfig::default()
                },
            )
        })
        .collect()
}

fn priority_of(i: u64) -> Priority {
    match i % 3 {
        0 => Priority::Interactive,
        1 => Priority::Standard,
        _ => Priority::Batch,
    }
}

/// One short realtime run: `n_reqs` bursty requests over `replicas`
/// replicas, driven to drain through the `Driver` interface. Returns the
/// completions the driver delivered.
fn one_run(round: u64, replicas: usize, n_reqs: u64) -> Vec<metis_engine::Completion> {
    let mut driver: Box<dyn Driver> = DriverSpec::Realtime {
        time_scale: TIME_SCALE,
    }
    .build(engines(replicas, 4_096), RouterPolicy::RoundRobin);
    for i in 0..n_reqs {
        let rid = driver.route(0);
        driver.submit(
            rid,
            LlmRequest {
                id: RequestId(round * 10_000 + i),
                group: GroupId(i / 3),
                stage: if i % 4 == 3 {
                    Stage::Reduce
                } else {
                    Stage::Map
                },
                prompt_tokens: 400 + (i % 5) * 300,
                output_tokens: 5 + (i % 7) * 4,
                cached_prompt_tokens: 0,
                // Bursty: arrivals pile onto a few discrete instants, some
                // already in the past when the worker drains them.
                arrival: (i % 4) * 2_000_000_000,
                priority: priority_of(i),
            },
        );
    }
    let mut done = Vec::new();
    while let Some(batch) = driver.pump_idle() {
        done.extend(batch);
    }
    let stats = driver.finish();
    assert_eq!(stats.replicas, replicas);
    assert!(stats.busy > 0, "round {round}: workers did run iterations");
    done
}

#[test]
fn no_completion_is_lost_or_double_counted_across_many_runs() {
    // 24 spawn/join cycles × (2 replicas × worker thread each): every round
    // re-races submission draining, completion delivery, and teardown.
    for round in 0..24u64 {
        let replicas = 1 + (round as usize % 3);
        let n_reqs = 18 + (round % 5) * 4;
        let done = one_run(round, replicas, n_reqs);
        assert_eq!(
            done.len() as u64,
            n_reqs,
            "round {round}: {} of {n_reqs} completions delivered",
            done.len()
        );
        let mut seen: HashMap<u64, u32> = HashMap::new();
        for c in &done {
            *seen.entry(c.id.0).or_default() += 1;
            assert!(
                c.arrival <= c.admitted,
                "round {round}: time went backwards"
            );
            assert!(c.admitted <= c.finish, "round {round}: zero-time decode");
        }
        for (id, count) in seen {
            assert_eq!(count, 1, "round {round}: request {id} completed {count}×");
        }
    }
}

#[test]
fn preemptions_survive_the_thread_boundary() {
    // The contended KV pool forces recompute preemptions inside worker
    // threads; the driver's teardown stats must carry them back out, and
    // every victim must still complete exactly once.
    let mut preempting_rounds = 0;
    for round in 100..112u64 {
        let mut driver: Box<dyn Driver> = DriverSpec::Realtime {
            time_scale: TIME_SCALE,
        }
        .build(engines(1, 4_096), RouterPolicy::RoundRobin);
        // A long low-priority resident, then an interactive burst that
        // cannot fit beside it.
        driver.submit(
            ReplicaIdZero::id(),
            LlmRequest {
                id: RequestId(round * 10_000),
                group: GroupId(0),
                stage: Stage::Single,
                prompt_tokens: 3_000,
                output_tokens: 400,
                cached_prompt_tokens: 0,
                arrival: 0,
                priority: Priority::Batch,
            },
        );
        driver.submit(
            ReplicaIdZero::id(),
            LlmRequest {
                id: RequestId(round * 10_000 + 1),
                group: GroupId(1),
                stage: Stage::Single,
                prompt_tokens: 2_000,
                output_tokens: 20,
                cached_prompt_tokens: 0,
                arrival: 1_000_000_000,
                priority: Priority::Interactive,
            },
        );
        let mut done = Vec::new();
        while let Some(batch) = driver.pump_idle() {
            done.extend(batch);
        }
        assert_eq!(done.len(), 2, "round {round}: both requests complete");
        let stats = driver.finish();
        if stats.preemptions > 0 {
            preempting_rounds += 1;
        }
    }
    // Timing jitter can occasionally let the batch request slip through
    // before the interactive one arrives, but preemption must fire in the
    // overwhelming majority of rounds — the workload is built for it.
    assert!(
        preempting_rounds >= 8,
        "preemption fired in only {preempting_rounds}/12 rounds"
    );
}

/// Tiny helper so the second test reads clearly.
struct ReplicaIdZero;
impl ReplicaIdZero {
    fn id() -> metis_engine::ReplicaId {
        metis_engine::ReplicaId(0)
    }
}

/// Virtual arrival pacing: a workload whose arrivals span a known virtual
/// window must take at least the scaled wall time of that window — the
/// realtime driver really waits, it does not fast-forward.
#[test]
fn wall_clock_pacing_is_real() {
    let span_virtual: Nanos = 6_000_000_000; // 6 virtual seconds.
    let scale = 1_000.0; // → at least 6 ms of wall time.
    let mut driver: Box<dyn Driver> = DriverSpec::Realtime { time_scale: scale }
        .build(engines(1, 65_536), RouterPolicy::RoundRobin);
    // This test asserts the realtime driver really waits in wall time;
    // the wall read goes through the sanctioned Clock abstraction.
    let wall_clock = WallClock::new(1.0);
    for i in 0..4u64 {
        driver.submit(
            ReplicaIdZero::id(),
            LlmRequest {
                id: RequestId(i),
                group: GroupId(i),
                stage: Stage::Single,
                prompt_tokens: 200,
                output_tokens: 2,
                cached_prompt_tokens: 0,
                arrival: i * span_virtual / 3,
                priority: Priority::Standard,
            },
        );
    }
    let mut done = Vec::new();
    while let Some(batch) = driver.pump_idle() {
        done.extend(batch);
    }
    let elapsed_nanos = wall_clock.now();
    driver.finish();
    assert_eq!(done.len(), 4);
    let min_wall_nanos = (span_virtual as f64 / scale) as u64;
    assert!(
        elapsed_nanos >= min_wall_nanos,
        "drained in {elapsed_nanos} ns, but the arrival span alone is {min_wall_nanos} ns of wall time"
    );
    // The last arrival really happened at (or after) its virtual stamp.
    let last = done.iter().map(|c| c.finish).max().unwrap();
    assert!(last >= span_virtual);
}

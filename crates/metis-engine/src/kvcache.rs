//! Paged KV-cache allocator.
//!
//! Models vLLM's PagedAttention block pool: KV memory is carved into
//! fixed-size blocks (16 tokens by default); a sequence owns an integral
//! number of blocks. The allocator only does accounting — block *contents*
//! are irrelevant to the simulation — but the accounting is exact, which is
//! what METIS's best-fit configuration selection measures against.

use std::collections::HashMap;

use crate::request::RequestId;

/// Errors from the allocator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KvError {
    /// Not enough free blocks to satisfy the request.
    OutOfMemory {
        /// Blocks requested.
        requested: u64,
        /// Blocks free.
        free: u64,
    },
    /// The sequence already holds an allocation (double alloc is a bug).
    AlreadyAllocated,
    /// The sequence holds no allocation.
    NotAllocated,
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::OutOfMemory { requested, free } => {
                write!(f, "KV OOM: requested {requested} blocks, {free} free")
            }
            KvError::AlreadyAllocated => write!(f, "sequence already has a KV allocation"),
            KvError::NotAllocated => write!(f, "sequence has no KV allocation"),
        }
    }
}

impl std::error::Error for KvError {}

/// Block-granular KV-cache accounting for one engine.
#[derive(Clone, Debug)]
pub struct KvAllocator {
    block_tokens: u64,
    total_blocks: u64,
    free_blocks: u64,
    held: HashMap<RequestId, u64>,
}

impl KvAllocator {
    /// Creates a pool of `capacity_tokens` tokens in `block_tokens` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero.
    pub fn new(capacity_tokens: u64, block_tokens: u64) -> Self {
        assert!(block_tokens > 0, "block size must be positive");
        let total_blocks = capacity_tokens / block_tokens;
        Self {
            block_tokens,
            total_blocks,
            free_blocks: total_blocks,
            held: HashMap::new(),
        }
    }

    fn blocks_for(&self, tokens: u64) -> u64 {
        tokens.div_ceil(self.block_tokens)
    }

    /// Allocates blocks for `tokens` tokens on behalf of `seq`.
    pub fn alloc(&mut self, seq: RequestId, tokens: u64) -> Result<(), KvError> {
        if self.held.contains_key(&seq) {
            return Err(KvError::AlreadyAllocated);
        }
        let need = self.blocks_for(tokens);
        if need > self.free_blocks {
            return Err(KvError::OutOfMemory {
                requested: need,
                free: self.free_blocks,
            });
        }
        self.free_blocks -= need;
        self.held.insert(seq, need);
        Ok(())
    }

    /// Grows `seq`'s allocation by `extra_tokens` tokens' worth of blocks,
    /// block-granular like [`Self::alloc`].
    ///
    /// Note: the engine itself does not call this — it reserves a request's
    /// full prompt+output footprint at admission (the conservative vLLM
    /// sizing METIS's best-fit reasons about). `grow` is the incremental
    /// variant for allocator-level verification and for future decode-time
    /// growth modeling.
    ///
    /// Growing by zero tokens is a no-op. On `OutOfMemory` the existing
    /// allocation is left untouched.
    pub fn grow(&mut self, seq: RequestId, extra_tokens: u64) -> Result<(), KvError> {
        if !self.held.contains_key(&seq) {
            return Err(KvError::NotAllocated);
        }
        let need = self.blocks_for(extra_tokens);
        if need > self.free_blocks {
            return Err(KvError::OutOfMemory {
                requested: need,
                free: self.free_blocks,
            });
        }
        self.free_blocks -= need;
        *self.held.get_mut(&seq).expect("presence checked above") += need;
        Ok(())
    }

    /// Frees all blocks held by `seq`.
    pub fn free(&mut self, seq: RequestId) -> Result<(), KvError> {
        match self.held.remove(&seq) {
            Some(blocks) => {
                self.free_blocks += blocks;
                debug_assert!(self.free_blocks <= self.total_blocks);
                Ok(())
            }
            None => Err(KvError::NotAllocated),
        }
    }

    /// Whether an allocation of `tokens` tokens would currently succeed.
    pub fn fits(&self, tokens: u64) -> bool {
        self.blocks_for(tokens) <= self.free_blocks
    }

    /// Free capacity in tokens (block-granular).
    pub fn free_tokens(&self) -> u64 {
        self.free_blocks * self.block_tokens
    }

    /// Used capacity in tokens (block-granular).
    pub fn used_tokens(&self) -> u64 {
        (self.total_blocks - self.free_blocks) * self.block_tokens
    }

    /// Total capacity in tokens (block-granular).
    pub fn capacity_tokens(&self) -> u64 {
        self.total_blocks * self.block_tokens
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.held.len()
    }

    /// Tokens currently held by `seq` (block-granular), or `None` when the
    /// sequence has no allocation — what the preemptive scheduler reclaims
    /// when it evicts a victim.
    pub fn held_tokens(&self, seq: RequestId) -> Option<u64> {
        self.held.get(&seq).map(|blocks| blocks * self.block_tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u64) -> RequestId {
        RequestId(n)
    }

    #[test]
    fn alloc_free_roundtrip_restores_capacity() {
        let mut a = KvAllocator::new(1_000, 16);
        let cap = a.free_tokens();
        a.alloc(rid(1), 100).unwrap();
        assert!(a.free_tokens() < cap);
        a.free(rid(1)).unwrap();
        assert_eq!(a.free_tokens(), cap);
        assert_eq!(a.live_allocations(), 0);
    }

    #[test]
    fn allocation_is_block_granular() {
        let mut a = KvAllocator::new(1_600, 16);
        a.alloc(rid(1), 1).unwrap(); // 1 token still costs a 16-token block.
        assert_eq!(a.used_tokens(), 16);
        a.alloc(rid(2), 17).unwrap(); // 2 blocks.
        assert_eq!(a.used_tokens(), 48);
    }

    #[test]
    fn oom_reports_requested_and_free() {
        let mut a = KvAllocator::new(160, 16);
        a.alloc(rid(1), 100).unwrap(); // 7 blocks of 10.
        let err = a.alloc(rid(2), 100).unwrap_err();
        assert_eq!(
            err,
            KvError::OutOfMemory {
                requested: 7,
                free: 3
            }
        );
    }

    #[test]
    fn double_alloc_is_rejected() {
        let mut a = KvAllocator::new(1_000, 16);
        a.alloc(rid(1), 10).unwrap();
        assert_eq!(a.alloc(rid(1), 10), Err(KvError::AlreadyAllocated));
    }

    #[test]
    fn free_unknown_is_rejected() {
        let mut a = KvAllocator::new(1_000, 16);
        assert_eq!(a.free(rid(9)), Err(KvError::NotAllocated));
    }

    #[test]
    fn held_tokens_reports_block_granular_holdings() {
        let mut a = KvAllocator::new(1_000, 16);
        assert_eq!(a.held_tokens(rid(1)), None);
        a.alloc(rid(1), 17).unwrap();
        assert_eq!(a.held_tokens(rid(1)), Some(32));
        a.free(rid(1)).unwrap();
        assert_eq!(a.held_tokens(rid(1)), None);
    }

    #[test]
    fn grow_extends_and_free_returns_everything() {
        let mut a = KvAllocator::new(1_600, 16);
        a.alloc(rid(1), 16).unwrap();
        a.grow(rid(1), 40).unwrap(); // 3 more blocks.
        assert_eq!(a.used_tokens(), 64);
        assert_eq!(a.grow(rid(2), 16), Err(KvError::NotAllocated));
        assert_eq!(
            a.grow(rid(1), 10_000),
            Err(KvError::OutOfMemory {
                requested: 625,
                free: 96
            })
        );
        a.free(rid(1)).unwrap();
        assert_eq!(a.free_tokens(), 1_600);
    }

    #[test]
    fn fits_is_consistent_with_alloc() {
        let mut a = KvAllocator::new(320, 16);
        assert!(a.fits(320));
        assert!(!a.fits(321));
        a.alloc(rid(1), 160).unwrap();
        assert!(a.fits(160));
        assert!(!a.fits(161));
    }
}

#[cfg(test)]
mod proptests {
    use std::collections::HashMap;

    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Arbitrary interleavings of alloc / grow / free over a small id
        /// space never double-free a block, and free + used block counts
        /// always sum to the pool size — checked against an independent
        /// per-sequence block ledger after every operation.
        #[test]
        fn alloc_grow_free_never_leaks_or_double_frees(
            ops in prop::collection::vec((0u64..12, 0u8..3, 1u64..3_000), 1..80),
        ) {
            let mut a = KvAllocator::new(16_000, 16);
            let total_blocks = a.capacity_tokens() / 16;
            // Independent ledger: blocks each live sequence should hold.
            let mut ledger: HashMap<u64, u64> = HashMap::new();
            for (seq, op, tokens) in ops {
                let blocks = tokens.div_ceil(16);
                let ledger_blocks: u64 = ledger.values().sum();
                match op {
                    // Alloc: succeeds iff the sequence is new and fits.
                    0 => match a.alloc(RequestId(seq), tokens) {
                        Ok(()) => {
                            prop_assert!(!ledger.contains_key(&seq));
                            prop_assert!(ledger_blocks + blocks <= total_blocks);
                            ledger.insert(seq, blocks);
                        }
                        Err(KvError::AlreadyAllocated) => {
                            prop_assert!(ledger.contains_key(&seq));
                        }
                        Err(KvError::OutOfMemory { .. }) => {
                            prop_assert!(ledger_blocks + blocks > total_blocks);
                        }
                        Err(e) => prop_assert!(false, "unexpected alloc error {e:?}"),
                    },
                    // Grow: succeeds iff the sequence is live and fits.
                    1 => match a.grow(RequestId(seq), tokens) {
                        Ok(()) => {
                            prop_assert!(ledger.contains_key(&seq));
                            prop_assert!(ledger_blocks + blocks <= total_blocks);
                            *ledger.get_mut(&seq).expect("live") += blocks;
                        }
                        Err(KvError::NotAllocated) => {
                            prop_assert!(!ledger.contains_key(&seq));
                        }
                        Err(KvError::OutOfMemory { .. }) => {
                            prop_assert!(ledger_blocks + blocks > total_blocks);
                        }
                        Err(e) => prop_assert!(false, "unexpected grow error {e:?}"),
                    },
                    // Free: succeeds exactly once per live sequence; a
                    // second free must fail without changing the counts.
                    _ => match a.free(RequestId(seq)) {
                        Ok(()) => {
                            prop_assert!(ledger.remove(&seq).is_some());
                            prop_assert_eq!(
                                a.free(RequestId(seq)),
                                Err(KvError::NotAllocated),
                                "double free must be rejected"
                            );
                        }
                        Err(KvError::NotAllocated) => {
                            prop_assert!(!ledger.contains_key(&seq));
                        }
                        Err(e) => prop_assert!(false, "unexpected free error {e:?}"),
                    },
                }
                // Conservation: the allocator agrees with the ledger and
                // never loses or duplicates a block.
                let live: u64 = ledger.values().sum();
                prop_assert_eq!(a.used_tokens(), live * 16);
                prop_assert_eq!(a.used_tokens() + a.free_tokens(), a.capacity_tokens());
                prop_assert_eq!(a.live_allocations(), ledger.len());
            }
        }
    }
}

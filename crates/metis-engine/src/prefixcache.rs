//! Chunk-level KV-cache reuse across requests.
//!
//! §8 of the paper: "Storing and reusing KV cache across different requests
//! have been commonly studied in recent work... METIS can work alongside
//! these systems, where instead of retrieving chunks, it can retrieve the KV
//! caches" — with the caveat that "storing all the KV cache is extremely
//! expensive", so real systems keep a bounded cache.
//!
//! This module implements the bounded chunk-KV cache: an LRU over chunk ids,
//! sized in KV tokens. The runner consults it when assembling a call's
//! prompt; cached chunks skip *prefill compute* (their KV is read, not
//! recomputed), which the engine models through
//! [`crate::LlmRequest::cached_prompt_tokens`]. Accounting is exact; cache
//! contents (the actual K/V tensors) are irrelevant to the simulation.

use std::collections::HashMap;

use metis_text::ChunkId;

/// A bounded LRU cache of per-chunk KV prefixes, sized in tokens.
#[derive(Clone, Debug)]
pub struct PrefixCache {
    capacity_tokens: u64,
    used_tokens: u64,
    /// chunk → (tokens, last-use tick).
    entries: HashMap<ChunkId, (u64, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl PrefixCache {
    /// Creates a cache holding up to `capacity_tokens` tokens of chunk KV.
    pub fn new(capacity_tokens: u64) -> Self {
        Self {
            capacity_tokens,
            used_tokens: 0,
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `chunk`; on a hit returns its cached token count and
    /// refreshes recency. On a miss, inserts the chunk (evicting LRU entries
    /// as needed) and returns 0.
    pub fn lookup_or_insert(&mut self, chunk: ChunkId, tokens: u64) -> u64 {
        self.tick += 1;
        if let Some((cached, last)) = self.entries.get_mut(&chunk) {
            *last = self.tick;
            self.hits += 1;
            return *cached;
        }
        self.misses += 1;
        if tokens > self.capacity_tokens {
            return 0; // Oversized chunk: never cached.
        }
        while self.used_tokens + tokens > self.capacity_tokens {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(&c, _)| c)
                .expect("used > 0 implies non-empty");
            let (t, _) = self.entries.remove(&lru).expect("key just found");
            self.used_tokens -= t;
        }
        self.entries.insert(chunk, (tokens, self.tick));
        self.used_tokens += tokens;
        0
    }

    /// Tokens currently cached.
    pub fn used_tokens(&self) -> u64 {
        self.used_tokens
    }

    /// Hit rate so far (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Lookups that hit so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total lookups so far (hits + misses) — for aggregating hit rates
    /// across per-replica caches.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Number of cached chunks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u32) -> ChunkId {
        ChunkId(n)
    }

    #[test]
    fn first_lookup_misses_then_hits() {
        let mut p = PrefixCache::new(1_000);
        assert_eq!(p.lookup_or_insert(c(1), 300), 0);
        assert_eq!(p.lookup_or_insert(c(1), 300), 300);
        assert!((p.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let mut p = PrefixCache::new(1_000);
        p.lookup_or_insert(c(1), 400);
        p.lookup_or_insert(c(2), 400);
        // Touch 1 so 2 becomes LRU.
        p.lookup_or_insert(c(1), 400);
        p.lookup_or_insert(c(3), 400); // Evicts 2.
        assert_eq!(p.lookup_or_insert(c(1), 400), 400);
        assert_eq!(p.lookup_or_insert(c(2), 400), 0, "2 was evicted");
        assert!(p.used_tokens() <= 1_000);
    }

    #[test]
    fn oversized_chunks_are_never_cached() {
        let mut p = PrefixCache::new(100);
        assert_eq!(p.lookup_or_insert(c(1), 500), 0);
        assert_eq!(p.lookup_or_insert(c(1), 500), 0);
        assert_eq!(p.used_tokens(), 0);
    }

    #[test]
    fn accounting_is_conserved() {
        let mut p = PrefixCache::new(2_000);
        for i in 0..50 {
            p.lookup_or_insert(c(i), 300);
        }
        assert!(p.used_tokens() <= 2_000);
        let sum: u64 = (0..50)
            .filter_map(|i| p.entries.get(&c(i)).map(|(t, _)| *t))
            .sum();
        assert_eq!(sum, p.used_tokens());
        assert_eq!(p.len(), (p.used_tokens() / 300) as usize);
    }
}

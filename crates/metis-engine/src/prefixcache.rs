//! Chunk-level KV-cache reuse across requests.
//!
//! §8 of the paper: "Storing and reusing KV cache across different requests
//! have been commonly studied in recent work... METIS can work alongside
//! these systems, where instead of retrieving chunks, it can retrieve the KV
//! caches" — with the caveat that "storing all the KV cache is extremely
//! expensive", so real systems keep a bounded cache.
//!
//! This module implements the bounded chunk-KV cache: an LRU over chunk ids,
//! sized in KV tokens. The runner consults it when assembling a call's
//! prompt; cached chunks skip *prefill compute* (their KV is read, not
//! recomputed), which the engine models through
//! [`crate::LlmRequest::cached_prompt_tokens`]. Accounting is exact; cache
//! contents (the actual K/V tensors) are irrelevant to the simulation.

use std::collections::HashMap;

use metis_text::ChunkId;

/// A bounded LRU cache of per-chunk KV prefixes, sized in tokens.
#[derive(Clone, Debug)]
pub struct PrefixCache {
    capacity_tokens: u64,
    used_tokens: u64,
    /// chunk → (tokens, last-use tick).
    entries: HashMap<ChunkId, (u64, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl PrefixCache {
    /// Creates a cache holding up to `capacity_tokens` tokens of chunk KV.
    pub fn new(capacity_tokens: u64) -> Self {
        Self {
            capacity_tokens,
            used_tokens: 0,
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `chunk`; on a hit returns its cached token count and
    /// refreshes recency. On a miss, inserts the chunk (evicting LRU entries
    /// as needed) and returns 0.
    ///
    /// A hit whose `tokens` differs from the cached size means the chunk's
    /// content changed since it was cached: the stale KV is useless, so the
    /// entry is re-inserted at the new size (reconciling `used_tokens`,
    /// evicting LRU entries if the chunk grew) and the lookup counts as a
    /// miss — returning the stale size would let accounting drift a little
    /// further on every such hit.
    pub fn lookup_or_insert(&mut self, chunk: ChunkId, tokens: u64) -> u64 {
        self.tick += 1;
        if let Some((cached, last)) = self.entries.get_mut(&chunk) {
            if *cached == tokens {
                *last = self.tick;
                self.hits += 1;
                return *cached;
            }
            // Size changed: drop the stale entry and fall through to the
            // miss path, which re-inserts at the new size.
            let (stale, _) = self.entries.remove(&chunk).expect("entry just found");
            self.used_tokens -= stale;
        }
        self.misses += 1;
        if tokens > self.capacity_tokens {
            return 0; // Oversized chunk: never cached.
        }
        while self.used_tokens + tokens > self.capacity_tokens {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(&c, _)| c)
                .expect("used > 0 implies non-empty");
            let (t, _) = self.entries.remove(&lru).expect("key just found");
            self.used_tokens -= t;
        }
        self.entries.insert(chunk, (tokens, self.tick));
        self.used_tokens += tokens;
        0
    }

    /// Cached token count for `chunk` without touching recency or hit/miss
    /// accounting — how prefix-aware routing compares candidate replicas'
    /// caches before committing the query to one of them. Returns 0 when
    /// the chunk is absent (or cached at a different size, whose stale KV a
    /// real lookup would discard).
    pub fn peek_tokens(&self, chunk: ChunkId, tokens: u64) -> u64 {
        match self.entries.get(&chunk) {
            Some((cached, _)) if *cached == tokens => *cached,
            _ => 0,
        }
    }

    /// Tokens currently cached.
    pub fn used_tokens(&self) -> u64 {
        self.used_tokens
    }

    /// Hit rate so far (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Lookups that hit so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total lookups so far (hits + misses) — for aggregating hit rates
    /// across per-replica caches.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Number of cached chunks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u32) -> ChunkId {
        ChunkId(n)
    }

    #[test]
    fn first_lookup_misses_then_hits() {
        let mut p = PrefixCache::new(1_000);
        assert_eq!(p.lookup_or_insert(c(1), 300), 0);
        assert_eq!(p.lookup_or_insert(c(1), 300), 300);
        assert!((p.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let mut p = PrefixCache::new(1_000);
        p.lookup_or_insert(c(1), 400);
        p.lookup_or_insert(c(2), 400);
        // Touch 1 so 2 becomes LRU.
        p.lookup_or_insert(c(1), 400);
        p.lookup_or_insert(c(3), 400); // Evicts 2.
        assert_eq!(p.lookup_or_insert(c(1), 400), 400);
        assert_eq!(p.lookup_or_insert(c(2), 400), 0, "2 was evicted");
        assert!(p.used_tokens() <= 1_000);
    }

    #[test]
    fn peek_reads_without_touching_accounting() {
        let mut p = PrefixCache::new(1_000);
        assert_eq!(p.peek_tokens(c(1), 300), 0);
        p.lookup_or_insert(c(1), 300);
        let lookups = p.lookups();
        assert_eq!(p.peek_tokens(c(1), 300), 300);
        assert_eq!(p.peek_tokens(c(1), 999), 0, "size mismatch peeks as absent");
        assert_eq!(p.lookups(), lookups, "peek is not a lookup");
    }

    #[test]
    fn oversized_chunks_are_never_cached() {
        let mut p = PrefixCache::new(100);
        assert_eq!(p.lookup_or_insert(c(1), 500), 0);
        assert_eq!(p.lookup_or_insert(c(1), 500), 0);
        assert_eq!(p.used_tokens(), 0);
    }

    #[test]
    fn size_changed_hit_reconciles_used_tokens() {
        // Regression: a hit used to return the stale cached size and never
        // update the entry, so `used_tokens` drifted away from the sum of
        // entry sizes whenever a chunk's token count changed.
        let mut p = PrefixCache::new(1_000);
        assert_eq!(p.lookup_or_insert(c(1), 400), 0);
        assert_eq!(p.used_tokens(), 400);
        // The chunk shrank: stale KV is useless — miss, re-insert at 250.
        assert_eq!(p.lookup_or_insert(c(1), 250), 0);
        assert_eq!(p.used_tokens(), 250);
        // Subsequent same-size lookups hit at the reconciled size.
        assert_eq!(p.lookup_or_insert(c(1), 250), 250);
        assert_eq!(p.used_tokens(), 250);
        // The chunk grew past what fits alongside a second entry: the LRU
        // sibling is evicted to make room, and accounting stays exact.
        p.lookup_or_insert(c(2), 700);
        assert_eq!(p.used_tokens(), 950);
        assert_eq!(p.lookup_or_insert(c(1), 900), 0);
        assert_eq!(p.used_tokens(), 900, "chunk 2 evicted, chunk 1 resized");
        assert_eq!(p.len(), 1);
        // A growth beyond capacity uncaches the chunk entirely.
        assert_eq!(p.lookup_or_insert(c(1), 2_000), 0);
        assert_eq!(p.used_tokens(), 0);
        assert!(p.is_empty());
    }

    #[test]
    fn accounting_is_conserved() {
        let mut p = PrefixCache::new(2_000);
        for i in 0..50 {
            p.lookup_or_insert(c(i), 300);
        }
        assert!(p.used_tokens() <= 2_000);
        let sum: u64 = (0..50)
            .filter_map(|i| p.entries.get(&c(i)).map(|(t, _)| *t))
            .sum();
        assert_eq!(sum, p.used_tokens());
        assert_eq!(p.len(), (p.used_tokens() / 300) as usize);
    }
}

//! Multi-replica serving cluster.
//!
//! A [`Cluster`] owns `N` independent [`Engine`] replicas — separate GPU
//! groups, each with its own paged KV pool, queue, and virtual clock — and
//! routes newly arriving work across them with a pluggable dispatch policy.
//! Replicas share nothing; the only cross-replica coupling is the routing
//! decision itself, which is exactly the joint configuration/scheduling
//! surface METIS reasons about: [`RouterPolicy::LeastKvLoad`] sends a query
//! to the replica with the most free KV bytes, and the controller's
//! best-fit then sizes the configuration against *that* replica's memory.
//!
//! The cluster is still a discrete-event simulation: each replica advances
//! its own clock, and the driver steps whichever replica lags furthest
//! behind the target time ([`Cluster::steppable_before`] /
//! [`Cluster::step_replica`]), so cross-replica event order is
//! deterministic.

use metis_llm::{FleetSpec, Nanos};

use crate::engine::{Completion, Engine, EngineConfig};
use crate::request::{LlmRequest, ReplicaId};
use crate::stats::EngineStats;

/// How the cluster picks a replica for new work.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RouterPolicy {
    /// Cycle through replicas in submission order.
    #[default]
    RoundRobin,
    /// Route to the replica with the most free KV-cache bytes right now
    /// (ties broken by lowest replica id). This is the memory-aware twin of
    /// least-connections load balancing: it steers work away from replicas
    /// whose KV pool is saturated, and hands METIS's best-fit the roomiest
    /// backend to size against.
    LeastKvLoad,
}

impl RouterPolicy {
    /// Short stable name, for CLI flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::LeastKvLoad => "least-kv",
        }
    }
}

/// `N` engine replicas behind a router.
pub struct Cluster {
    replicas: Vec<Engine>,
    router: RouterPolicy,
    rr_next: usize,
}

impl Cluster {
    /// Builds a cluster from pre-constructed replicas; replica ids are
    /// assigned by position.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn new(mut replicas: Vec<Engine>, router: RouterPolicy) -> Self {
        assert!(!replicas.is_empty(), "a cluster needs at least one replica");
        for (i, r) in replicas.iter_mut().enumerate() {
            r.set_replica(ReplicaId(i as u32));
        }
        Self {
            replicas,
            router,
            rr_next: 0,
        }
    }

    /// Builds a homogeneous cluster: one engine per fleet replica, all with
    /// the same `config`.
    pub fn homogeneous(fleet: &FleetSpec, config: EngineConfig, router: RouterPolicy) -> Self {
        Self::new(
            fleet
                .latency_models()
                .into_iter()
                .map(|lat| Engine::new(lat, config))
                .collect(),
            router,
        )
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Always false: a cluster holds at least one replica.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The routing policy in use.
    pub fn router(&self) -> RouterPolicy {
        self.router
    }

    /// Shared view of one replica.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn replica(&self, id: ReplicaId) -> &Engine {
        &self.replicas[id.0 as usize]
    }

    /// Iterates over the replicas in id order.
    pub fn replicas(&self) -> impl Iterator<Item = &Engine> {
        self.replicas.iter()
    }

    /// Picks the replica the next query's calls should be submitted to.
    /// One route call per query: all of a query's calls (maps and the
    /// reduce) stay on one replica so gang scheduling keeps working.
    pub fn route(&mut self) -> ReplicaId {
        match self.router {
            RouterPolicy::RoundRobin => {
                let id = ReplicaId((self.rr_next % self.replicas.len()) as u32);
                self.rr_next = (self.rr_next + 1) % self.replicas.len();
                id
            }
            RouterPolicy::LeastKvLoad => {
                let best = self
                    .replicas
                    .iter()
                    .enumerate()
                    .max_by_key(|(i, r)| {
                        // Most free KV bytes; stable tie-break on lowest id.
                        (Self::free_kv_bytes_of(r), std::cmp::Reverse(*i))
                    })
                    .expect("non-empty replica list")
                    .0;
                ReplicaId(best as u32)
            }
        }
    }

    fn free_kv_bytes_of(engine: &Engine) -> u64 {
        engine.free_kv_tokens() * engine.latency_model().model().kv_bytes_per_token()
    }

    /// Submits a request to the given replica.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn submit(&mut self, id: ReplicaId, req: LlmRequest) {
        self.replicas[id.0 as usize].submit(req);
    }

    /// Free KV tokens on one replica — what METIS's per-backend best-fit
    /// inspects at decision time.
    pub fn free_kv_tokens(&self, id: ReplicaId) -> u64 {
        self.replica(id).free_kv_tokens()
    }

    /// Free KV bytes on one replica — what the `LeastKvLoad` router ranks.
    pub fn free_kv_bytes(&self, id: ReplicaId) -> u64 {
        Self::free_kv_bytes_of(self.replica(id))
    }

    /// Whether every replica is fully drained.
    pub fn is_idle(&self) -> bool {
        self.replicas.iter().all(Engine::is_idle)
    }

    /// Sum of GPU-busy virtual time across replicas.
    pub fn busy_nanos(&self) -> Nanos {
        self.replicas.iter().map(|r| r.stats().busy).sum()
    }

    /// Per-replica run statistics, in replica-id order.
    pub fn stats(&self) -> Vec<&EngineStats> {
        self.replicas.iter().map(Engine::stats).collect()
    }

    /// Total preemptions across replicas (each replica's count is in
    /// [`Self::stats`]) — the cluster-level KV-contention signal.
    pub fn total_preemptions(&self) -> u64 {
        self.replicas.iter().map(|r| r.stats().preemptions).sum()
    }

    /// The most-lagging replica that still has work to do before virtual
    /// time `t` — the replica the driver should step next to advance the
    /// whole cluster to `t`. `None` when every replica has caught up.
    pub fn steppable_before(&self, t: Nanos) -> Option<ReplicaId> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                r.now() < t
                    && (r.has_active_work() || r.next_pending_arrival().is_some_and(|a| a <= t))
            })
            .min_by_key(|(i, r)| (r.now(), *i))
            .map(|(i, _)| ReplicaId(i as u32))
    }

    /// The most-lagging replica with any remaining work (used to drain the
    /// cluster once no more external events exist).
    pub fn next_steppable(&self) -> Option<ReplicaId> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_idle())
            .min_by_key(|(i, r)| (r.now(), *i))
            .map(|(i, _)| ReplicaId(i as u32))
    }

    /// Advances one replica by one engine iteration; completions carry the
    /// replica id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn step_replica(&mut self, id: ReplicaId) -> Vec<Completion> {
        self.replicas[id.0 as usize].step()
    }

    /// Runs every replica until the whole cluster drains; returns all
    /// completions, ordered by (finish time, replica id).
    ///
    /// Unlike the per-event driver loop, this cannot chain new submissions
    /// off completions — it is a convenience for tests and standalone use.
    pub fn run_until_idle(&mut self) -> Vec<Completion> {
        let mut all = Vec::new();
        while let Some(id) = self.next_steppable() {
            let before = self.replica(id).now();
            let done = self.step_replica(id);
            assert!(
                self.replica(id).now() > before || !done.is_empty(),
                "replica {} stuck: queued={} running={} free_kv={}",
                id.0,
                self.replica(id).queued_len(),
                self.replica(id).running_len(),
                self.replica(id).free_kv_tokens(),
            );
            all.extend(done);
        }
        all.sort_by_key(|c| (c.finish, c.replica));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SchedPolicy;
    use crate::request::{GroupId, Priority, RequestId, Stage};
    use metis_llm::{GpuCluster, LatencyModel, ModelSpec};

    fn cluster(n: usize, router: RouterPolicy) -> Cluster {
        let fleet = FleetSpec::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40(), n);
        Cluster::homogeneous(&fleet, EngineConfig::default(), router)
    }

    fn req(id: u64, group: u64, prompt: u64, out: u64, arrival: Nanos) -> LlmRequest {
        LlmRequest {
            id: RequestId(id),
            group: GroupId(group),
            stage: Stage::Single,
            prompt_tokens: prompt,
            output_tokens: out,
            cached_prompt_tokens: 0,
            arrival,
            priority: Priority::Standard,
        }
    }

    #[test]
    fn round_robin_cycles_replicas() {
        let mut c = cluster(3, RouterPolicy::RoundRobin);
        let picks: Vec<u32> = (0..6).map(|_| c.route().0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_kv_prefers_the_roomiest_replica() {
        let mut c = cluster(2, RouterPolicy::LeastKvLoad);
        // Idle cluster: tie broken by lowest id.
        assert_eq!(c.route(), ReplicaId(0));
        // Load replica 0 and admit the work so its free KV drops.
        c.submit(ReplicaId(0), req(1, 1, 50_000, 500, 0));
        c.step_replica(ReplicaId(0));
        assert!(c.free_kv_bytes(ReplicaId(0)) < c.free_kv_bytes(ReplicaId(1)));
        assert_eq!(c.route(), ReplicaId(1));
    }

    #[test]
    fn completions_carry_their_replica_id() {
        let mut c = cluster(2, RouterPolicy::RoundRobin);
        for i in 0..4u64 {
            let rid = c.route();
            c.submit(rid, req(i, i, 2_000, 10, 0));
        }
        let done = c.run_until_idle();
        assert_eq!(done.len(), 4);
        let mut by_replica = [0usize; 2];
        for d in &done {
            by_replica[d.replica.0 as usize] += 1;
        }
        assert_eq!(by_replica, [2, 2], "round robin splits work evenly");
        assert!(c.is_idle());
    }

    #[test]
    fn replicas_run_independent_clocks() {
        let mut c = cluster(2, RouterPolicy::RoundRobin);
        // Only replica 1 gets (late-arriving) work; replica 0 stays at 0.
        c.submit(ReplicaId(1), req(1, 1, 2_000, 10, 5_000_000_000));
        let done = c.run_until_idle();
        assert_eq!(done.len(), 1);
        assert!(done[0].finish > 5_000_000_000);
        assert_eq!(c.replica(ReplicaId(0)).now(), 0);
        assert!(c.replica(ReplicaId(1)).now() > 0);
    }

    #[test]
    fn steppable_before_picks_the_most_lagging_replica() {
        let mut c = cluster(2, RouterPolicy::RoundRobin);
        c.submit(ReplicaId(0), req(1, 1, 4_000, 20, 0));
        c.submit(ReplicaId(1), req(2, 2, 4_000, 20, 0));
        // Step replica 0 once so its clock leads replica 1's.
        c.step_replica(ReplicaId(0));
        let t = c.replica(ReplicaId(0)).now() + 1;
        assert_eq!(c.steppable_before(t), Some(ReplicaId(1)));
        // Past both clocks with no runnable work left before t: none.
        let mut drained = cluster(1, RouterPolicy::RoundRobin);
        assert_eq!(drained.steppable_before(1_000), None);
        drained.submit(ReplicaId(0), req(3, 3, 100, 1, 2_000));
        assert_eq!(drained.steppable_before(1_000), None, "arrival beyond t");
        assert_eq!(drained.steppable_before(2_001), Some(ReplicaId(0)));
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_cluster_is_rejected() {
        let _ = Cluster::new(Vec::new(), RouterPolicy::RoundRobin);
    }

    #[test]
    fn per_replica_preemption_stats_roll_up() {
        // Replica 0 is forced into one preemption (small KV pool, batch
        // work evicted by an interactive arrival); replica 1 stays quiet.
        let lat = || LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        let bytes = 4_096 * lat().model().kv_bytes_per_token();
        let config = EngineConfig {
            policy: SchedPolicy::Preemptive,
            kv_pool_bytes_cap: Some(bytes),
            ..EngineConfig::default()
        };
        let engines = vec![Engine::new(lat(), config), Engine::new(lat(), config)];
        let mut c = Cluster::new(engines, RouterPolicy::RoundRobin);
        c.submit(
            ReplicaId(0),
            LlmRequest {
                priority: Priority::Batch,
                ..req(1, 1, 3_000, 400, 0)
            },
        );
        c.step_replica(ReplicaId(0));
        let t = c.replica(ReplicaId(0)).now();
        c.submit(
            ReplicaId(0),
            LlmRequest {
                priority: Priority::Interactive,
                ..req(2, 2, 2_000, 20, t)
            },
        );
        let done = c.run_until_idle();
        assert_eq!(done.len(), 2);
        assert_eq!(c.total_preemptions(), 1);
        let stats = c.stats();
        assert_eq!(stats[0].preemptions, 1);
        assert_eq!(stats[1].preemptions, 0);
        assert!(stats[0].preemption_pressure() > 0.0);
    }
}

//! Multi-replica serving cluster.
//!
//! A [`Cluster`] owns independent [`Engine`] replicas — separate GPU
//! groups, each with its own paged KV pool, queue, and virtual clock — and
//! routes newly arriving work across them with a pluggable dispatch policy.
//! Replicas share nothing; the only cross-replica coupling is the routing
//! decision itself, which is exactly the joint configuration/scheduling
//! surface METIS reasons about: [`RouterPolicy::LeastKvLoad`] sends a query
//! to the replica with the most free KV bytes, and the controller's
//! best-fit then sizes the configuration against *that* replica's memory.
//!
//! The fleet is *elastic*: replicas can be added at runtime (optionally
//! paying a warm-up cost before they accept routed work) and drained
//! (routing stops immediately; in-flight work finishes — including
//! follow-on calls of gang groups already on the replica — and the slot
//! retires once idle). Replica ids are stable slot indices: a retired
//! replica keeps its id and its stats, so completions and per-replica
//! accounting never shift under the caller.
//!
//! Preemption can also *migrate* instead of recompute (see
//! [`PreemptMode::Migrate`](crate::engine::PreemptMode)): victims evicted
//! into an engine's outbox are placed by the cluster on the replica with
//! the most free KV that fits them, paying a priced KV-transfer delay, and
//! fall back to local recompute when no replica has headroom.
//!
//! The cluster is still a discrete-event simulation: each replica advances
//! its own clock, and the driver steps whichever replica lags furthest
//! behind the target time ([`Cluster::steppable_before`] /
//! [`Cluster::step_replica`]), so cross-replica event order is
//! deterministic.

use metis_llm::{secs_to_nanos, FleetSpec, Nanos};

use crate::engine::{Completion, Engine, EngineConfig};
use crate::request::{LlmRequest, ReplicaId};
use crate::stats::EngineStats;

/// How the cluster picks a replica for new work.
///
/// # Examples
///
/// Policies are plain values with stable names, routed through at
/// cluster-construction time:
///
/// ```
/// use metis_engine::RouterPolicy;
///
/// assert_eq!(RouterPolicy::default(), RouterPolicy::RoundRobin);
/// assert_eq!(RouterPolicy::LeastKvLoad.name(), "least-kv");
/// assert_eq!(RouterPolicy::PrefixAware.name(), "prefix-aware");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RouterPolicy {
    /// Cycle through replicas in submission order.
    #[default]
    RoundRobin,
    /// Route to the replica with the most free KV-cache bytes right now
    /// (ties broken by lowest replica id). This is the memory-aware twin of
    /// least-connections load balancing: it steers work away from replicas
    /// whose KV pool is saturated, and hands METIS's best-fit the roomiest
    /// backend to size against.
    LeastKvLoad,
    /// Route to the replica whose `PrefixCache` already holds the query's
    /// system/context prefix, falling back to [`Self::LeastKvLoad`]. The
    /// cluster itself cannot see the caches (they live with the runner,
    /// which consults them at submit time after retrieval), so at this
    /// level the policy ranks like `LeastKvLoad`; the runner re-routes to
    /// the best cache-overlap replica once the retrieved chunks are known.
    PrefixAware,
}

impl RouterPolicy {
    /// Short stable name, for CLI flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::LeastKvLoad => "least-kv",
            RouterPolicy::PrefixAware => "prefix-aware",
        }
    }
}

/// Effective bandwidth of a cross-replica KV transfer, in bytes per second
/// of virtual time: NVLink-class interconnects move hundreds of GB/s, but a
/// replica-to-replica move crosses host links (PCIe 4.0 x16 ≈ 32 GB/s peak)
/// and pays serialization overheads, so 25 GB/s is the planning number a
/// migration is priced at.
pub const MIGRATION_BW_BYTES_PER_SEC: f64 = 25e9;

/// A replica slot's lifecycle state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReplicaState {
    /// Spawned but not yet accepting routed work (weights loading,
    /// CUDA-graph capture); becomes [`Self::Active`] at `until`.
    WarmingUp {
        /// When the replica starts accepting routed work.
        until: Nanos,
    },
    /// Accepting routed work.
    Active,
    /// No longer routed to; in-flight work (and follow-on calls of groups
    /// already placed here) still runs to completion.
    Draining,
    /// Drained and idle. The slot keeps its id and stats but does nothing;
    /// a late follow-on submission (a gang group's reduce) re-enters
    /// [`Self::Draining`] until it finishes.
    Retired,
}

struct Slot {
    engine: Engine,
    state: ReplicaState,
    /// When the slot began costing replica-seconds.
    spawned_at: Nanos,
    /// When the slot stopped costing replica-seconds (set at retirement).
    retired_at: Option<Nanos>,
}

/// Engine replicas behind a router, with runtime add/drain.
pub struct Cluster {
    slots: Vec<Slot>,
    router: RouterPolicy,
    rr_next: usize,
    /// High-water mark of concurrently live (non-retired) slots.
    peak_live: usize,
}

impl Cluster {
    /// Builds a cluster from pre-constructed replicas; replica ids are
    /// assigned by position. The initial fleet starts [`ReplicaState::Active`]
    /// (warm-up applies to replicas added later via [`Self::add_replica`]).
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn new(replicas: Vec<Engine>, router: RouterPolicy) -> Self {
        assert!(!replicas.is_empty(), "a cluster needs at least one replica");
        let peak_live = replicas.len();
        let slots = replicas
            .into_iter()
            .enumerate()
            .map(|(i, mut engine)| {
                engine.set_replica(ReplicaId(i as u32));
                Slot {
                    engine,
                    state: ReplicaState::Active,
                    spawned_at: 0,
                    retired_at: None,
                }
            })
            .collect();
        Self {
            slots,
            router,
            rr_next: 0,
            peak_live,
        }
    }

    /// Builds a cluster with one engine per fleet replica (each on its own
    /// GPU class), all with the same `config`.
    pub fn homogeneous(fleet: &FleetSpec, config: EngineConfig, router: RouterPolicy) -> Self {
        Self::new(
            fleet
                .latency_models()
                .into_iter()
                .map(|lat| Engine::new(lat, config))
                .collect(),
            router,
        )
    }

    /// Number of replica slots ever created (including retired ones —
    /// replica ids are stable slot indices).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Always false: a cluster holds at least one replica.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The routing policy in use.
    pub fn router(&self) -> RouterPolicy {
        self.router
    }

    /// Shared view of one replica.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn replica(&self, id: ReplicaId) -> &Engine {
        &self.slots[id.0 as usize].engine
    }

    /// Iterates over the replicas in id order (retired slots included).
    pub fn replicas(&self) -> impl Iterator<Item = &Engine> {
        self.slots.iter().map(|s| &s.engine)
    }

    /// One replica's lifecycle state (warm-up promotion is evaluated
    /// against `now`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn replica_state(&self, id: ReplicaId, now: Nanos) -> ReplicaState {
        match self.slots[id.0 as usize].state {
            ReplicaState::WarmingUp { until } if now >= until => ReplicaState::Active,
            s => s,
        }
    }

    /// Whether `id` currently accepts routed work at `now`.
    pub fn is_routable(&self, id: ReplicaId, now: Nanos) -> bool {
        matches!(self.replica_state(id, now), ReplicaState::Active)
    }

    /// Number of replicas accepting routed work at `now`.
    pub fn active_len(&self, now: Nanos) -> usize {
        (0..self.slots.len())
            .filter(|&i| self.is_routable(ReplicaId(i as u32), now))
            .count()
    }

    /// Number of live (non-retired) replicas: active, warming, or draining.
    pub fn live_len(&self) -> usize {
        self.slots.iter().filter(|s| s.retired_at.is_none()).count()
    }

    /// High-water mark of concurrently live replicas over the run.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Adds a replica slot at virtual time `now`. With a non-zero `warmup`
    /// the slot accepts routed work only from `now + warmup` (its clock is
    /// advanced there, so any work force-submitted earlier also waits out
    /// the warm-up). Returns the new replica's stable id.
    pub fn add_replica(&mut self, mut engine: Engine, now: Nanos, warmup: Nanos) -> ReplicaId {
        let id = ReplicaId(self.slots.len() as u32);
        engine.set_replica(id);
        let ready = now.saturating_add(warmup);
        engine.advance_clock_to(ready);
        self.slots.push(Slot {
            engine,
            state: if warmup == 0 {
                ReplicaState::Active
            } else {
                ReplicaState::WarmingUp { until: ready }
            },
            spawned_at: now,
            retired_at: None,
        });
        self.peak_live = self.peak_live.max(self.live_len());
        id
    }

    /// Begins draining `id` at `now`: routing stops immediately, in-flight
    /// work finishes (or migrates with its group's follow-ons), and the
    /// slot retires once idle. Returns `false` without draining when `id`
    /// is the last routable replica — a cluster never drains itself to
    /// zero capacity.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn drain_replica(&mut self, id: ReplicaId, now: Nanos) -> bool {
        if self.is_routable(id, now) && self.active_len(now) <= 1 {
            return false;
        }
        let slot = &mut self.slots[id.0 as usize];
        if matches!(slot.state, ReplicaState::Retired) {
            return false;
        }
        slot.state = ReplicaState::Draining;
        self.reap(now);
        true
    }

    /// Promotes warmed-up slots and retires drained-idle ones. Called from
    /// the stepping path; callers driving engines directly can call it
    /// after external time passes.
    pub fn reap(&mut self, now: Nanos) {
        for slot in &mut self.slots {
            match slot.state {
                ReplicaState::WarmingUp { until } if now >= until => {
                    slot.state = ReplicaState::Active;
                }
                ReplicaState::Draining if slot.engine.is_idle() => {
                    slot.state = ReplicaState::Retired;
                    // The instant its last work finished (its own clock),
                    // never before it was spawned.
                    slot.retired_at = Some(slot.engine.now().max(slot.spawned_at));
                }
                _ => {}
            }
        }
    }

    /// Picks the replica the next query's calls should be submitted to.
    /// One route call per query: all of a query's calls (maps and the
    /// reduce) stay on one replica so gang scheduling keeps working. Only
    /// replicas routable at `now` are considered; if none is (every slot
    /// warming or draining), the policy ranks the live slots instead so
    /// the query still lands somewhere that will serve it.
    pub fn route(&mut self, now: Nanos) -> ReplicaId {
        let mut candidates: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.is_routable(ReplicaId(i as u32), now))
            .collect();
        if candidates.is_empty() {
            candidates = (0..self.slots.len())
                .filter(|&i| self.slots[i].retired_at.is_none())
                .collect();
        }
        assert!(!candidates.is_empty(), "no live replica to route to");
        match self.router {
            RouterPolicy::RoundRobin => {
                let id = candidates[self.rr_next % candidates.len()];
                self.rr_next = (self.rr_next + 1) % candidates.len().max(1);
                ReplicaId(id as u32)
            }
            // PrefixAware ranks like LeastKvLoad here: cache-overlap
            // re-routing happens in the runner, which owns the caches.
            RouterPolicy::LeastKvLoad | RouterPolicy::PrefixAware => {
                let best = candidates
                    .into_iter()
                    .max_by_key(|&i| {
                        // Most free KV bytes; stable tie-break on lowest id.
                        (
                            Self::free_kv_bytes_of(&self.slots[i].engine),
                            std::cmp::Reverse(i),
                        )
                    })
                    .expect("non-empty candidate list");
                ReplicaId(best as u32)
            }
        }
    }

    fn free_kv_bytes_of(engine: &Engine) -> u64 {
        engine.free_kv_tokens() * engine.latency_model().model().kv_bytes_per_token()
    }

    /// Submits a request to the given replica. A retired slot re-enters
    /// draining: a gang group's reduce may chase its maps onto a replica
    /// that went idle in between, and it must still be served exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn submit(&mut self, id: ReplicaId, req: LlmRequest) {
        let slot = &mut self.slots[id.0 as usize];
        if matches!(slot.state, ReplicaState::Retired) {
            slot.state = ReplicaState::Draining;
            slot.retired_at = None;
        }
        slot.engine.submit(req);
    }

    /// Free KV tokens on one replica — what METIS's per-backend best-fit
    /// inspects at decision time.
    pub fn free_kv_tokens(&self, id: ReplicaId) -> u64 {
        self.replica(id).free_kv_tokens()
    }

    /// Free KV bytes on one replica — what the `LeastKvLoad` router ranks.
    pub fn free_kv_bytes(&self, id: ReplicaId) -> u64 {
        Self::free_kv_bytes_of(self.replica(id))
    }

    /// Requests waiting for admission across live replicas — the
    /// autoscaler's primary load signal.
    pub fn queue_depth(&self) -> u64 {
        self.slots
            .iter()
            .filter(|s| s.retired_at.is_none())
            .map(|s| s.engine.queued_len() as u64)
            .sum()
    }

    /// Whether every replica is fully drained.
    pub fn is_idle(&self) -> bool {
        self.slots.iter().all(|s| s.engine.is_idle())
    }

    /// Sum of GPU-busy virtual time across replicas.
    pub fn busy_nanos(&self) -> Nanos {
        self.slots.iter().map(|s| s.engine.stats().busy).sum()
    }

    /// Integrated capacity cost in replica-seconds up to virtual time
    /// `end`: each slot is billed from spawn until retirement (or `end`
    /// while live). Warm-up time is billed — the GPU is held from spawn.
    pub fn replica_seconds(&self, end: Nanos) -> f64 {
        self.slots
            .iter()
            .map(|s| {
                let until = s.retired_at.unwrap_or(end).max(s.spawned_at);
                metis_llm::nanos_to_secs(until - s.spawned_at)
            })
            .sum()
    }

    /// Latest virtual instant any replica has reached — the cluster-wide
    /// end-of-run time replica-seconds are billed to.
    pub fn latest_now(&self) -> Nanos {
        self.slots.iter().map(|s| s.engine.now()).max().unwrap_or(0)
    }

    /// Per-replica run statistics, in replica-id order.
    pub fn stats(&self) -> Vec<&EngineStats> {
        self.slots.iter().map(|s| s.engine.stats()).collect()
    }

    /// Total preemptions across replicas (each replica's count is in
    /// [`Self::stats`]) — the cluster-level KV-contention signal.
    pub fn total_preemptions(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.engine.stats().preemptions)
            .sum()
    }

    /// The most-lagging replica that still has work to do before virtual
    /// time `t` — the replica the driver should step next to advance the
    /// whole cluster to `t`. `None` when every replica has caught up.
    pub fn steppable_before(&self, t: Nanos) -> Option<ReplicaId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.engine.now() < t
                    && (s.engine.has_active_work()
                        || s.engine.next_pending_arrival().is_some_and(|a| a <= t))
            })
            .min_by_key(|(i, s)| (s.engine.now(), *i))
            .map(|(i, _)| ReplicaId(i as u32))
    }

    /// The most-lagging replica with any remaining work (used to drain the
    /// cluster once no more external events exist).
    pub fn next_steppable(&self) -> Option<ReplicaId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.engine.is_idle())
            .min_by_key(|(i, s)| (s.engine.now(), *i))
            .map(|(i, _)| ReplicaId(i as u32))
    }

    /// Advances one replica by one engine iteration; completions carry the
    /// replica id. Migration-evicted victims the iteration produced are
    /// placed before returning (see [`Self::place_evicted`]), and lifecycle
    /// transitions that became due are applied.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn step_replica(&mut self, id: ReplicaId) -> Vec<Completion> {
        let done = self.slots[id.0 as usize].engine.step();
        if self.slots[id.0 as usize].engine.evicted_len() > 0 {
            self.place_evicted(id);
        }
        self.reap(self.slots[id.0 as usize].engine.now());
        done
    }

    /// Places every migration-evicted victim from `source`'s outbox: each
    /// goes to the non-draining replica with the most free KV bytes that
    /// fits its whole demand (headroom), excluding the source itself,
    /// paying a transfer delay of `kv_bytes / MIGRATION_BW_BYTES_PER_SEC`.
    /// With zero headroom everywhere the victim falls back to recompute on
    /// the source — the same outcome plain recompute-preemption would have
    /// had, charged the same way.
    pub fn place_evicted(&mut self, source: ReplicaId) {
        let src = source.0 as usize;
        let evicted = self.slots[src].engine.take_evicted();
        let bytes_per_token = self.slots[src]
            .engine
            .latency_model()
            .model()
            .kv_bytes_per_token();
        for seq in evicted {
            let demand = seq.migrate_req.kv_demand_tokens();
            let dest = self
                .slots
                .iter()
                .enumerate()
                .filter(|(i, s)| {
                    *i != src
                        && matches!(
                            s.state,
                            ReplicaState::Active | ReplicaState::WarmingUp { .. }
                        )
                        && s.engine.free_kv_tokens() >= demand
                })
                .max_by_key(|(i, s)| (Self::free_kv_bytes_of(&s.engine), std::cmp::Reverse(*i)))
                .map(|(i, _)| i);
            match dest {
                Some(d) => {
                    let kv_bytes = seq.kv_tokens.saturating_mul(bytes_per_token);
                    let transfer = secs_to_nanos(kv_bytes as f64 / MIGRATION_BW_BYTES_PER_SEC);
                    let ready_at = seq.evicted_at.saturating_add(transfer);
                    self.slots[src].engine.record_migration(seq.kv_tokens);
                    self.slots[d]
                        .engine
                        .submit_in_transit(seq.migrate_req, ready_at);
                }
                None => self.slots[src].engine.requeue_recompute(seq),
            }
        }
    }

    /// Runs every replica until the whole cluster drains; returns all
    /// completions, ordered by (finish time, replica id).
    ///
    /// Unlike the per-event driver loop, this cannot chain new submissions
    /// off completions — it is a convenience for tests and standalone use.
    pub fn run_until_idle(&mut self) -> Vec<Completion> {
        let mut all = Vec::new();
        while let Some(id) = self.next_steppable() {
            let before = self.replica(id).now();
            let done = self.step_replica(id);
            assert!(
                self.replica(id).now() > before || !done.is_empty() || self.replica(id).is_idle(),
                "replica {} stuck: queued={} running={} free_kv={}",
                id.0,
                self.replica(id).queued_len(),
                self.replica(id).running_len(),
                self.replica(id).free_kv_tokens(),
            );
            all.extend(done);
        }
        all.sort_by_key(|c| (c.finish, c.replica));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{PreemptMode, SchedPolicy};
    use crate::request::{GroupId, Priority, RequestId, Stage};
    use metis_llm::{GpuCluster, LatencyModel, ModelSpec};

    fn cluster(n: usize, router: RouterPolicy) -> Cluster {
        let fleet = FleetSpec::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40(), n);
        Cluster::homogeneous(&fleet, EngineConfig::default(), router)
    }

    fn engine() -> Engine {
        let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        Engine::new(lat, EngineConfig::default())
    }

    fn req(id: u64, group: u64, prompt: u64, out: u64, arrival: Nanos) -> LlmRequest {
        LlmRequest {
            id: RequestId(id),
            group: GroupId(group),
            stage: Stage::Single,
            prompt_tokens: prompt,
            output_tokens: out,
            cached_prompt_tokens: 0,
            arrival,
            priority: Priority::Standard,
        }
    }

    #[test]
    fn round_robin_cycles_replicas() {
        let mut c = cluster(3, RouterPolicy::RoundRobin);
        let picks: Vec<u32> = (0..6).map(|_| c.route(0).0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_kv_prefers_the_roomiest_replica() {
        let mut c = cluster(2, RouterPolicy::LeastKvLoad);
        // Idle cluster: tie broken by lowest id.
        assert_eq!(c.route(0), ReplicaId(0));
        // Load replica 0 and admit the work so its free KV drops.
        c.submit(ReplicaId(0), req(1, 1, 50_000, 500, 0));
        c.step_replica(ReplicaId(0));
        assert!(c.free_kv_bytes(ReplicaId(0)) < c.free_kv_bytes(ReplicaId(1)));
        assert_eq!(c.route(0), ReplicaId(1));
    }

    #[test]
    fn prefix_aware_falls_back_to_least_kv_at_cluster_level() {
        let mut c = cluster(2, RouterPolicy::PrefixAware);
        c.submit(ReplicaId(0), req(1, 1, 50_000, 500, 0));
        c.step_replica(ReplicaId(0));
        assert_eq!(c.route(0), ReplicaId(1));
    }

    #[test]
    fn completions_carry_their_replica_id() {
        let mut c = cluster(2, RouterPolicy::RoundRobin);
        for i in 0..4u64 {
            let rid = c.route(0);
            c.submit(rid, req(i, i, 2_000, 10, 0));
        }
        let done = c.run_until_idle();
        assert_eq!(done.len(), 4);
        let mut by_replica = [0usize; 2];
        for d in &done {
            by_replica[d.replica.0 as usize] += 1;
        }
        assert_eq!(by_replica, [2, 2], "round robin splits work evenly");
        assert!(c.is_idle());
    }

    #[test]
    fn replicas_run_independent_clocks() {
        let mut c = cluster(2, RouterPolicy::RoundRobin);
        // Only replica 1 gets (late-arriving) work; replica 0 stays at 0.
        c.submit(ReplicaId(1), req(1, 1, 2_000, 10, 5_000_000_000));
        let done = c.run_until_idle();
        assert_eq!(done.len(), 1);
        assert!(done[0].finish > 5_000_000_000);
        assert_eq!(c.replica(ReplicaId(0)).now(), 0);
        assert!(c.replica(ReplicaId(1)).now() > 0);
    }

    #[test]
    fn steppable_before_picks_the_most_lagging_replica() {
        let mut c = cluster(2, RouterPolicy::RoundRobin);
        c.submit(ReplicaId(0), req(1, 1, 4_000, 20, 0));
        c.submit(ReplicaId(1), req(2, 2, 4_000, 20, 0));
        // Step replica 0 once so its clock leads replica 1's.
        c.step_replica(ReplicaId(0));
        let t = c.replica(ReplicaId(0)).now() + 1;
        assert_eq!(c.steppable_before(t), Some(ReplicaId(1)));
        // Past both clocks with no runnable work left before t: none.
        let mut drained = cluster(1, RouterPolicy::RoundRobin);
        assert_eq!(drained.steppable_before(1_000), None);
        drained.submit(ReplicaId(0), req(3, 3, 100, 1, 2_000));
        assert_eq!(drained.steppable_before(1_000), None, "arrival beyond t");
        assert_eq!(drained.steppable_before(2_001), Some(ReplicaId(0)));
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_cluster_is_rejected() {
        let _ = Cluster::new(Vec::new(), RouterPolicy::RoundRobin);
    }

    #[test]
    fn per_replica_preemption_stats_roll_up() {
        // Replica 0 is forced into one preemption (small KV pool, batch
        // work evicted by an interactive arrival); replica 1 stays quiet.
        let lat = || LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        let bytes = 4_096 * lat().model().kv_bytes_per_token();
        let config = EngineConfig {
            policy: SchedPolicy::Preemptive,
            kv_pool_bytes_cap: Some(bytes),
            ..EngineConfig::default()
        };
        let engines = vec![Engine::new(lat(), config), Engine::new(lat(), config)];
        let mut c = Cluster::new(engines, RouterPolicy::RoundRobin);
        c.submit(
            ReplicaId(0),
            LlmRequest {
                priority: Priority::Batch,
                ..req(1, 1, 3_000, 400, 0)
            },
        );
        c.step_replica(ReplicaId(0));
        let t = c.replica(ReplicaId(0)).now();
        c.submit(
            ReplicaId(0),
            LlmRequest {
                priority: Priority::Interactive,
                ..req(2, 2, 2_000, 20, t)
            },
        );
        let done = c.run_until_idle();
        assert_eq!(done.len(), 2);
        assert_eq!(c.total_preemptions(), 1);
        let stats = c.stats();
        assert_eq!(stats[0].preemptions, 1);
        assert_eq!(stats[1].preemptions, 0);
        assert!(stats[0].preemption_pressure() > 0.0);
    }

    #[test]
    fn added_replica_warms_up_before_taking_routes() {
        let mut c = cluster(1, RouterPolicy::RoundRobin);
        let id = c.add_replica(engine(), 1_000, 500);
        assert_eq!(id, ReplicaId(1));
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.replica_state(id, 1_200),
            ReplicaState::WarmingUp { until: 1_500 }
        );
        assert!(!c.is_routable(id, 1_200));
        // While warming, every route lands on the active replica.
        assert_eq!(c.route(1_200), ReplicaId(0));
        assert_eq!(c.route(1_200), ReplicaId(0));
        // Once warm, round robin includes it.
        assert_eq!(c.replica_state(id, 1_500), ReplicaState::Active);
        let picks: Vec<u32> = (0..4).map(|_| c.route(1_500).0).collect();
        assert!(
            picks.contains(&1),
            "warmed replica joins routing: {picks:?}"
        );
        // The warming slot's clock already sits at its ready time, so work
        // routed right at warm-up start cannot begin before `until`.
        assert!(c.replica(id).now() >= 1_500);
    }

    #[test]
    fn drain_stops_routing_and_retires_when_idle() {
        let mut c = cluster(2, RouterPolicy::RoundRobin);
        c.submit(ReplicaId(1), req(1, 1, 2_000, 10, 0));
        assert!(c.drain_replica(ReplicaId(1), 0));
        // Draining replicas take no new routes.
        for _ in 0..4 {
            assert_eq!(c.route(0), ReplicaId(0));
        }
        assert_eq!(c.replica_state(ReplicaId(1), 0), ReplicaState::Draining);
        // In-flight work still finishes; the slot then retires.
        let done = c.run_until_idle();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].replica, ReplicaId(1));
        assert_eq!(
            c.replica_state(ReplicaId(1), c.latest_now()),
            ReplicaState::Retired
        );
        assert_eq!(c.active_len(c.latest_now()), 1);
    }

    #[test]
    fn last_active_replica_refuses_to_drain() {
        let mut c = cluster(2, RouterPolicy::RoundRobin);
        assert!(c.drain_replica(ReplicaId(0), 0));
        assert!(!c.drain_replica(ReplicaId(1), 0), "never drain to zero");
        assert_eq!(c.active_len(0), 1);
    }

    #[test]
    fn retired_slot_still_serves_a_late_gang_reduce_exactly_once() {
        let mut c = cluster(2, RouterPolicy::RoundRobin);
        c.submit(ReplicaId(1), req(1, 7, 2_000, 10, 0));
        assert!(c.drain_replica(ReplicaId(1), 0));
        let done = c.run_until_idle();
        assert_eq!(done.len(), 1);
        assert_eq!(
            c.replica_state(ReplicaId(1), c.latest_now()),
            ReplicaState::Retired
        );
        // The group's reduce chases its maps onto the retired slot (the
        // runner pins a gang group to one replica).
        let t = done[0].finish;
        c.submit(
            ReplicaId(1),
            LlmRequest {
                stage: Stage::Reduce,
                ..req(2, 7, 1_000, 5, t)
            },
        );
        assert_eq!(
            c.replica_state(ReplicaId(1), t),
            ReplicaState::Draining,
            "a late submission re-opens the slot until served"
        );
        let done = c.run_until_idle();
        assert_eq!(done.len(), 1, "the reduce completes exactly once");
        assert_eq!(
            c.replica_state(ReplicaId(1), c.latest_now()),
            ReplicaState::Retired
        );
    }

    #[test]
    fn replica_seconds_bill_spawn_to_retirement() {
        let mut c = cluster(1, RouterPolicy::RoundRobin);
        let id = c.add_replica(engine(), 2_000_000_000, 0);
        c.submit(id, req(1, 1, 2_000, 10, 2_000_000_000));
        assert!(c.drain_replica(id, 2_000_000_000));
        c.run_until_idle();
        let end = c.latest_now();
        let total = c.replica_seconds(end);
        // Slot 0 bills the whole run; slot 1 bills spawn → retirement.
        let retired = c.replica(id).now();
        let expected =
            metis_llm::nanos_to_secs(end) + metis_llm::nanos_to_secs(retired - 2_000_000_000);
        assert!(
            (total - expected).abs() < 1e-9,
            "total {total} != expected {expected}"
        );
        assert_eq!(c.peak_live(), 2);
        assert_eq!(c.live_len(), 1);
    }

    /// Builds a preemptive 2-replica cluster with a KV pool small enough
    /// that an interactive arrival must evict batch work.
    fn tight_cluster(mode: PreemptMode) -> Cluster {
        let lat = || LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        let bytes = 4_096 * lat().model().kv_bytes_per_token();
        let config = EngineConfig {
            policy: SchedPolicy::Preemptive,
            kv_pool_bytes_cap: Some(bytes),
            preempt_mode: mode,
            ..EngineConfig::default()
        };
        let engines = vec![Engine::new(lat(), config), Engine::new(lat(), config)];
        Cluster::new(engines, RouterPolicy::RoundRobin)
    }

    #[test]
    fn migration_moves_the_victim_instead_of_recomputing() {
        let mut c = tight_cluster(PreemptMode::Migrate);
        // A long batch decode occupies replica 0.
        c.submit(
            ReplicaId(0),
            LlmRequest {
                priority: Priority::Batch,
                ..req(1, 1, 3_000, 400, 0)
            },
        );
        c.step_replica(ReplicaId(0));
        let t = c.replica(ReplicaId(0)).now();
        // An interactive arrival forces an eviction; replica 1 has room.
        c.submit(
            ReplicaId(0),
            LlmRequest {
                priority: Priority::Interactive,
                ..req(2, 2, 2_000, 20, t)
            },
        );
        let done = c.run_until_idle();
        assert_eq!(done.len(), 2, "both requests complete exactly once");
        let stats = c.stats();
        assert_eq!(stats[0].preemptions, 1);
        assert_eq!(stats[0].migrations, 1);
        assert!(stats[0].migrated_tokens > 0);
        assert_eq!(stats[0].preempted_tokens, 0, "nothing recomputed");
        // The victim finished on replica 1, with its original arrival.
        let victim = done.iter().find(|d| d.id == RequestId(1)).unwrap();
        assert_eq!(victim.replica, ReplicaId(1));
        assert_eq!(victim.arrival, 0);
        assert!(victim.admitted >= t, "re-admitted after the transfer");
    }

    #[test]
    fn migration_with_zero_headroom_falls_back_to_recompute() {
        // Single replica: there is never a migration destination.
        let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        let bytes = 4_096 * lat.model().kv_bytes_per_token();
        let config = EngineConfig {
            policy: SchedPolicy::Preemptive,
            kv_pool_bytes_cap: Some(bytes),
            preempt_mode: PreemptMode::Migrate,
            ..EngineConfig::default()
        };
        let mut c = Cluster::new(vec![Engine::new(lat, config)], RouterPolicy::RoundRobin);
        c.submit(
            ReplicaId(0),
            LlmRequest {
                priority: Priority::Batch,
                ..req(1, 1, 3_000, 400, 0)
            },
        );
        c.step_replica(ReplicaId(0));
        let t = c.replica(ReplicaId(0)).now();
        c.submit(
            ReplicaId(0),
            LlmRequest {
                priority: Priority::Interactive,
                ..req(2, 2, 2_000, 20, t)
            },
        );
        let done = c.run_until_idle();
        assert_eq!(done.len(), 2, "fallback still completes everything");
        let stats = c.stats();
        assert_eq!(stats[0].preemptions, 1);
        assert_eq!(stats[0].migrations, 0, "nowhere to migrate");
        assert!(
            stats[0].preempted_tokens > 0,
            "zero headroom falls back to recompute losses"
        );
    }

    /// Token conservation: across the cluster, prefill tokens computed
    /// equal the uncached prompt demand plus recompute losses, and decode
    /// tokens equal the output demand plus recompute losses — under both
    /// preemption modes. No token is lost or double-counted by migration.
    #[test]
    fn preemption_conserves_tokens_under_both_modes() {
        for mode in [PreemptMode::Recompute, PreemptMode::Migrate] {
            let mut c = tight_cluster(mode);
            let mut demand_prompt = 0u64;
            let mut demand_output = 0u64;
            // Fill replica 0 with batch work, then hit it with interactive
            // arrivals so preemption fires repeatedly.
            for i in 0..3u64 {
                let r = LlmRequest {
                    priority: Priority::Batch,
                    ..req(i, i, 1_200, 300, 0)
                };
                demand_prompt += r.prompt_tokens;
                demand_output += r.output_tokens;
                c.submit(ReplicaId(0), r);
            }
            c.step_replica(ReplicaId(0));
            c.step_replica(ReplicaId(0));
            let t = c.replica(ReplicaId(0)).now();
            for i in 10..13u64 {
                let r = LlmRequest {
                    priority: Priority::Interactive,
                    ..req(i, i, 1_000, 20, t)
                };
                demand_prompt += r.prompt_tokens;
                demand_output += r.output_tokens;
                c.submit(ReplicaId(0), r);
            }
            let done = c.run_until_idle();
            assert_eq!(done.len(), 6, "every request completes ({mode:?})");
            // Each request completed exactly once.
            let mut ids: Vec<u64> = done.iter().map(|d| d.id.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 6, "no double completions ({mode:?})");
            let stats = c.stats();
            let prefill: u64 = stats.iter().map(|s| s.prefill_tokens).sum();
            let decode: u64 = stats.iter().map(|s| s.decode_tokens).sum();
            let lost: u64 = stats.iter().map(|s| s.preempted_tokens).sum();
            let preemptions: u64 = stats.iter().map(|s| s.preemptions).sum();
            assert!(preemptions > 0, "the contention must trigger eviction");
            assert_eq!(
                prefill + decode,
                demand_prompt + demand_output + lost,
                "token conservation violated under {mode:?}: computed \
                 prefill {prefill} + decode {decode} != demand \
                 {demand_prompt}+{demand_output} + recompute losses {lost}"
            );
            if mode == PreemptMode::Migrate {
                let migrations: u64 = stats.iter().map(|s| s.migrations).sum();
                // With a roomy second replica every eviction migrates, so
                // nothing is recomputed at all.
                assert!(migrations > 0, "evictions must migrate");
                assert_eq!(lost, 0, "migration loses no computed tokens");
            }
        }
    }
}

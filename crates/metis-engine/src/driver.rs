//! The `Driver` abstraction: who executes submitted work, and on whose time.
//!
//! The runner in `metis-core` schedules Profile → Decide → Retrieve →
//! Submit events on a virtual timeline and needs four things from the
//! serving substrate: route new work to a replica, submit requests, collect
//! completions, and know when everything has drained. [`Driver`] is exactly
//! that surface. Two implementations exist:
//!
//! * [`SimDriver`] — wraps a [`Cluster`] and advances it with the same
//!   most-lagging-replica discrete-event stepping the runner used to inline.
//!   Deterministic and bit-for-bit reproducible (a golden-report test in
//!   `metis-core` pins this).
//! * [`RealtimeDriver`](crate::realtime::RealtimeDriver) — one worker
//!   thread per replica, paced against a scaled wall clock. Same engines,
//!   same latency models, same virtual timestamps; only the passage of time
//!   is real.
//!
//! The pump interface is deliberately incremental: `pump_before`/`pump_idle`
//! return one batch of completions at a time so the caller can chain new
//! submissions (e.g. a reduce call) off each batch before the driver runs
//! any further — the ordering contract the simulator's determinism and the
//! realtime driver's map→reduce correctness both rely on.

use metis_llm::{nanos_to_secs, Nanos};

use crate::cluster::Cluster;
use crate::engine::Completion;
use crate::request::{LlmRequest, ReplicaId};

/// Which driver implementation served a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverKind {
    /// Deterministic discrete-event simulation ([`SimDriver`]).
    Sim,
    /// Live multithreaded serving on scaled wall-clock time
    /// ([`RealtimeDriver`](crate::realtime::RealtimeDriver)).
    Realtime,
}

impl DriverKind {
    /// Short stable name, for CLI flags and report knobs.
    pub fn name(self) -> &'static str {
        match self {
            DriverKind::Sim => "sim",
            DriverKind::Realtime => "realtime",
        }
    }
}

/// How a run wants its work executed. This is the configuration-level
/// counterpart of [`Driver`]: `RunConfig` carries a `DriverSpec`, and the
/// runner builds the matching driver over the run's engines.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum DriverSpec {
    /// The deterministic simulator (the default).
    #[default]
    Sim,
    /// Live serving: one worker thread per replica, with virtual time
    /// passing `time_scale`× faster than wall time.
    Realtime {
        /// Virtual-per-wall speedup; must be finite and positive.
        time_scale: f64,
    },
}

impl DriverSpec {
    /// The kind of driver this spec builds.
    pub fn kind(self) -> DriverKind {
        match self {
            DriverSpec::Sim => DriverKind::Sim,
            DriverSpec::Realtime { .. } => DriverKind::Realtime,
        }
    }

    /// The time-scale knob (1.0 for the simulator, whose virtual time is
    /// not tied to wall time at all).
    pub fn time_scale(self) -> f64 {
        match self {
            DriverSpec::Sim => 1.0,
            DriverSpec::Realtime { time_scale } => time_scale,
        }
    }

    /// Builds the driver over pre-constructed engines (replica ids are
    /// assigned by position).
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty, or for an invalid realtime time scale.
    pub fn build(
        self,
        engines: Vec<crate::engine::Engine>,
        router: crate::cluster::RouterPolicy,
    ) -> Box<dyn Driver> {
        match self {
            DriverSpec::Sim => Box::new(SimDriver::new(Cluster::new(engines, router))),
            DriverSpec::Realtime { time_scale } => Box::new(crate::realtime::RealtimeDriver::new(
                engines, router, time_scale,
            )),
        }
    }
}

/// What a driver reports after its run is torn down.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriverStats {
    /// Number of replicas that served the run.
    pub replicas: usize,
    /// GPU busy virtual nanos summed across replicas.
    pub busy: Nanos,
    /// Preemptions summed across replicas.
    pub preemptions: u64,
}

impl DriverStats {
    /// GPU busy seconds summed across replicas (for the cost model).
    pub fn busy_secs(&self) -> f64 {
        nanos_to_secs(self.busy)
    }
}

/// The serving substrate behind the runner's event loop: routing,
/// submission, and incremental completion collection.
pub trait Driver {
    /// Which implementation this is.
    fn kind(&self) -> DriverKind;

    /// Number of replicas.
    fn replicas(&self) -> usize;

    /// Picks the replica the next query's calls should be submitted to.
    /// One route call per query — all of a query's calls stay on one
    /// replica so gang scheduling keeps working.
    fn route(&mut self) -> ReplicaId;

    /// Free KV tokens on one replica — what METIS's per-backend best-fit
    /// inspects at decision time. Under the realtime driver this is a
    /// lock-free snapshot published by the replica's worker.
    fn free_kv_tokens(&self, id: ReplicaId) -> u64;

    /// One replica's preemptions-per-submission ratio — the KV-contention
    /// feedback signal SLO-aware controllers read.
    fn preemption_pressure(&self, id: ReplicaId) -> f64;

    /// Submits a request to the given replica.
    fn submit(&mut self, id: ReplicaId, req: LlmRequest);

    /// Makes progress toward virtual time `t` and returns one batch of
    /// completions (possibly empty while replicas advance without
    /// finishing anything). `None` means the driver has caught up: every
    /// completion that can exist before `t` has been returned, and the
    /// caller may now fire its `t`-stamped event. Under the realtime
    /// driver, `None` also means the wall has actually reached `t` — this
    /// is where event pacing happens.
    fn pump_before(&mut self, t: Nanos) -> Option<Vec<Completion>>;

    /// Makes progress with no more external events outstanding. `None`
    /// means fully drained: every submitted request has completed and been
    /// returned. The caller must keep pumping (chaining any follow-up
    /// submissions) until `None`.
    fn pump_idle(&mut self) -> Option<Vec<Completion>>;

    /// Tears the driver down (joining worker threads for the realtime
    /// implementation) and reports run totals.
    fn finish(self: Box<Self>) -> DriverStats;
}

/// The deterministic discrete-event driver: a [`Cluster`] advanced with
/// most-lagging-replica stepping, exactly as the runner's loop always did.
pub struct SimDriver {
    cluster: Cluster,
}

impl SimDriver {
    /// Wraps a cluster.
    pub fn new(cluster: Cluster) -> Self {
        Self { cluster }
    }

    /// Shared view of the cluster (tests inspect per-replica state).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }
}

impl Driver for SimDriver {
    fn kind(&self) -> DriverKind {
        DriverKind::Sim
    }

    fn replicas(&self) -> usize {
        self.cluster.len()
    }

    fn route(&mut self) -> ReplicaId {
        self.cluster.route()
    }

    fn free_kv_tokens(&self, id: ReplicaId) -> u64 {
        self.cluster.free_kv_tokens(id)
    }

    fn preemption_pressure(&self, id: ReplicaId) -> f64 {
        self.cluster.replica(id).stats().preemption_pressure()
    }

    fn submit(&mut self, id: ReplicaId, req: LlmRequest) {
        self.cluster.submit(id, req);
    }

    fn pump_before(&mut self, t: Nanos) -> Option<Vec<Completion>> {
        // Always step the most-lagging replica so cross-replica event
        // order stays deterministic.
        let rid = self.cluster.steppable_before(t)?;
        let before = self.cluster.replica(rid).now();
        let done = self.cluster.step_replica(rid);
        assert!(
            self.cluster.replica(rid).now() > before || !done.is_empty(),
            "replica stuck while advancing to event"
        );
        Some(done)
    }

    fn pump_idle(&mut self) -> Option<Vec<Completion>> {
        if self.cluster.is_idle() {
            return None;
        }
        let rid = self.cluster.next_steppable()?;
        let before = self.cluster.replica(rid).now();
        let done = self.cluster.step_replica(rid);
        assert!(
            self.cluster.replica(rid).now() > before || !done.is_empty() || self.cluster.is_idle(),
            "replica stuck while draining"
        );
        Some(done)
    }

    fn finish(self: Box<Self>) -> DriverStats {
        DriverStats {
            replicas: self.cluster.len(),
            busy: self.cluster.busy_nanos(),
            preemptions: self.cluster.total_preemptions(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::RouterPolicy;
    use crate::engine::{Engine, EngineConfig};
    use crate::request::{GroupId, Priority, RequestId, Stage};
    use metis_llm::{GpuCluster, LatencyModel, ModelSpec};

    fn engines(n: usize) -> Vec<Engine> {
        (0..n)
            .map(|_| {
                let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
                Engine::new(lat, EngineConfig::default())
            })
            .collect()
    }

    fn req(id: u64, arrival: Nanos) -> LlmRequest {
        LlmRequest {
            id: RequestId(id),
            group: GroupId(id),
            stage: Stage::Single,
            prompt_tokens: 1_000,
            output_tokens: 10,
            cached_prompt_tokens: 0,
            arrival,
            priority: Priority::Standard,
        }
    }

    #[test]
    fn sim_driver_drains_to_none() {
        let mut d: Box<dyn Driver> = DriverSpec::Sim.build(engines(2), RouterPolicy::RoundRobin);
        assert_eq!(d.kind(), DriverKind::Sim);
        assert_eq!(d.replicas(), 2);
        for i in 0..4u64 {
            let rid = d.route();
            d.submit(rid, req(i, 0));
        }
        let mut done = Vec::new();
        while let Some(batch) = d.pump_idle() {
            done.extend(batch);
        }
        assert_eq!(done.len(), 4);
        let stats = d.finish();
        assert_eq!(stats.replicas, 2);
        assert!(stats.busy > 0);
        assert_eq!(stats.preemptions, 0);
    }

    #[test]
    fn pump_before_stops_at_the_event_horizon() {
        let mut d = SimDriver::new(Cluster::new(engines(1), RouterPolicy::RoundRobin));
        // Work arrives beyond t: nothing to do before the event fires.
        d.submit(ReplicaId(0), req(1, 5_000_000_000));
        assert!(d.pump_before(1_000_000_000).is_none());
        // Work before t is executed to completion, then None.
        let mut done = Vec::new();
        while let Some(batch) = d.pump_before(60_000_000_000) {
            done.extend(batch);
        }
        assert_eq!(done.len(), 1);
        assert!(done[0].arrival == 5_000_000_000);
    }

    #[test]
    fn driver_spec_maps_to_kind_and_scale() {
        assert_eq!(DriverSpec::default(), DriverSpec::Sim);
        assert_eq!(DriverSpec::Sim.kind(), DriverKind::Sim);
        assert_eq!(DriverSpec::Sim.time_scale(), 1.0);
        let rt = DriverSpec::Realtime { time_scale: 250.0 };
        assert_eq!(rt.kind(), DriverKind::Realtime);
        assert_eq!(rt.time_scale(), 250.0);
        assert_eq!(DriverKind::Sim.name(), "sim");
        assert_eq!(DriverKind::Realtime.name(), "realtime");
    }
}

//! The `Driver` abstraction: who executes submitted work, and on whose time.
//!
//! The runner in `metis-core` schedules Profile → Decide → Retrieve →
//! Submit events on a virtual timeline and needs four things from the
//! serving substrate: route new work to a replica, submit requests, collect
//! completions, and know when everything has drained. [`Driver`] is exactly
//! that surface. Two implementations exist:
//!
//! * [`SimDriver`] — wraps a [`Cluster`] and advances it with the same
//!   most-lagging-replica discrete-event stepping the runner used to inline.
//!   Deterministic and bit-for-bit reproducible (a golden-report test in
//!   `metis-core` pins this).
//! * [`RealtimeDriver`](crate::realtime::RealtimeDriver) — one worker
//!   thread per replica, paced against a scaled wall clock. Same engines,
//!   same latency models, same virtual timestamps; only the passage of time
//!   is real.
//!
//! The pump interface is deliberately incremental: `pump_before`/`pump_idle`
//! return one batch of completions at a time so the caller can chain new
//! submissions (e.g. a reduce call) off each batch before the driver runs
//! any further — the ordering contract the simulator's determinism and the
//! realtime driver's map→reduce correctness both rely on.

use metis_llm::{nanos_to_secs, Nanos};

use crate::cluster::Cluster;
use crate::engine::Completion;
use crate::request::{LlmRequest, ReplicaId};

/// Which driver implementation served a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverKind {
    /// Deterministic discrete-event simulation ([`SimDriver`]).
    Sim,
    /// Live multithreaded serving on scaled wall-clock time
    /// ([`RealtimeDriver`](crate::realtime::RealtimeDriver)).
    Realtime,
}

impl DriverKind {
    /// Short stable name, for CLI flags and report knobs.
    pub fn name(self) -> &'static str {
        match self {
            DriverKind::Sim => "sim",
            DriverKind::Realtime => "realtime",
        }
    }
}

/// How a run wants its work executed. This is the configuration-level
/// counterpart of [`Driver`]: `RunConfig` carries a `DriverSpec`, and the
/// runner builds the matching driver over the run's engines.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum DriverSpec {
    /// The deterministic simulator (the default).
    #[default]
    Sim,
    /// Live serving: one worker thread per replica, with virtual time
    /// passing `time_scale`× faster than wall time.
    Realtime {
        /// Virtual-per-wall speedup; must be finite and positive.
        time_scale: f64,
    },
}

impl DriverSpec {
    /// The kind of driver this spec builds.
    pub fn kind(self) -> DriverKind {
        match self {
            DriverSpec::Sim => DriverKind::Sim,
            DriverSpec::Realtime { .. } => DriverKind::Realtime,
        }
    }

    /// The time-scale knob (1.0 for the simulator, whose virtual time is
    /// not tied to wall time at all).
    pub fn time_scale(self) -> f64 {
        match self {
            DriverSpec::Sim => 1.0,
            DriverSpec::Realtime { time_scale } => time_scale,
        }
    }

    /// Builds the driver over pre-constructed engines (replica ids are
    /// assigned by position).
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty, or for an invalid realtime time scale.
    pub fn build(
        self,
        engines: Vec<crate::engine::Engine>,
        router: crate::cluster::RouterPolicy,
    ) -> Box<dyn Driver> {
        match self {
            DriverSpec::Sim => Box::new(SimDriver::new(Cluster::new(engines, router))),
            DriverSpec::Realtime { time_scale } => Box::new(crate::realtime::RealtimeDriver::new(
                engines, router, time_scale,
            )),
        }
    }
}

/// What a driver reports after its run is torn down.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriverStats {
    /// Number of replica slots that ever existed over the run (retired
    /// slots included — ids are stable).
    pub replicas: usize,
    /// High-water mark of concurrently live replicas.
    pub peak_replicas: usize,
    /// GPU busy virtual nanos summed across replicas.
    pub busy: Nanos,
    /// Preemptions summed across replicas.
    pub preemptions: u64,
    /// Tokens discarded and recomputed by preemptions, summed across
    /// replicas.
    pub preempted_tokens: u64,
    /// Preemption victims moved to another replica instead of recomputed.
    pub migrations: u64,
    /// Tokens of computed KV shipped between replicas by migrations.
    pub migrated_tokens: u64,
    /// Integrated capacity cost: seconds each replica slot was held (spawn
    /// to retirement, or to end-of-run while live), summed across slots.
    /// The autoscaler's cost axis — a fixed fleet of `n` replicas bills
    /// `n × run_seconds`.
    pub replica_seconds: f64,
}

impl DriverStats {
    /// GPU busy seconds summed across replicas (for the cost model).
    pub fn busy_secs(&self) -> f64 {
        nanos_to_secs(self.busy)
    }
}

/// The serving substrate behind the runner's event loop: routing,
/// submission, and incremental completion collection.
///
/// ```
/// use metis_engine::{Cluster, Driver, Engine, EngineConfig, RouterPolicy, SimDriver};
/// use metis_llm::{GpuCluster, LatencyModel, ModelSpec};
///
/// let engine = || {
///     let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
///     Engine::new(lat, EngineConfig::default())
/// };
/// let mut driver = SimDriver::new(Cluster::new(vec![engine()], RouterPolicy::RoundRobin));
/// assert_eq!(driver.replicas(), 1);
///
/// // Elasticity: a replica added at t accepts routed work from t + warmup…
/// let id = driver.add_replica(engine(), 0, 1_000);
/// assert!(!driver.is_routable(id, 500));
/// assert!(driver.is_routable(id, 1_000));
/// assert_eq!(driver.active_replicas(1_000), 2);
///
/// // …and draining it stops routing immediately.
/// assert!(driver.drain_replica(id, 2_000));
/// assert!(!driver.is_routable(id, 2_000));
/// ```
pub trait Driver {
    /// Which implementation this is.
    fn kind(&self) -> DriverKind;

    /// Number of replica slots (retired slots included — ids are stable).
    fn replicas(&self) -> usize;

    /// Picks the replica the next query's calls should be submitted to.
    /// One route call per query — all of a query's calls stay on one
    /// replica so gang scheduling keeps working. `now` is the virtual
    /// decision time: replicas still warming up at `now`, draining, or
    /// retired are not routed to.
    fn route(&mut self, now: Nanos) -> ReplicaId;

    /// Whether `id` accepts routed work at virtual time `now`.
    fn is_routable(&self, id: ReplicaId, now: Nanos) -> bool;

    /// Number of replicas accepting routed work at `now`.
    fn active_replicas(&self, now: Nanos) -> usize {
        (0..self.replicas())
            .filter(|&i| self.is_routable(ReplicaId(i as u32), now))
            .count()
    }

    /// Requests waiting for admission across live replicas — the
    /// autoscaler's primary load signal. Under the realtime driver this is
    /// a lock-free snapshot and may lag by one worker iteration.
    fn queue_depth(&self) -> u64;

    /// Adds a replica slot at virtual time `now`; it accepts routed work
    /// from `now + warmup`. Returns the new replica's stable id.
    fn add_replica(
        &mut self,
        engine: crate::engine::Engine,
        now: Nanos,
        warmup: Nanos,
    ) -> ReplicaId;

    /// Begins draining `id` at `now`: routing stops immediately and the
    /// slot stops billing replica-seconds once idle; in-flight work (and
    /// follow-on calls of groups already placed there) still completes.
    /// Returns `false` without draining when `id` is the last routable
    /// replica.
    fn drain_replica(&mut self, id: ReplicaId, now: Nanos) -> bool;

    /// Free KV tokens on one replica — what METIS's per-backend best-fit
    /// inspects at decision time. Under the realtime driver this is a
    /// lock-free snapshot published by the replica's worker.
    fn free_kv_tokens(&self, id: ReplicaId) -> u64;

    /// One replica's preemptions-per-submission ratio — the KV-contention
    /// feedback signal SLO-aware controllers read.
    fn preemption_pressure(&self, id: ReplicaId) -> f64;

    /// Submits a request to the given replica.
    fn submit(&mut self, id: ReplicaId, req: LlmRequest);

    /// Makes progress toward virtual time `t` and returns one batch of
    /// completions (possibly empty while replicas advance without
    /// finishing anything). `None` means the driver has caught up: every
    /// completion that can exist before `t` has been returned, and the
    /// caller may now fire its `t`-stamped event. Under the realtime
    /// driver, `None` also means the wall has actually reached `t` — this
    /// is where event pacing happens.
    fn pump_before(&mut self, t: Nanos) -> Option<Vec<Completion>>;

    /// Makes progress with no more external events outstanding. `None`
    /// means fully drained: every submitted request has completed and been
    /// returned. The caller must keep pumping (chaining any follow-up
    /// submissions) until `None`.
    fn pump_idle(&mut self) -> Option<Vec<Completion>>;

    /// Tears the driver down (joining worker threads for the realtime
    /// implementation) and reports run totals.
    fn finish(self: Box<Self>) -> DriverStats;
}

/// The deterministic discrete-event driver: a [`Cluster`] advanced with
/// most-lagging-replica stepping, exactly as the runner's loop always did.
pub struct SimDriver {
    cluster: Cluster,
}

impl SimDriver {
    /// Wraps a cluster.
    pub fn new(cluster: Cluster) -> Self {
        Self { cluster }
    }

    /// Shared view of the cluster (tests inspect per-replica state).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }
}

impl Driver for SimDriver {
    fn kind(&self) -> DriverKind {
        DriverKind::Sim
    }

    fn replicas(&self) -> usize {
        self.cluster.len()
    }

    fn route(&mut self, now: Nanos) -> ReplicaId {
        self.cluster.reap(now);
        self.cluster.route(now)
    }

    fn is_routable(&self, id: ReplicaId, now: Nanos) -> bool {
        self.cluster.is_routable(id, now)
    }

    fn queue_depth(&self) -> u64 {
        self.cluster.queue_depth()
    }

    fn add_replica(
        &mut self,
        engine: crate::engine::Engine,
        now: Nanos,
        warmup: Nanos,
    ) -> ReplicaId {
        self.cluster.add_replica(engine, now, warmup)
    }

    fn drain_replica(&mut self, id: ReplicaId, now: Nanos) -> bool {
        self.cluster.drain_replica(id, now)
    }

    fn free_kv_tokens(&self, id: ReplicaId) -> u64 {
        self.cluster.free_kv_tokens(id)
    }

    fn preemption_pressure(&self, id: ReplicaId) -> f64 {
        self.cluster.replica(id).stats().preemption_pressure()
    }

    fn submit(&mut self, id: ReplicaId, req: LlmRequest) {
        self.cluster.submit(id, req);
    }

    fn pump_before(&mut self, t: Nanos) -> Option<Vec<Completion>> {
        // Always step the most-lagging replica so cross-replica event
        // order stays deterministic.
        let rid = self.cluster.steppable_before(t)?;
        let before = self.cluster.replica(rid).now();
        let done = self.cluster.step_replica(rid);
        assert!(
            self.cluster.replica(rid).now() > before || !done.is_empty(),
            "replica stuck while advancing to event"
        );
        Some(done)
    }

    fn pump_idle(&mut self) -> Option<Vec<Completion>> {
        if self.cluster.is_idle() {
            return None;
        }
        let rid = self.cluster.next_steppable()?;
        let before = self.cluster.replica(rid).now();
        let done = self.cluster.step_replica(rid);
        assert!(
            self.cluster.replica(rid).now() > before || !done.is_empty() || self.cluster.is_idle(),
            "replica stuck while draining"
        );
        Some(done)
    }

    fn finish(self: Box<Self>) -> DriverStats {
        let end = self.cluster.latest_now();
        let stats = self.cluster.stats();
        DriverStats {
            replicas: self.cluster.len(),
            peak_replicas: self.cluster.peak_live(),
            busy: self.cluster.busy_nanos(),
            preemptions: self.cluster.total_preemptions(),
            preempted_tokens: stats.iter().map(|s| s.preempted_tokens).sum(),
            migrations: stats.iter().map(|s| s.migrations).sum(),
            migrated_tokens: stats.iter().map(|s| s.migrated_tokens).sum(),
            replica_seconds: self.cluster.replica_seconds(end),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::RouterPolicy;
    use crate::engine::{Engine, EngineConfig};
    use crate::request::{GroupId, Priority, RequestId, Stage};
    use metis_llm::{GpuCluster, LatencyModel, ModelSpec};

    fn engines(n: usize) -> Vec<Engine> {
        (0..n)
            .map(|_| {
                let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
                Engine::new(lat, EngineConfig::default())
            })
            .collect()
    }

    fn req(id: u64, arrival: Nanos) -> LlmRequest {
        LlmRequest {
            id: RequestId(id),
            group: GroupId(id),
            stage: Stage::Single,
            prompt_tokens: 1_000,
            output_tokens: 10,
            cached_prompt_tokens: 0,
            arrival,
            priority: Priority::Standard,
        }
    }

    #[test]
    fn sim_driver_drains_to_none() {
        let mut d: Box<dyn Driver> = DriverSpec::Sim.build(engines(2), RouterPolicy::RoundRobin);
        assert_eq!(d.kind(), DriverKind::Sim);
        assert_eq!(d.replicas(), 2);
        for i in 0..4u64 {
            let rid = d.route(0);
            d.submit(rid, req(i, 0));
        }
        let mut done = Vec::new();
        while let Some(batch) = d.pump_idle() {
            done.extend(batch);
        }
        assert_eq!(done.len(), 4);
        let stats = d.finish();
        assert_eq!(stats.replicas, 2);
        assert!(stats.busy > 0);
        assert_eq!(stats.preemptions, 0);
    }

    #[test]
    fn pump_before_stops_at_the_event_horizon() {
        let mut d = SimDriver::new(Cluster::new(engines(1), RouterPolicy::RoundRobin));
        // Work arrives beyond t: nothing to do before the event fires.
        d.submit(ReplicaId(0), req(1, 5_000_000_000));
        assert!(d.pump_before(1_000_000_000).is_none());
        // Work before t is executed to completion, then None.
        let mut done = Vec::new();
        while let Some(batch) = d.pump_before(60_000_000_000) {
            done.extend(batch);
        }
        assert_eq!(done.len(), 1);
        assert!(done[0].arrival == 5_000_000_000);
    }

    #[test]
    fn driver_spec_maps_to_kind_and_scale() {
        assert_eq!(DriverSpec::default(), DriverSpec::Sim);
        assert_eq!(DriverSpec::Sim.kind(), DriverKind::Sim);
        assert_eq!(DriverSpec::Sim.time_scale(), 1.0);
        let rt = DriverSpec::Realtime { time_scale: 250.0 };
        assert_eq!(rt.kind(), DriverKind::Realtime);
        assert_eq!(rt.time_scale(), 250.0);
        assert_eq!(DriverKind::Sim.name(), "sim");
        assert_eq!(DriverKind::Realtime.name(), "realtime");
    }
}

//! Engine-level statistics.

use metis_llm::{nanos_to_secs, Nanos};

use crate::request::ReplicaId;

/// Aggregate statistics of one engine run.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// The replica these stats describe (0 for a standalone engine).
    pub replica: ReplicaId,
    /// Requests submitted.
    pub submitted: u64,
    /// Requests completed.
    pub completed: u64,
    /// Iterations executed.
    pub iterations: u64,
    /// Total virtual time spent in iterations.
    pub busy: Nanos,
    /// Sum over completed requests of (admission − arrival).
    pub total_queue_wait: Nanos,
    /// Sum over completed requests of (finish − arrival).
    pub total_latency: Nanos,
    /// Total prefill tokens processed.
    pub prefill_tokens: u64,
    /// Total decode tokens generated.
    pub decode_tokens: u64,
    /// Peak KV-cache occupancy in tokens.
    pub peak_kv_tokens: u64,
    /// Running sequences evicted under KV pressure to admit a
    /// higher-priority request (preemption-with-recompute).
    pub preemptions: u64,
    /// Tokens of already-computed work (prefill progress beyond the cached
    /// prefix, plus emitted output) discarded by preemptions; the victims
    /// recompute them after re-admission.
    pub preempted_tokens: u64,
    /// Victims whose KV was moved to another replica instead of discarded
    /// (preemption-with-migration).
    pub migrations: u64,
    /// Tokens of computed KV state shipped off this replica by migrations;
    /// unlike [`Self::preempted_tokens`], nothing here is recomputed — the
    /// cost is the priced transfer, not lost work.
    pub migrated_tokens: u64,
}

impl EngineStats {
    /// Mean per-request latency in seconds (0 when nothing completed).
    pub fn mean_latency_secs(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            nanos_to_secs(self.total_latency) / self.completed as f64
        }
    }

    /// Mean queueing delay in seconds (0 when nothing completed).
    pub fn mean_queue_wait_secs(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            nanos_to_secs(self.total_queue_wait) / self.completed as f64
        }
    }

    /// Preemptions per submitted request (0 when nothing was submitted) —
    /// the KV-contention signal METIS's best-fit reads as back-pressure.
    pub fn preemption_pressure(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.preemptions as f64 / self.submitted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_handle_zero_completions() {
        let s = EngineStats::default();
        assert_eq!(s.mean_latency_secs(), 0.0);
        assert_eq!(s.mean_queue_wait_secs(), 0.0);
    }

    #[test]
    fn means_average_over_completions() {
        let s = EngineStats {
            completed: 2,
            total_latency: 4_000_000_000,
            total_queue_wait: 1_000_000_000,
            ..Default::default()
        };
        assert_eq!(s.mean_latency_secs(), 2.0);
        assert_eq!(s.mean_queue_wait_secs(), 0.5);
    }

    #[test]
    fn preemption_pressure_is_per_submission() {
        assert_eq!(EngineStats::default().preemption_pressure(), 0.0);
        let s = EngineStats {
            submitted: 8,
            preemptions: 2,
            ..Default::default()
        };
        assert_eq!(s.preemption_pressure(), 0.25);
    }
}

//! Live multithreaded serving: the realtime [`Driver`] implementation.
//!
//! One worker thread per replica owns that replica's [`Engine`] outright —
//! replicas share nothing, exactly as in the simulator — and paces it
//! against a shared scaled [`WallClock`]: after each engine iteration the
//! worker sleeps until the wall catches up with the engine's virtual clock,
//! so the latency model's iteration durations stand in for GPU work in real
//! (scaled) time. Crucially the engine still runs on its own
//! `VirtualClock`, advanced only by iteration durations and arrival jumps:
//! wall-clock jitter (scheduler wakeup latency, channel delivery delay)
//! shifts *when* an iteration executes, never *how long* the engine says it
//! took. That is what keeps realtime timestamps directly comparable to the
//! simulator's — the property the `fig_realtime_parity` bench asserts.
//!
//! Communication is plain std mpsc: the driver sends requests down a
//! per-replica submission queue, workers send completion batches back on
//! one shared channel. Routing and the controller's decision-time reads
//! (free KV, preemption pressure) use lock-free snapshots each worker
//! publishes after every iteration — the realtime analogue of the paper
//! reading backend memory through `pynvml` rather than pausing the engine.
//!
//! Shutdown is by hangup: [`RealtimeDriver::finish`] drops the submission
//! senders; each worker drains its remaining work, then exits when its
//! queue disconnects, and `finish` joins them all and sums their stats.

use std::cmp::Reverse;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use metis_llm::{Clock, Nanos, WallClock};

use crate::cluster::RouterPolicy;
use crate::driver::{Driver, DriverKind, DriverStats};
use crate::engine::{Completion, Engine};
use crate::request::{LlmRequest, ReplicaId};
use crate::stats::EngineStats;

/// Lock-free per-replica state the worker publishes after every iteration,
/// read by the driver for routing and controller decisions.
#[derive(Default)]
struct ReplicaShared {
    free_kv_tokens: AtomicU64,
    preemptions: AtomicU64,
    submitted: AtomicU64,
    queued: AtomicU64,
}

impl ReplicaShared {
    fn publish(&self, engine: &Engine) {
        self.free_kv_tokens
            .store(engine.free_kv_tokens(), Ordering::Relaxed);
        self.preemptions
            .store(engine.stats().preemptions, Ordering::Relaxed);
        self.submitted
            .store(engine.stats().submitted, Ordering::Relaxed);
        self.queued
            .store(engine.queued_len() as u64, Ordering::Relaxed);
    }
}

/// How long a fully idle worker blocks on its submission queue before
/// re-checking for shutdown, and the bound on a pending-arrival wait so
/// newly submitted work is still drained promptly.
const IDLE_WAIT_WALL: Duration = Duration::from_millis(10);

/// Wall slack under which `pump_before` spins on `try_recv` instead of
/// blocking in `recv_timeout`: OS timer wakeups are ~1 ms late, and at high
/// time scales that lateness would smear event firing times.
const EVENT_SPIN_WALL_NANOS: u64 = 2_000_000;

/// `pump_idle` panics after this long with work in flight but no
/// completions — a deadlocked or died worker should fail the run loudly
/// (and well inside any CI timeout), not hang it.
const STALL_WATCHDOG_WALL: Duration = Duration::from_secs(30);

/// The live serving driver: per-replica worker threads on scaled wall time.
///
/// Elasticity under realtime is routing-level: [`Driver::add_replica`]
/// spawns a new worker thread (routable only after its warm-up virtual
/// time), and [`Driver::drain_replica`] stops routing to a slot and stops
/// billing it replica-seconds — but its thread idles until
/// [`Driver::finish`] so late gang follow-ons can still be served, exactly
/// once, on the replica their group was pinned to. KV migration is not
/// supported here (victims would have to cross threads mid-run);
/// construction rejects engines configured with
/// [`PreemptMode::Migrate`](crate::engine::PreemptMode).
pub struct RealtimeDriver {
    clock: WallClock,
    router: RouterPolicy,
    rr_next: usize,
    submitters: Vec<Sender<LlmRequest>>,
    completions: Receiver<Vec<Completion>>,
    /// Kept so replicas added at runtime can report completions on the
    /// same channel. Worker death is caught by the pump watchdog rather
    /// than channel disconnection.
    done_tx: Sender<Vec<Completion>>,
    shared: Vec<Arc<ReplicaShared>>,
    /// Per-replica KV bytes per token, so `LeastKvLoad` ranks bytes (not
    /// tokens) even over a heterogeneous fleet — same as `Cluster::route`.
    kv_bytes_per_token: Vec<u64>,
    /// Virtual instant each slot starts accepting routed work (0 for the
    /// initial fleet; spawn + warm-up for runtime additions).
    ready_at: Vec<Nanos>,
    /// Virtual spawn instant of each slot, for replica-second billing.
    spawned_at: Vec<Nanos>,
    /// Virtual instant a slot was drained (stops routing and billing).
    drained_at: Vec<Option<Nanos>>,
    peak_live: usize,
    workers: Vec<JoinHandle<EngineStats>>,
    in_flight: u64,
}

impl RealtimeDriver {
    /// Spawns one worker thread per engine (replica ids assigned by
    /// position) on a fresh wall clock: virtual time starts at 0 *now* and
    /// passes `time_scale`× faster than wall time.
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty or `time_scale` is not finite-positive.
    pub fn new(engines: Vec<Engine>, router: RouterPolicy, time_scale: f64) -> Self {
        assert!(!engines.is_empty(), "a cluster needs at least one replica");
        let clock = WallClock::new(time_scale);
        let (done_tx, done_rx) = std::sync::mpsc::channel::<Vec<Completion>>();
        let n = engines.len();
        let mut this = Self {
            clock,
            router,
            rr_next: 0,
            submitters: Vec::with_capacity(n),
            completions: done_rx,
            done_tx,
            shared: Vec::with_capacity(n),
            kv_bytes_per_token: Vec::with_capacity(n),
            ready_at: Vec::with_capacity(n),
            spawned_at: Vec::with_capacity(n),
            drained_at: Vec::with_capacity(n),
            peak_live: n,
            workers: Vec::with_capacity(n),
            in_flight: 0,
        };
        for engine in engines {
            this.spawn_worker(engine, 0, 0);
        }
        this
    }

    /// Spawns a worker thread for `engine` as the next replica slot.
    fn spawn_worker(&mut self, mut engine: Engine, now: Nanos, warmup: Nanos) -> ReplicaId {
        assert!(
            engine.preempt_mode() == crate::engine::PreemptMode::Recompute,
            "KV migration is only supported by the sim driver: realtime \
             replicas own their engines on separate threads and cannot move \
             a victim's KV mid-run"
        );
        let i = self.submitters.len();
        engine.set_replica(ReplicaId(i as u32));
        let ready = now.saturating_add(warmup);
        // Starting the new replica's virtual clock at its ready time makes
        // the warm-up physical: even a force-submitted request cannot be
        // admitted before `ready`, and the worker's pacing sleep holds the
        // thread until the wall catches up.
        engine.advance_clock_to(ready);
        self.kv_bytes_per_token
            .push(engine.latency_model().model().kv_bytes_per_token());
        let state = Arc::new(ReplicaShared::default());
        state.publish(&engine);
        let (req_tx, req_rx) = std::sync::mpsc::channel::<LlmRequest>();
        let worker_state = Arc::clone(&state);
        let worker_tx = self.done_tx.clone();
        let clock = self.clock;
        let handle = std::thread::Builder::new()
            .name(format!("metis-replica-{i}"))
            .spawn(move || replica_worker(engine, req_rx, worker_tx, worker_state, clock))
            // metis-lint: allow(no-panic-in-worker) reason="driver thread at construction: failing to spawn a replica thread is unrecoverable setup"
            .expect("spawn replica worker");
        self.submitters.push(req_tx);
        self.shared.push(state);
        self.ready_at.push(ready);
        self.spawned_at.push(now);
        self.drained_at.push(None);
        self.workers.push(handle);
        let live = self.drained_at.iter().filter(|d| d.is_none()).count();
        self.peak_live = self.peak_live.max(live);
        ReplicaId(i as u32)
    }

    /// The shared wall clock (tests read the driver's timeline).
    pub fn clock(&self) -> WallClock {
        self.clock
    }

    fn account(&mut self, done: Vec<Completion>) -> Vec<Completion> {
        let n = done.len() as u64;
        assert!(
            self.in_flight >= n,
            "worker returned {n} completions with only {} in flight — a \
             request completed twice",
            self.in_flight
        );
        self.in_flight -= n;
        done
    }

    /// Wall duration until virtual instant `t` (zero if already reached).
    fn wall_until(&self, t: Nanos) -> Duration {
        let now = self.clock.now();
        if now >= t {
            return Duration::ZERO;
        }
        Duration::from_nanos(((t - now) as f64 / self.clock.time_scale()).ceil() as u64)
    }
}

impl Driver for RealtimeDriver {
    fn kind(&self) -> DriverKind {
        DriverKind::Realtime
    }

    fn replicas(&self) -> usize {
        self.submitters.len()
    }

    fn route(&mut self, _now: Nanos) -> ReplicaId {
        // The realtime driver routes on its own clock reading (the wall is
        // the ground truth here), not the caller's event timestamp.
        let now = self.clock.now();
        let mut candidates: Vec<usize> = (0..self.submitters.len())
            .filter(|&i| self.drained_at[i].is_none() && now >= self.ready_at[i])
            .collect();
        if candidates.is_empty() {
            candidates = (0..self.submitters.len())
                .filter(|&i| self.drained_at[i].is_none())
                .collect();
        }
        assert!(!candidates.is_empty(), "no live replica to route to");
        match self.router {
            RouterPolicy::RoundRobin => {
                let id = candidates[self.rr_next % candidates.len()];
                self.rr_next = (self.rr_next + 1) % candidates.len().max(1);
                ReplicaId(id as u32)
            }
            RouterPolicy::LeastKvLoad | RouterPolicy::PrefixAware => {
                // Most free KV bytes, stable tie-break on lowest id — the
                // same ranking as `Cluster::route`, over the workers'
                // published snapshots instead of direct engine reads.
                // PrefixAware falls back to this ranking at driver level;
                // cache-overlap re-routing happens in the runner.
                let best = candidates
                    .into_iter()
                    .max_by_key(|&i| {
                        let s = &self.shared[i];
                        let bytes =
                            s.free_kv_tokens.load(Ordering::Relaxed) * self.kv_bytes_per_token[i];
                        (bytes, Reverse(i))
                    })
                    // metis-lint: allow(no-panic-in-worker) reason="driver thread: routing is only called with at least one replica configured"
                    .expect("non-empty replica list");
                ReplicaId(best as u32)
            }
        }
    }

    fn is_routable(&self, id: ReplicaId, now: Nanos) -> bool {
        let i = id.0 as usize;
        self.drained_at[i].is_none() && now.max(self.clock.now()) >= self.ready_at[i]
    }

    fn queue_depth(&self) -> u64 {
        self.shared
            .iter()
            .enumerate()
            .filter(|(i, _)| self.drained_at[*i].is_none())
            .map(|(_, s)| s.queued.load(Ordering::Relaxed))
            .sum()
    }

    fn add_replica(&mut self, engine: Engine, now: Nanos, warmup: Nanos) -> ReplicaId {
        // Spawn at the wall's current virtual instant if the caller's
        // event timestamp lags it — a replica cannot exist in the past.
        let now = now.max(self.clock.now());
        self.spawn_worker(engine, now, warmup)
    }

    fn drain_replica(&mut self, id: ReplicaId, now: Nanos) -> bool {
        let i = id.0 as usize;
        if self.drained_at[i].is_some() {
            return false;
        }
        let now = now.max(self.clock.now());
        let routable = (0..self.submitters.len())
            .filter(|&j| self.drained_at[j].is_none() && now >= self.ready_at[j])
            .count();
        if now >= self.ready_at[i] && routable <= 1 {
            return false;
        }
        // Routing-level drain: the slot stops taking routes and stops
        // billing replica-seconds now, but its thread keeps serving
        // whatever is already (or late-gang) submitted until `finish`.
        self.drained_at[i] = Some(now);
        true
    }

    fn free_kv_tokens(&self, id: ReplicaId) -> u64 {
        self.shared[id.0 as usize]
            .free_kv_tokens
            .load(Ordering::Relaxed)
    }

    fn preemption_pressure(&self, id: ReplicaId) -> f64 {
        let s = &self.shared[id.0 as usize];
        let submitted = s.submitted.load(Ordering::Relaxed);
        if submitted == 0 {
            0.0
        } else {
            s.preemptions.load(Ordering::Relaxed) as f64 / submitted as f64
        }
    }

    fn submit(&mut self, id: ReplicaId, req: LlmRequest) {
        self.in_flight += 1;
        self.submitters[id.0 as usize]
            // metis-lint: allow(channel-unwrap) reason="driver thread: a closed channel means a worker died, which is already fatal"
            .send(req)
            .expect("replica worker exited with the run still active");
    }

    fn pump_before(&mut self, t: Nanos) -> Option<Vec<Completion>> {
        loop {
            // Deliver any already-finished completions first so the caller
            // can chain reduces off them before the event at `t` fires.
            match self.completions.try_recv() {
                Ok(done) => return Some(self.account(done)),
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => {
                    // metis-lint: allow(no-panic-in-worker) reason="driver thread: surfaces a dead worker instead of hanging the pump"
                    panic!("realtime replica worker died before the run drained")
                }
            }
            let wait = self.wall_until(t);
            if wait.is_zero() {
                // The wall has reached `t`: the event is due. This return
                // is where arrival pacing physically happens.
                return None;
            }
            if wait > Duration::from_nanos(EVENT_SPIN_WALL_NANOS) {
                match self
                    .completions
                    .recv_timeout(wait - Duration::from_nanos(EVENT_SPIN_WALL_NANOS / 2))
                {
                    Ok(done) => return Some(self.account(done)),
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => {
                        // metis-lint: allow(no-panic-in-worker) reason="driver thread: surfaces a dead worker instead of hanging the pump"
                        panic!("realtime replica worker died before the run drained")
                    }
                }
            }
            // Final approach: spin so the event fires tightly at `t`.
            std::hint::spin_loop();
        }
    }

    fn pump_idle(&mut self) -> Option<Vec<Completion>> {
        if self.in_flight == 0 {
            return None;
        }
        let mut waited = Duration::ZERO;
        loop {
            match self.completions.recv_timeout(Duration::from_millis(100)) {
                Ok(done) => return Some(self.account(done)),
                Err(RecvTimeoutError::Timeout) => {
                    waited += Duration::from_millis(100);
                    assert!(
                        waited < STALL_WATCHDOG_WALL,
                        "realtime driver stalled: {} requests in flight but no \
                         completions for {:?}",
                        self.in_flight,
                        STALL_WATCHDOG_WALL
                    );
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // metis-lint: allow(no-panic-in-worker) reason="driver thread: surfaces a dead worker instead of hanging the idle drain"
                    panic!(
                        "realtime replica worker died with {} requests in flight",
                        self.in_flight
                    )
                }
            }
        }
    }

    fn finish(self: Box<Self>) -> DriverStats {
        let this = *self;
        assert_eq!(
            this.in_flight, 0,
            "realtime driver torn down with work in flight — pump_idle \
             must run to None first"
        );
        // Hang up the submission queues; each worker drains and exits.
        drop(this.submitters);
        drop(this.done_tx);
        let end = this.clock.now();
        let mut stats = DriverStats {
            replicas: this.workers.len(),
            peak_replicas: this.peak_live,
            ..DriverStats::default()
        };
        for (i, handle) in this.workers.into_iter().enumerate() {
            // metis-lint: allow(no-panic-in-worker) reason="driver thread at shutdown: re-raises a worker panic so it cannot be lost"
            let s = handle.join().expect("replica worker panicked");
            stats.busy += s.busy;
            stats.preemptions += s.preemptions;
            stats.preempted_tokens += s.preempted_tokens;
            stats.migrations += s.migrations;
            stats.migrated_tokens += s.migrated_tokens;
            let spawned = this.spawned_at[i];
            let until = this.drained_at[i].unwrap_or(end).max(spawned);
            stats.replica_seconds += metis_llm::nanos_to_secs(until - spawned);
        }
        stats
    }
}

/// The per-replica worker loop: drain submissions, run engine iterations,
/// pace the wall against the engine's virtual clock, report completions.
fn replica_worker(
    mut engine: Engine,
    requests: Receiver<LlmRequest>,
    completions: Sender<Vec<Completion>>,
    shared: Arc<ReplicaShared>,
    mut clock: WallClock,
) -> EngineStats {
    // Bound on a pending-arrival wait, in virtual nanos, so freshly
    // submitted work is still drained within ~one idle quantum of wall time.
    let pending_chunk: Nanos =
        (IDLE_WAIT_WALL.as_nanos() as f64 * clock.time_scale()).ceil() as Nanos;
    let mut disconnected = false;
    let mut stuck = 0u32;
    loop {
        // Drain every submission that has arrived, without blocking.
        while !disconnected {
            match requests.try_recv() {
                Ok(req) => engine.submit(req),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => disconnected = true,
            }
        }
        shared.publish(&engine);

        // Runnable work, or a pending arrival the wall has reached: run one
        // iteration. `step` jumps the engine clock to a due arrival exactly
        // (never to the jittery wall reading), keeping virtual timestamps
        // aligned with the simulator's.
        let runnable = engine.has_active_work()
            || engine
                .next_pending_arrival()
                .is_some_and(|t| clock.now() >= t);
        if runnable {
            let before = engine.now();
            let done = engine.step();
            shared.publish(&engine);
            if engine.now() > before || !done.is_empty() {
                stuck = 0;
            } else {
                stuck += 1;
                assert!(
                    stuck < 3,
                    "replica {} stuck: queued={} running={} free_kv={} — an \
                     unadmittable request?",
                    engine.replica().0,
                    engine.queued_len(),
                    engine.running_len(),
                    engine.free_kv_tokens()
                );
            }
            if !done.is_empty() && completions.send(done).is_err() {
                // Driver gone (teardown without drain): stop serving.
                break;
            }
            // The pacing sleep: this iteration "took" (virtual) what the
            // latency model said; make that much scaled wall time pass. If
            // the wall is already past (we are running behind), this
            // returns immediately and the worker catches up.
            clock.sleep_until(engine.now());
            continue;
        }

        // Only future arrivals: wait for the earliest one, bounded so new
        // submissions keep being drained.
        if let Some(t) = engine.next_pending_arrival() {
            clock.sleep_until(t.min(clock.now().saturating_add(pending_chunk)));
            continue;
        }

        // Fully idle. Exit once the driver has hung up, otherwise block
        // until work arrives.
        if disconnected {
            break;
        }
        match requests.recv_timeout(IDLE_WAIT_WALL) {
            Ok(req) => engine.submit(req),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => disconnected = true,
        }
    }
    engine.stats().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DriverSpec;
    use crate::engine::EngineConfig;
    use crate::request::{GroupId, Priority, RequestId, Stage};
    use metis_llm::{GpuCluster, LatencyModel, ModelSpec};

    fn engines(n: usize) -> Vec<Engine> {
        (0..n)
            .map(|_| {
                let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
                Engine::new(lat, EngineConfig::default())
            })
            .collect()
    }

    fn req(id: u64, arrival: Nanos) -> LlmRequest {
        LlmRequest {
            id: RequestId(id),
            group: GroupId(id),
            stage: Stage::Single,
            prompt_tokens: 800,
            output_tokens: 8,
            cached_prompt_tokens: 0,
            arrival,
            priority: Priority::Standard,
        }
    }

    /// High scale so tests run in milliseconds of wall time.
    const SCALE: f64 = 100_000.0;

    #[test]
    fn realtime_driver_completes_submitted_work() {
        let mut d: Box<dyn Driver> =
            DriverSpec::Realtime { time_scale: SCALE }.build(engines(2), RouterPolicy::RoundRobin);
        assert_eq!(d.kind(), DriverKind::Realtime);
        assert_eq!(d.replicas(), 2);
        for i in 0..6u64 {
            let rid = d.route(0);
            d.submit(rid, req(i, 0));
        }
        let mut done = Vec::new();
        while let Some(batch) = d.pump_idle() {
            done.extend(batch);
        }
        assert_eq!(done.len(), 6);
        // Timestamps are virtual and well-formed despite wall pacing.
        for c in &done {
            assert!(c.arrival <= c.admitted && c.admitted <= c.finish);
        }
        let stats = d.finish();
        assert_eq!(stats.replicas, 2);
        assert!(stats.busy > 0);
    }

    #[test]
    fn pump_before_paces_the_wall_to_the_event() {
        let mut d = RealtimeDriver::new(engines(1), RouterPolicy::RoundRobin, SCALE);
        // No work in flight: pump_before returns None only once the wall
        // reaches t (this is arrival pacing).
        let t = d.clock().now() + 2_000_000_000; // 2 virtual s = 20 wall µs.
        assert!(d.pump_before(t).is_none());
        assert!(d.clock().now() >= t, "pump_before waited out the gap");
        let stats = Box::new(d).finish();
        assert_eq!(stats.busy, 0);
    }

    #[test]
    #[allow(clippy::disallowed_methods)] // wall-clock deadline guards a cross-thread test
    fn least_kv_routing_follows_published_snapshots() {
        let mut d = RealtimeDriver::new(engines(2), RouterPolicy::LeastKvLoad, SCALE);
        // Idle fleet: tie broken by lowest id.
        assert_eq!(d.route(0), ReplicaId(0));
        // Occupy replica 0 with a long decode (thousands of iterations =
        // milliseconds of wall time at this scale); once its worker
        // publishes the admission, routing prefers replica 1 for as long
        // as the request runs.
        d.submit(
            ReplicaId(0),
            LlmRequest {
                output_tokens: 20_000,
                ..req(1, 0)
            },
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while d.free_kv_tokens(ReplicaId(0)) == d.free_kv_tokens(ReplicaId(1)) {
            assert!(
                std::time::Instant::now() < deadline,
                "replica 0 never admitted the request"
            );
            std::thread::yield_now();
        }
        assert_eq!(d.route(0), ReplicaId(1));
        let mut boxed: Box<dyn Driver> = Box::new(d);
        while boxed.pump_idle().is_some() {}
        boxed.finish();
    }
}

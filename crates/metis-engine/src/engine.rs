//! The continuous-batching engine.

use std::cmp::Reverse;
use std::collections::{BTreeMap, HashSet, VecDeque};

use metis_llm::{Clock, LatencyModel, Nanos, VirtualClock};

use crate::kvcache::KvAllocator;
use crate::request::{GroupId, LlmRequest, Priority, ReplicaId, RequestId, RequestState, Stage};
use crate::stats::EngineStats;

/// Admission-ordering policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedPolicy {
    /// Plain vLLM first-come-first-served admission.
    Fcfs,
    /// Parrot\*-style gang scheduling: requests whose group already has
    /// admitted sequences are prioritized, so one RAG query's map calls run
    /// together instead of interleaving with every other query.
    GangByGroup,
    /// Preemptive SLO-class-aware scheduling: admission ranks by
    /// ([`Priority`], reduce-before-map, gang affinity, arrival), and when
    /// the highest-ranked request's KV demand does not fit, running
    /// sequences of a *strictly lower* class are preempted
    /// (recompute-style: their KV is freed, their progress reset to the
    /// cached prefix, and they re-queue) instead of head-of-line blocking.
    Preemptive,
}

/// What preemption does with a victim's computed KV state.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PreemptMode {
    /// vLLM-style recompute: the victim's KV is discarded, its progress
    /// resets to the cached prefix, and it re-queues on the same replica.
    #[default]
    Recompute,
    /// KV migration: the victim is handed to the cluster in an eviction
    /// outbox (see [`Engine::take_evicted`]) with its computed tokens
    /// folded into a cached prefix; the cluster moves the KV bytes to a
    /// replica with headroom at a priced transfer cost, falling back to
    /// local recompute when no replica has room. Requires a
    /// [`Cluster`](crate::cluster::Cluster) (or another outbox-draining
    /// owner); a standalone engine would strand the victims.
    Migrate,
}

impl PreemptMode {
    /// Stable lowercase name (CLI values and report knobs).
    pub fn name(&self) -> &'static str {
        match self {
            PreemptMode::Recompute => "recompute",
            PreemptMode::Migrate => "migrate",
        }
    }
}

/// Engine construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Paged KV block size in tokens (vLLM default: 16).
    pub kv_block_tokens: u64,
    /// Maximum concurrently running sequences.
    pub max_batch_seqs: usize,
    /// Chunked-prefill token budget per iteration (Sarathi/vLLM style).
    /// `0` means *unlimited* (no chunking): every admitted sequence
    /// prefills its whole remaining prompt in one iteration.
    pub prefill_chunk_tokens: u64,
    /// Admission policy.
    pub policy: SchedPolicy,
    /// Cap on the schedulable KV pool in bytes (`None` = whole free GPU
    /// memory). Deployments bound in-flight batch memory well below the
    /// physical pool to control tail latency; the paper's Fig. 8 examples
    /// operate at a 6–12 GB working-memory scale on the same hardware.
    pub kv_pool_bytes_cap: Option<u64>,
    /// What preemption does with a victim's computed KV state.
    pub preempt_mode: PreemptMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            kv_block_tokens: 16,
            max_batch_seqs: 256,
            prefill_chunk_tokens: 2048,
            policy: SchedPolicy::Fcfs,
            kv_pool_bytes_cap: Some(12 * (1 << 30)),
            preempt_mode: PreemptMode::Recompute,
        }
    }
}

/// A preemption victim evicted under [`PreemptMode::Migrate`], waiting in
/// the engine's outbox for the cluster to place it. Both re-admission forms
/// are precomputed so the cluster can take either path without knowing the
/// victim's internal progress state:
#[derive(Clone, Debug)]
pub struct EvictedSeq {
    /// The migrate form: every computed token (prefill progress plus
    /// emitted output) folded into the cached prefix, so a destination
    /// holding the moved KV resumes without recomputation. The original
    /// `arrival` stamp is preserved — transfer time is real wait the
    /// request experiences, and keeping the stamp keeps the per-stage
    /// breakdown telescoping exactly.
    pub migrate_req: LlmRequest,
    /// The recompute-fallback form: progress reset to the original cached
    /// prefix, exactly as [`PreemptMode::Recompute`] would have requeued it.
    pub recompute_req: LlmRequest,
    /// Tokens of computed KV state a migration must move.
    pub kv_tokens: u64,
    /// Computed tokens the recompute fallback would discard.
    pub lost_tokens: u64,
    /// When the victim was evicted (a migration transfer departs here).
    pub evicted_at: Nanos,
}

/// A finished request, reported by [`Engine::step`].
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// The request that finished.
    pub id: RequestId,
    /// Its group.
    pub group: GroupId,
    /// Its stage.
    pub stage: Stage,
    /// The replica that served it (0 for a standalone engine).
    pub replica: ReplicaId,
    /// When it entered the engine queue.
    pub arrival: Nanos,
    /// When it was admitted (KV allocated). For a request that was
    /// preempted and re-admitted, this is the *last* admission.
    pub admitted: Nanos,
    /// When its prefill completed and decoding began. For a preempted
    /// request this is the completion of the *last* (recomputed) prefill,
    /// so `admitted <= prefill_done <= finish` always holds and
    /// `(admitted − arrival) + (prefill_done − admitted) +
    /// (finish − prefill_done)` telescopes exactly to `finish − arrival` —
    /// the identity the per-stage breakdown reports rely on. A fully
    /// prefix-cached request decodes immediately: `prefill_done == admitted`.
    pub prefill_done: Nanos,
    /// When its last token was generated.
    pub finish: Nanos,
}

struct Running {
    req: LlmRequest,
    state: RequestState,
    admitted: Nanos,
    /// Clock at the transition into `Decoding` (== `admitted` until then).
    prefill_done: Nanos,
}

/// A queue entry: the request plus the time it (re-)entered the admission
/// queue, so queue-wait accounting stays exact across preempt/requeue
/// cycles (a preempted request's second wait starts at its eviction, not at
/// its original arrival).
struct Queued {
    req: LlmRequest,
    enqueued: Nanos,
}

/// The discrete-event continuous-batching engine.
///
/// # Examples
///
/// ```
/// use metis_engine::{Engine, EngineConfig, GroupId, LlmRequest, RequestId, Stage};
/// use metis_llm::{GpuCluster, LatencyModel, ModelSpec};
///
/// let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
/// let mut engine = Engine::new(lat, EngineConfig::default());
/// engine.submit(LlmRequest {
///     id: RequestId(1),
///     group: GroupId(1),
///     stage: Stage::Single,
///     prompt_tokens: 1000,
///     output_tokens: 10,
///     cached_prompt_tokens: 0,
///     arrival: 0,
///     priority: Default::default(),
/// });
/// let done = engine.run_until_idle();
/// assert_eq!(done.len(), 1);
/// assert!(done[0].finish > 0);
/// ```
pub struct Engine {
    latency: LatencyModel,
    config: EngineConfig,
    replica: ReplicaId,
    /// The engine's own virtual timeline. Always a [`VirtualClock`], even
    /// under the realtime driver: iteration durations come from the latency
    /// model either way, and the realtime worker *paces* this clock against
    /// the wall via [`Engine::advance_clock_to`] rather than replacing it —
    /// which is what keeps timestamps comparable across drivers.
    clock: VirtualClock,
    /// Requests with future arrival times, keyed by (arrival, submit order).
    pending: BTreeMap<(Nanos, u64), LlmRequest>,
    /// Arrived requests awaiting admission, in arrival order (preempted
    /// requests re-enter at the back; admission order re-ranks them).
    queue: VecDeque<Queued>,
    running: Vec<Running>,
    alloc: KvAllocator,
    stats: EngineStats,
    submit_seq: u64,
    /// Victims evicted under [`PreemptMode::Migrate`], awaiting placement
    /// by the cluster (always empty under [`PreemptMode::Recompute`]).
    evicted: Vec<EvictedSeq>,
}

impl Engine {
    /// Builds an engine for the latency model's (model, cluster) pair.
    pub fn new(latency: LatencyModel, config: EngineConfig) -> Self {
        let pool_bytes = latency.cluster().kv_pool_bytes(latency.model());
        let pool_bytes = match config.kv_pool_bytes_cap {
            Some(cap) => pool_bytes.min(cap),
            None => pool_bytes,
        };
        let capacity = pool_bytes / latency.model().kv_bytes_per_token();
        Self {
            latency,
            config,
            replica: ReplicaId(0),
            clock: VirtualClock::default(),
            pending: BTreeMap::new(),
            queue: VecDeque::new(),
            running: Vec::new(),
            alloc: KvAllocator::new(capacity, config.kv_block_tokens),
            stats: EngineStats::default(),
            submit_seq: 0,
            evicted: Vec::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.clock.now()
    }

    /// Advances the engine's virtual clock to `t` (never backwards) and
    /// absorbs any arrivals that became due. Called by drivers that pace
    /// the engine from an external clock — the realtime driver's replica
    /// workers align the engine with scaled wall time whenever it goes
    /// idle. The simulator never calls this: under
    /// [`SimDriver`](crate::driver::SimDriver) virtual time advances only
    /// by the iteration durations [`Engine::step`] computes, which is what
    /// keeps simulated runs bit-for-bit reproducible.
    pub fn advance_clock_to(&mut self, t: Nanos) {
        self.clock.advance_to(t);
        self.absorb_arrivals();
    }

    /// This engine's replica id within its cluster (0 standalone).
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// Assigns the replica id stamped on completions and stats; called by
    /// [`Cluster::new`](crate::cluster::Cluster::new).
    pub fn set_replica(&mut self, id: ReplicaId) {
        self.replica = id;
        self.stats.replica = id;
    }

    /// Free KV-cache tokens right now — what METIS's best-fit inspects
    /// (the paper reads this through `pynvml`; we read the allocator).
    pub fn free_kv_tokens(&self) -> u64 {
        self.alloc.free_tokens()
    }

    /// Total KV-cache capacity in tokens.
    pub fn kv_capacity_tokens(&self) -> u64 {
        self.alloc.capacity_tokens()
    }

    /// The latency model in use.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Whether the engine has no work at all (idle and drained). An
    /// unplaced eviction-outbox entry counts as work: those victims still
    /// owe tokens somewhere.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty()
            && self.queue.is_empty()
            && self.running.is_empty()
            && self.evicted.is_empty()
    }

    /// Number of requests waiting for admission.
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of admitted (running) sequences.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Whether the engine has work runnable *now* (queued or running), as
    /// opposed to only future arrivals.
    pub fn has_active_work(&self) -> bool {
        !self.queue.is_empty() || !self.running.is_empty()
    }

    /// Earliest future-arrival time among not-yet-arrived requests.
    pub fn next_pending_arrival(&self) -> Option<Nanos> {
        self.pending.keys().next().map(|&(t, _)| t)
    }

    /// Drains the eviction outbox ([`PreemptMode::Migrate`] victims). The
    /// caller — normally [`Cluster`](crate::cluster::Cluster) — owns their
    /// placement: migrate each to a replica with headroom, or requeue the
    /// recompute form here.
    pub fn take_evicted(&mut self) -> Vec<EvictedSeq> {
        std::mem::take(&mut self.evicted)
    }

    /// Number of unplaced victims in the eviction outbox.
    pub fn evicted_len(&self) -> usize {
        self.evicted.len()
    }

    /// The configured preemption mode.
    pub fn preempt_mode(&self) -> PreemptMode {
        self.config.preempt_mode
    }

    /// Accepts a migrated-in sequence: the request keeps its original
    /// `arrival` stamp (so queue-wait and per-stage accounting see the
    /// caller's timeline, transfer included) but becomes *available for
    /// admission* only at `ready_at`, when its KV bytes have finished
    /// arriving. Does not count toward `submitted` — the request was
    /// already submitted once, to the replica that evicted it.
    pub fn submit_in_transit(&mut self, mut req: LlmRequest, ready_at: Nanos) {
        req.output_tokens = req.output_tokens.max(1);
        req.cached_prompt_tokens = req.cached_prompt_tokens.min(req.prompt_tokens);
        if ready_at <= self.clock.now() {
            let enqueued = ready_at;
            self.queue.push_back(Queued { req, enqueued });
        } else {
            let key = (ready_at, self.submit_seq);
            self.submit_seq += 1;
            self.pending.insert(key, req);
        }
    }

    /// Requeues a recompute-fallback victim locally (migration found no
    /// headroom anywhere), charging the discarded tokens to this replica
    /// like a plain recompute preemption would have.
    pub fn requeue_recompute(&mut self, seq: EvictedSeq) {
        self.stats.preempted_tokens += seq.lost_tokens;
        self.queue.push_back(Queued {
            req: seq.recompute_req,
            enqueued: seq.evicted_at,
        });
    }

    /// Records a successful migration *off* this replica (called by the
    /// cluster at placement time, once a destination is known).
    pub fn record_migration(&mut self, kv_tokens: u64) {
        self.stats.migrations += 1;
        self.stats.migrated_tokens += kv_tokens;
    }

    /// Submits a request.
    ///
    /// A request whose arrival stamp is in the engine's past (normal under
    /// the realtime driver, where channel delivery lags the wall) keeps its
    /// original arrival: it enters the queue as if it had been waiting
    /// since `arrival`, so queue-wait accounting and admission ranking see
    /// the caller's timeline, not the delivery delay.
    pub fn submit(&mut self, mut req: LlmRequest) {
        // Zero-output requests would never finish; clamp to one token.
        req.output_tokens = req.output_tokens.max(1);
        req.cached_prompt_tokens = req.cached_prompt_tokens.min(req.prompt_tokens);
        self.stats.submitted += 1;
        if req.arrival <= self.clock.now() {
            let enqueued = req.arrival;
            self.queue.push_back(Queued { req, enqueued });
        } else {
            let key = (req.arrival, self.submit_seq);
            self.submit_seq += 1;
            self.pending.insert(key, req);
        }
    }

    fn absorb_arrivals(&mut self) {
        let due: Vec<(Nanos, u64)> = self
            .pending
            .range(..=(self.clock.now(), u64::MAX))
            .map(|(k, _)| *k)
            .collect();
        for k in due {
            let req = self.pending.remove(&k).expect("key just enumerated");
            // The key time, not `req.arrival`: identical for ordinary
            // future arrivals, but a migrated-in sequence keeps its
            // original arrival stamp while its local wait starts when the
            // KV transfer lands (see [`Engine::submit_in_transit`]).
            let enqueued = k.0;
            self.queue.push_back(Queued { req, enqueued });
        }
    }

    /// Admission order under the configured policy; returns indices into the
    /// queue, highest priority first.
    fn admission_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.queue.len()).collect();
        match self.config.policy {
            SchedPolicy::Fcfs => {}
            SchedPolicy::GangByGroup => {
                let active: HashSet<GroupId> = self.running.iter().map(|r| r.req.group).collect();
                // DAG-aware application scheduling (Parrot*): reduce calls
                // jump the queue — they unblock a whole query whose map work
                // is already sunk — then calls whose group is already
                // running, then FIFO. The sort is stable, so FIFO order is
                // kept within a class.
                order.sort_by_key(|&i| {
                    let req = &self.queue[i].req;
                    if req.stage == Stage::Reduce {
                        0u8
                    } else if active.contains(&req.group) {
                        1
                    } else {
                        2
                    }
                });
            }
            SchedPolicy::Preemptive => {
                let active: HashSet<GroupId> = self.running.iter().map(|r| r.req.group).collect();
                // SLO class first, then the Parrot* DAG/gang keys inside a
                // class, then arrival — so preempted requests that re-enter
                // at the back of the deque still rank by their original
                // arrival within their class.
                order.sort_by_key(|&i| {
                    let req = &self.queue[i].req;
                    (
                        req.priority,
                        req.stage != Stage::Reduce,
                        !active.contains(&req.group),
                        req.arrival,
                    )
                });
            }
        }
        order
    }

    fn try_admit(&mut self) {
        loop {
            if self.queue.is_empty() {
                return;
            }
            let order = self.admission_order();
            let head = order[0];
            let demand = self.queue[head].req.kv_demand_tokens();
            let slot_blocked = self.running.len() >= self.config.max_batch_seqs;
            let kv_blocked = !self.alloc.fits(demand);
            if slot_blocked || kv_blocked {
                // Head-of-line blocking, as in vLLM's FCFS admission —
                // unless the preemptive policy can evict lower-class work.
                // Preemption is reserved for *KV* pressure (as in vLLM's
                // recompute preemption): a full batch drains within
                // iterations, so evicting sunk work for a slot would cost
                // more than the wait it saves.
                if self.config.policy != SchedPolicy::Preemptive
                    || !kv_blocked
                    || !self.preempt_for(head, demand)
                {
                    return;
                }
            }
            let Queued { req, enqueued } =
                self.queue.remove(head).expect("index from admission_order");
            self.alloc
                .alloc(req.id, demand)
                .expect("fits() checked above");
            self.stats.total_queue_wait += self.clock.now().saturating_sub(enqueued);
            // Cached prefix tokens are already resident: prefill starts past
            // them (they still count toward the KV allocation made above).
            let done = req.cached_prompt_tokens;
            let state = if done >= req.prompt_tokens {
                RequestState::Decoding { emitted: 0 }
            } else {
                RequestState::Prefilling { done }
            };
            self.running.push(Running {
                state,
                admitted: self.clock.now(),
                // Fully cached prompts skip prefill: it "completes" at
                // admission. Otherwise the transition in `step` stamps it.
                prefill_done: self.clock.now(),
                req,
            });
        }
    }

    /// Tries to make room for queue entry `candidate` (KV demand `demand`)
    /// by preempting running sequences of a *strictly lower* priority
    /// class. Victims are evicted cheapest-first (lowest class, then most
    /// recently admitted — least sunk work), recompute-style: KV freed,
    /// progress reset to the cached prefix, request re-queued. Returns
    /// `true` only when the candidate is guaranteed to fit afterwards; when
    /// the full victim set cannot cover the demand, nothing is evicted.
    fn preempt_for(&mut self, candidate: usize, demand: u64) -> bool {
        let pri: Priority = self.queue[candidate].req.priority;
        let mut victims: Vec<usize> = (0..self.running.len())
            .filter(|&i| self.running[i].req.priority > pri)
            .collect();
        if victims.is_empty() {
            return false;
        }
        victims.sort_by_key(|&i| {
            let r = &self.running[i];
            (Reverse(r.req.priority), Reverse(r.admitted))
        });
        // Commit only if evicting every victim would make the candidate
        // fit: both a batch slot (freeing any victim yields one) and the
        // KV demand, block-granular like the allocator.
        let block = self.config.kv_block_tokens;
        let demand_rounded = demand.div_ceil(block) * block;
        let reclaimable: u64 = victims
            .iter()
            .map(|&i| {
                self.alloc
                    .held_tokens(self.running[i].req.id)
                    .expect("running seq holds KV")
            })
            .sum();
        if self.alloc.free_tokens() + reclaimable < demand_rounded {
            return false;
        }
        let victim_ids: Vec<RequestId> = victims.iter().map(|&i| self.running[i].req.id).collect();
        for id in victim_ids {
            if self.running.len() < self.config.max_batch_seqs && self.alloc.fits(demand) {
                break;
            }
            let idx = self
                .running
                .iter()
                .position(|r| r.req.id == id)
                .expect("victim still running");
            let r = self.running.swap_remove(idx);
            self.alloc.free(r.req.id).expect("running seq held KV");
            // Tokens computed past the cached prefix: what recompute
            // discards, and exactly what a migration must move.
            let (lost, computed_through) = match r.state {
                RequestState::Prefilling { done } => {
                    (done.saturating_sub(r.req.cached_prompt_tokens), done)
                }
                RequestState::Decoding { emitted } => (
                    r.req
                        .prompt_tokens
                        .saturating_sub(r.req.cached_prompt_tokens)
                        + emitted,
                    r.req.prompt_tokens + emitted,
                ),
                _ => (0, r.req.cached_prompt_tokens),
            };
            self.stats.preemptions += 1;
            match self.config.preempt_mode {
                PreemptMode::Recompute => {
                    // Recompute-preemption discards all progress past the
                    // cached prefix; the victim will re-prefill (and
                    // re-decode) it.
                    self.stats.preempted_tokens += lost;
                    self.queue.push_back(Queued {
                        req: r.req,
                        enqueued: self.clock.now(),
                    });
                }
                PreemptMode::Migrate => {
                    // Hand the victim to the cluster with its computed
                    // tokens folded into a cached prefix. A mid-decode
                    // victim's emitted tokens become prompt: the KV moves,
                    // so the destination resumes decoding where the victim
                    // stopped; total prompt+output demand is unchanged.
                    let mut migrate_req = r.req.clone();
                    if let RequestState::Decoding { emitted } = r.state {
                        migrate_req.prompt_tokens += emitted;
                        migrate_req.output_tokens -= emitted;
                    }
                    migrate_req.cached_prompt_tokens = computed_through;
                    self.evicted.push(EvictedSeq {
                        migrate_req,
                        recompute_req: r.req,
                        kv_tokens: computed_through,
                        lost_tokens: lost,
                        evicted_at: self.clock.now(),
                    });
                }
            }
        }
        self.running.len() < self.config.max_batch_seqs && self.alloc.fits(demand)
    }

    /// Advances the simulation by one engine iteration (or one clock jump to
    /// the next arrival when idle). Returns the requests that completed.
    pub fn step(&mut self) -> Vec<Completion> {
        self.absorb_arrivals();
        self.try_admit();

        if self.running.is_empty() {
            // Nothing runnable: jump to the next arrival if there is one.
            if let Some((&(t, _), _)) = self.pending.iter().next() {
                self.clock.advance_to(t);
                self.absorb_arrivals();
                self.try_admit();
            }
            if self.running.is_empty() {
                return Vec::new();
            }
        }

        // Assemble the iteration: one decode token per decoding sequence,
        // chunked prefill across prefilling sequences in admission order.
        // A zero chunk budget means unlimited (no chunking): a literal zero
        // would starve every prefilling sequence while the clock kept
        // advancing — a livelock.
        let mut prefill_budget = match self.config.prefill_chunk_tokens {
            0 => u64::MAX,
            n => n,
        };
        let mut prefill_tokens: u64 = 0;
        let mut prefill_ctx_weighted: f64 = 0.0;
        let mut decode_seqs: u64 = 0;
        let mut batch_kv: u64 = 0;
        let mut plan: Vec<(usize, u64)> = Vec::new(); // (running index, prefill tokens)
        let mut decoding: Vec<usize> = Vec::new(); // Sequences decoding *this* iteration.

        for (i, r) in self.running.iter().enumerate() {
            match r.state {
                RequestState::Prefilling { done } => {
                    batch_kv += done;
                    if prefill_budget > 0 {
                        let n = (r.req.prompt_tokens - done).min(prefill_budget);
                        if n > 0 {
                            prefill_budget -= n;
                            prefill_tokens += n;
                            prefill_ctx_weighted += (n * (done + n)) as f64;
                            plan.push((i, n));
                        }
                    }
                }
                RequestState::Decoding { emitted } => {
                    decode_seqs += 1;
                    decoding.push(i);
                    batch_kv += r.req.prompt_tokens + emitted;
                }
                _ => {}
            }
        }

        if prefill_tokens == 0 && decode_seqs == 0 {
            // Defensive: no sequence made progress this iteration (cannot
            // happen now that a zero chunk budget means unlimited, but kept
            // against future budget policies). Advance by overhead only —
            // with the same iteration/busy accounting as a productive
            // iteration, so utilization and `busy_nanos()` stay truthful.
            let dt = self.latency.iteration_time(0, 0, 0, batch_kv);
            self.clock.advance_by(dt);
            self.stats.iterations += 1;
            self.stats.busy += dt;
            self.stats.peak_kv_tokens = self.stats.peak_kv_tokens.max(self.alloc.used_tokens());
            return Vec::new();
        }

        let avg_ctx = if prefill_tokens > 0 {
            (prefill_ctx_weighted / prefill_tokens as f64) as u64
        } else {
            0
        };
        let dt = self
            .latency
            .iteration_time(prefill_tokens, avg_ctx, decode_seqs, batch_kv);
        self.clock.advance_by(dt);
        self.stats.iterations += 1;
        self.stats.busy += dt;
        self.stats.prefill_tokens += prefill_tokens;
        self.stats.decode_tokens += decode_seqs;
        self.stats.peak_kv_tokens = self.stats.peak_kv_tokens.max(self.alloc.used_tokens());

        // Apply progress.
        for (i, n) in plan {
            if let RequestState::Prefilling { done } = self.running[i].state {
                let done = done + n;
                self.running[i].state = if done >= self.running[i].req.prompt_tokens {
                    self.running[i].prefill_done = self.clock.now();
                    RequestState::Decoding { emitted: 0 }
                } else {
                    RequestState::Prefilling { done }
                };
            }
        }
        let mut completions = Vec::new();
        let clock = self.clock.now();
        for &i in &decoding {
            let r = &mut self.running[i];
            if let RequestState::Decoding { emitted } = r.state {
                let emitted = emitted + 1;
                if emitted >= r.req.output_tokens {
                    r.state = RequestState::Finished { at: clock };
                    completions.push(Completion {
                        id: r.req.id,
                        group: r.req.group,
                        stage: r.req.stage,
                        replica: self.replica,
                        arrival: r.req.arrival,
                        admitted: r.admitted,
                        prefill_done: r.prefill_done,
                        finish: clock,
                    });
                } else {
                    r.state = RequestState::Decoding { emitted };
                }
            }
        }
        // Retire finished sequences and free their KV.
        if !completions.is_empty() {
            for c in &completions {
                self.alloc.free(c.id).expect("finished seq held KV");
                self.stats.completed += 1;
                self.stats.total_latency += c.finish.saturating_sub(c.arrival);
            }
            self.running
                .retain(|r| !matches!(r.state, RequestState::Finished { .. }));
        }
        completions
    }

    /// Runs until every submitted request has completed; returns all
    /// completions in finish order.
    ///
    /// # Panics
    ///
    /// Panics if the engine fails to make progress (a request that can never
    /// be admitted, e.g. KV demand beyond total capacity) — surfacing the
    /// bug beats spinning forever.
    pub fn run_until_idle(&mut self) -> Vec<Completion> {
        let mut all = Vec::new();
        let mut stuck = 0u32;
        while !self.is_idle() {
            let before = self.clock.now();
            let done = self.step();
            let progressed = self.clock.now() > before || !done.is_empty();
            all.extend(done);
            if progressed {
                stuck = 0;
            } else {
                stuck += 1;
                assert!(
                    stuck < 3,
                    "engine stuck: queued={} running={} free_kv={} — an \
                     unadmittable request?",
                    self.queue.len(),
                    self.running.len(),
                    self.alloc.free_tokens()
                );
            }
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_llm::{nanos_to_secs, GpuCluster, ModelSpec};

    fn engine(policy: SchedPolicy) -> Engine {
        let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        Engine::new(
            lat,
            EngineConfig {
                policy,
                ..EngineConfig::default()
            },
        )
    }

    fn req(id: u64, group: u64, prompt: u64, out: u64, arrival: Nanos) -> LlmRequest {
        LlmRequest {
            id: RequestId(id),
            group: GroupId(group),
            stage: Stage::Single,
            prompt_tokens: prompt,
            output_tokens: out,
            cached_prompt_tokens: 0,
            arrival,
            priority: Priority::Standard,
        }
    }

    fn preq(id: u64, prompt: u64, out: u64, arrival: Nanos, priority: Priority) -> LlmRequest {
        LlmRequest {
            priority,
            ..req(id, id, prompt, out, arrival)
        }
    }

    /// An engine whose KV pool is capped at `capacity_tokens` (rounded down
    /// to whole blocks) — small pools make admission contention cheap to
    /// stage.
    fn capped_engine(policy: SchedPolicy, capacity_tokens: u64) -> Engine {
        let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        let bytes = capacity_tokens * lat.model().kv_bytes_per_token();
        Engine::new(
            lat,
            EngineConfig {
                policy,
                kv_pool_bytes_cap: Some(bytes),
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn single_request_completes_with_plausible_latency() {
        let mut e = engine(SchedPolicy::Fcfs);
        e.submit(req(1, 1, 4_000, 20, 0));
        let done = e.run_until_idle();
        assert_eq!(done.len(), 1);
        let secs = nanos_to_secs(done[0].finish);
        // ~4k-token prefill plus 20 decode steps on an A40: O(1 s).
        assert!(secs > 0.3 && secs < 6.0, "latency = {secs}s");
    }

    #[test]
    fn kv_is_fully_released_after_drain() {
        let mut e = engine(SchedPolicy::Fcfs);
        let cap = e.free_kv_tokens();
        for i in 0..10 {
            e.submit(req(i, i, 1_000, 10, 0));
        }
        e.run_until_idle();
        assert_eq!(e.free_kv_tokens(), cap);
        assert!(e.is_idle());
    }

    #[test]
    fn clock_is_monotone_and_completions_ordered() {
        let mut e = engine(SchedPolicy::Fcfs);
        for i in 0..5 {
            e.submit(req(i, i, 2_000, 15, i * 100_000_000));
        }
        let mut last = 0;
        let done = e.run_until_idle();
        assert_eq!(done.len(), 5);
        for c in &done {
            assert!(c.finish >= last);
            last = c.finish;
            assert!(c.admitted >= c.arrival);
            assert!(c.finish > c.admitted);
        }
    }

    #[test]
    fn batching_beats_serial_execution() {
        // 8 identical requests batched should take far less than 8× one.
        let mut single = engine(SchedPolicy::Fcfs);
        single.submit(req(0, 0, 2_000, 30, 0));
        let t1 = single.run_until_idle()[0].finish;

        let mut batched = engine(SchedPolicy::Fcfs);
        for i in 0..8 {
            batched.submit(req(i, i, 2_000, 30, 0));
        }
        let done = batched.run_until_idle();
        let makespan = done.iter().map(|c| c.finish).max().unwrap();
        assert!(
            makespan < t1 * 6,
            "no batching benefit: 1×={t1}, 8×={makespan}"
        );
    }

    #[test]
    fn oversized_batch_queues_on_kv() {
        let mut e = engine(SchedPolicy::Fcfs);
        let cap = e.kv_capacity_tokens();
        // Each request takes ~40% of KV: the third must wait.
        let prompt = cap * 2 / 5;
        for i in 0..3 {
            e.submit(req(i, i, prompt, 5, 0));
        }
        e.step(); // First iteration admits only two.
        assert_eq!(e.running_len(), 2);
        assert_eq!(e.queued_len(), 1);
        let done = e.run_until_idle();
        assert_eq!(done.len(), 3);
        // The third request's admission happened strictly after its arrival.
        let third = done.iter().find(|c| c.id == RequestId(2)).unwrap();
        assert!(third.admitted > third.arrival);
    }

    #[test]
    fn late_arrival_keeps_its_original_stamp() {
        // The intended late-arrival semantics, pinned: a request submitted
        // with an arrival stamp already in the engine's past (the realtime
        // driver's normal case — channel delivery lags the wall) is neither
        // clamped to `now` nor rejected. Its completion carries the
        // original arrival, so queue wait is measured from when the caller
        // says it arrived, while admission can only happen at or after the
        // submit-time clock.
        let mut e = engine(SchedPolicy::Fcfs);
        e.submit(req(1, 1, 2_000, 30, 0));
        e.step();
        let now = e.now();
        assert!(now > 1_000, "first iteration advanced the clock");
        let stamp = now - 1_000;
        e.submit(req(2, 2, 500, 5, stamp)); // Already in the past.
        let done = e.run_until_idle();
        let late = done.iter().find(|c| c.id == RequestId(2)).unwrap();
        assert_eq!(late.arrival, stamp, "original arrival survives");
        assert!(late.admitted >= now, "admission cannot predate the submit");
        assert!(
            late.admitted - late.arrival >= 1_000,
            "queue wait counts from the stamped arrival, not the submit"
        );
    }

    #[test]
    fn advance_clock_to_paces_the_engine_externally() {
        // The realtime worker's pacing primitive: advancing the clock never
        // rewinds it, and arrivals that become due are absorbed into the
        // queue so `has_active_work` sees them.
        let mut e = engine(SchedPolicy::Fcfs);
        e.submit(req(1, 1, 500, 5, 3_000_000_000));
        assert!(
            !e.has_active_work(),
            "future arrival is pending, not queued"
        );
        e.advance_clock_to(2_000_000_000);
        assert_eq!(e.now(), 2_000_000_000);
        assert!(!e.has_active_work());
        e.advance_clock_to(1_000_000_000); // Backwards: ignored.
        assert_eq!(e.now(), 2_000_000_000);
        e.advance_clock_to(3_500_000_000);
        assert!(e.has_active_work(), "due arrival was absorbed");
        let done = e.run_until_idle();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].arrival, 3_000_000_000);
        assert!(done[0].admitted >= 3_500_000_000);
    }

    #[test]
    fn future_arrivals_advance_clock_when_idle() {
        let mut e = engine(SchedPolicy::Fcfs);
        e.submit(req(1, 1, 500, 5, 2_000_000_000));
        let done = e.run_until_idle();
        assert_eq!(done.len(), 1);
        assert!(done[0].admitted >= 2_000_000_000);
    }

    #[test]
    fn gang_policy_prioritizes_active_groups() {
        // Group 1 has many map calls; a competing group-2 request arrives
        // while group 1 runs. Under gang scheduling, queued group-1 calls cut
        // ahead of group 2 (when admission is KV-limited).
        let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        let small = EngineConfig {
            max_batch_seqs: 2,
            policy: SchedPolicy::GangByGroup,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(lat, small);
        e.submit(req(10, 1, 3_000, 40, 0));
        e.submit(req(11, 1, 3_000, 40, 0));
        e.submit(req(20, 2, 3_000, 40, 1)); // Other group, arrives early.
        e.submit(req(12, 1, 3_000, 40, 2)); // Same group, arrives later.
        let done = e.run_until_idle();
        let pos = |id: u64| done.iter().position(|c| c.id == RequestId(id)).unwrap();
        assert!(
            pos(12) < pos(20),
            "gang scheduling should finish group 1 first"
        );
    }

    #[test]
    fn gang_admits_same_group_before_earlier_foreign_arrivals() {
        // The Parrot* property, observed directly at admission rather than
        // through completion order: with group 1 already running, a queued
        // group-1 call is *admitted* before a foreign call that arrived
        // earlier.
        let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        let cfg = EngineConfig {
            max_batch_seqs: 2, // One slot for the running gang, one contended.
            policy: SchedPolicy::GangByGroup,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(lat, cfg);
        // Fill both slots with group-1 work so later arrivals must queue;
        // the second gang member outlives the first, keeping group 1 active
        // when the contended slot frees.
        e.submit(req(0, 1, 3_000, 30, 0));
        e.submit(req(1, 1, 3_000, 90, 0));
        e.step();
        e.submit(req(20, 2, 1_000, 10, e.now())); // Foreign, arrives first.
        e.submit(req(11, 1, 1_000, 10, e.now() + 1)); // Same group, later.
        let done = e.run_until_idle();
        let admitted = |id: u64| {
            done.iter()
                .find(|c| c.id == RequestId(id))
                .expect("completed")
                .admitted
        };
        assert!(
            admitted(11) < admitted(20),
            "same-group call admitted at {} after foreign at {}",
            admitted(11),
            admitted(20)
        );
        // FCFS on the identical workload admits in arrival order instead.
        let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        let mut f = Engine::new(
            lat,
            EngineConfig {
                max_batch_seqs: 2,
                policy: SchedPolicy::Fcfs,
                ..EngineConfig::default()
            },
        );
        f.submit(req(0, 1, 3_000, 30, 0));
        f.submit(req(1, 1, 3_000, 90, 0));
        f.step();
        f.submit(req(20, 2, 1_000, 10, f.now()));
        f.submit(req(11, 1, 1_000, 10, f.now() + 1));
        let done = f.run_until_idle();
        let admitted = |id: u64| {
            done.iter()
                .find(|c| c.id == RequestId(id))
                .expect("completed")
                .admitted
        };
        assert!(admitted(20) < admitted(11), "FCFS keeps arrival order");
    }

    #[test]
    fn fcfs_respects_arrival_order_under_contention() {
        let mut e = engine(SchedPolicy::Fcfs);
        let cfg_cap = e.kv_capacity_tokens();
        let prompt = cfg_cap / 2 + 1; // Only one fits at a time.
        e.submit(req(1, 1, prompt, 5, 0));
        e.submit(req(2, 2, prompt, 5, 1));
        let done = e.run_until_idle();
        assert_eq!(done[0].id, RequestId(1));
        assert_eq!(done[1].id, RequestId(2));
    }

    #[test]
    fn stats_account_tokens() {
        let mut e = engine(SchedPolicy::Fcfs);
        e.submit(req(1, 1, 1_000, 10, 0));
        e.run_until_idle();
        let s = e.stats();
        assert_eq!(s.submitted, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.prefill_tokens, 1_000);
        assert_eq!(s.decode_tokens, 10);
        assert!(s.peak_kv_tokens >= 1_000);
    }

    #[test]
    fn cached_prefix_skips_prefill_compute() {
        // Two identical requests, one with 90% of its prompt KV cached: the
        // cached one finishes much sooner (only decode + residual prefill).
        let mk = |cached: u64| {
            let mut e = engine(SchedPolicy::Fcfs);
            e.submit(LlmRequest {
                id: RequestId(1),
                group: GroupId(1),
                stage: Stage::Single,
                prompt_tokens: 10_000,
                output_tokens: 10,
                cached_prompt_tokens: cached,
                arrival: 0,
                priority: Priority::Standard,
            });
            e.run_until_idle()[0].finish
        };
        let cold = mk(0);
        let warm = mk(9_000);
        assert!(warm * 2 < cold, "no reuse benefit: cold={cold} warm={warm}");
        // Fully cached prompts skip prefill entirely but still decode.
        let hot = mk(10_000);
        assert!(hot > 0 && hot <= warm);
    }

    #[test]
    fn cached_tokens_are_clamped_to_prompt() {
        let mut e = engine(SchedPolicy::Fcfs);
        e.submit(LlmRequest {
            id: RequestId(1),
            group: GroupId(1),
            stage: Stage::Single,
            prompt_tokens: 100,
            output_tokens: 5,
            cached_prompt_tokens: 10_000, // Bogus caller value.
            arrival: 0,
            priority: Priority::Standard,
        });
        let done = e.run_until_idle();
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn gang_policy_prioritizes_reduce_calls() {
        // A reduce call submitted behind a pile of foreign maps should be
        // admitted ahead of them under gang scheduling (Parrot's DAG
        // awareness): it unblocks a whole query.
        let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        let cfg = EngineConfig {
            max_batch_seqs: 1, // Serialize admissions to expose ordering.
            policy: SchedPolicy::GangByGroup,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(lat, cfg);
        // A running request occupies the single slot.
        e.submit(req(0, 0, 2_000, 30, 0));
        e.step();
        // Foreign maps arrive first, then a reduce for group 9.
        for i in 1..=3 {
            e.submit(LlmRequest {
                id: RequestId(i),
                group: GroupId(100 + i),
                stage: Stage::Map,
                prompt_tokens: 1_000,
                output_tokens: 10,
                cached_prompt_tokens: 0,
                arrival: e.now(),
                priority: Priority::Standard,
            });
        }
        e.submit(LlmRequest {
            id: RequestId(9),
            group: GroupId(9),
            stage: Stage::Reduce,
            prompt_tokens: 1_000,
            output_tokens: 10,
            cached_prompt_tokens: 0,
            arrival: e.now(),
            priority: Priority::Standard,
        });
        let done = e.run_until_idle();
        let pos = |id: u64| done.iter().position(|c| c.id == RequestId(id)).unwrap();
        assert!(pos(9) < pos(1), "reduce should finish before foreign maps");
        assert!(pos(9) < pos(3));
    }

    #[test]
    fn fcfs_does_not_reorder_reduce_calls() {
        let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        let cfg = EngineConfig {
            max_batch_seqs: 1,
            policy: SchedPolicy::Fcfs,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(lat, cfg);
        e.submit(req(0, 0, 2_000, 30, 0));
        e.step();
        e.submit(LlmRequest {
            id: RequestId(1),
            group: GroupId(101),
            stage: Stage::Map,
            prompt_tokens: 1_000,
            output_tokens: 10,
            cached_prompt_tokens: 0,
            arrival: e.now(),
            priority: Priority::Standard,
        });
        e.submit(LlmRequest {
            id: RequestId(9),
            group: GroupId(9),
            stage: Stage::Reduce,
            prompt_tokens: 1_000,
            output_tokens: 10,
            cached_prompt_tokens: 0,
            arrival: e.now(),
            priority: Priority::Standard,
        });
        let done = e.run_until_idle();
        let pos = |id: u64| done.iter().position(|c| c.id == RequestId(id)).unwrap();
        assert!(pos(1) < pos(9), "FCFS keeps arrival order");
    }

    #[test]
    fn completion_timestamps_decompose_the_lifetime() {
        // arrival <= admitted <= prefill_done <= finish for every request,
        // including preempted victims (last admission / last recomputed
        // prefill) — the telescoping identity behind stage breakdowns.
        let mut e = capped_engine(SchedPolicy::Preemptive, 4_096);
        e.submit(preq(1, 3_000, 400, 0, Priority::Batch));
        e.step();
        e.submit(preq(2, 2_000, 20, e.now(), Priority::Interactive));
        let done = e.run_until_idle();
        assert_eq!(done.len(), 2);
        assert!(e.stats().preemptions >= 1, "the batch victim was evicted");
        for c in &done {
            assert!(c.arrival <= c.admitted);
            assert!(c.admitted <= c.prefill_done, "prefill ends after admission");
            assert!(c.prefill_done < c.finish, "decode takes time");
            let pieces = (c.admitted - c.arrival)
                + (c.prefill_done - c.admitted)
                + (c.finish - c.prefill_done);
            assert_eq!(pieces, c.finish - c.arrival);
        }
    }

    #[test]
    fn fully_cached_prompt_has_zero_prefill_wall_time() {
        let mut e = engine(SchedPolicy::Fcfs);
        e.submit(LlmRequest {
            id: RequestId(1),
            group: GroupId(1),
            stage: Stage::Single,
            prompt_tokens: 2_000,
            output_tokens: 10,
            cached_prompt_tokens: 2_000,
            arrival: 0,
            priority: Priority::Standard,
        });
        let done = e.run_until_idle();
        assert_eq!(done.len(), 1);
        assert_eq!(
            done[0].prefill_done, done[0].admitted,
            "a fully cached prompt goes straight to decode"
        );
    }

    #[test]
    #[should_panic(expected = "engine stuck")]
    fn unadmittable_request_is_detected() {
        let mut e = engine(SchedPolicy::Fcfs);
        let cap = e.kv_capacity_tokens();
        e.submit(req(1, 1, cap * 2, 5, 0));
        let _ = e.run_until_idle();
    }

    #[test]
    fn zero_prefill_budget_means_unlimited_not_livelock() {
        // Regression: `prefill_chunk_tokens == 0` used to starve every
        // prefilling sequence while `step()` kept advancing the clock — a
        // livelock `run_until_idle` never escaped. Zero now means
        // "unchunked": the run completes.
        let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        let mut e = Engine::new(
            lat,
            EngineConfig {
                prefill_chunk_tokens: 0,
                ..EngineConfig::default()
            },
        );
        let cap = e.free_kv_tokens();
        for i in 0..4 {
            e.submit(req(i, i, 3_000, 10, i * 1_000_000));
        }
        let done = e.run_until_idle();
        assert_eq!(done.len(), 4);
        assert_eq!(e.free_kv_tokens(), cap);
        // Unchunked prefill means each prompt lands in one iteration.
        assert_eq!(e.stats().prefill_tokens, 4 * 3_000);
    }

    #[test]
    fn busy_time_accounts_every_iteration() {
        // With all arrivals at t = 0 there are no idle clock jumps, so the
        // virtual clock must equal accumulated busy time exactly — the
        // invariant the zero-progress edge used to break by advancing the
        // clock without counting the iteration.
        let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        let mut e = Engine::new(
            lat,
            EngineConfig {
                prefill_chunk_tokens: 0,
                ..EngineConfig::default()
            },
        );
        for i in 0..6 {
            e.submit(req(i, i, 2_000, 12, 0));
        }
        e.run_until_idle();
        let s = e.stats();
        assert!(s.iterations > 0);
        assert_eq!(s.busy, e.now(), "every clock advance must be accounted");
    }

    #[test]
    fn preemptive_admits_by_slo_class() {
        // One contended slot: a later-arriving interactive request is
        // admitted ahead of earlier standard/batch arrivals.
        let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        let mut e = Engine::new(
            lat,
            EngineConfig {
                max_batch_seqs: 1,
                policy: SchedPolicy::Preemptive,
                ..EngineConfig::default()
            },
        );
        e.submit(preq(0, 2_000, 30, 0, Priority::Interactive));
        e.step(); // Occupies the slot; no lower-class victim to evict.
        e.submit(preq(1, 1_000, 10, e.now(), Priority::Batch));
        e.submit(preq(2, 1_000, 10, e.now() + 1, Priority::Standard));
        e.submit(preq(3, 1_000, 10, e.now() + 2, Priority::Interactive));
        let done = e.run_until_idle();
        let admitted = |id: u64| {
            done.iter()
                .find(|c| c.id == RequestId(id))
                .expect("completed")
                .admitted
        };
        assert!(admitted(3) < admitted(2), "interactive before standard");
        assert!(admitted(2) < admitted(1), "standard before batch");
    }

    #[test]
    fn preemption_evicts_batch_for_interactive() {
        // A batch request fills most of a small KV pool; an interactive
        // request that no longer fits preempts it instead of queueing
        // behind it. The victim re-queues, recomputes, and still finishes.
        let mut e = capped_engine(SchedPolicy::Preemptive, 4_096);
        e.submit(preq(1, 3_000, 400, 0, Priority::Batch));
        e.step();
        assert_eq!(e.running_len(), 1);
        e.submit(preq(2, 2_000, 20, e.now(), Priority::Interactive));
        let cap = e.kv_capacity_tokens();
        let done = e.run_until_idle();
        assert_eq!(done.len(), 2);
        assert_eq!(e.stats().preemptions, 1);
        assert!(
            e.stats().preempted_tokens > 0,
            "the victim had prefilled work to recompute"
        );
        assert_eq!(e.free_kv_tokens(), cap, "no KV leaked across preemption");
        let by_id = |id: u64| done.iter().find(|c| c.id == RequestId(id)).unwrap();
        // The interactive request was admitted promptly — before the batch
        // request's (re-)completion — and finished first.
        assert!(by_id(2).finish < by_id(1).finish);
        // The victim's completion carries its last admission time.
        assert!(by_id(1).admitted > by_id(1).arrival);
    }

    #[test]
    fn slot_pressure_alone_never_preempts() {
        // KV is plentiful; only the batch-seq slot is contended. Evicting
        // sunk work for a slot costs more than the wait it saves, so the
        // interactive request waits and the batch victim keeps its progress.
        let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
        let mut e = Engine::new(
            lat,
            EngineConfig {
                max_batch_seqs: 1,
                policy: SchedPolicy::Preemptive,
                ..EngineConfig::default()
            },
        );
        e.submit(preq(1, 2_000, 30, 0, Priority::Batch));
        e.step();
        assert!(e.free_kv_tokens() > 10_000, "KV is not the bottleneck");
        e.submit(preq(2, 1_000, 10, e.now(), Priority::Interactive));
        let done = e.run_until_idle();
        assert_eq!(done.len(), 2);
        assert_eq!(e.stats().preemptions, 0);
        let by_id = |id: u64| done.iter().find(|c| c.id == RequestId(id)).unwrap();
        assert!(
            by_id(2).admitted >= by_id(1).finish,
            "interactive waits for the slot instead of evicting"
        );
    }

    #[test]
    fn preemption_requires_a_strictly_lower_class() {
        // Same class: no eviction — the later request waits, FCFS-style.
        let mut e = capped_engine(SchedPolicy::Preemptive, 4_096);
        e.submit(preq(1, 3_000, 400, 0, Priority::Standard));
        e.step();
        e.submit(preq(2, 2_000, 20, e.now(), Priority::Standard));
        let done = e.run_until_idle();
        assert_eq!(done.len(), 2);
        assert_eq!(e.stats().preemptions, 0);
        let by_id = |id: u64| done.iter().find(|c| c.id == RequestId(id)).unwrap();
        assert!(by_id(1).finish < by_id(2).finish, "arrival order kept");
    }

    #[test]
    fn preemption_never_fires_when_it_cannot_help() {
        // The interactive demand exceeds capacity even after evicting every
        // batch victim: nothing is preempted (no wasted recompute) and the
        // stuck detector still fires.
        let mut e = capped_engine(SchedPolicy::Preemptive, 4_096);
        e.submit(preq(1, 2_000, 20, 0, Priority::Batch));
        e.step();
        e.submit(preq(2, 8_000, 20, e.now(), Priority::Interactive));
        // Drain what is drainable: the batch request completes untouched.
        let mut done = Vec::new();
        for _ in 0..10_000 {
            done.extend(e.step());
            if done.len() == 1 {
                break;
            }
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, RequestId(1));
        assert_eq!(e.stats().preemptions, 0);
    }

    #[test]
    fn preemptive_beats_fcfs_on_interactive_queueing_under_burst() {
        // The acceptance experiment at engine scale: a synchronized burst
        // of batch work arrives just before interactive requests (burst
        // factor ≫ 4 relative to the drain rate). Under FCFS the
        // interactive class queues behind the whole burst; preemptive
        // scheduling admits it immediately. Identical workloads, identical
        // capacity.
        let workload = || {
            let mut reqs = Vec::new();
            for i in 0..6 {
                reqs.push(preq(i, 1_500, 300, 0, Priority::Batch));
            }
            for i in 0..4 {
                reqs.push(preq(
                    100 + i,
                    800,
                    10,
                    1_000_000 * (i + 1),
                    Priority::Interactive,
                ));
            }
            reqs
        };
        let queue_waits = |policy: SchedPolicy| -> Vec<Nanos> {
            let mut e = capped_engine(policy, 6_000);
            for r in workload() {
                e.submit(r);
            }
            let done = e.run_until_idle();
            assert_eq!(done.len(), 10, "every request completes under {policy:?}");
            let mut waits: Vec<Nanos> = done
                .iter()
                .filter(|c| c.id.0 >= 100)
                .map(|c| c.admitted - c.arrival)
                .collect();
            waits.sort_unstable();
            waits
        };
        let fcfs = queue_waits(SchedPolicy::Fcfs);
        let preemptive = queue_waits(SchedPolicy::Preemptive);
        let p99 = |w: &[Nanos]| w[w.len() - 1];
        let mean = |w: &[Nanos]| w.iter().sum::<Nanos>() / w.len() as Nanos;
        assert!(
            p99(&preemptive) < p99(&fcfs),
            "preemptive p99 queue wait {} must beat FCFS {}",
            p99(&preemptive),
            p99(&fcfs)
        );
        assert!(mean(&preemptive) < mean(&fcfs));
    }
}

#[cfg(test)]
mod proptests {
    use std::collections::HashMap;

    use proptest::prelude::*;

    use super::*;
    use metis_llm::{GpuCluster, ModelSpec};

    fn priority_of(tag: u8) -> Priority {
        match tag % 3 {
            0 => Priority::Interactive,
            1 => Priority::Standard,
            _ => Priority::Batch,
        }
    }

    proptest! {
        /// Preemption invariants under random bursty load: KV allocation is
        /// conserved across arbitrary preempt/resume cycles (no double
        /// free, `used_tokens` returns to 0 at drain) and every submitted
        /// request completes exactly once.
        #[test]
        fn preemption_conserves_kv_and_completes_every_request(
            reqs in prop::collection::vec(
                // (prompt, output, burst slot, priority tag, cached%)
                (1u64..1_800, 1u64..80, 0u64..6, 0u8..6, 0u64..100),
                1..24,
            ),
        ) {
            let lat = LatencyModel::new(ModelSpec::mistral_7b_awq(), GpuCluster::single_a40());
            let bytes = 4_096 * lat.model().kv_bytes_per_token();
            let mut e = Engine::new(
                lat,
                EngineConfig {
                    policy: SchedPolicy::Preemptive,
                    kv_pool_bytes_cap: Some(bytes),
                    ..EngineConfig::default()
                },
            );
            let capacity = e.kv_capacity_tokens();
            for (i, &(prompt, out, slot, tag, cached)) in reqs.iter().enumerate() {
                e.submit(LlmRequest {
                    id: RequestId(i as u64),
                    group: GroupId(i as u64 % 4),
                    stage: Stage::Single,
                    prompt_tokens: prompt,
                    output_tokens: out,
                    cached_prompt_tokens: prompt * cached / 100,
                    // Bursty: arrivals pile onto a few discrete instants.
                    arrival: slot * 50_000_000,
                    priority: priority_of(tag),
                });
            }
            let done = e.run_until_idle();
            prop_assert_eq!(done.len(), reqs.len(), "every request completes");
            let mut seen: HashMap<u64, u32> = HashMap::new();
            for c in &done {
                *seen.entry(c.id.0).or_default() += 1;
            }
            for (id, count) in seen {
                prop_assert_eq!(count, 1, "request {} completed {} times", id, count);
            }
            prop_assert_eq!(e.free_kv_tokens(), capacity, "used_tokens back to 0");
            prop_assert!(e.is_idle());
            let s = e.stats();
            prop_assert_eq!(s.completed, reqs.len() as u64);
            prop_assert_eq!(s.submitted, reqs.len() as u64);
        }
    }
}

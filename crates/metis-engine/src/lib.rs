//! vLLM-like serving engine simulator.
//!
//! A discrete-event reproduction of the serving substrate the paper builds
//! on: continuous (iteration-level) batching with chunked prefill over a
//! paged KV cache, driven by the analytical latency model in `metis-llm`.
//!
//! The engine advances a virtual clock one *iteration* at a time. Each
//! iteration decodes one token for every running sequence and spends a
//! bounded budget of prefill tokens on admitted-but-unprefilled sequences
//! (chunked prefill, as in vLLM/Sarathi). A sequence is admitted only when
//! its whole KV footprint (prompt + maximum output) fits in the paged KV
//! pool — the same admission rule METIS's joint scheduler reasons about
//! from the outside via [`Engine::free_kv_tokens`].
//!
//! Three scheduling policies are provided:
//! * [`SchedPolicy::Fcfs`] — plain vLLM first-come-first-served admission.
//! * [`SchedPolicy::GangByGroup`] — Parrot\*-style application-aware
//!   co-scheduling: requests belonging to a group (e.g. the map calls of one
//!   RAG query) are admitted together, ahead of newly arrived groups.
//! * [`SchedPolicy::Preemptive`] — SLO-class-aware scheduling on top of the
//!   gang keys: admission ranks by ([`Priority`], reduce-before-map, gang
//!   affinity, arrival), and under KV pressure running sequences of a
//!   strictly lower class are preempted (recompute-style) and re-queued
//!   instead of head-of-line blocking the whole queue.
//!
//! For multi-backend serving, [`Cluster`] lifts the single engine to `N`
//! independent replicas behind a pluggable router ([`RouterPolicy`]):
//! round-robin dispatch or KV-aware `LeastKvLoad`, which routes each query
//! to the replica with the most free KV bytes.
//!
//! *Who* executes the work — and on whose time — is the [`Driver`]
//! abstraction: [`SimDriver`] advances the cluster deterministically on
//! virtual time (the paper's evaluation mode and the oracle for the live
//! path), while [`RealtimeDriver`] serves the same engines from one worker
//! thread per replica, paced against a scaled wall clock.

pub mod cluster;
pub mod driver;
pub mod engine;
pub mod kvcache;
pub mod prefixcache;
pub mod realtime;
pub mod request;
pub mod stats;

pub use cluster::{Cluster, ReplicaState, RouterPolicy, MIGRATION_BW_BYTES_PER_SEC};
pub use driver::{Driver, DriverKind, DriverSpec, DriverStats, SimDriver};
pub use engine::{Completion, Engine, EngineConfig, EvictedSeq, PreemptMode, SchedPolicy};
pub use kvcache::{KvAllocator, KvError};
pub use prefixcache::PrefixCache;
pub use realtime::RealtimeDriver;
pub use request::{GroupId, LlmRequest, Priority, ReplicaId, RequestId, RequestState, Stage};
pub use stats::EngineStats;

//! LLM request descriptors and lifecycle state.

use metis_llm::Nanos;

/// Unique id of an LLM request (one sequence in the engine).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RequestId(pub u64);

/// Id of the application-level group a request belongs to (all the LLM calls
/// of one RAG query share a group) — the unit Parrot\*-style co-scheduling
/// operates on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GroupId(pub u64);

/// Id of the engine replica serving a request — index into a
/// [`Cluster`](crate::cluster::Cluster)'s replica list. A standalone engine
/// is replica 0.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ReplicaId(pub u32);

/// Pipeline stage of a request within its RAG query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stage {
    /// The only LLM call of a `stuff` or single-chunk synthesis.
    Single,
    /// A per-chunk map call (`map_reduce` mapper or `map_rerank` scorer).
    Map,
    /// The final reduce call of `map_reduce`.
    Reduce,
}

/// Scheduling priority of a request, derived from its query's SLO tier.
///
/// Lower variants are more urgent: `Interactive < Standard < Batch`, and the
/// preemptive scheduler ([`SchedPolicy::Preemptive`](crate::SchedPolicy))
/// admits in ascending order and preempts running sequences of a *strictly
/// lower* class (numerically greater) when a higher-class request cannot fit
/// in the KV pool.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Priority {
    /// Tight-SLO interactive queries (short-answer QA): scheduled first,
    /// never preempted by lower classes.
    Interactive,
    /// The default class for ordinary traffic.
    #[default]
    Standard,
    /// Throughput-oriented background work (long summarization, synthetic
    /// feedback runs): first to be preempted under KV pressure.
    Batch,
}

impl Priority {
    /// Short stable name, for reports.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Batch => "batch",
        }
    }

    /// All priorities, most urgent first.
    pub fn all() -> [Priority; 3] {
        [Priority::Interactive, Priority::Standard, Priority::Batch]
    }
}

/// A request submitted to the engine.
#[derive(Clone, Debug)]
pub struct LlmRequest {
    /// Unique id (caller-assigned, must not repeat).
    pub id: RequestId,
    /// Application group (RAG query) this call belongs to.
    pub group: GroupId,
    /// Pipeline stage.
    pub stage: Stage,
    /// Prompt length in tokens.
    pub prompt_tokens: u64,
    /// Exact number of output tokens this call will generate (decided by the
    /// generation model; the engine only simulates their timing).
    pub output_tokens: u64,
    /// Prompt tokens whose KV is already cached (chunk-level prefix reuse,
    /// §8): they occupy KV-cache space but skip prefill compute.
    pub cached_prompt_tokens: u64,
    /// Virtual time at which the request enters the engine queue.
    pub arrival: Nanos,
    /// SLO-derived scheduling class (only consulted by
    /// [`SchedPolicy::Preemptive`](crate::SchedPolicy)).
    pub priority: Priority,
}

impl LlmRequest {
    /// Total KV-cache tokens the request needs (prompt + output).
    pub fn kv_demand_tokens(&self) -> u64 {
        self.prompt_tokens + self.output_tokens
    }
}

/// Lifecycle state of a request inside the engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RequestState {
    /// Waiting for admission (KV allocation).
    Queued,
    /// Admitted; `done` of `prompt_tokens` prefilled so far.
    Prefilling {
        /// Prompt tokens already prefilled.
        done: u64,
    },
    /// Prefill complete; `emitted` of `output_tokens` generated so far.
    Decoding {
        /// Output tokens generated so far.
        emitted: u64,
    },
    /// All output generated; KV freed.
    Finished {
        /// Completion time.
        at: Nanos,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_demand_sums_prompt_and_output() {
        let r = LlmRequest {
            id: RequestId(1),
            group: GroupId(1),
            stage: Stage::Single,
            prompt_tokens: 100,
            output_tokens: 20,
            cached_prompt_tokens: 0,
            arrival: 0,
            priority: Priority::default(),
        };
        assert_eq!(r.kv_demand_tokens(), 120);
    }

    #[test]
    fn priority_orders_most_urgent_first() {
        assert!(Priority::Interactive < Priority::Standard);
        assert!(Priority::Standard < Priority::Batch);
        assert_eq!(Priority::default(), Priority::Standard);
        let names: Vec<&str> = Priority::all().iter().map(|p| p.name()).collect();
        assert_eq!(names, ["interactive", "standard", "batch"]);
    }
}

//! Synthetic RAG-QA workload generators.
//!
//! The paper evaluates on four public datasets whose *roles* in the
//! evaluation are their query-profile mixes and token-length scales
//! (Table 1):
//!
//! | Dataset | Task | Input | Output |
//! |---|---|---|---|
//! | Squad | single-hop QA | 0.4K–2K | 5–10 |
//! | Musique | multi-hop QA | 1K–5K | 5–20 |
//! | KG RAG FinSec | doc-level QA | 4K–10K | 20–40 |
//! | QMSUM | summarization QA | 4K–12K | 20–60 |
//!
//! The generators in this crate produce corpora and query sets with those
//! distributions *and* exact ground truth: every query knows which planted
//! facts it needs, which conclusions require joint reasoning, its gold
//! answer tokens, and its true profile (the quantity METIS's LLM profiler
//! estimates). That ground truth is what lets the reproduction *measure*
//! profiler accuracy and answer F1 instead of assuming them.

pub mod ann;
pub mod dataset;
pub mod generator;
pub mod kinds;
pub mod profile;
pub mod query;
pub mod workload;

pub use ann::{AnnConfig, AnnCorpus, AnnQuery};
pub use dataset::{Dataset, Table1Row};
pub use generator::{
    build_dataset, build_dataset_full, build_dataset_with_embedder, build_dataset_with_index,
    build_dataset_with_spec,
};
pub use kinds::{DatasetKind, GenParams};
pub use profile::{Complexity, TrueProfile};
pub use query::{QueryId, QuerySpec};
pub use workload::{
    burst_arrivals, diurnal_arrivals, gamma_arrivals, poisson_arrivals, sequential_arrivals,
    ArrivalProcess,
};

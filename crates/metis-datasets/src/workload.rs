//! Arrival-process generators.
//!
//! The paper's open-loop workload sends 200 queries per dataset with Poisson
//! arrivals at an average rate of 2/s (§7.1); the low-load experiment
//! (Fig. 19) sends queries sequentially.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use metis_llm::{secs_to_nanos, Nanos};

/// Poisson arrival times for `n` queries at `rate_qps` queries/second.
///
/// # Panics
///
/// Panics if `rate_qps` is not positive and finite.
pub fn poisson_arrivals(seed: u64, rate_qps: f64, n: usize) -> Vec<Nanos> {
    assert!(
        rate_qps.is_finite() && rate_qps > 0.0,
        "rate must be positive, got {rate_qps}"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0A22_17A1);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / rate_qps;
            secs_to_nanos(t)
        })
        .collect()
}

/// Evenly spaced arrivals with `gap_secs` between queries (a deterministic
/// low-load process; the closed-loop "send after previous completes" variant
/// lives in the runner, which knows completion times).
pub fn sequential_arrivals(gap_secs: f64, n: usize) -> Vec<Nanos> {
    (0..n).map(|i| secs_to_nanos(gap_secs * i as f64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_increasing() {
        let a = poisson_arrivals(1, 2.0, 100);
        let b = poisson_arrivals(1, 2.0, 100);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn poisson_rate_is_roughly_respected() {
        let a = poisson_arrivals(7, 2.0, 2_000);
        let span_secs = *a.last().unwrap() as f64 / 1e9;
        let rate = 2_000.0 / span_secs;
        assert!((1.6..=2.4).contains(&rate), "empirical rate {rate}");
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(poisson_arrivals(1, 2.0, 10), poisson_arrivals(2, 2.0, 10));
    }

    #[test]
    fn sequential_is_evenly_spaced() {
        let a = sequential_arrivals(1.5, 4);
        assert_eq!(a, vec![0, 1_500_000_000, 3_000_000_000, 4_500_000_000]);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = poisson_arrivals(0, 0.0, 1);
    }
}

//! Arrival-process generators.
//!
//! The paper's open-loop workload sends 200 queries per dataset with Poisson
//! arrivals at an average rate of 2/s (§7.1); the low-load experiment
//! (Fig. 19) sends queries sequentially. Real serving traffic is rarely
//! that tame, so this module also provides an arrival-process *family* for
//! stress scenarios: on/off bursts ([`burst_arrivals`]), heavy-tailed
//! renewal processes with CV > 1 ([`gamma_arrivals`]), and a
//! sinusoidally-modulated diurnal pattern ([`diurnal_arrivals`]) — the
//! workloads under which head-of-line blocking and preemption policy
//! actually matter. [`ArrivalProcess`] names the family for CLI/bench use.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use metis_llm::{secs_to_nanos, Nanos};

/// Expected arrivals per on/off burst period in [`burst_arrivals`]: the
/// period is `BURST_PERIOD_ARRIVALS / rate_qps` seconds, so a burst holds a
/// queue-filling clump of work at every rate.
const BURST_PERIOD_ARRIVALS: f64 = 16.0;

/// Relative amplitude of the [`diurnal_arrivals`] rate modulation.
const DIURNAL_AMPLITUDE: f64 = 0.75;

/// Number of full diurnal cycles across the expected span of the run.
const DIURNAL_CYCLES: f64 = 2.0;

/// Poisson arrival times for `n` queries at `rate_qps` queries/second.
///
/// # Panics
///
/// Panics if `rate_qps` is not positive and finite.
pub fn poisson_arrivals(seed: u64, rate_qps: f64, n: usize) -> Vec<Nanos> {
    assert!(
        rate_qps.is_finite() && rate_qps > 0.0,
        "rate must be positive, got {rate_qps}"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0A22_17A1);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / rate_qps;
            secs_to_nanos(t)
        })
        .collect()
}

/// Evenly spaced arrivals with `gap_secs` between queries (a deterministic
/// low-load process; the closed-loop "send after previous completes" variant
/// lives in the runner, which knows completion times).
pub fn sequential_arrivals(gap_secs: f64, n: usize) -> Vec<Nanos> {
    (0..n).map(|i| secs_to_nanos(gap_secs * i as f64)).collect()
}

fn assert_rate(rate_qps: f64) {
    assert!(
        rate_qps.is_finite() && rate_qps > 0.0,
        "rate must be positive, got {rate_qps}"
    );
}

/// On/off bursty arrivals averaging `rate_qps`: within each period a
/// fraction `1 / burst_factor` of the time is "on" at `burst_factor ×
/// rate_qps` (Poisson), the rest is silent — so the long-run rate matches
/// `rate_qps` while work lands in clumps `burst_factor` times denser than
/// the average. `burst_factor = 1` degenerates to plain Poisson.
///
/// # Panics
///
/// Panics if `rate_qps` is not positive and finite or `burst_factor < 1`.
pub fn burst_arrivals(seed: u64, rate_qps: f64, burst_factor: f64, n: usize) -> Vec<Nanos> {
    assert_rate(rate_qps);
    assert!(
        burst_factor.is_finite() && burst_factor >= 1.0,
        "burst factor must be >= 1, got {burst_factor}"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB5_57A1);
    let period = BURST_PERIOD_ARRIVALS / rate_qps;
    let on_secs = period / burst_factor;
    let on_rate = rate_qps * burst_factor;
    // Homogeneous Poisson on "on-time", mapped to wall time by skipping the
    // off windows: the t-th second of on-time falls in period t / on_secs.
    let mut t_on = 0.0f64;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t_on += -u.ln() / on_rate;
            let full_periods = (t_on / on_secs).floor();
            secs_to_nanos(full_periods * period + (t_on - full_periods * on_secs))
        })
        .collect()
}

/// One standard-normal sample (Box–Muller over the shim RNG's uniforms).
fn normal_sample(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// One Gamma(shape, 1) sample via Marsaglia–Tsang, with the `U^{1/shape}`
/// boost for shape < 1.
fn gamma_sample(rng: &mut StdRng, shape: f64) -> f64 {
    if shape < 1.0 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return gamma_sample(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal_sample(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Heavy-tailed renewal arrivals averaging `rate_qps`: inter-arrival gaps
/// are Gamma-distributed with coefficient of variation `cv` (shape
/// `1 / cv²`, mean `1 / rate_qps`). `cv = 1` is exponential (Poisson);
/// `cv > 1` produces the over-dispersed, clustered gaps of real traffic
/// traces.
///
/// # Panics
///
/// Panics if `rate_qps` or `cv` is not positive and finite.
pub fn gamma_arrivals(seed: u64, rate_qps: f64, cv: f64, n: usize) -> Vec<Nanos> {
    assert_rate(rate_qps);
    assert!(cv.is_finite() && cv > 0.0, "CV must be positive, got {cv}");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6A_33A1);
    let shape = 1.0 / (cv * cv);
    let scale = cv * cv / rate_qps; // shape × scale = 1 / rate.
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            t += gamma_sample(&mut rng, shape) * scale;
            secs_to_nanos(t)
        })
        .collect()
}

/// Diurnally modulated Poisson arrivals averaging `rate_qps`: the
/// instantaneous rate follows `rate × (1 + 0.75 sin(2πt / period))` with
/// two full cycles over the run's expected span (thinning construction), so
/// the run sweeps through peak and trough load like a compressed day.
///
/// # Panics
///
/// Panics if `rate_qps` is not positive and finite.
pub fn diurnal_arrivals(seed: u64, rate_qps: f64, n: usize) -> Vec<Nanos> {
    assert_rate(rate_qps);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1_42A1);
    let span = n.max(1) as f64 / rate_qps;
    let period = span / DIURNAL_CYCLES;
    let max_rate = rate_qps * (1.0 + DIURNAL_AMPLITUDE);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / max_rate;
        let rate_t =
            rate_qps * (1.0 + DIURNAL_AMPLITUDE * (std::f64::consts::TAU * t / period).sin());
        let accept: f64 = rng.gen_range(0.0..1.0);
        if accept < rate_t / max_rate {
            out.push(secs_to_nanos(t));
        }
    }
    out
}

/// An arrival-process family member, for CLI flags and bench sweeps.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum ArrivalProcess {
    /// Plain Poisson at the configured rate (the paper's workload).
    #[default]
    Poisson,
    /// On/off bursts at `factor ×` the average rate ([`burst_arrivals`]).
    Burst {
        /// Burst density relative to the average rate (≥ 1).
        factor: f64,
    },
    /// Gamma renewal process with heavy-tailed gaps ([`gamma_arrivals`]).
    Gamma {
        /// Coefficient of variation of the inter-arrival gaps (> 0;
        /// CV > 1 is over-dispersed).
        cv: f64,
    },
    /// Sinusoidal day-cycle modulation ([`diurnal_arrivals`]).
    Diurnal,
}

impl ArrivalProcess {
    /// Short stable name, for reports.
    pub fn name(self) -> &'static str {
        match self {
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Burst { .. } => "burst",
            ArrivalProcess::Gamma { .. } => "gamma",
            ArrivalProcess::Diurnal => "diurnal",
        }
    }

    /// Generates `n` arrival times averaging `rate_qps`.
    pub fn arrivals(self, seed: u64, rate_qps: f64, n: usize) -> Vec<Nanos> {
        match self {
            ArrivalProcess::Poisson => poisson_arrivals(seed, rate_qps, n),
            ArrivalProcess::Burst { factor } => burst_arrivals(seed, rate_qps, factor, n),
            ArrivalProcess::Gamma { cv } => gamma_arrivals(seed, rate_qps, cv, n),
            ArrivalProcess::Diurnal => diurnal_arrivals(seed, rate_qps, n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_increasing() {
        let a = poisson_arrivals(1, 2.0, 100);
        let b = poisson_arrivals(1, 2.0, 100);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn poisson_rate_is_roughly_respected() {
        let a = poisson_arrivals(7, 2.0, 2_000);
        let span_secs = *a.last().unwrap() as f64 / 1e9;
        let rate = 2_000.0 / span_secs;
        assert!((1.6..=2.4).contains(&rate), "empirical rate {rate}");
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(poisson_arrivals(1, 2.0, 10), poisson_arrivals(2, 2.0, 10));
    }

    #[test]
    fn sequential_is_evenly_spaced() {
        let a = sequential_arrivals(1.5, 4);
        assert_eq!(a, vec![0, 1_500_000_000, 3_000_000_000, 4_500_000_000]);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = poisson_arrivals(0, 0.0, 1);
    }

    fn empirical_rate(arrivals: &[Nanos]) -> f64 {
        arrivals.len() as f64 / (*arrivals.last().unwrap() as f64 / 1e9)
    }

    /// Coefficient of variation of the inter-arrival gaps.
    fn gap_cv(arrivals: &[Nanos]) -> f64 {
        let gaps: Vec<f64> = arrivals.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        var.sqrt() / mean
    }

    #[test]
    fn burst_is_deterministic_increasing_and_rate_preserving() {
        let a = burst_arrivals(3, 0.5, 4.0, 1_000);
        assert_eq!(a, burst_arrivals(3, 0.5, 4.0, 1_000));
        for w in a.windows(2) {
            assert!(w[0] < w[1]);
        }
        let rate = empirical_rate(&a);
        assert!((0.38..=0.65).contains(&rate), "empirical rate {rate}");
        // Factor 1 degenerates to plain Poisson-like smoothness; factor 8
        // clumps arrivals far harder.
        let smooth = burst_arrivals(3, 0.5, 1.0, 1_000);
        assert!(gap_cv(&a) > gap_cv(&smooth) * 1.5);
        let denser = burst_arrivals(3, 0.5, 8.0, 1_000);
        assert!(gap_cv(&denser) > gap_cv(&smooth) * 2.0);
    }

    #[test]
    fn burst_on_windows_hold_the_configured_density() {
        // Within a burst the local rate is factor × the average: the median
        // gap is ~1/(factor·rate), far below the mean gap of 1/rate.
        let a = burst_arrivals(11, 1.0, 8.0, 2_000);
        let mut gaps: Vec<u64> = a.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_unstable();
        let median_secs = gaps[gaps.len() / 2] as f64 / 1e9;
        assert!(median_secs < 0.4, "median gap {median_secs}s not bursty");
    }

    #[test]
    fn gamma_matches_rate_and_dispersion() {
        let a = gamma_arrivals(5, 2.0, 2.5, 4_000);
        assert_eq!(a, gamma_arrivals(5, 2.0, 2.5, 4_000));
        for w in a.windows(2) {
            assert!(w[0] <= w[1]);
        }
        let rate = empirical_rate(&a);
        assert!((1.6..=2.4).contains(&rate), "empirical rate {rate}");
        let cv = gap_cv(&a);
        assert!((1.9..=3.1).contains(&cv), "empirical CV {cv}");
        // CV = 1 reduces to the exponential gaps of a Poisson process.
        let poissonish = gap_cv(&gamma_arrivals(5, 2.0, 1.0, 4_000));
        assert!(
            (0.85..=1.15).contains(&poissonish),
            "CV=1 gave {poissonish}"
        );
    }

    #[test]
    fn diurnal_sweeps_between_peak_and_trough() {
        let n = 2_000;
        let a = diurnal_arrivals(9, 2.0, n);
        assert_eq!(a, diurnal_arrivals(9, 2.0, n));
        for w in a.windows(2) {
            assert!(w[0] < w[1]);
        }
        let rate = empirical_rate(&a);
        assert!((1.5..=2.6).contains(&rate), "empirical rate {rate}");
        // Count arrivals per expected quarter-cycle: the first quarter
        // (rising toward peak) must far out-pace the third (trough).
        let span = *a.last().unwrap() as f64;
        let quarter = |k: u64| {
            a.iter()
                .filter(|&&t| {
                    let frac = t as f64 / span * 8.0; // 2 cycles × 4 quarters.
                    (frac as u64) % 4 == k
                })
                .count() as f64
        };
        assert!(
            quarter(0) > quarter(2) * 1.5,
            "no diurnal modulation: peak {} vs trough {}",
            quarter(0),
            quarter(2)
        );
    }

    #[test]
    fn arrival_process_dispatch_matches_the_free_functions() {
        assert_eq!(
            ArrivalProcess::Poisson.arrivals(1, 2.0, 50),
            poisson_arrivals(1, 2.0, 50)
        );
        assert_eq!(
            ArrivalProcess::Burst { factor: 4.0 }.arrivals(1, 2.0, 50),
            burst_arrivals(1, 2.0, 4.0, 50)
        );
        assert_eq!(
            ArrivalProcess::Gamma { cv: 2.0 }.arrivals(1, 2.0, 50),
            gamma_arrivals(1, 2.0, 2.0, 50)
        );
        assert_eq!(
            ArrivalProcess::Diurnal.arrivals(1, 2.0, 50),
            diurnal_arrivals(1, 2.0, 50)
        );
        assert_eq!(ArrivalProcess::default().name(), "poisson");
        assert_eq!(ArrivalProcess::Burst { factor: 2.0 }.name(), "burst");
        assert_eq!(ArrivalProcess::Gamma { cv: 2.0 }.name(), "gamma");
        assert_eq!(ArrivalProcess::Diurnal.name(), "diurnal");
    }

    #[test]
    #[should_panic(expected = "burst factor must be >= 1")]
    fn sub_unit_burst_factor_panics() {
        let _ = burst_arrivals(0, 1.0, 0.5, 1);
    }

    #[test]
    #[should_panic(expected = "CV must be positive")]
    fn non_positive_cv_panics() {
        let _ = gamma_arrivals(0, 1.0, 0.0, 1);
    }
}

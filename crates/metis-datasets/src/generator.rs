//! The corpus + query generator.
//!
//! For every query the generator builds a private *document* on the query's
//! own topic, plants the needed facts at spread-out positions, surrounds
//! each fact with repeated *subject* words that the query text echoes (the
//! retrieval signal), splits all documents into fixed-size chunks, and
//! indexes everything in one shared vector database — so retrieving for one
//! query competes against every other query's chunks, exactly like the
//! paper's per-dataset corpora.

use std::sync::Arc;

use metis_embed::{Embedder, HashEmbed};
use metis_llm::{BaseFact, DerivedFact, QueryTruth};
use metis_text::{
    AnnotatedText, ChunkId, Chunker, ChunkerConfig, FactId, TextGen, TokenChunk, TokenId,
    Tokenizer, TopicVocab,
};
use metis_vectordb::{IndexSpec, Quantization, VectorDb};

use crate::dataset::Dataset;
use crate::kinds::DatasetKind;
use crate::profile::{Complexity, TrueProfile};
use crate::query::{QueryId, QuerySpec};

const QUESTION_WORDS: &[&str] = &[
    "what",
    "which",
    "when",
    "where",
    "why",
    "how",
    "compare",
    "identify",
    "list",
    "summarize",
    "is",
    "the",
    "of",
    "for",
    "between",
];

/// Number of distinct boilerplate words the generation model may emit.
const BOILERPLATE_WORDS: usize = 24;

/// Builds one synthetic dataset with `num_queries` queries.
///
/// Deterministic in `(kind, num_queries, seed)`.
pub fn build_dataset(kind: DatasetKind, num_queries: usize, seed: u64) -> Dataset {
    build_dataset_full(
        kind,
        num_queries,
        seed,
        Arc::new(HashEmbed::default()),
        IndexSpec::Flat,
    )
}

/// [`build_dataset`] with a caller-chosen embedding model (used by the
/// §A.2 embedding-sensitivity experiment).
pub fn build_dataset_with_embedder(
    kind: DatasetKind,
    num_queries: usize,
    seed: u64,
    embedder: Arc<dyn Embedder>,
) -> Dataset {
    build_dataset_full(kind, num_queries, seed, embedder, IndexSpec::Flat)
}

/// [`build_dataset`] with a caller-chosen retrieval index (the corpus and
/// queries are identical for every index; only the search structure built
/// over the embeddings differs).
pub fn build_dataset_with_index(
    kind: DatasetKind,
    num_queries: usize,
    seed: u64,
    index: IndexSpec,
) -> Dataset {
    build_dataset_full(
        kind,
        num_queries,
        seed,
        Arc::new(HashEmbed::default()),
        index,
    )
}

/// [`build_dataset_with_index`] with a caller-chosen vector storage scheme
/// (exact f32 or sq8 scalar quantization) on top of the index choice.
pub fn build_dataset_with_spec(
    kind: DatasetKind,
    num_queries: usize,
    seed: u64,
    index: IndexSpec,
    quant: Quantization,
) -> Dataset {
    build_dataset_impl(
        kind,
        num_queries,
        seed,
        Arc::new(HashEmbed::default()),
        index,
        quant,
    )
}

/// Fully parameterized dataset construction: embedding model and retrieval
/// index both caller-chosen.
pub fn build_dataset_full(
    kind: DatasetKind,
    num_queries: usize,
    seed: u64,
    embedder: Arc<dyn Embedder>,
    index: IndexSpec,
) -> Dataset {
    build_dataset_impl(kind, num_queries, seed, embedder, index, Quantization::F32)
}

fn build_dataset_impl(
    kind: DatasetKind,
    num_queries: usize,
    seed: u64,
    embedder: Arc<dyn Embedder>,
    index: IndexSpec,
    quant: Quantization,
) -> Dataset {
    let params = kind.params();
    let mut tokenizer = Tokenizer::new();
    let mut gen = TextGen::new(seed ^ 0x0DA7_A5E7);

    let question_pool: Vec<TokenId> = QUESTION_WORDS
        .iter()
        .map(|w| tokenizer.vocab_mut().intern(w))
        .collect();
    let boilerplate: Vec<TokenId> = (0..BOILERPLATE_WORDS)
        .map(|i| tokenizer.vocab_mut().intern(&format!("boiler-{i}")))
        .collect();

    let mut next_fact: u64 = 1;
    let mut queries = Vec::with_capacity(num_queries);
    let mut all_chunks: Vec<TokenChunk> = Vec::new();

    for q in 0..num_queries {
        let topic = TopicVocab::build(
            &mut tokenizer,
            &format!("{}-q{q}", params.name),
            params.topic_width,
            96,
        );
        let pieces = gen.range(params.pieces.0 as usize, params.pieces.1 as usize) as u32;
        // Document length grows with the number of needed facts (multi-hop
        // questions draw on longer source material), jittered within the
        // Table-1 band. This is what makes retrieval *depth* query-dependent:
        // hard queries hide weak facts deep in long documents.
        let doc_len = if params.pieces.1 > params.pieces.0 {
            let (lo, hi) = params.doc_tokens;
            let span = f64::from(params.pieces.1 - params.pieces.0);
            let frac = f64::from(pieces - params.pieces.0) / span;
            let centre = lo as f64 + (hi - lo) as f64 * frac;
            let jitter = 0.8 + 0.4 * gen.range(0, 1000) as f64 / 1000.0;
            ((centre * jitter) as usize).clamp(lo, hi)
        } else {
            gen.range(params.doc_tokens.0, params.doc_tokens.1)
        };
        let joint = pieces > 1 && gen.chance(params.joint_prob);
        // Aggregating many pieces of information is inherently a deep-
        // reasoning task, whatever the phrasing; below that, complexity
        // follows the dataset's question style.
        let complexity = if pieces >= 4 || gen.chance(params.high_complexity_prob) {
            Complexity::High
        } else {
            Complexity::Low
        };

        // Base facts with their subject words.
        let mut base = Vec::new();
        let mut subjects: Vec<Vec<TokenId>> = Vec::new();
        for _ in 0..pieces {
            let id = FactId(next_fact);
            next_fact += 1;
            let len = gen.range(params.fact_len.0, params.fact_len.1);
            let phrase = gen.fact_phrase(&mut tokenizer, "fact", len);
            let subject = gen.fact_phrase(&mut tokenizer, "subj", params.subject_len);
            subjects.push(subject);
            base.push(BaseFact {
                id,
                answer: phrase,
                in_answer: params.base_in_answer || !joint,
            });
        }

        // Joint-reasoning conclusion over all base facts.
        let derived = if joint {
            let id = FactId(next_fact);
            next_fact += 1;
            let len = gen.range(params.derived_answer_len.0, params.derived_answer_len.1);
            vec![DerivedFact {
                id,
                components: base.iter().map(|b| b.id).collect(),
                answer: gen.fact_phrase(&mut tokenizer, "derived", len),
            }]
        } else {
            Vec::new()
        };

        // Build the document: one segment per fact, fact planted at a random
        // interior position surrounded by its repeated subject block.
        let mut doc = AnnotatedText::new();
        let seg = doc_len / pieces.max(1) as usize;
        for (i, fact) in base.iter().enumerate() {
            let pre = gen.range(seg / 10, seg * 6 / 10);
            doc.push_tokens(&gen.filler(&topic, pre));
            // Weakly mentioned facts name their subject once instead of
            // `subject_repeats` times (see `GenParams::weak_fact_prob`), so
            // their chunk ranks below every strongly-subject-bearing chunk
            // but still above plain topic filler — retrieval must go deep to
            // find it, yet the paper's 3× depth leeway remains sufficient.
            let repeats = if gen.chance(params.weak_fact_prob) {
                1
            } else {
                params.subject_repeats
            };
            for _ in 0..repeats {
                doc.push_tokens(&subjects[i]);
            }
            doc.push_fact(fact.id, &fact.answer.clone());
            let used = pre + repeats * params.subject_len + fact.answer.len();
            doc.push_tokens(&gen.filler(&topic, seg.saturating_sub(used)));
        }

        // Query text: each fact's subject words + topic + question words.
        let mut qtokens = Vec::new();
        let mut subject_spans = Vec::with_capacity(subjects.len());
        for s in &subjects {
            subject_spans.push((qtokens.len(), qtokens.len() + s.len()));
            qtokens.extend_from_slice(s);
        }
        // A real question names its domain repeatedly ("NVIDIA's quarterly
        // operating costs..."): enough topic words that the query's own
        // document outranks foreign documents even for weakly-mentioned
        // facts.
        qtokens.extend(gen.filler(&topic, 16));
        for _ in 0..4 {
            qtokens.push(question_pool[gen.range(0, question_pool.len() - 1)]);
        }

        // True summarization budget: enough for ~2 facts plus framing.
        let avg_fact = (params.fact_len.0 + params.fact_len.1) / 2;
        let lo = (2 * (avg_fact + 2)).max(10) as u32;
        let hi = (lo + 30 + pieces * 8).min(300);
        let profile = TrueProfile {
            complexity,
            joint,
            pieces,
            summary_range: (lo, hi),
        };
        debug_assert!(profile.is_well_formed(), "bad profile: {profile:?}");

        queries.push(QuerySpec {
            id: QueryId(q as u64),
            tokens: qtokens,
            truth: QueryTruth { base, derived },
            profile,
            context_tokens: doc.len(),
            subject_spans,
        });

        // Chunk the document with a small overlap so boundary facts survive,
        // then append with globally dense chunk ids.
        let overlap = (params.chunk_size / 8).min(64);
        let chunks = Chunker::new(ChunkerConfig {
            chunk_size: params.chunk_size,
            overlap,
        })
        .split(&doc);
        for c in chunks {
            all_chunks.push(TokenChunk {
                id: ChunkId(all_chunks.len() as u32),
                text: c.text,
            });
        }
    }

    let db = VectorDb::build_with_spec(
        &all_chunks,
        embedder,
        params.description,
        params.chunk_size,
        index,
        quant,
    );
    Dataset {
        kind,
        db,
        queries,
        boilerplate,
        tokenizer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let a = build_dataset(DatasetKind::Squad, 5, 1);
        let b = build_dataset(DatasetKind::Squad, 5, 1);
        assert_eq!(a.queries.len(), b.queries.len());
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.tokens, y.tokens);
            assert_eq!(x.gold_answer(), y.gold_answer());
        }
        assert_eq!(a.db.len(), b.db.len());
    }

    #[test]
    fn squad_queries_are_single_fact() {
        let d = build_dataset(DatasetKind::Squad, 10, 2);
        for q in &d.queries {
            assert_eq!(q.profile.pieces, 1);
            assert_eq!(q.truth.base.len(), 1);
        }
    }

    #[test]
    fn musique_queries_mostly_joint() {
        let d = build_dataset(DatasetKind::Musique, 40, 3);
        let joint = d.queries.iter().filter(|q| q.profile.joint).count();
        // Multi-piece queries are always joint; ~1/4 are single-hop.
        assert!(joint > 20, "only {joint}/40 joint");
        // Joint implies a derived conclusion in the truth.
        for q in &d.queries {
            assert_eq!(q.profile.joint, q.truth.requires_joint());
        }
    }

    #[test]
    fn profiles_are_well_formed() {
        for kind in DatasetKind::all() {
            let d = build_dataset(kind, 20, 4);
            for q in &d.queries {
                assert!(q.profile.is_well_formed(), "{kind:?} {:?}", q.profile);
                assert_eq!(q.profile.pieces as usize, q.truth.pieces());
            }
        }
    }

    #[test]
    fn every_needed_fact_is_findable_in_db() {
        for kind in DatasetKind::all() {
            let d = build_dataset(kind, 10, 5);
            // Union of facts present in all chunks.
            let mut present = std::collections::HashSet::new();
            for i in 0..d.db.len() {
                let c = d.db.store().get(metis_text::ChunkId(i as u32)).unwrap();
                for f in c.fact_ids() {
                    present.insert(f);
                }
            }
            for q in &d.queries {
                for b in &q.truth.base {
                    assert!(
                        present.contains(&b.id),
                        "{kind:?}: fact {:?} lost in chunking",
                        b.id
                    );
                }
            }
        }
    }

    #[test]
    fn retrieval_finds_needed_facts_within_3x_pieces() {
        // The paper's retriever fetches 2–3× the minimally needed chunks
        // (§4.2 footnote); our generator must make that sufficient.
        for kind in DatasetKind::all() {
            let d = build_dataset(kind, 15, 6);
            let mut total_needed = 0usize;
            let mut total_found = 0usize;
            for q in &d.queries {
                let k = (q.profile.pieces as usize) * 3;
                let results = d.db.retrieve(&q.tokens, k);
                let mut found: std::collections::HashSet<_> = std::collections::HashSet::new();
                for r in &results {
                    for f in r.text.fact_ids() {
                        found.insert(f);
                    }
                }
                for b in &q.truth.base {
                    total_needed += 1;
                    if found.contains(&b.id) {
                        total_found += 1;
                    }
                }
            }
            let recall = total_found as f64 / total_needed as f64;
            assert!(
                recall >= 0.85,
                "{kind:?}: retrieval recall@3x = {recall:.2}"
            );
        }
    }

    #[test]
    fn ivf_dataset_shares_the_corpus_and_keeps_recall_close() {
        let flat = build_dataset(DatasetKind::Musique, 10, 6);
        let ivf = build_dataset_with_index(DatasetKind::Musique, 10, 6, IndexSpec::ivf(16, 12));
        assert_eq!(flat.db.len(), ivf.db.len(), "same corpus, different index");
        assert_eq!(ivf.db.index_meta().spec, IndexSpec::ivf(16, 12));
        // At generous nprobe the IVF index finds most of what flat finds.
        let mut overlap = 0usize;
        let mut total = 0usize;
        for q in &ivf.queries {
            let a: std::collections::HashSet<_> = flat
                .db
                .retrieve(&q.tokens, 5)
                .iter()
                .map(|r| r.hit.chunk)
                .collect();
            for r in ivf.db.retrieve(&q.tokens, 5) {
                total += 1;
                if a.contains(&r.hit.chunk) {
                    overlap += 1;
                }
            }
        }
        assert!(
            overlap as f64 / total as f64 > 0.7,
            "IVF@5 overlap with flat only {overlap}/{total}"
        );
    }

    #[test]
    fn gold_answers_are_nonempty_and_bounded() {
        for kind in DatasetKind::all() {
            let d = build_dataset(kind, 20, 7);
            for q in &d.queries {
                let gold = q.gold_answer();
                assert!(!gold.is_empty(), "{kind:?}: empty gold answer");
                assert!(gold.len() <= 80, "{kind:?}: gold too long: {}", gold.len());
            }
        }
    }

    #[test]
    fn context_lengths_match_table1() {
        let d = build_dataset(DatasetKind::FinSec, 20, 8);
        for q in &d.queries {
            assert!(
                q.context_tokens >= 3_500 && q.context_tokens <= 11_000,
                "FinSec context {} outside Table-1 band",
                q.context_tokens
            );
        }
    }

    #[test]
    fn boilerplate_disjoint_from_gold_answers() {
        let d = build_dataset(DatasetKind::Qmsum, 10, 9);
        let boiler: std::collections::HashSet<_> = d.boilerplate.iter().copied().collect();
        for q in &d.queries {
            for t in q.gold_answer() {
                assert!(!boiler.contains(&t));
            }
        }
    }
}

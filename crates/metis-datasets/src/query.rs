//! Query specifications.

use metis_llm::QueryTruth;
use metis_text::TokenId;

use crate::profile::TrueProfile;

/// Identifier of a query within one dataset.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct QueryId(pub u64);

/// A fully specified synthetic query.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// The query's id.
    pub id: QueryId,
    /// Query text tokens (subject + topic + question words) — the retrieval
    /// key and the profiler's input.
    pub tokens: Vec<TokenId>,
    /// Evidence ground truth (needed facts, derived conclusions, gold
    /// answer).
    pub truth: QueryTruth,
    /// True profile (what a perfect profiler would output).
    pub profile: TrueProfile,
    /// Length of the query's source document in tokens (Table 1 "Input").
    pub context_tokens: usize,
    /// Token ranges of each needed fact's subject mention inside `tokens`,
    /// in `truth.base` order — the handle an agentic planner uses to split
    /// the question into per-fact sub-queries (§9).
    pub subject_spans: Vec<(usize, usize)>,
}

impl QuerySpec {
    /// Gold answer token bag (convenience passthrough).
    pub fn gold_answer(&self) -> Vec<TokenId> {
        self.truth.gold_answer()
    }
}

//! Million-scale ANN benchmark corpora with *planted* ground truth.
//!
//! The workload generators in [`generator`](crate::generator) produce
//! text corpora whose retrieval signal lives in token overlap; their
//! embedding dimension (1024 for the default feature-hash embedder) and
//! per-chunk text make them too heavy to scale to 10⁶ chunks. This module
//! generates *raw vector* corpora purpose-built for index benchmarking:
//! low dimension, no text, and — crucially — exact nearest-neighbor ground
//! truth known **by construction**, so recall@k at a million vectors costs
//! nothing to evaluate (no brute-force pass over the corpus).
//!
//! # Construction
//!
//! Each of the `num_queries` query points is a uniform sample from the unit
//! cube, kept only if it is at least `2 × CLEAR_RADIUS` from every earlier
//! query (in 64 dimensions two uniform samples are ~3.3 apart on average,
//! so this essentially never rejects). For each query, its `k` gold
//! neighbors are planted on spheres of *distinct* increasing radii, all
//! strictly inside `0.9 × CLEAR_RADIUS`. Every background vector is
//! rejection-sampled to lie at least `CLEAR_RADIUS` from every query
//! point. Therefore, for each query:
//!
//! - its own planted neighbors are at distance ≤ `0.9 × CLEAR_RADIUS`;
//! - every other query's neighbors are at distance ≥ `1.1 × CLEAR_RADIUS`
//!   (triangle inequality from the `2 × CLEAR_RADIUS` query separation);
//! - every background vector is at distance ≥ `CLEAR_RADIUS`.
//!
//! The planted neighbors are exactly the global top-`k`, in planted-radius
//! order, with no ties — the gold list requires no search to produce and a
//! small-corpus test verifies it against a brute-force scan.

use metis_text::ChunkId;

/// Minimum distance from a query point to any non-gold corpus vector.
/// Gold neighbors are planted strictly inside `0.9 ×` this radius.
const CLEAR_RADIUS: f32 = 1.0;

/// Shape of one generated ANN corpus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnnConfig {
    /// Vector dimension. Small (default 64) so a million vectors fit in a
    /// few hundred MB.
    pub dim: usize,
    /// Total corpus size, planted neighbors included.
    pub num_vectors: usize,
    /// Number of query points with planted ground truth.
    pub num_queries: usize,
    /// Gold neighbors planted per query (= the `k` of recall@k).
    pub k: usize,
    /// Seed; generation is deterministic in the full config.
    pub seed: u64,
}

impl AnnConfig {
    /// The benchmark shape: `dim = 64`, 64 queries, `k = 10` gold
    /// neighbors, at the given corpus size.
    pub fn at_scale(num_vectors: usize, seed: u64) -> Self {
        Self {
            dim: 64,
            num_vectors,
            num_queries: 64,
            k: 10,
            seed,
        }
    }
}

/// One query point and its exact nearest neighbors.
#[derive(Clone, Debug)]
pub struct AnnQuery {
    /// The query vector.
    pub vector: Vec<f32>,
    /// The exact top-`k` chunk ids, nearest first — correct by
    /// construction.
    pub gold: Vec<ChunkId>,
}

/// A generated corpus: items ready to feed any `VectorIndex` builder plus
/// queries with exact gold neighbor lists.
#[derive(Clone, Debug)]
pub struct AnnCorpus {
    /// The generating configuration.
    pub config: AnnConfig,
    /// All corpus vectors with dense ids (`0..num_vectors`).
    pub items: Vec<(ChunkId, Vec<f32>)>,
    /// Query points with planted ground truth.
    pub queries: Vec<AnnQuery>,
}

impl AnnCorpus {
    /// Generates the corpus for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, `num_queries == 0`, `k == 0`, or the corpus is
    /// too small to hold every query's planted neighbors.
    pub fn generate(config: AnnConfig) -> Self {
        assert!(config.dim > 0, "dim must be positive");
        assert!(config.num_queries > 0, "need at least one query");
        assert!(config.k > 0, "k must be positive");
        let planted = config.num_queries * config.k;
        assert!(
            planted <= config.num_vectors,
            "corpus of {} cannot hold {planted} planted neighbors",
            config.num_vectors
        );

        let mut rng = Rng::new(config.seed ^ 0x414E_4E00);

        // Query points, pairwise >= 2 * CLEAR_RADIUS apart.
        let mut centers: Vec<Vec<f32>> = Vec::with_capacity(config.num_queries);
        while centers.len() < config.num_queries {
            let cand = rng.unit_cube_point(config.dim);
            let min_d2 = 4.0 * CLEAR_RADIUS * CLEAR_RADIUS;
            if centers.iter().all(|c| dist2_at_least(c, &cand, min_d2)) {
                centers.push(cand);
            }
        }

        let mut items: Vec<(ChunkId, Vec<f32>)> = Vec::with_capacity(config.num_vectors);
        let mut queries: Vec<AnnQuery> = Vec::with_capacity(config.num_queries);

        // Plant each query's gold neighbors at distinct increasing radii,
        // all strictly inside the clear zone.
        for center in &centers {
            let mut gold = Vec::with_capacity(config.k);
            for i in 0..config.k {
                let radius = 0.9 * CLEAR_RADIUS * (i + 1) as f32 / config.k as f32;
                let point = rng.point_at_radius(center, radius);
                let id = ChunkId(items.len() as u32);
                items.push((id, point));
                gold.push(id);
            }
            queries.push(AnnQuery {
                vector: center.clone(),
                gold,
            });
        }

        // Background: uniform cube samples rejected inside any clear zone.
        // In 64 dimensions the radius-1 ball is a vanishing fraction of the
        // cube, so rejection is essentially free — the check only *proves*
        // the gold lists exact.
        let clear2 = CLEAR_RADIUS * CLEAR_RADIUS;
        while items.len() < config.num_vectors {
            let cand = rng.unit_cube_point(config.dim);
            if centers.iter().all(|c| dist2_at_least(c, &cand, clear2)) {
                items.push((ChunkId(items.len() as u32), cand));
            }
        }

        Self {
            config,
            items,
            queries,
        }
    }

    /// Fraction of `gold` ids present anywhere in `hits` — recall@k when
    /// `hits` is a top-`gold.len()` result list.
    pub fn recall(gold: &[ChunkId], hits: &[ChunkId]) -> f64 {
        if gold.is_empty() {
            return 1.0;
        }
        let found = gold.iter().filter(|g| hits.contains(g)).count();
        found as f64 / gold.len() as f64
    }
}

/// `true` iff the squared distance between `a` and `b` is at least
/// `threshold` — early-exits as soon as the partial sum crosses it, which
/// in high dimension is almost immediately for any non-neighbor pair.
fn dist2_at_least(a: &[f32], b: &[f32], threshold: f32) -> bool {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
        if acc >= threshold {
            return true;
        }
    }
    false
}

/// SplitMix64 — the repo's standard tiny deterministic generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    fn unit_cube_point(&mut self, dim: usize) -> Vec<f32> {
        (0..dim).map(|_| self.unit()).collect()
    }

    /// A point exactly `radius` from `center`, in a pseudo-random
    /// direction.
    fn point_at_radius(&mut self, center: &[f32], radius: f32) -> Vec<f32> {
        loop {
            let dir: Vec<f32> = center.iter().map(|_| self.unit() * 2.0 - 1.0).collect();
            let norm = dir.iter().map(|d| d * d).sum::<f32>().sqrt();
            if norm > 1e-3 {
                return center
                    .iter()
                    .zip(&dir)
                    .map(|(c, d)| c + d * radius / norm)
                    .collect();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist2(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn planted_gold_matches_a_brute_force_scan() {
        let corpus = AnnCorpus::generate(AnnConfig {
            dim: 16,
            num_vectors: 500,
            num_queries: 8,
            k: 5,
            seed: 7,
        });
        for q in &corpus.queries {
            let mut order: Vec<(f32, ChunkId)> = corpus
                .items
                .iter()
                .map(|(id, v)| (dist2(&q.vector, v), *id))
                .collect();
            order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let brute: Vec<ChunkId> = order.iter().take(5).map(|&(_, id)| id).collect();
            assert_eq!(brute, q.gold, "planted gold must be the exact top-k");
        }
    }

    #[test]
    fn gold_neighbors_sit_at_distinct_increasing_radii() {
        let corpus = AnnCorpus::generate(AnnConfig {
            dim: 32,
            num_vectors: 200,
            num_queries: 4,
            k: 6,
            seed: 11,
        });
        for q in &corpus.queries {
            let radii: Vec<f32> = q
                .gold
                .iter()
                .map(|id| dist2(&q.vector, &corpus.items[id.0 as usize].1).sqrt())
                .collect();
            for w in radii.windows(2) {
                assert!(w[0] < w[1], "radii must strictly increase: {radii:?}");
            }
            assert!(*radii.last().unwrap() < CLEAR_RADIUS);
        }
    }

    #[test]
    fn generation_is_deterministic_and_sized_right() {
        let cfg = AnnConfig::at_scale(2_000, 42);
        let a = AnnCorpus::generate(cfg);
        let b = AnnCorpus::generate(cfg);
        assert_eq!(a.items.len(), 2_000);
        assert_eq!(a.queries.len(), 64);
        assert_eq!(a.queries[0].gold.len(), 10);
        assert_eq!(a.items, b.items);
        for (qa, qb) in a.queries.iter().zip(&b.queries) {
            assert_eq!(qa.vector, qb.vector);
            assert_eq!(qa.gold, qb.gold);
        }
        // Dense ids.
        for (i, (id, v)) in a.items.iter().enumerate() {
            assert_eq!(id.0 as usize, i);
            assert_eq!(v.len(), 64);
        }
    }

    #[test]
    fn recall_counts_matches_anywhere_in_the_hit_list() {
        let gold = [ChunkId(1), ChunkId(2), ChunkId(3), ChunkId(4)];
        let hits = [ChunkId(4), ChunkId(9), ChunkId(1)];
        assert_eq!(AnnCorpus::recall(&gold, &hits), 0.5);
        assert_eq!(AnnCorpus::recall(&[], &hits), 1.0);
    }
}

//! Per-dataset generation parameters.
//!
//! Each parameter table is fit to the corresponding public dataset's
//! characteristics as reported in the paper (Table 1 plus the task
//! descriptions in §7.1).

/// The four evaluation workloads.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DatasetKind {
    /// SQuAD: single-hop reading comprehension.
    Squad,
    /// MuSiQue: multi-hop reasoning QA.
    Musique,
    /// KG RAG FinSec: document-level financial QA.
    FinSec,
    /// QMSum: query-based meeting summarization.
    Qmsum,
}

impl DatasetKind {
    /// All four datasets in the paper's presentation order.
    pub fn all() -> [DatasetKind; 4] {
        [
            DatasetKind::Squad,
            DatasetKind::Musique,
            DatasetKind::FinSec,
            DatasetKind::Qmsum,
        ]
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Squad => "Squad",
            DatasetKind::Musique => "Musique",
            DatasetKind::FinSec => "KG RAG FinSec",
            DatasetKind::Qmsum => "QMSUM",
        }
    }

    /// The generation parameter table for this dataset.
    pub fn params(self) -> GenParams {
        match self {
            DatasetKind::Squad => GenParams {
                name: "Squad",
                description: "Wikipedia articles with single-hop reading \
                              comprehension questions whose answers are text \
                              segments of the passage",
                chunk_size: 256,
                doc_tokens: (400, 2_000),
                pieces: (1, 1),
                joint_prob: 0.05,
                high_complexity_prob: 0.08,
                fact_len: (2, 4),
                derived_answer_len: (2, 4),
                base_in_answer: true,
                topic_width: 48,
                subject_len: 6,
                subject_repeats: 3,
                weak_fact_prob: 0.35,
            },
            DatasetKind::Musique => GenParams {
                name: "Musique",
                description: "Multihop questions composed from single-hop \
                              questions; one reasoning step critically relies \
                              on information from another",
                chunk_size: 512,
                doc_tokens: (1_000, 5_000),
                pieces: (1, 4),
                joint_prob: 1.0,
                high_complexity_prob: 0.55,
                fact_len: (3, 6),
                derived_answer_len: (4, 8),
                base_in_answer: false,
                topic_width: 48,
                subject_len: 6,
                subject_repeats: 3,
                weak_fact_prob: 0.55,
            },
            DatasetKind::FinSec => GenParams {
                name: "KG RAG FinSec",
                description: "Quarterly financial reports of Fortune 500 \
                              companies: revenue growth indicators, product \
                              release information, sales",
                chunk_size: 1_000,
                doc_tokens: (4_000, 10_000),
                pieces: (2, 6),
                joint_prob: 1.0,
                high_complexity_prob: 0.70,
                fact_len: (3, 6),
                derived_answer_len: (4, 8),
                base_in_answer: true,
                topic_width: 64,
                subject_len: 6,
                subject_repeats: 3,
                weak_fact_prob: 0.55,
            },
            DatasetKind::Qmsum => GenParams {
                name: "QMSUM",
                description: "Multi-domain meeting transcripts with queries \
                              that summarize relevant spans of meetings",
                chunk_size: 1_024,
                doc_tokens: (4_000, 12_000),
                pieces: (3, 6),
                joint_prob: 1.0,
                high_complexity_prob: 0.90,
                fact_len: (6, 10),
                derived_answer_len: (5, 10),
                base_in_answer: true,
                topic_width: 64,
                subject_len: 6,
                subject_repeats: 3,
                weak_fact_prob: 0.55,
            },
        }
    }
}

/// Tunable knobs of the corpus/query generator.
#[derive(Clone, Copy, Debug)]
pub struct GenParams {
    /// Dataset display name.
    pub name: &'static str,
    /// One-line corpus description — the profiler's database metadata (§A.1).
    pub description: &'static str,
    /// Tokens per retrieval chunk.
    pub chunk_size: usize,
    /// Per-query document length range (Table 1 "Input").
    pub doc_tokens: (usize, usize),
    /// Needed facts per query.
    pub pieces: (u32, u32),
    /// Probability a multi-fact query requires joint reasoning.
    pub joint_prob: f64,
    /// Probability a query is High complexity.
    pub high_complexity_prob: f64,
    /// Fact phrase length range in tokens.
    pub fact_len: (usize, usize),
    /// Derived-conclusion answer length range in tokens.
    pub derived_answer_len: (usize, usize),
    /// Whether base facts' tokens appear in the gold answer (extractive QA
    /// and summarization: yes; pure multi-hop where hops are intermediate:
    /// no).
    pub base_in_answer: bool,
    /// Topic-specific vocabulary width per query document.
    pub topic_width: usize,
    /// Subject words planted next to each fact and echoed in the query.
    pub subject_len: usize,
    /// Times each subject word is repeated around its fact.
    pub subject_repeats: usize,
    /// Probability a fact is only *weakly mentioned* (subject block appears
    /// once instead of `subject_repeats` times), making its chunk rank
    /// deeper in retrieval. Weak facts are why per-query retrieval depth
    /// matters: a shallow fixed `num_chunks` misses them for fact-heavy
    /// queries while over-retrieving for simple ones.
    pub weak_fact_prob: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_datasets_with_distinct_names() {
        let names: std::collections::HashSet<_> =
            DatasetKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn table1_scales_are_ordered() {
        // Input scales grow Squad < Musique < FinSec ≤ QMSUM, as in Table 1.
        let s = DatasetKind::Squad.params();
        let m = DatasetKind::Musique.params();
        let f = DatasetKind::FinSec.params();
        let q = DatasetKind::Qmsum.params();
        assert!(s.doc_tokens.1 < m.doc_tokens.1);
        assert!(m.doc_tokens.1 < f.doc_tokens.1);
        assert!(f.doc_tokens.1 <= q.doc_tokens.1);
    }

    #[test]
    fn squad_is_single_hop() {
        let p = DatasetKind::Squad.params();
        assert_eq!(p.pieces, (1, 1));
        assert!(p.joint_prob < 0.1);
    }

    #[test]
    fn musique_requires_joint_reasoning() {
        assert!(DatasetKind::Musique.params().joint_prob > 0.8);
    }
}

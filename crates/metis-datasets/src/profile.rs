//! Ground-truth query profiles.
//!
//! §4.1 defines four profile dimensions the LLM profiler estimates:
//! query complexity (High/Low), joint-reasoning requirement (Yes/No),
//! pieces of information required (1–10), and summarization length
//! (a 30–200 token range). The generators emit the *true* values; the
//! profiler in `metis-profiler` estimates them with model-dependent noise.

/// Query complexity — "yes/no questions" vs "why questions" (§4.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Complexity {
    /// Simple lookups; shallow reasoning.
    Low,
    /// Deep reasoning; benefits from summarize-then-answer synthesis.
    High,
}

/// The true profile of a query, as constructed by the generator.
#[derive(Clone, Copy, Debug)]
pub struct TrueProfile {
    /// Query complexity.
    pub complexity: Complexity,
    /// Whether multiple facts must be read *jointly*.
    pub joint: bool,
    /// Distinct pieces of information required (1–10).
    pub pieces: u32,
    /// Tokens per chunk summary that preserve the needed evidence
    /// (`intermediate_length` ground truth), as a `[lo, hi]` range.
    pub summary_range: (u32, u32),
}

impl TrueProfile {
    /// Validates the §4.1 output ranges.
    pub fn is_well_formed(&self) -> bool {
        (1..=10).contains(&self.pieces)
            && self.summary_range.0 <= self.summary_range.1
            && self.summary_range.0 >= 1
            && self.summary_range.1 <= 300
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_accepts_paper_ranges() {
        let p = TrueProfile {
            complexity: Complexity::High,
            joint: true,
            pieces: 3,
            summary_range: (30, 200),
        };
        assert!(p.is_well_formed());
    }

    #[test]
    fn well_formed_rejects_inverted_range() {
        let p = TrueProfile {
            complexity: Complexity::Low,
            joint: false,
            pieces: 1,
            summary_range: (50, 20),
        };
        assert!(!p.is_well_formed());
    }

    #[test]
    fn well_formed_rejects_zero_pieces() {
        let p = TrueProfile {
            complexity: Complexity::Low,
            joint: false,
            pieces: 0,
            summary_range: (10, 20),
        };
        assert!(!p.is_well_formed());
    }
}

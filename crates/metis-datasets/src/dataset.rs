//! The assembled dataset and its Table-1 statistics.

use metis_text::{TokenId, Tokenizer};
use metis_vectordb::VectorDb;

use crate::kinds::DatasetKind;
use crate::query::QuerySpec;

/// One complete evaluation workload: corpus database + ground-truth queries.
pub struct Dataset {
    /// Which of the four datasets this simulates.
    pub kind: DatasetKind,
    /// The retrieval database over the full corpus.
    pub db: VectorDb,
    /// The query set with ground truth.
    pub queries: Vec<QuerySpec>,
    /// Boilerplate token pool for the generation model's non-answer words.
    pub boilerplate: Vec<TokenId>,
    /// The tokenizer (for decoding outputs in examples/reports).
    pub tokenizer: Tokenizer,
}

/// One row of the paper's Table 1 (token-length distributions).
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Task type label.
    pub task: &'static str,
    /// 5th/95th percentile of input (document) tokens.
    pub input: (usize, usize),
    /// 5th/95th percentile of gold-answer tokens.
    pub output: (usize, usize),
}

impl Dataset {
    /// Computes this dataset's Table-1 row from the generated queries.
    pub fn table1_row(&self) -> Table1Row {
        let mut inputs: Vec<usize> = self.queries.iter().map(|q| q.context_tokens).collect();
        let mut outputs: Vec<usize> = self.queries.iter().map(|q| q.gold_answer().len()).collect();
        inputs.sort_unstable();
        outputs.sort_unstable();
        let pct = |v: &[usize], p: f64| -> usize {
            if v.is_empty() {
                return 0;
            }
            let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
            v[idx]
        };
        Table1Row {
            dataset: self.kind.name(),
            task: match self.kind {
                DatasetKind::Squad => "Single hop QA",
                DatasetKind::Musique => "Multihop QA",
                DatasetKind::FinSec => "Doc Level QA",
                DatasetKind::Qmsum => "Summarization QA",
            },
            input: (pct(&inputs, 5.0), pct(&inputs, 95.0)),
            output: (pct(&outputs, 5.0), pct(&outputs, 95.0)),
        }
    }
}

//! Estimated query profiles.

use metis_datasets::{Complexity, TrueProfile};

/// The profiler LLM's estimate of a query's profile, with its confidence.
#[derive(Clone, Copy, Debug)]
pub struct EstimatedProfile {
    /// Estimated complexity ("High/Low", §4.1).
    pub complexity: Complexity,
    /// Estimated joint-reasoning requirement ("Yes/No").
    pub joint: bool,
    /// Estimated pieces of information (1–10).
    pub pieces: u32,
    /// Estimated summarization length range (tokens).
    pub summary_range: (u32, u32),
    /// Confidence score in `[0, 1]`, derived from output log-probs.
    pub confidence: f64,
}

impl EstimatedProfile {
    /// An estimate that exactly matches the truth with full confidence
    /// (useful as an oracle in tests and ablations).
    pub fn oracle(truth: &TrueProfile) -> Self {
        Self {
            complexity: truth.complexity,
            joint: truth.joint,
            pieces: truth.pieces,
            summary_range: truth.summary_range,
            confidence: 1.0,
        }
    }

    /// Number of categorical/numeric disagreements with the truth, used to
    /// evaluate profiler accuracy (Fig. 9's good/bad profile split).
    pub fn error_score(&self, truth: &TrueProfile) -> f64 {
        let mut err = 0.0;
        if self.complexity != truth.complexity {
            err += 1.0;
        }
        if self.joint != truth.joint {
            err += 1.0;
        }
        err += (f64::from(self.pieces) - f64::from(truth.pieces)).abs() / 2.0;
        let (lo_e, hi_e) = self.summary_range;
        let (lo_t, hi_t) = truth.summary_range;
        let span = f64::from(hi_t.max(1));
        err += (f64::from(lo_e) - f64::from(lo_t)).abs() / span / 2.0;
        err += (f64::from(hi_e) - f64::from(hi_t)).abs() / span / 2.0;
        err
    }

    /// Whether the estimate is "good" in the Fig. 9 sense: close enough to
    /// the truth that the rule-based mapping yields a high-quality pruned
    /// space (categoricals right, pieces within ±1).
    pub fn is_good(&self, truth: &TrueProfile) -> bool {
        self.complexity == truth.complexity
            && self.joint == truth.joint
            && (i64::from(self.pieces) - i64::from(truth.pieces)).abs() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> TrueProfile {
        TrueProfile {
            complexity: Complexity::High,
            joint: true,
            pieces: 4,
            summary_range: (20, 90),
        }
    }

    #[test]
    fn oracle_has_zero_error_and_is_good() {
        let t = truth();
        let e = EstimatedProfile::oracle(&t);
        assert_eq!(e.error_score(&t), 0.0);
        assert!(e.is_good(&t));
        assert_eq!(e.confidence, 1.0);
    }

    #[test]
    fn flips_count_as_errors() {
        let t = truth();
        let mut e = EstimatedProfile::oracle(&t);
        e.joint = false;
        assert!(e.error_score(&t) >= 1.0);
        assert!(!e.is_good(&t));
    }

    #[test]
    fn small_pieces_error_is_tolerated_by_is_good() {
        let t = truth();
        let mut e = EstimatedProfile::oracle(&t);
        e.pieces = 5;
        assert!(e.is_good(&t));
        e.pieces = 7;
        assert!(!e.is_good(&t));
    }
}

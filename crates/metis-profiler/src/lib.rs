//! LLM query profiler simulation (§4.1, §5).
//!
//! METIS asks a profiler LLM (GPT-4o or Llama-3.1-70B) four questions about
//! each query: its complexity, whether joint reasoning is required, how many
//! pieces of information are needed, and how long chunk summaries should be.
//! The profiler sees only the query text and the database metadata — inputs
//! orders of magnitude shorter than the RAG context — so profiling is fast
//! (~1/10 of the end-to-end delay, Fig. 18) but *noisy*.
//!
//! This crate models the profiler at exactly that level: the estimate is the
//! ground-truth profile corrupted by model-dependent noise, accompanied by a
//! calibrated confidence score (the paper derives one from output
//! log-probs, Fig. 9) and priced/timed as an API call. The feedback loop of
//! §5 (one golden-config feedback prompt every 30 queries, keeping the last
//! four) shrinks the noise over time (Fig. 14).

pub mod estimate;
pub mod profiler;

pub use estimate::EstimatedProfile;
pub use profiler::{LlmProfiler, NoiseParams, ProfilerKind, ProfilerOutput};

//! The simulated profiler LLM.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use metis_datasets::{Complexity, QuerySpec};
use metis_llm::{GpuCluster, LatencyModel, ModelSpec, Nanos};
use metis_vectordb::DbMetadata;

use crate::estimate::EstimatedProfile;

/// Which LLM backs the profiler.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProfilerKind {
    /// GPT-4o over the OpenAI Chat Completions API (the paper's default).
    Gpt4o,
    /// Llama-3.1-70B over a hosted HuggingFace endpoint (Fig. 17).
    Llama70b,
}

/// Per-model estimation noise rates.
#[derive(Clone, Copy, Debug)]
pub struct NoiseParams {
    /// Probability of flipping the complexity estimate.
    pub flip_complexity: f64,
    /// Probability of flipping the joint-reasoning estimate.
    pub flip_joint: f64,
    /// Probability the pieces estimate is off by ±1.
    pub pieces_off_one: f64,
    /// Probability the pieces estimate is off by ±2 (on top of ±1).
    pub pieces_off_two: f64,
    /// Relative distortion applied to the summary range bounds.
    pub summary_distort: f64,
}

impl NoiseParams {
    /// Noise calibrated so that ~93% of profiles are fully good (Fig. 9).
    pub fn gpt4o() -> Self {
        Self {
            flip_complexity: 0.030,
            flip_joint: 0.020,
            pieces_off_one: 0.08,
            pieces_off_two: 0.020,
            summary_distort: 0.15,
        }
    }

    /// Llama-70B is noisier than GPT-4o but still useful (Fig. 17).
    pub fn llama70b() -> Self {
        Self {
            flip_complexity: 0.055,
            flip_joint: 0.045,
            pieces_off_one: 0.18,
            pieces_off_two: 0.05,
            summary_distort: 0.25,
        }
    }
}

/// One profiling result: the estimate plus its cost in time and dollars.
#[derive(Clone, Copy, Debug)]
pub struct ProfilerOutput {
    /// The noisy estimate with confidence.
    pub estimate: EstimatedProfile,
    /// API latency of the profiling call.
    pub latency: Nanos,
    /// API dollar cost of the call.
    pub cost_usd: f64,
    /// Input tokens billed (query + metadata + feedback prompts).
    pub input_tokens: u64,
}

/// The profiler LLM with its feedback state (§5).
pub struct LlmProfiler {
    kind: ProfilerKind,
    noise: NoiseParams,
    latency: LatencyModel,
    /// Number of retained feedback prompts (capped at
    /// [`LlmProfiler::MAX_FEEDBACK`]).
    feedback_prompts: usize,
    /// Queries profiled so far (drives the 1-in-30 feedback cadence).
    profiled: u64,
}

impl LlmProfiler {
    /// The paper keeps only the last four feedback prompts.
    pub const MAX_FEEDBACK: usize = 4;
    /// One feedback prompt is generated every 30 queries.
    pub const FEEDBACK_EVERY: u64 = 30;
    /// Approximate token length of one feedback prompt (query + golden
    /// answer) included in subsequent profiling calls.
    pub const FEEDBACK_PROMPT_TOKENS: u64 = 220;
    /// Approximate metadata + instruction prompt length (§A.1).
    pub const PROMPT_OVERHEAD_TOKENS: u64 = 120;
    /// Short structured output: four fields, mostly binary (§4.2 notes the
    /// mapping keeps the profiler restricted to short decisions).
    pub const OUTPUT_TOKENS: u64 = 18;

    /// Creates a profiler of the given kind with its default noise.
    pub fn new(kind: ProfilerKind) -> Self {
        let (spec, noise) = match kind {
            ProfilerKind::Gpt4o => (ModelSpec::gpt4o(), NoiseParams::gpt4o()),
            ProfilerKind::Llama70b => {
                let mut spec = ModelSpec::llama31_70b_profiler();
                // Hosted endpoint pricing (per 1M tokens).
                spec.usd_per_mtok_in = 0.90;
                spec.usd_per_mtok_out = 0.90;
                spec.kind = metis_llm::ModelKind::Api;
                (spec, NoiseParams::llama70b())
            }
        };
        Self {
            kind,
            noise,
            latency: LatencyModel::new(spec, GpuCluster::single_a40()),
            feedback_prompts: 0,
            profiled: 0,
        }
    }

    /// Which model backs this profiler.
    pub fn kind(&self) -> ProfilerKind {
        self.kind
    }

    /// Number of feedback prompts currently attached.
    pub fn feedback_len(&self) -> usize {
        self.feedback_prompts
    }

    /// Noise multiplier after feedback: each retained feedback prompt gives
    /// the profiler extra grounding, shrinking all error rates (Fig. 14).
    fn noise_multiplier(&self) -> f64 {
        1.0 - 0.12 * self.feedback_prompts as f64
    }

    /// Whether the controller should generate a feedback prompt *now*
    /// (every 30th query, §5).
    pub fn wants_feedback(&self) -> bool {
        self.profiled > 0 && self.profiled.is_multiple_of(Self::FEEDBACK_EVERY)
    }

    /// Attaches one feedback prompt (golden-configuration answer); keeps at
    /// most the last four.
    pub fn add_feedback(&mut self) {
        self.feedback_prompts = (self.feedback_prompts + 1).min(Self::MAX_FEEDBACK);
    }

    /// Profiles one query given the database metadata.
    ///
    /// Deterministic in `(query id, seed)`.
    pub fn profile(
        &mut self,
        query: &QuerySpec,
        metadata: &DbMetadata,
        seed: u64,
    ) -> ProfilerOutput {
        self.profiled += 1;
        let mut rng = StdRng::seed_from_u64(seed ^ query.id.0.wrapping_mul(0x9E37_79B9));
        let truth = &query.profile;
        let m = self.noise_multiplier();

        let mut errors = 0.0f64;
        let complexity = if rng.gen_bool((self.noise.flip_complexity * m).clamp(0.0, 1.0)) {
            errors += 1.0;
            match truth.complexity {
                Complexity::High => Complexity::Low,
                Complexity::Low => Complexity::High,
            }
        } else {
            truth.complexity
        };
        let joint = if rng.gen_bool((self.noise.flip_joint * m).clamp(0.0, 1.0)) {
            errors += 1.0;
            !truth.joint
        } else {
            truth.joint
        };
        let mut pieces = i64::from(truth.pieces);
        if rng.gen_bool((self.noise.pieces_off_one * m).clamp(0.0, 1.0)) {
            pieces += if rng.gen_bool(0.5) { 1 } else { -1 };
            // A ±1 pieces slip is tolerated by the mapping's 1–3× range,
            // so it barely moves the model's confidence.
            errors += 0.1;
        }
        if rng.gen_bool((self.noise.pieces_off_two * m).clamp(0.0, 1.0)) {
            pieces += if rng.gen_bool(0.5) { 2 } else { -2 };
            errors += 0.9;
        }
        let pieces = pieces.clamp(1, 10) as u32;

        let distort = 1.0 + rng.gen_range(-1.0..1.0) * self.noise.summary_distort * m;
        let (lo_t, hi_t) = truth.summary_range;
        let lo = ((f64::from(lo_t) * distort).round() as u32).clamp(1, 295);
        let hi = ((f64::from(hi_t) * distort).round() as u32).clamp(lo + 1, 300);

        // Calibrated confidence: error-free estimates cluster just under
        // 0.96 and essentially never cross below the 90% threshold, while a
        // real error drops the score into a band that straddles the
        // threshold — reproducing Fig. 9's imperfect-but-useful separation
        // (most low-confidence profiles are bad, a tail of bad ones still
        // scores high).
        let confidence = (0.958 - 0.08 * errors.min(1.0) - 0.02 * (errors - 1.0).max(0.0)
            + rng.gen_range(-0.06..0.06))
        .clamp(0.0, 1.0);

        // Cost/latency: query + metadata + retained feedback prompts in,
        // a short structured profile out.
        let input_tokens = query.tokens.len() as u64
            + Self::PROMPT_OVERHEAD_TOKENS
            + metadata.description.split_whitespace().count() as u64
            + self.feedback_prompts as u64 * Self::FEEDBACK_PROMPT_TOKENS;
        let latency = self.latency.api_call(input_tokens, Self::OUTPUT_TOKENS);
        let cost_usd = self.latency.api_cost_usd(input_tokens, Self::OUTPUT_TOKENS);

        ProfilerOutput {
            estimate: EstimatedProfile {
                complexity,
                joint,
                pieces,
                summary_range: (lo, hi),
                confidence,
            },
            latency,
            cost_usd,
            input_tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_datasets::{build_dataset, DatasetKind};

    fn outputs(kind: ProfilerKind, n: usize) -> (Vec<ProfilerOutput>, metis_datasets::Dataset) {
        let d = build_dataset(DatasetKind::Musique, n, 42);
        let mut p = LlmProfiler::new(kind);
        let md = d.db.metadata().clone();
        let outs = d.queries.iter().map(|q| p.profile(q, &md, 7)).collect();
        (outs, d)
    }

    #[test]
    fn most_profiles_are_good_for_gpt4o() {
        let (outs, d) = outputs(ProfilerKind::Gpt4o, 200);
        let good = outs
            .iter()
            .zip(&d.queries)
            .filter(|(o, q)| o.estimate.is_good(&q.profile))
            .count();
        assert!(good >= 170, "good = {good}/200");
    }

    #[test]
    fn llama_profiler_is_noisier() {
        let (g, d) = outputs(ProfilerKind::Gpt4o, 300);
        let (l, _) = outputs(ProfilerKind::Llama70b, 300);
        let err = |outs: &[ProfilerOutput]| -> f64 {
            outs.iter()
                .zip(&d.queries)
                .map(|(o, q)| o.estimate.error_score(&q.profile))
                .sum()
        };
        assert!(
            err(&l) > err(&g) * 1.3,
            "llama {} vs gpt {}",
            err(&l),
            err(&g)
        );
    }

    #[test]
    fn confidence_separates_good_from_bad() {
        let (outs, d) = outputs(ProfilerKind::Gpt4o, 400);
        let mut hi_good = 0;
        let mut hi_total = 0;
        let mut lo_bad = 0;
        let mut lo_total = 0;
        for (o, q) in outs.iter().zip(&d.queries) {
            let good = o.estimate.is_good(&q.profile);
            if o.estimate.confidence >= 0.90 {
                hi_total += 1;
                if good {
                    hi_good += 1;
                }
            } else {
                lo_total += 1;
                if !good {
                    lo_bad += 1;
                }
            }
        }
        // Fig. 9: >93% of profiles are high-confidence; of those, >96% good;
        // of low-confidence ones, ~85–90% bad.
        assert!(hi_total * 100 >= 400 * 85, "high-conf share {hi_total}/400");
        assert!(
            hi_good * 100 >= hi_total * 93,
            "good|high = {hi_good}/{hi_total}"
        );
        if lo_total >= 10 {
            assert!(
                lo_bad * 100 >= lo_total * 50,
                "bad|low = {lo_bad}/{lo_total}"
            );
        }
    }

    #[test]
    fn profiling_latency_is_subsecond() {
        let (outs, _) = outputs(ProfilerKind::Gpt4o, 20);
        for o in &outs {
            let secs = o.latency as f64 / 1e9;
            assert!(secs < 0.8, "profiler call took {secs}s");
            assert!(o.cost_usd > 0.0);
        }
    }

    #[test]
    fn feedback_cadence_is_every_30() {
        let d = build_dataset(DatasetKind::Squad, 61, 1);
        let mut p = LlmProfiler::new(ProfilerKind::Gpt4o);
        let md = d.db.metadata().clone();
        let mut feedback_points = Vec::new();
        for (i, q) in d.queries.iter().enumerate() {
            p.profile(q, &md, 3);
            if p.wants_feedback() {
                feedback_points.push(i + 1);
                p.add_feedback();
            }
        }
        assert_eq!(feedback_points, vec![30, 60]);
        assert_eq!(p.feedback_len(), 2);
    }

    #[test]
    fn feedback_caps_at_four_and_reduces_errors() {
        let d = build_dataset(DatasetKind::Qmsum, 300, 5);
        let md = d.db.metadata().clone();
        let total_err = |feedback: usize| -> f64 {
            let mut p = LlmProfiler::new(ProfilerKind::Llama70b);
            for _ in 0..feedback {
                p.add_feedback();
            }
            d.queries
                .iter()
                .map(|q| p.profile(q, &md, 11).estimate.error_score(&q.profile))
                .sum()
        };
        let before = total_err(0);
        let after = total_err(6); // Capped at 4 internally.
        assert!(
            after < before * 0.8,
            "feedback no help: {before} -> {after}"
        );
        let mut p = LlmProfiler::new(ProfilerKind::Gpt4o);
        for _ in 0..9 {
            p.add_feedback();
        }
        assert_eq!(p.feedback_len(), LlmProfiler::MAX_FEEDBACK);
    }

    #[test]
    fn feedback_prompts_increase_input_tokens() {
        let d = build_dataset(DatasetKind::Squad, 2, 9);
        let md = d.db.metadata().clone();
        let mut p = LlmProfiler::new(ProfilerKind::Gpt4o);
        let plain = p.profile(&d.queries[0], &md, 1).input_tokens;
        p.add_feedback();
        p.add_feedback();
        let with_fb = p.profile(&d.queries[1], &md, 1).input_tokens;
        assert!(with_fb >= plain + 2 * LlmProfiler::FEEDBACK_PROMPT_TOKENS);
    }

    #[test]
    fn oracle_style_determinism() {
        let d = build_dataset(DatasetKind::Musique, 5, 3);
        let md = d.db.metadata().clone();
        let mut p1 = LlmProfiler::new(ProfilerKind::Gpt4o);
        let mut p2 = LlmProfiler::new(ProfilerKind::Gpt4o);
        for q in &d.queries {
            let a = p1.profile(q, &md, 5);
            let b = p2.profile(q, &md, 5);
            assert_eq!(a.estimate.pieces, b.estimate.pieces);
            assert_eq!(a.estimate.joint, b.estimate.joint);
            assert!((a.estimate.confidence - b.estimate.confidence).abs() < 1e-12);
        }
    }
}

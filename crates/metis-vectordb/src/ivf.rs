//! Inverted-file (IVF) approximate index.
//!
//! A small k-means coarse quantizer assigns each vector to its nearest
//! centroid; search probes the `nprobe` nearest lists. Included because real
//! deployments at the paper's corpus scale use IVF, and the retrieval-recall
//! sensitivity it introduces is a useful ablation axis. The paper's own
//! evaluation uses the exact flat index ([`crate::FlatIndex`]), which remains
//! the default everywhere.

use std::cmp::Ordering;

use metis_text::ChunkId;

use crate::{Hit, VectorIndex};

/// IVF build/search parameters.
#[derive(Clone, Copy, Debug)]
pub struct IvfConfig {
    /// Number of coarse centroids (inverted lists).
    pub nlist: usize,
    /// Number of lists probed at search time.
    pub nprobe: usize,
    /// K-means refinement iterations.
    pub train_iters: usize,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self {
            nlist: 16,
            nprobe: 4,
            train_iters: 8,
        }
    }
}

/// IVF index with exact scoring inside the probed lists.
#[derive(Clone, Debug)]
pub struct IvfIndex {
    dim: usize,
    config: IvfConfig,
    centroids: Vec<Vec<f32>>,
    lists: Vec<Vec<(ChunkId, Vec<f32>)>>,
    len: usize,
}

fn sq_l2(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

impl IvfIndex {
    /// Builds the index from `(id, vector)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if vectors disagree on dimension, or `nprobe > nlist`, or
    /// `nlist` is zero.
    pub fn build(dim: usize, config: IvfConfig, items: &[(ChunkId, Vec<f32>)]) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(config.nlist > 0, "nlist must be positive");
        assert!(config.nprobe <= config.nlist, "nprobe must be <= nlist");
        for (_, v) in items {
            assert_eq!(v.len(), dim, "dimension mismatch");
        }
        let nlist = config.nlist.min(items.len().max(1));
        // Initialize centroids by striding through the data (deterministic).
        let mut centroids: Vec<Vec<f32>> = if items.is_empty() {
            vec![vec![0.0; dim]; nlist]
        } else {
            (0..nlist)
                .map(|i| items[i * items.len() / nlist].1.clone())
                .collect()
        };
        // Lloyd iterations.
        for _ in 0..config.train_iters {
            let mut sums = vec![vec![0.0f64; dim]; nlist];
            let mut counts = vec![0usize; nlist];
            for (_, v) in items {
                let c = Self::nearest_centroid(&centroids, v);
                counts[c] += 1;
                for (s, x) in sums[c].iter_mut().zip(v) {
                    *s += f64::from(*x);
                }
            }
            for (c, centroid) in centroids.iter_mut().enumerate() {
                if counts[c] > 0 {
                    for (dst, s) in centroid.iter_mut().zip(&sums[c]) {
                        *dst = (*s / counts[c] as f64) as f32;
                    }
                }
            }
        }
        let mut lists = vec![Vec::new(); nlist];
        for (id, v) in items {
            let c = Self::nearest_centroid(&centroids, v);
            lists[c].push((*id, v.clone()));
        }
        Self {
            dim,
            config: IvfConfig {
                nlist,
                nprobe: config.nprobe.min(nlist),
                train_iters: config.train_iters,
            },
            centroids,
            lists,
            len: items.len(),
        }
    }

    fn nearest_centroid(centroids: &[Vec<f32>], v: &[f32]) -> usize {
        let mut best = 0;
        let mut best_d = f32::INFINITY;
        for (i, c) in centroids.iter().enumerate() {
            let d = sq_l2(c, v);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// The effective configuration (after clamping to the data size).
    pub fn config(&self) -> IvfConfig {
        self.config
    }
}

impl VectorIndex for IvfIndex {
    fn len(&self) -> usize {
        self.len
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        // Rank centroids by distance, probe the nearest `nprobe` lists.
        let mut order: Vec<(f32, usize)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (sq_l2(c, query), i))
            .collect();
        order.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
        let mut hits: Vec<Hit> = Vec::new();
        for &(_, list) in order.iter().take(self.config.nprobe) {
            for (id, v) in &self.lists[list] {
                hits.push(Hit {
                    chunk: *id,
                    distance: sq_l2(v, query).sqrt(),
                });
            }
        }
        hits.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.chunk.cmp(&b.chunk))
        });
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatIndex;

    fn clustered_data() -> Vec<(ChunkId, Vec<f32>)> {
        // Two well-separated clusters around (0,0) and (10,10).
        let mut items = Vec::new();
        for i in 0..20u32 {
            let off = (i % 5) as f32 * 0.1;
            items.push((ChunkId(i), vec![off, -off]));
            items.push((ChunkId(100 + i), vec![10.0 + off, 10.0 - off]));
        }
        items
    }

    #[test]
    fn finds_neighbours_in_probed_cluster() {
        let idx = IvfIndex::build(
            2,
            IvfConfig {
                nlist: 2,
                nprobe: 1,
                train_iters: 10,
            },
            &clustered_data(),
        );
        let hits = idx.search(&[10.0, 10.0], 5);
        assert_eq!(hits.len(), 5);
        for h in &hits {
            assert!(h.chunk.0 >= 100, "wrong cluster: {:?}", h.chunk);
        }
    }

    #[test]
    fn full_probe_matches_flat_index() {
        let items = clustered_data();
        let ivf = IvfIndex::build(
            2,
            IvfConfig {
                nlist: 4,
                nprobe: 4,
                train_iters: 5,
            },
            &items,
        );
        let mut flat = FlatIndex::new(2);
        for (id, v) in &items {
            flat.add(*id, v);
        }
        let q = [5.0, 5.0];
        let a = ivf.search(&q, 10);
        let b = flat.search(&q, 10);
        let ids_a: Vec<_> = a.iter().map(|h| h.chunk).collect();
        let ids_b: Vec<_> = b.iter().map(|h| h.chunk).collect();
        assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = IvfIndex::build(3, IvfConfig::default(), &[]);
        assert!(idx.search(&[0.0, 0.0, 0.0], 5).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn nlist_clamped_to_data_size() {
        let items = vec![(ChunkId(0), vec![1.0])];
        let idx = IvfIndex::build(1, IvfConfig::default(), &items);
        assert_eq!(idx.config().nlist, 1);
        assert_eq!(idx.search(&[1.0], 1).len(), 1);
    }
}

//! Inverted-file (IVF) approximate index.
//!
//! A small k-means coarse quantizer assigns each vector to its nearest
//! centroid; search probes the `nprobe` nearest lists and scores only their
//! members, so the work per query is `nlist` centroid distances plus the
//! probed lists' sizes instead of the whole corpus. Real deployments at the
//! paper's corpus scale use IVF for exactly this sub-linear scan; the
//! recall-vs-latency sensitivity it introduces is the retrieval ablation
//! axis (`fig_retrieval`). The paper's own evaluation uses the exact flat
//! index ([`crate::FlatIndex`]), which remains the default everywhere.

use std::sync::Mutex;

use metis_text::ChunkId;

use crate::{Hit, SearchOutcome, SearchWork, VectorIndex};

/// K-means trains on at most this many vectors (deterministically strided
/// from the corpus); the final list assignment still covers every vector.
/// Corpora at or below the cap train exactly as before, so small builds
/// are bit-identical with earlier versions.
const TRAIN_SAMPLE_CAP: usize = 32_768;

/// IVF build/search parameters.
#[derive(Clone, Copy, Debug)]
pub struct IvfConfig {
    /// Number of coarse centroids (inverted lists).
    pub nlist: usize,
    /// Number of lists probed at search time.
    pub nprobe: usize,
    /// K-means refinement iterations.
    pub train_iters: usize,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self {
            nlist: 16,
            nprobe: 4,
            train_iters: 8,
        }
    }
}

/// One inverted-list member: (id, exact row).
pub(crate) type ListEntry = (ChunkId, Vec<f32>);

/// IVF index with exact scoring inside the probed lists.
#[derive(Debug)]
pub struct IvfIndex {
    dim: usize,
    config: IvfConfig,
    centroids: Vec<Vec<f32>>,
    lists: Vec<Vec<ListEntry>>,
    len: usize,
    /// Per-query working memory, reused across `search_counted` calls so
    /// the hot loop performs no per-probe allocation (the trait takes
    /// `&self`, hence the lock; searches are short, contention is the
    /// caller's concurrency, and a poisoned lock is unreachable because
    /// the critical sections don't panic).
    scratch: Mutex<IvfScratch>,
}

#[derive(Debug, Default)]
struct IvfScratch {
    /// `(distance², centroid)` ranking buffer.
    order: Vec<(f32, usize)>,
    /// Candidate hits from the probed lists, before truncation to `k`.
    hits: Vec<Hit>,
}

impl Clone for IvfIndex {
    fn clone(&self) -> Self {
        Self {
            dim: self.dim,
            config: self.config,
            centroids: self.centroids.clone(),
            lists: self.lists.clone(),
            len: self.len,
            scratch: Mutex::new(IvfScratch::default()),
        }
    }
}

fn sq_l2(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Deterministic strided seeds, skipping vectors identical to an
/// already-chosen seed: duplicate seeds would collapse two centroids onto
/// one point and permanently orphan a list. When the corpus has fewer
/// distinct vectors than `nlist`, the stride pick is reused as-is
/// (duplicates are then unavoidable).
fn seed_centroids(items: &[(ChunkId, Vec<f32>)], nlist: usize) -> Vec<Vec<f32>> {
    let mut seeds: Vec<Vec<f32>> = Vec::with_capacity(nlist);
    let mut taken = vec![false; items.len()];
    for i in 0..nlist {
        let start = i * items.len() / nlist;
        let pick = (0..items.len())
            .map(|o| (start + o) % items.len())
            .find(|&j| !taken[j] && !seeds.iter().any(|s| s == &items[j].1));
        let j = pick.unwrap_or(start);
        taken[j] = true;
        seeds.push(items[j].1.clone());
    }
    seeds
}

impl IvfIndex {
    /// Builds the index from `(id, vector)` pairs.
    ///
    /// Whenever `items.len() >= nlist` every inverted list is guaranteed
    /// non-empty: empty clusters are re-seeded during training from the
    /// largest cluster's farthest member, and a final repair pass moves
    /// outliers into any list that still ended up empty.
    ///
    /// # Panics
    ///
    /// Panics if vectors disagree on dimension, or `nprobe > nlist`, or
    /// `nlist` is zero.
    pub fn build(dim: usize, config: IvfConfig, items: &[(ChunkId, Vec<f32>)]) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(config.nlist > 0, "nlist must be positive");
        assert!(config.nprobe <= config.nlist, "nprobe must be <= nlist");
        for (_, v) in items {
            assert_eq!(v.len(), dim, "dimension mismatch");
        }
        let nlist = config.nlist.min(items.len().max(1));
        let mut centroids: Vec<Vec<f32>> = if items.is_empty() {
            vec![vec![0.0; dim]; nlist]
        } else {
            seed_centroids(items, nlist)
        };
        // K-means trains on a bounded, deterministically strided sample so
        // million-vector builds stay tractable; at or below the cap the
        // sample is the whole corpus and training is unchanged.
        let train: Vec<usize> = if items.len() <= TRAIN_SAMPLE_CAP {
            (0..items.len()).collect()
        } else {
            (0..TRAIN_SAMPLE_CAP)
                .map(|i| i * items.len() / TRAIN_SAMPLE_CAP)
                .collect()
        };
        // Lloyd iterations with empty-cluster repair.
        for _ in 0..config.train_iters {
            let assign: Vec<usize> = train
                .iter()
                .map(|&i| Self::nearest_centroid(&centroids, &items[i].1))
                .collect();
            let mut sums = vec![vec![0.0f64; dim]; nlist];
            let mut counts = vec![0usize; nlist];
            for (&c, &i) in assign.iter().zip(&train) {
                counts[c] += 1;
                for (s, x) in sums[c].iter_mut().zip(&items[i].1) {
                    *s += f64::from(*x);
                }
            }
            for (c, centroid) in centroids.iter_mut().enumerate() {
                if counts[c] > 0 {
                    for (dst, s) in centroid.iter_mut().zip(&sums[c]) {
                        *dst = (*s / counts[c] as f64) as f32;
                    }
                }
            }
            // A cluster that attracted no members would otherwise keep its
            // stale centroid forever, silently wasting the list: re-seed it
            // on the farthest member of the currently largest cluster.
            let mut stolen = vec![false; train.len()];
            for c in 0..nlist {
                if counts[c] > 0 {
                    continue;
                }
                let Some(donor) = (0..nlist)
                    .filter(|&d| counts[d] > 1)
                    .max_by_key(|&d| counts[d])
                else {
                    continue;
                };
                let far = (0..train.len())
                    .filter(|&p| assign[p] == donor && !stolen[p])
                    .max_by(|&a, &b| {
                        sq_l2(&items[train[a]].1, &centroids[donor])
                            .total_cmp(&sq_l2(&items[train[b]].1, &centroids[donor]))
                    });
                if let Some(p) = far {
                    centroids[c] = items[train[p]].1.clone();
                    stolen[p] = true;
                    counts[donor] -= 1;
                    counts[c] += 1;
                }
            }
        }
        let mut lists = vec![Vec::new(); nlist];
        for (id, v) in items {
            let c = Self::nearest_centroid(&centroids, v);
            lists[c].push((*id, v.clone()));
        }
        // Final repair: as long as one list is empty while another holds
        // more than one member, hand the donor's farthest outlier to the
        // empty list (always satisfiable when `items.len() >= nlist`).
        while let Some(empty) = lists.iter().position(Vec::is_empty) {
            let Some(donor) = (0..nlist)
                .filter(|&d| lists[d].len() > 1)
                .max_by_key(|&d| lists[d].len())
            else {
                break;
            };
            let far = (0..lists[donor].len())
                .max_by(|&a, &b| {
                    sq_l2(&lists[donor][a].1, &centroids[donor])
                        .total_cmp(&sq_l2(&lists[donor][b].1, &centroids[donor]))
                })
                .expect("donor list is non-empty");
            let (id, v) = lists[donor].swap_remove(far);
            centroids[empty] = v.clone();
            lists[empty].push((id, v));
        }
        Self {
            dim,
            config: IvfConfig {
                nlist,
                nprobe: config.nprobe.min(nlist),
                train_iters: config.train_iters,
            },
            centroids,
            lists,
            len: items.len(),
            scratch: Mutex::new(IvfScratch::default()),
        }
    }

    fn nearest_centroid(centroids: &[Vec<f32>], v: &[f32]) -> usize {
        let mut best = 0;
        let mut best_d = f32::INFINITY;
        for (i, c) in centroids.iter().enumerate() {
            let d = sq_l2(c, v);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// The effective configuration (after clamping to the data size).
    pub fn config(&self) -> IvfConfig {
        self.config
    }

    /// Size of every inverted list, in list order.
    pub fn list_sizes(&self) -> Vec<usize> {
        self.lists.iter().map(Vec::len).collect()
    }

    /// Internal structure for sibling indexes in this crate (the sq8
    /// conversion in [`crate::quant`] re-encodes these lists).
    pub(crate) fn raw(&self) -> (usize, &[Vec<f32>], &[Vec<ListEntry>]) {
        (self.dim, &self.centroids, &self.lists)
    }
}

impl VectorIndex for IvfIndex {
    fn len(&self) -> usize {
        self.len
    }

    fn search_counted(&self, query: &[f32], k: usize) -> SearchOutcome {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        if k == 0 || self.len == 0 {
            return SearchOutcome {
                hits: Vec::new(),
                work: SearchWork::default(),
            };
        }
        // Rank centroids by distance, probe the nearest `nprobe` lists.
        // Both buffers live in the reused scratch: after warm-up the probe
        // loop allocates nothing.
        let mut scratch = self.scratch.lock().expect("ivf scratch lock");
        let IvfScratch { order, hits } = &mut *scratch;
        order.clear();
        order.extend(
            self.centroids
                .iter()
                .enumerate()
                .map(|(i, c)| (sq_l2(c, query), i)),
        );
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        hits.clear();
        let mut work = SearchWork {
            centroids_scored: self.centroids.len(),
            ..SearchWork::default()
        };
        for &(_, list) in order.iter().take(self.config.nprobe) {
            work.lists_probed += 1;
            work.vectors_scored += self.lists[list].len();
            for (id, v) in &self.lists[list] {
                hits.push(Hit {
                    chunk: *id,
                    distance: sq_l2(v, query).sqrt(),
                });
            }
        }
        hits.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| a.chunk.cmp(&b.chunk))
        });
        let hits = hits.iter().take(k).copied().collect();
        SearchOutcome { hits, work }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatIndex;

    fn clustered_data() -> Vec<(ChunkId, Vec<f32>)> {
        // Two well-separated clusters around (0,0) and (10,10).
        let mut items = Vec::new();
        for i in 0..20u32 {
            let off = (i % 5) as f32 * 0.1;
            items.push((ChunkId(i), vec![off, -off]));
            items.push((ChunkId(100 + i), vec![10.0 + off, 10.0 - off]));
        }
        items
    }

    #[test]
    fn finds_neighbours_in_probed_cluster() {
        let idx = IvfIndex::build(
            2,
            IvfConfig {
                nlist: 2,
                nprobe: 1,
                train_iters: 10,
            },
            &clustered_data(),
        );
        let hits = idx.search(&[10.0, 10.0], 5);
        assert_eq!(hits.len(), 5);
        for h in &hits {
            assert!(h.chunk.0 >= 100, "wrong cluster: {:?}", h.chunk);
        }
    }

    #[test]
    fn full_probe_matches_flat_index() {
        let items = clustered_data();
        let ivf = IvfIndex::build(
            2,
            IvfConfig {
                nlist: 4,
                nprobe: 4,
                train_iters: 5,
            },
            &items,
        );
        let mut flat = FlatIndex::new(2);
        for (id, v) in &items {
            flat.add(*id, v);
        }
        let q = [5.0, 5.0];
        let a = ivf.search(&q, 10);
        let b = flat.search(&q, 10);
        let ids_a: Vec<_> = a.iter().map(|h| h.chunk).collect();
        let ids_b: Vec<_> = b.iter().map(|h| h.chunk).collect();
        assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = IvfIndex::build(3, IvfConfig::default(), &[]);
        assert!(idx.search(&[0.0, 0.0, 0.0], 5).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn nlist_clamped_to_data_size() {
        let items = vec![(ChunkId(0), vec![1.0])];
        let idx = IvfIndex::build(1, IvfConfig::default(), &items);
        assert_eq!(idx.config().nlist, 1);
        assert_eq!(idx.search(&[1.0], 1).len(), 1);
    }

    #[test]
    fn duplicate_seeds_do_not_orphan_lists() {
        // The strided seeds (positions 0, 2, 4, 6 for nlist = 4 over 8
        // items) land on duplicate vectors: without de-duplication two
        // centroids coincide and one list stays empty forever.
        let items: Vec<(ChunkId, Vec<f32>)> = vec![
            (ChunkId(0), vec![0.0, 0.0]),
            (ChunkId(1), vec![0.0, 0.0]),
            (ChunkId(2), vec![0.0, 0.0]),
            (ChunkId(3), vec![0.0, 0.1]),
            (ChunkId(4), vec![10.0, 10.0]),
            (ChunkId(5), vec![10.0, 10.1]),
            (ChunkId(6), vec![20.0, 20.0]),
            (ChunkId(7), vec![20.0, 20.1]),
        ];
        let idx = IvfIndex::build(
            2,
            IvfConfig {
                nlist: 4,
                nprobe: 4,
                train_iters: 6,
            },
            &items,
        );
        let sizes = idx.list_sizes();
        assert!(
            sizes.iter().all(|&s| s > 0),
            "empty list despite items.len() >= nlist: {sizes:?}"
        );
        assert_eq!(sizes.iter().sum::<usize>(), items.len());
    }

    #[test]
    fn no_empty_lists_when_items_cover_nlist() {
        // Two tight natural clusters but nlist = 4: naive Lloyd leaves two
        // stale centroids empty; re-seeding + repair must reclaim them.
        let items = clustered_data();
        for nlist in [2usize, 4, 8, 16] {
            let idx = IvfIndex::build(
                2,
                IvfConfig {
                    nlist,
                    nprobe: 1,
                    train_iters: 8,
                },
                &items,
            );
            let sizes = idx.list_sizes();
            assert!(
                sizes.iter().all(|&s| s > 0),
                "nlist={nlist}: empty list: {sizes:?}"
            );
            assert_eq!(sizes.iter().sum::<usize>(), items.len());
        }
    }

    #[test]
    fn search_work_counts_probed_lists_only() {
        let items = clustered_data();
        let idx = IvfIndex::build(
            2,
            IvfConfig {
                nlist: 4,
                nprobe: 2,
                train_iters: 5,
            },
            &items,
        );
        let out = idx.search_counted(&[0.0, 0.0], 5);
        assert_eq!(out.work.lists_probed, 2);
        assert_eq!(out.work.centroids_scored, 4);
        let sizes = idx.list_sizes();
        assert!(out.work.vectors_scored < items.len());
        assert!(out.work.vectors_scored >= *sizes.iter().min().unwrap());
        // Full probe scores exactly the whole corpus.
        let full = IvfIndex::build(
            2,
            IvfConfig {
                nlist: 4,
                nprobe: 4,
                train_iters: 5,
            },
            &items,
        );
        assert_eq!(
            full.search_counted(&[0.0, 0.0], 5).work.vectors_scored,
            items.len()
        );
    }
}

//! Exact flat L2 index — the equivalent of FAISS `IndexFlatL2`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use metis_text::ChunkId;

use crate::{Hit, SearchOutcome, SearchWork, VectorIndex};

/// Candidate ordered so that the *worst* (largest-distance) hit is at the top
/// of a max-heap, letting us keep only the best `k`.
struct HeapEntry {
    /// *Squared* L2 distance during the scan (the monotone transform is
    /// square-rooted only when hits are emitted).
    distance: f32,
    chunk: ChunkId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.distance == other.distance && self.chunk == other.chunk
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // total_cmp gives a total order even for NaN (which sorts after
        // +inf), ties broken by chunk id for determinism.
        self.distance
            .total_cmp(&other.distance)
            .then_with(|| self.chunk.cmp(&other.chunk))
    }
}

/// Exact (brute-force) L2 nearest-neighbour index.
///
/// Vectors are stored contiguously; search scans all of them and keeps the
/// best `k` in a bounded max-heap — `O(n · d + n · log k)`, identical in
/// results to FAISS `IndexFlatL2`.
///
/// # Examples
///
/// ```
/// use metis_vectordb::{FlatIndex, VectorIndex};
/// use metis_text::ChunkId;
///
/// let mut idx = FlatIndex::new(2);
/// idx.add(ChunkId(0), &[0.0, 1.0]);
/// idx.add(ChunkId(1), &[1.0, 0.0]);
/// let hits = idx.search(&[0.9, 0.1], 1);
/// assert_eq!(hits[0].chunk, ChunkId(1));
/// ```
#[derive(Clone, Debug)]
pub struct FlatIndex {
    dim: usize,
    data: Vec<f32>,
    ids: Vec<ChunkId>,
}

impl FlatIndex {
    /// Creates an empty index for `dim`-dimensional vectors.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            dim,
            data: Vec::new(),
            ids: Vec::new(),
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Adds a vector under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `vector` has the wrong dimension or non-finite components.
    pub fn add(&mut self, id: ChunkId, vector: &[f32]) {
        assert_eq!(vector.len(), self.dim, "dimension mismatch");
        assert!(
            vector.iter().all(|x| x.is_finite()),
            "non-finite embedding component"
        );
        self.data.extend_from_slice(vector);
        self.ids.push(id);
    }

    /// Returns the stored vector for row `row`.
    pub fn row(&self, row: usize) -> Option<&[f32]> {
        let start = row * self.dim;
        self.data.get(start..start + self.dim)
    }

    fn squared_l2(&self, row: usize, query: &[f32]) -> f32 {
        let start = row * self.dim;
        self.data[start..start + self.dim]
            .iter()
            .zip(query)
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }
}

impl VectorIndex for FlatIndex {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn search_counted(&self, query: &[f32], k: usize) -> SearchOutcome {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        if k == 0 || self.ids.is_empty() {
            return SearchOutcome {
                hits: Vec::new(),
                work: SearchWork::default(),
            };
        }
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        for row in 0..self.ids.len() {
            let d2 = self.squared_l2(row, query);
            if heap.len() < k {
                heap.push(HeapEntry {
                    distance: d2,
                    chunk: self.ids[row],
                });
            } else if let Some(top) = heap.peek() {
                if d2 < top.distance {
                    heap.pop();
                    heap.push(HeapEntry {
                        distance: d2,
                        chunk: self.ids[row],
                    });
                }
            }
        }
        let mut hits: Vec<Hit> = heap
            .into_iter()
            .map(|e| Hit {
                chunk: e.chunk,
                distance: e.distance.sqrt(),
            })
            .collect();
        hits.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| a.chunk.cmp(&b.chunk))
        });
        SearchOutcome {
            hits,
            work: SearchWork::full_scan(self.ids.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_index() -> FlatIndex {
        let mut idx = FlatIndex::new(2);
        // Points at integer coordinates 0..5 on the x axis.
        for i in 0..5u32 {
            idx.add(ChunkId(i), &[i as f32, 0.0]);
        }
        idx
    }

    /// Regression for the NaN-ordering invariant: stored vectors are
    /// asserted finite, but a *query* may carry a NaN (upstream embedding
    /// bug, poisoned arithmetic), making every distance NaN. The old
    /// `partial_cmp(..).unwrap_or(Equal)` comparators turned that into an
    /// inconsistent sort; `total_cmp` keeps the search total and
    /// deterministic — NaN sorts after every finite distance, ties fall
    /// back to chunk id — instead of panicking a worker thread.
    #[test]
    fn nan_query_does_not_panic_and_orders_deterministically() {
        let idx = grid_index();
        let hits = idx.search(&[f32::NAN, 0.0], 3);
        assert_eq!(hits.len(), 3);
        let a: Vec<_> = hits.iter().map(|h| h.chunk).collect();
        let b: Vec<_> = idx
            .search(&[f32::NAN, 0.0], 3)
            .iter()
            .map(|h| h.chunk)
            .collect();
        assert_eq!(a, b, "NaN-distance ordering is deterministic");
        assert!(hits.iter().all(|h| h.distance.is_nan()));
    }

    /// A NaN-distance entry in the comparator itself (the bounded max-heap)
    /// keeps a total order: sorting a score list containing NaN must not
    /// panic and must place NaN last.
    #[test]
    fn heap_entry_comparator_is_total_over_nan() {
        let mut entries = [
            HeapEntry {
                distance: f32::NAN,
                chunk: ChunkId(0),
            },
            HeapEntry {
                distance: 1.0,
                chunk: ChunkId(1),
            },
            HeapEntry {
                distance: f32::NAN,
                chunk: ChunkId(2),
            },
            HeapEntry {
                distance: 0.5,
                chunk: ChunkId(3),
            },
        ];
        entries.sort(); // would panic under an inconsistent comparator
        let order: Vec<_> = entries.iter().map(|e| e.chunk).collect();
        assert_eq!(order, vec![ChunkId(3), ChunkId(1), ChunkId(0), ChunkId(2)]);
    }

    #[test]
    fn nearest_neighbour_is_exact() {
        let idx = grid_index();
        let hits = idx.search(&[2.2, 0.0], 3);
        assert_eq!(hits[0].chunk, ChunkId(2));
        assert_eq!(hits[1].chunk, ChunkId(3));
        assert_eq!(hits[2].chunk, ChunkId(1));
    }

    #[test]
    fn distances_are_ascending_and_correct() {
        let idx = grid_index();
        let hits = idx.search(&[0.0, 0.0], 5);
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        assert!((hits[1].distance - 1.0).abs() < 1e-6);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let idx = grid_index();
        assert_eq!(idx.search(&[0.0, 0.0], 100).len(), 5);
    }

    #[test]
    fn k_zero_returns_empty() {
        let idx = grid_index();
        assert!(idx.search(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn ties_break_by_chunk_id() {
        let mut idx = FlatIndex::new(1);
        idx.add(ChunkId(7), &[1.0]);
        idx.add(ChunkId(3), &[1.0]);
        let hits = idx.search(&[0.0], 2);
        assert_eq!(hits[0].chunk, ChunkId(3));
        assert_eq!(hits[1].chunk, ChunkId(7));
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        use metis_embed::l2_distance;
        // Deterministic pseudo-random data without pulling in rand here.
        let mut state = 42u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0
        };
        let dim = 8;
        let n = 200;
        let mut idx = FlatIndex::new(dim);
        let mut rows = Vec::new();
        for i in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| next()).collect();
            idx.add(ChunkId(i as u32), &v);
            rows.push(v);
        }
        let q: Vec<f32> = (0..dim).map(|_| next()).collect();
        let hits = idx.search(&q, 10);
        let mut brute: Vec<(f32, u32)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (l2_distance(r, &q), i as u32))
            .collect();
        brute.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for (hit, (d, i)) in hits.iter().zip(brute.iter().take(10)) {
            assert_eq!(hit.chunk, ChunkId(*i));
            assert!((hit.distance - d).abs() < 1e-5);
        }
    }

    #[test]
    fn work_accounting_reports_the_full_scan() {
        let idx = grid_index();
        let out = idx.search_counted(&[1.0, 0.0], 2);
        assert_eq!(out.hits.len(), 2);
        assert_eq!(out.work, SearchWork::full_scan(5));
        assert_eq!(out.work.distances(), 5);
        // A k = 0 search does no work at all.
        let none = idx.search_counted(&[1.0, 0.0], 0);
        assert_eq!(none.work, SearchWork::default());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_add_panics() {
        let mut idx = FlatIndex::new(2);
        idx.add(ChunkId(0), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_add_panics() {
        let mut idx = FlatIndex::new(1);
        idx.add(ChunkId(0), &[f32::NAN]);
    }
}

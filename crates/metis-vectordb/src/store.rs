//! Compact chunk storage.
//!
//! Chunks are stored as little-endian `u32` token ids in [`bytes::Bytes`]
//! buffers (cheaply cloneable, shared, immutable), with fact spans kept in a
//! side table. This mirrors a real vector DB payload store where chunk text
//! is an opaque blob and ground-truth annotations live out of band.

use bytes::{Bytes, BytesMut};
use metis_text::{AnnotatedText, ChunkId, FactSpan, TokenChunk, TokenId};

/// Immutable storage for the chunks of one database.
#[derive(Clone, Debug, Default)]
pub struct ChunkStore {
    blobs: Vec<Bytes>,
    spans: Vec<Vec<FactSpan>>,
}

impl ChunkStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a store from chunker output.
    ///
    /// Chunk ids must be dense and sequential (as produced by
    /// [`metis_text::Chunker::split`]); the store addresses blobs by index.
    ///
    /// # Panics
    ///
    /// Panics if chunk ids are not `0..n` in order.
    pub fn from_chunks(chunks: &[TokenChunk]) -> Self {
        let mut store = Self::new();
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.id.index(), i, "chunk ids must be dense and in order");
            store.push(&c.text);
        }
        store
    }

    /// Appends a chunk, returning its id.
    pub fn push(&mut self, text: &AnnotatedText) -> ChunkId {
        let mut buf = BytesMut::with_capacity(text.len() * 4);
        for t in text.tokens() {
            buf.extend_from_slice(&t.0.to_le_bytes());
        }
        let id = ChunkId(self.blobs.len() as u32);
        self.blobs.push(buf.freeze());
        self.spans.push(text.spans().to_vec());
        id
    }

    /// Number of stored chunks.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// Returns `true` when the store holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Token count of chunk `id` without decoding.
    pub fn token_len(&self, id: ChunkId) -> Option<usize> {
        self.blobs.get(id.index()).map(|b| b.len() / 4)
    }

    /// Decodes chunk `id` back into an [`AnnotatedText`].
    pub fn get(&self, id: ChunkId) -> Option<AnnotatedText> {
        let blob = self.blobs.get(id.index())?;
        let tokens: Vec<TokenId> = blob
            .chunks_exact(4)
            .map(|b| TokenId(u32::from_le_bytes([b[0], b[1], b[2], b[3]])))
            .collect();
        Some(AnnotatedText::from_parts(
            tokens,
            self.spans[id.index()].clone(),
        ))
    }

    /// Total stored tokens across all chunks.
    pub fn total_tokens(&self) -> usize {
        self.blobs.iter().map(|b| b.len() / 4).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_text::FactId;

    fn sample_text() -> AnnotatedText {
        let mut t = AnnotatedText::new();
        t.push_tokens(&[TokenId(1), TokenId(2)]);
        t.push_fact(FactId(77), &[TokenId(3)]);
        t
    }

    #[test]
    fn push_get_roundtrip() {
        let mut s = ChunkStore::new();
        let text = sample_text();
        let id = s.push(&text);
        let back = s.get(id).unwrap();
        assert_eq!(back.tokens(), text.tokens());
        assert_eq!(back.spans(), text.spans());
    }

    #[test]
    fn token_len_avoids_decode() {
        let mut s = ChunkStore::new();
        let id = s.push(&sample_text());
        assert_eq!(s.token_len(id), Some(3));
        assert_eq!(s.total_tokens(), 3);
    }

    #[test]
    fn get_out_of_range_is_none() {
        let s = ChunkStore::new();
        assert!(s.get(ChunkId(0)).is_none());
    }

    #[test]
    fn from_chunks_preserves_ids() {
        use metis_text::{Chunker, ChunkerConfig};
        let mut doc = AnnotatedText::new();
        doc.push_tokens(&(0..100).map(TokenId).collect::<Vec<_>>());
        let chunks = Chunker::new(ChunkerConfig::with_size(16)).split(&doc);
        let store = ChunkStore::from_chunks(&chunks);
        assert_eq!(store.len(), chunks.len());
        for c in &chunks {
            assert_eq!(store.get(c.id).unwrap().tokens(), c.text.tokens());
        }
    }
}

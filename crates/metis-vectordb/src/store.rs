//! Memory-tiered chunk storage.
//!
//! The **cold tier** is the source of truth: chunks serialized as
//! little-endian `u32` token ids in [`bytes::Bytes`] buffers (cheaply
//! cloneable, shared, immutable), with fact spans kept in a side table.
//! This mirrors a real vector DB payload store where chunk text is an
//! opaque blob and ground-truth annotations live out of band.
//!
//! On top of it sits a bounded **hot tier**: an LRU cache of decoded
//! [`AnnotatedText`] values. A [`ChunkStore::get`] that misses decodes from
//! the cold blob and promotes the result; a hit returns the decoded clone
//! without touching the blob. Per-operation counters ([`StoreStats`])
//! record accesses, hit/promotion/eviction traffic, and the bytes touched
//! in each tier, so retrieval benchmarks can report tier locality the same
//! way [`crate::SearchWork`] reports distance evals.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bytes::{Bytes, BytesMut};
use metis_text::{AnnotatedText, ChunkId, FactSpan, TokenChunk, TokenId};

/// Default hot-tier capacity, in chunks.
pub const DEFAULT_HOT_CAPACITY: usize = 512;

/// Immutable tiered storage for the chunks of one database.
#[derive(Debug)]
pub struct ChunkStore {
    blobs: Vec<Bytes>,
    spans: Vec<Vec<FactSpan>>,
    hot_capacity: usize,
    hot: Mutex<HotTier>,
    accesses: AtomicU64,
    hot_hits: AtomicU64,
    promotions: AtomicU64,
    evictions: AtomicU64,
    bytes_hot_touched: AtomicU64,
    bytes_cold_touched: AtomicU64,
}

/// LRU state: decoded chunks keyed by index, recency order kept in a
/// stamp → index map (the smallest stamp is the eviction victim).
#[derive(Debug, Default)]
struct HotTier {
    decoded: HashMap<u32, (AnnotatedText, u64)>,
    recency: BTreeMap<u64, u32>,
    clock: u64,
}

/// A point-in-time snapshot of the store's tier counters. Obtained from
/// [`ChunkStore::stats`]; counters only ever grow, so a before/after
/// difference gives per-run traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Total `get` calls served.
    pub accesses: u64,
    /// `get` calls answered from the decoded hot tier.
    pub hot_hits: u64,
    /// Cold-tier decodes promoted into the hot tier.
    pub promotions: u64,
    /// Hot-tier entries evicted to make room.
    pub evictions: u64,
    /// Serialized bytes of chunks served from the hot tier.
    pub bytes_hot_touched: u64,
    /// Serialized bytes decoded from the cold tier.
    pub bytes_cold_touched: u64,
    /// Chunks currently decoded in the hot tier.
    pub hot_chunks: usize,
    /// Chunks resident only as cold serialized blobs.
    pub cold_chunks: usize,
}

impl StoreStats {
    /// Component-wise difference against an earlier snapshot (tier
    /// occupancy is taken from `self`, the later snapshot).
    pub fn since(&self, earlier: &StoreStats) -> StoreStats {
        StoreStats {
            accesses: self.accesses - earlier.accesses,
            hot_hits: self.hot_hits - earlier.hot_hits,
            promotions: self.promotions - earlier.promotions,
            evictions: self.evictions - earlier.evictions,
            bytes_hot_touched: self.bytes_hot_touched - earlier.bytes_hot_touched,
            bytes_cold_touched: self.bytes_cold_touched - earlier.bytes_cold_touched,
            hot_chunks: self.hot_chunks,
            cold_chunks: self.cold_chunks,
        }
    }
}

impl Default for ChunkStore {
    fn default() -> Self {
        Self::with_hot_capacity(DEFAULT_HOT_CAPACITY)
    }
}

impl Clone for ChunkStore {
    /// Clones the cold tier (cheap: `Bytes` are refcounted). The clone
    /// starts with an empty hot tier and zeroed counters — the cache is
    /// per-instance working state, not data.
    fn clone(&self) -> Self {
        Self {
            blobs: self.blobs.clone(),
            spans: self.spans.clone(),
            hot_capacity: self.hot_capacity,
            hot: Mutex::new(HotTier::default()),
            accesses: AtomicU64::new(0),
            hot_hits: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes_hot_touched: AtomicU64::new(0),
            bytes_cold_touched: AtomicU64::new(0),
        }
    }
}

impl ChunkStore {
    /// Creates an empty store with the default hot-tier capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store whose hot tier holds at most `capacity`
    /// decoded chunks (`0` disables the hot tier entirely).
    pub fn with_hot_capacity(capacity: usize) -> Self {
        Self {
            blobs: Vec::new(),
            spans: Vec::new(),
            hot_capacity: capacity,
            hot: Mutex::new(HotTier::default()),
            accesses: AtomicU64::new(0),
            hot_hits: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes_hot_touched: AtomicU64::new(0),
            bytes_cold_touched: AtomicU64::new(0),
        }
    }

    /// Builds a store from chunker output.
    ///
    /// Chunk ids must be dense and sequential (as produced by
    /// [`metis_text::Chunker::split`]); the store addresses blobs by index.
    ///
    /// # Panics
    ///
    /// Panics if chunk ids are not `0..n` in order.
    pub fn from_chunks(chunks: &[TokenChunk]) -> Self {
        let mut store = Self::new();
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.id.index(), i, "chunk ids must be dense and in order");
            store.push(&c.text);
        }
        store
    }

    /// Appends a chunk to the cold tier, returning its id.
    pub fn push(&mut self, text: &AnnotatedText) -> ChunkId {
        let mut buf = BytesMut::with_capacity(text.len() * 4);
        for t in text.tokens() {
            buf.extend_from_slice(&t.0.to_le_bytes());
        }
        let id = ChunkId(self.blobs.len() as u32);
        self.blobs.push(buf.freeze());
        self.spans.push(text.spans().to_vec());
        id
    }

    /// Number of stored chunks.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// Returns `true` when the store holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Hot-tier capacity, in chunks.
    pub fn hot_capacity(&self) -> usize {
        self.hot_capacity
    }

    /// Token count of chunk `id` without decoding (and without touching
    /// the tier counters — this is a metadata read).
    pub fn token_len(&self, id: ChunkId) -> Option<usize> {
        self.blobs.get(id.index()).map(|b| b.len() / 4)
    }

    /// Returns chunk `id`, serving from the hot tier when it is resident
    /// and decoding + promoting from the cold tier otherwise.
    pub fn get(&self, id: ChunkId) -> Option<AnnotatedText> {
        let blob = self.blobs.get(id.index())?;
        self.accesses.fetch_add(1, Ordering::Relaxed);
        let key = id.0;
        let blob_len = blob.len() as u64;
        if self.hot_capacity > 0 {
            let mut hot = self.hot.lock().expect("hot tier lock");
            if let Some((text, stamp)) = hot.decoded.get(&key) {
                let text = text.clone();
                let old = *stamp;
                hot.recency.remove(&old);
                hot.clock += 1;
                let now = hot.clock;
                hot.recency.insert(now, key);
                hot.decoded.get_mut(&key).expect("present").1 = now;
                self.hot_hits.fetch_add(1, Ordering::Relaxed);
                self.bytes_hot_touched
                    .fetch_add(blob_len, Ordering::Relaxed);
                return Some(text);
            }
        }
        // Cold path: decode the blob, then promote.
        self.bytes_cold_touched
            .fetch_add(blob_len, Ordering::Relaxed);
        let tokens: Vec<TokenId> = blob
            .chunks_exact(4)
            .map(|b| TokenId(u32::from_le_bytes([b[0], b[1], b[2], b[3]])))
            .collect();
        let text = AnnotatedText::from_parts(tokens, self.spans[id.index()].clone());
        if self.hot_capacity > 0 {
            let mut hot = self.hot.lock().expect("hot tier lock");
            // A racing promoter may have beaten us; re-inserting just
            // refreshes the entry either way.
            if hot.decoded.len() >= self.hot_capacity && !hot.decoded.contains_key(&key) {
                if let Some((_, victim)) = hot.recency.pop_first() {
                    hot.decoded.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            hot.clock += 1;
            let now = hot.clock;
            if let Some((_, old)) = hot.decoded.insert(key, (text.clone(), now)) {
                hot.recency.remove(&old);
            }
            hot.recency.insert(now, key);
            self.promotions.fetch_add(1, Ordering::Relaxed);
        }
        Some(text)
    }

    /// Total stored tokens across all chunks.
    pub fn total_tokens(&self) -> usize {
        self.blobs.iter().map(|b| b.len() / 4).sum()
    }

    /// Serialized size of the cold tier in bytes.
    pub fn cold_bytes(&self) -> u64 {
        self.blobs.iter().map(|b| b.len() as u64).sum()
    }

    /// Snapshots the tier counters and occupancy.
    pub fn stats(&self) -> StoreStats {
        let hot_chunks = self.hot.lock().expect("hot tier lock").decoded.len();
        StoreStats {
            accesses: self.accesses.load(Ordering::Relaxed),
            hot_hits: self.hot_hits.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_hot_touched: self.bytes_hot_touched.load(Ordering::Relaxed),
            bytes_cold_touched: self.bytes_cold_touched.load(Ordering::Relaxed),
            hot_chunks,
            cold_chunks: self.len() - hot_chunks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_text::FactId;

    fn sample_text() -> AnnotatedText {
        let mut t = AnnotatedText::new();
        t.push_tokens(&[TokenId(1), TokenId(2)]);
        t.push_fact(FactId(77), &[TokenId(3)]);
        t
    }

    fn numbered_text(i: u32) -> AnnotatedText {
        let mut t = AnnotatedText::new();
        t.push_tokens(&[TokenId(i), TokenId(i + 1), TokenId(i + 2)]);
        t
    }

    #[test]
    fn push_get_roundtrip() {
        let mut s = ChunkStore::new();
        let text = sample_text();
        let id = s.push(&text);
        let back = s.get(id).unwrap();
        assert_eq!(back.tokens(), text.tokens());
        assert_eq!(back.spans(), text.spans());
    }

    #[test]
    fn token_len_avoids_decode() {
        let mut s = ChunkStore::new();
        let id = s.push(&sample_text());
        assert_eq!(s.token_len(id), Some(3));
        assert_eq!(s.total_tokens(), 3);
        assert_eq!(s.stats().accesses, 0, "metadata reads are not accesses");
    }

    #[test]
    fn get_out_of_range_is_none() {
        let s = ChunkStore::new();
        assert!(s.get(ChunkId(0)).is_none());
        assert_eq!(s.stats().accesses, 0);
    }

    #[test]
    fn from_chunks_preserves_ids() {
        use metis_text::{Chunker, ChunkerConfig};
        let mut doc = AnnotatedText::new();
        doc.push_tokens(&(0..100).map(TokenId).collect::<Vec<_>>());
        let chunks = Chunker::new(ChunkerConfig::with_size(16)).split(&doc);
        let store = ChunkStore::from_chunks(&chunks);
        assert_eq!(store.len(), chunks.len());
        for c in &chunks {
            assert_eq!(store.get(c.id).unwrap().tokens(), c.text.tokens());
        }
    }

    #[test]
    fn repeated_get_hits_the_hot_tier() {
        let mut s = ChunkStore::new();
        let id = s.push(&sample_text());
        let first = s.get(id).unwrap();
        let second = s.get(id).unwrap();
        assert_eq!(first.tokens(), second.tokens());
        let st = s.stats();
        assert_eq!(st.accesses, 2);
        assert_eq!(st.hot_hits, 1);
        assert_eq!(st.promotions, 1);
        assert_eq!(st.evictions, 0);
        assert_eq!(st.hot_chunks, 1);
        assert!(st.bytes_hot_touched > 0);
        assert_eq!(st.bytes_hot_touched, st.bytes_cold_touched);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_chunk() {
        let mut s = ChunkStore::with_hot_capacity(2);
        let ids: Vec<ChunkId> = (0..3).map(|i| s.push(&numbered_text(i * 10))).collect();
        s.get(ids[0]);
        s.get(ids[1]);
        // Touch 0 so 1 becomes the LRU victim when 2 is promoted.
        s.get(ids[0]);
        s.get(ids[2]);
        let st = s.stats();
        assert_eq!(st.evictions, 1);
        assert_eq!(st.hot_chunks, 2);
        // 0 stayed hot (hit); 1 was evicted (cold decode again).
        let before = s.stats().hot_hits;
        s.get(ids[0]);
        assert_eq!(s.stats().hot_hits, before + 1);
        let before_cold = s.stats().bytes_cold_touched;
        s.get(ids[1]);
        assert!(s.stats().bytes_cold_touched > before_cold, "1 was evicted");
    }

    #[test]
    fn zero_capacity_disables_the_hot_tier() {
        let mut s = ChunkStore::with_hot_capacity(0);
        let id = s.push(&sample_text());
        s.get(id);
        s.get(id);
        let st = s.stats();
        assert_eq!(st.hot_hits, 0);
        assert_eq!(st.promotions, 0);
        assert_eq!(st.hot_chunks, 0);
        assert_eq!(st.accesses, 2);
    }

    #[test]
    fn clone_resets_cache_state_but_keeps_data() {
        let mut s = ChunkStore::new();
        let id = s.push(&sample_text());
        s.get(id);
        let c = s.clone();
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.stats().hot_chunks, 0);
        assert_eq!(c.get(id).unwrap().tokens(), sample_text().tokens());
    }

    #[test]
    fn stats_delta_isolates_a_window() {
        let mut s = ChunkStore::new();
        let id = s.push(&sample_text());
        s.get(id);
        let before = s.stats();
        s.get(id);
        s.get(id);
        let delta = s.stats().since(&before);
        assert_eq!(delta.accesses, 2);
        assert_eq!(delta.hot_hits, 2);
        assert_eq!(delta.promotions, 0);
    }
}

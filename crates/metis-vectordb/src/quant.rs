//! Scalar quantization (sq8): one `u8` per dimension against a trained
//! per-dim `[min, max]` range, searched through a per-query lookup table.
//!
//! A quantized index stores 4× less per vector and scores candidates by
//! summing 256-entry per-dim LUT values instead of computing exact f32
//! distances — the precompute-for-query-time trade the related LUT-based
//! systems make. The approximation is optionally repaired by an exact
//! re-rank of the top candidates (the `rerank` knob, a multiple of `k`),
//! for which the original f32 rows are retained. Every quantized eval is
//! reported separately from exact evals through
//! [`SearchWork::quantized_scored`](crate::SearchWork), so the retrieval
//! latency model prices the two domains differently.

use metis_text::ChunkId;

use crate::{ivf::IvfIndex, Hit, IvfConfig, SearchOutcome, SearchWork, VectorIndex};

/// How vectors are stored and scored inside an index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Quantization {
    /// Exact f32 storage — every distance eval is exact.
    #[default]
    F32,
    /// Scalar 8-bit quantization: candidates are scored in the quantized
    /// domain, then the best `rerank * k` are re-scored exactly
    /// (`rerank = 0` disables the repair pass and returns quantized
    /// distances as-is).
    Sq8 {
        /// Exact re-rank depth as a multiple of the requested `k`.
        rerank: usize,
    },
}

impl Quantization {
    /// Default sq8 configuration: re-rank the top `4k` candidates exactly.
    pub fn sq8() -> Self {
        Self::Sq8 { rerank: 4 }
    }

    /// Short scheme name (`"f32"` / `"sq8"`), used by CLI flags and report
    /// knobs.
    pub fn name(&self) -> &'static str {
        match self {
            Self::F32 => "f32",
            Self::Sq8 { .. } => "sq8",
        }
    }

    /// Whether candidate scoring happens in the quantized domain.
    pub fn is_quantized(&self) -> bool {
        matches!(self, Self::Sq8 { .. })
    }

    /// The exact re-rank depth multiplier (0 under [`Quantization::F32`]:
    /// every eval is already exact).
    pub fn rerank(&self) -> usize {
        match self {
            Self::F32 => 0,
            Self::Sq8 { rerank } => *rerank,
        }
    }
}

/// Per-dimension affine quantizer: `code = round((x - min) / step)` with
/// `step = (max - min) / 255`, trained on the corpus min/max of each dim.
#[derive(Clone, Debug)]
pub struct ScalarQuantizer {
    min: Vec<f32>,
    step: Vec<f32>,
}

impl ScalarQuantizer {
    /// Trains per-dim ranges over `rows` (one pass; degenerate dims whose
    /// min equals max get step 0 and decode exactly).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or any row disagrees on dimension.
    pub fn train<'a>(dim: usize, rows: impl Iterator<Item = &'a [f32]>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        let mut min = vec![f32::INFINITY; dim];
        let mut max = vec![f32::NEG_INFINITY; dim];
        let mut seen = false;
        for row in rows {
            assert_eq!(row.len(), dim, "dimension mismatch");
            seen = true;
            for (d, &x) in row.iter().enumerate() {
                min[d] = min[d].min(x);
                max[d] = max[d].max(x);
            }
        }
        if !seen {
            min.iter_mut().for_each(|m| *m = 0.0);
            max.iter_mut().for_each(|m| *m = 0.0);
        }
        let step = min
            .iter()
            .zip(&max)
            .map(|(lo, hi)| (hi - lo) / 255.0)
            .collect();
        Self { min, step }
    }

    /// Dimensionality the quantizer was trained for.
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// The quantization step of dimension `d` — the error bound unit.
    pub fn step(&self, d: usize) -> f32 {
        self.step[d]
    }

    /// Encodes one vector into `out` (cleared first).
    pub fn encode_into(&self, v: &[f32], out: &mut Vec<u8>) {
        assert_eq!(v.len(), self.dim(), "dimension mismatch");
        out.clear();
        out.extend(v.iter().enumerate().map(|(d, &x)| {
            if self.step[d] <= 0.0 {
                0u8
            } else {
                (((x - self.min[d]) / self.step[d]).round().clamp(0.0, 255.0)) as u8
            }
        }));
    }

    /// Encodes one vector to a fresh code row.
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(v.len());
        self.encode_into(v, &mut out);
        out
    }

    /// Reconstructs the vector a code row represents; the per-dim error of
    /// `decode(encode(x))` is at most `step(d) / 2` for in-range `x`.
    pub fn decode(&self, codes: &[u8]) -> Vec<f32> {
        assert_eq!(codes.len(), self.dim(), "dimension mismatch");
        codes
            .iter()
            .enumerate()
            .map(|(d, &c)| self.min[d] + self.step[d] * f32::from(c))
            .collect()
    }

    /// Builds the per-query asymmetric-distance lookup table:
    /// `lut[d][c] = (query[d] - decode(c)[d])²`, so a candidate's squared
    /// distance is `dim` table lookups plus adds.
    pub fn lut(&self, query: &[f32]) -> QueryLut {
        assert_eq!(query.len(), self.dim(), "dimension mismatch");
        let dim = self.dim();
        let mut table = vec![0.0f32; dim * 256];
        for d in 0..dim {
            let row = &mut table[d * 256..(d + 1) * 256];
            for (c, slot) in row.iter_mut().enumerate() {
                let delta = query[d] - (self.min[d] + self.step[d] * c as f32);
                *slot = delta * delta;
            }
        }
        QueryLut { dim, table }
    }
}

/// Precomputed asymmetric-distance table for one query (see
/// [`ScalarQuantizer::lut`]).
#[derive(Clone, Debug)]
pub struct QueryLut {
    dim: usize,
    table: Vec<f32>,
}

impl QueryLut {
    /// Squared distance between the query and a code row.
    pub fn dist2(&self, codes: &[u8]) -> f32 {
        debug_assert_eq!(codes.len(), self.dim);
        codes
            .iter()
            .enumerate()
            .map(|(d, &c)| self.table[d * 256 + usize::from(c)])
            .sum()
    }
}

pub(crate) fn sq_l2(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

fn sort_hits(hits: &mut [Hit]) {
    hits.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| a.chunk.cmp(&b.chunk))
    });
}

/// Keeps the `keep` smallest `(dist2, slot)` candidates in ascending order.
fn take_top(cands: &mut Vec<(f32, usize)>, keep: usize) {
    cands.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    cands.truncate(keep);
}

/// Exact-storage flat scan's quantized sibling: scores the whole corpus
/// through the LUT, then re-ranks the top `rerank * k` exactly.
#[derive(Clone, Debug)]
pub struct SqFlatIndex {
    dim: usize,
    sq: ScalarQuantizer,
    codes: Vec<u8>,
    rows: Vec<f32>,
    ids: Vec<ChunkId>,
    rerank: usize,
}

impl SqFlatIndex {
    /// Builds the index, training the quantizer on `items`. Original rows
    /// are retained only when `rerank > 0`.
    pub fn build(dim: usize, rerank: usize, items: &[(ChunkId, Vec<f32>)]) -> Self {
        let sq = ScalarQuantizer::train(dim, items.iter().map(|(_, v)| v.as_slice()));
        let mut codes = Vec::with_capacity(items.len() * dim);
        let mut rows = Vec::new();
        let mut ids = Vec::with_capacity(items.len());
        let mut scratch = Vec::with_capacity(dim);
        for (id, v) in items {
            sq.encode_into(v, &mut scratch);
            codes.extend_from_slice(&scratch);
            if rerank > 0 {
                rows.extend_from_slice(v);
            }
            ids.push(*id);
        }
        Self {
            dim,
            sq,
            codes,
            rows,
            ids,
            rerank,
        }
    }

    /// The trained quantizer (for error-bound tests).
    pub fn quantizer(&self) -> &ScalarQuantizer {
        &self.sq
    }

    fn code_row(&self, i: usize) -> &[u8] {
        &self.codes[i * self.dim..(i + 1) * self.dim]
    }

    fn exact_row(&self, i: usize) -> &[f32] {
        &self.rows[i * self.dim..(i + 1) * self.dim]
    }
}

impl VectorIndex for SqFlatIndex {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn search_counted(&self, query: &[f32], k: usize) -> SearchOutcome {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        if k == 0 || self.ids.is_empty() {
            return SearchOutcome {
                hits: Vec::new(),
                work: SearchWork::default(),
            };
        }
        let lut = self.sq.lut(query);
        let mut work = SearchWork {
            quantized_scored: self.ids.len(),
            ..SearchWork::default()
        };
        let mut cands: Vec<(f32, usize)> = (0..self.ids.len())
            .map(|i| (lut.dist2(self.code_row(i)), i))
            .collect();
        let keep = if self.rerank > 0 {
            self.rerank.saturating_mul(k).max(k)
        } else {
            k
        };
        take_top(&mut cands, keep);
        let mut hits: Vec<Hit> = cands
            .into_iter()
            .map(|(d2, i)| {
                let d2 = if self.rerank > 0 {
                    work.vectors_scored += 1;
                    sq_l2(self.exact_row(i), query)
                } else {
                    d2
                };
                Hit {
                    chunk: self.ids[i],
                    distance: d2.sqrt(),
                }
            })
            .collect();
        sort_hits(&mut hits);
        hits.truncate(k);
        SearchOutcome { hits, work }
    }
}

/// One quantized inverted-list member: (id, code row, exact row — the
/// exact row is empty when `rerank == 0`).
type SqListEntry = (ChunkId, Vec<u8>, Vec<f32>);

/// IVF with quantized inverted lists: centroids are ranked exactly, probed
/// list members are scored through the LUT, and the best `rerank * k`
/// candidates are re-scored exactly.
///
/// Built by converting a trained [`IvfIndex`] — k-means runs at full
/// precision, then list members are encoded.
#[derive(Clone, Debug)]
pub struct SqIvfIndex {
    dim: usize,
    config: IvfConfig,
    sq: ScalarQuantizer,
    centroids: Vec<Vec<f32>>,
    /// Per list: [`SqListEntry`] members.
    lists: Vec<Vec<SqListEntry>>,
    rerank: usize,
    len: usize,
}

impl SqIvfIndex {
    /// Quantizes a trained IVF index's lists.
    pub fn from_ivf(ivf: &IvfIndex, rerank: usize) -> Self {
        let (dim, centroids, lists) = ivf.raw();
        let sq = ScalarQuantizer::train(
            dim,
            lists
                .iter()
                .flat_map(|l| l.iter().map(|(_, v)| v.as_slice())),
        );
        let q_lists: Vec<Vec<SqListEntry>> = lists
            .iter()
            .map(|l| {
                l.iter()
                    .map(|(id, v)| {
                        let exact = if rerank > 0 { v.clone() } else { Vec::new() };
                        (*id, sq.encode(v), exact)
                    })
                    .collect()
            })
            .collect();
        Self {
            dim,
            config: ivf.config(),
            sq,
            centroids: centroids.to_vec(),
            lists: q_lists,
            rerank,
            len: ivf.len(),
        }
    }

    /// The effective IVF configuration.
    pub fn config(&self) -> IvfConfig {
        self.config
    }

    /// The trained quantizer (for error-bound tests).
    pub fn quantizer(&self) -> &ScalarQuantizer {
        &self.sq
    }
}

impl VectorIndex for SqIvfIndex {
    fn len(&self) -> usize {
        self.len
    }

    fn search_counted(&self, query: &[f32], k: usize) -> SearchOutcome {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        if k == 0 || self.len == 0 {
            return SearchOutcome {
                hits: Vec::new(),
                work: SearchWork::default(),
            };
        }
        let mut order: Vec<(f32, usize)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (sq_l2(c, query), i))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let lut = self.sq.lut(query);
        let mut work = SearchWork {
            centroids_scored: self.centroids.len(),
            ..SearchWork::default()
        };
        // (dist2, list, slot) candidates from the probed lists.
        let mut cands: Vec<(f32, usize, usize)> = Vec::new();
        for &(_, list) in order.iter().take(self.config.nprobe) {
            work.lists_probed += 1;
            work.quantized_scored += self.lists[list].len();
            for (slot, (_, codes, _)) in self.lists[list].iter().enumerate() {
                cands.push((lut.dist2(codes), list, slot));
            }
        }
        cands.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then_with(|| (a.1, a.2).cmp(&(b.1, b.2)))
        });
        let keep = if self.rerank > 0 {
            self.rerank.saturating_mul(k).max(k)
        } else {
            k
        };
        cands.truncate(keep);
        let mut hits: Vec<Hit> = cands
            .into_iter()
            .map(|(d2, list, slot)| {
                let (id, _, exact) = &self.lists[list][slot];
                let d2 = if self.rerank > 0 {
                    work.vectors_scored += 1;
                    sq_l2(exact, query)
                } else {
                    d2
                };
                Hit {
                    chunk: *id,
                    distance: d2.sqrt(),
                }
            })
            .collect();
        sort_hits(&mut hits);
        hits.truncate(k);
        SearchOutcome { hits, work }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatIndex;

    fn grid_items(n: u32, dim: usize) -> Vec<(ChunkId, Vec<f32>)> {
        (0..n)
            .map(|i| {
                let v = (0..dim)
                    .map(|d| ((i as usize * 7 + d * 13) % 29) as f32 * 0.5 - 7.0)
                    .collect();
                (ChunkId(i), v)
            })
            .collect()
    }

    /// Regression for the NaN-ordering invariant: a hit list containing
    /// NaN distances sorts without panicking, NaN last, ties on chunk id.
    #[test]
    fn nan_containing_hit_list_sorts_without_panicking() {
        let mut hits = vec![
            Hit {
                chunk: ChunkId(5),
                distance: f32::NAN,
            },
            Hit {
                chunk: ChunkId(1),
                distance: 2.0,
            },
            Hit {
                chunk: ChunkId(9),
                distance: f32::NAN,
            },
            Hit {
                chunk: ChunkId(2),
                distance: 0.0,
            },
        ];
        sort_hits(&mut hits);
        let order: Vec<_> = hits.iter().map(|h| h.chunk).collect();
        assert_eq!(order, vec![ChunkId(2), ChunkId(1), ChunkId(5), ChunkId(9)]);
    }

    #[test]
    fn roundtrip_error_is_within_half_a_step() {
        let items = grid_items(64, 6);
        let sq = ScalarQuantizer::train(6, items.iter().map(|(_, v)| v.as_slice()));
        for (_, v) in &items {
            let back = sq.decode(&sq.encode(v));
            for (d, (&x, y)) in v.iter().zip(&back).enumerate() {
                assert!(
                    (x - y).abs() <= sq.step(d) / 2.0 + 1e-6,
                    "dim {d}: |{x} - {y}| > step/2 = {}",
                    sq.step(d) / 2.0
                );
            }
        }
    }

    #[test]
    fn degenerate_dims_decode_exactly() {
        let items = [(ChunkId(0), vec![3.0, 1.0]), (ChunkId(1), vec![3.0, 2.0])];
        let sq = ScalarQuantizer::train(2, items.iter().map(|(_, v)| v.as_slice()));
        assert_eq!(sq.step(0), 0.0);
        assert_eq!(sq.decode(&sq.encode(&[3.0, 1.5]))[0], 3.0);
    }

    #[test]
    fn lut_distance_matches_decoded_distance() {
        let items = grid_items(32, 4);
        let sq = ScalarQuantizer::train(4, items.iter().map(|(_, v)| v.as_slice()));
        let q = [0.25, -1.5, 3.0, 0.0];
        let lut = sq.lut(&q);
        for (_, v) in &items {
            let codes = sq.encode(v);
            let via_lut = lut.dist2(&codes);
            let via_decode = sq_l2(&sq.decode(&codes), &q);
            assert!(
                (via_lut - via_decode).abs() < 1e-3,
                "{via_lut} vs {via_decode}"
            );
        }
    }

    #[test]
    fn sq_flat_with_rerank_matches_exact_flat_ranking() {
        let items = grid_items(128, 8);
        let mut flat = FlatIndex::new(8);
        for (id, v) in &items {
            flat.add(*id, v);
        }
        let idx = SqFlatIndex::build(8, 4, &items);
        let q: Vec<f32> = vec![0.1, -0.2, 0.3, 0.0, 1.0, -1.0, 0.5, 0.25];
        let exact: Vec<_> = flat.search(&q, 5).iter().map(|h| h.chunk).collect();
        let approx: Vec<_> = idx.search(&q, 5).iter().map(|h| h.chunk).collect();
        assert_eq!(exact, approx);
    }

    #[test]
    fn sq_flat_work_reports_quantized_and_rerank_evals() {
        let items = grid_items(100, 4);
        let idx = SqFlatIndex::build(4, 3, &items);
        let out = idx.search_counted(&[0.0; 4], 4);
        assert_eq!(out.work.quantized_scored, 100);
        assert_eq!(out.work.vectors_scored, 12, "rerank * k exact evals");
        assert_eq!(out.work.graph_hops, 0);
        assert_eq!(out.hits.len(), 4);
        // Without re-rank no exact eval happens at all.
        let cheap = SqFlatIndex::build(4, 0, &items);
        let out = cheap.search_counted(&[0.0; 4], 4);
        assert_eq!(out.work.vectors_scored, 0);
        assert_eq!(out.work.quantized_scored, 100);
    }

    #[test]
    fn sq_ivf_probes_and_reranks() {
        let items = grid_items(120, 4);
        let ivf = IvfIndex::build(
            4,
            IvfConfig {
                nlist: 6,
                nprobe: 3,
                train_iters: 6,
            },
            &items,
        );
        let idx = SqIvfIndex::from_ivf(&ivf, 2);
        let out = idx.search_counted(&[0.0; 4], 5);
        assert_eq!(out.hits.len(), 5);
        assert_eq!(out.work.centroids_scored, 6);
        assert_eq!(out.work.lists_probed, 3);
        assert!(out.work.quantized_scored > 0);
        assert_eq!(out.work.vectors_scored, 10, "rerank * k exact evals");
        // The top hit agrees with the plain IVF top hit on this corpus.
        let exact_top = ivf.search(&[0.0; 4], 1)[0].chunk;
        assert_eq!(out.hits[0].chunk, exact_top);
    }
}

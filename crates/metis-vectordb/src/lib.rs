//! Vector database substrate for the METIS reproduction.
//!
//! Reproduces the retrieval layer the paper builds from FAISS: an exact
//! flat-L2 index (`IndexFlatL2` + `index.search(query_embedding, top_k)`),
//! plus an IVF variant for completeness, a compact chunk store, and the
//! database metadata object that METIS's profiler consumes (§4.1: a one-line
//! description of the corpus plus its `chunk_size`).

pub mod db;
pub mod flat;
pub mod ivf;
pub mod store;

pub use db::{DbMetadata, IndexKind, RetrievalResult, VectorDb};
pub use flat::FlatIndex;
pub use ivf::{IvfConfig, IvfIndex};
pub use store::ChunkStore;

use metis_text::ChunkId;

/// A search hit: chunk id plus L2 distance (smaller is more similar).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hit {
    /// The matching chunk.
    pub chunk: ChunkId,
    /// L2 distance between query and chunk embeddings.
    pub distance: f32,
}

/// Common interface over the index variants.
pub trait VectorIndex: Send + Sync {
    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// Returns `true` when the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the `k` nearest chunks to `query` in ascending distance order.
    fn search(&self, query: &[f32], k: usize) -> Vec<Hit>;
}

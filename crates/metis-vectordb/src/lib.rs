//! Vector database substrate for the METIS reproduction.
//!
//! Reproduces the retrieval layer the paper builds from FAISS: an exact
//! flat-L2 index (`IndexFlatL2` + `index.search(query_embedding, top_k)`),
//! plus an IVF variant for completeness, a compact chunk store, and the
//! database metadata object that METIS's profiler consumes (§4.1: a one-line
//! description of the corpus plus its `chunk_size`).

pub mod db;
pub mod flat;
pub mod hnsw;
pub mod ivf;
pub mod quant;
pub mod store;

pub use db::{DbMetadata, IndexMeta, IndexSpec, RetrievalOutcome, RetrievalResult, VectorDb};
pub use flat::FlatIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use ivf::{IvfConfig, IvfIndex};
pub use quant::{Quantization, ScalarQuantizer, SqFlatIndex, SqIvfIndex};
pub use store::{ChunkStore, StoreStats};

use metis_text::ChunkId;

/// A search hit: chunk id plus L2 distance (smaller is more similar).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hit {
    /// The matching chunk.
    pub chunk: ChunkId,
    /// L2 distance between query and chunk embeddings.
    pub distance: f32,
}

/// Work performed by one index search, in units of distance computations —
/// the measured quantity a retrieval latency model converts into time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchWork {
    /// Corpus vectors scored against the query in exact f32: the whole
    /// corpus for a flat scan, the members of the probed lists for IVF,
    /// the re-rank candidates under sq8.
    pub vectors_scored: usize,
    /// Corpus vectors scored in the quantized (sq8) domain via the per-query
    /// lookup table; cheaper per eval than an exact f32 distance.
    pub quantized_scored: usize,
    /// Coarse-quantizer centroids scored (IVF ranks every centroid before
    /// probing; 0 for flat).
    pub centroids_scored: usize,
    /// Inverted lists visited (IVF: the effective `nprobe`; flat scans one
    /// contiguous array and reports 0).
    pub lists_probed: usize,
    /// Graph nodes expanded while navigating an HNSW index (0 for flat and
    /// IVF): each hop is a pointer chase plus a neighbor-list scan, priced
    /// separately from the distance evals it triggers.
    pub graph_hops: usize,
}

impl SearchWork {
    /// The work of an exact full scan over `n` vectors.
    pub fn full_scan(n: usize) -> Self {
        Self {
            vectors_scored: n,
            ..Self::default()
        }
    }

    /// Total distance computations (exact + quantized corpus vectors +
    /// centroids).
    pub fn distances(&self) -> usize {
        self.vectors_scored + self.quantized_scored + self.centroids_scored
    }

    /// Component-wise sum — used to aggregate per-query work into run
    /// totals.
    pub fn add(&mut self, other: &SearchWork) {
        self.vectors_scored += other.vectors_scored;
        self.quantized_scored += other.quantized_scored;
        self.centroids_scored += other.centroids_scored;
        self.lists_probed += other.lists_probed;
        self.graph_hops += other.graph_hops;
    }
}

/// Hits plus the measured work that produced them.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The `k` nearest chunks, in ascending distance order.
    pub hits: Vec<Hit>,
    /// Work accounting for this search.
    pub work: SearchWork,
}

/// Common interface over the index variants.
///
/// ```
/// use metis_text::ChunkId;
/// use metis_vectordb::{FlatIndex, VectorIndex};
///
/// let mut index = FlatIndex::new(2);
/// index.add(ChunkId(0), &[0.0, 1.0]);
/// index.add(ChunkId(1), &[1.0, 0.0]);
///
/// let outcome = index.search_counted(&[0.9, 0.1], 1);
/// assert_eq!(outcome.hits[0].chunk, ChunkId(1));
/// // A flat index scores the whole corpus — and says so.
/// assert_eq!(outcome.work.vectors_scored, 2);
/// ```
pub trait VectorIndex: Send + Sync {
    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// Returns `true` when the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the `k` nearest chunks plus the work the search performed.
    fn search_counted(&self, query: &[f32], k: usize) -> SearchOutcome;

    /// Returns the `k` nearest chunks to `query` in ascending distance
    /// order (for callers that don't need work accounting).
    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        self.search_counted(query, k).hits
    }
}

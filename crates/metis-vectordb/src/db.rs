//! The assembled vector database: embedder + index + chunk store + metadata.

use std::sync::Arc;

use metis_embed::Embedder;
use metis_text::{AnnotatedText, TokenChunk, TokenId};

use crate::flat::FlatIndex;
use crate::ivf::{IvfConfig, IvfIndex};
use crate::store::ChunkStore;
use crate::{Hit, VectorIndex};

/// Database metadata consumed by METIS's LLM profiler (§4.1).
///
/// The paper attaches "a short description about the type of content in the
/// database and its data size (`chunk_size`)" to every corpus; the profiler
/// uses it to judge how much summarization and reasoning a query needs.
#[derive(Clone, Debug)]
pub struct DbMetadata {
    /// One-line natural-language description of the corpus content.
    pub description: String,
    /// Tokens per chunk used when the database was built.
    pub chunk_size: usize,
    /// Number of chunks in the database.
    pub num_chunks: usize,
}

/// One retrieved chunk with its decoded text.
#[derive(Clone, Debug)]
pub struct RetrievalResult {
    /// The search hit (chunk id + distance).
    pub hit: Hit,
    /// Decoded chunk content with fact annotations.
    pub text: AnnotatedText,
}

/// Index backend for a [`VectorDb`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexKind {
    /// Exact flat L2 (FAISS `IndexFlatL2`) — the paper's setup.
    #[default]
    Flat,
    /// IVF approximate index (for corpus scales where exact search is too
    /// slow; trades a little recall for sublinear search).
    Ivf,
}

/// A complete retrieval database over one corpus.
///
/// Build once from the chunker output, then call [`VectorDb::retrieve`] with
/// query tokens — the analogue of the paper's
/// `index.search(query_embedding, top_k)` followed by payload lookup.
pub struct VectorDb {
    embedder: Arc<dyn Embedder>,
    index: Box<dyn VectorIndex>,
    store: ChunkStore,
    metadata: DbMetadata,
}

impl VectorDb {
    /// Builds the database by embedding and indexing every chunk with the
    /// exact flat index (the paper's FAISS `IndexFlatL2` setup).
    pub fn build(
        chunks: &[TokenChunk],
        embedder: Arc<dyn Embedder>,
        description: &str,
        chunk_size: usize,
    ) -> Self {
        Self::build_with_index(chunks, embedder, description, chunk_size, IndexKind::Flat)
    }

    /// Builds the database with a chosen index backend.
    pub fn build_with_index(
        chunks: &[TokenChunk],
        embedder: Arc<dyn Embedder>,
        description: &str,
        chunk_size: usize,
        kind: IndexKind,
    ) -> Self {
        let index: Box<dyn VectorIndex> = match kind {
            IndexKind::Flat => {
                let mut index = FlatIndex::new(embedder.dim());
                for c in chunks {
                    index.add(c.id, &embedder.embed(c.text.tokens()));
                }
                Box::new(index)
            }
            IndexKind::Ivf => {
                let items: Vec<_> = chunks
                    .iter()
                    .map(|c| (c.id, embedder.embed(c.text.tokens())))
                    .collect();
                let nlist = (chunks.len() / 24).clamp(1, 256);
                Box::new(IvfIndex::build(
                    embedder.dim(),
                    IvfConfig {
                        nlist,
                        nprobe: (nlist / 3).max(2).min(nlist),
                        train_iters: 6,
                    },
                    &items,
                ))
            }
        };
        let store = ChunkStore::from_chunks(chunks);
        let metadata = DbMetadata {
            description: description.to_owned(),
            chunk_size,
            num_chunks: chunks.len(),
        };
        Self {
            embedder,
            index,
            store,
            metadata,
        }
    }

    /// Retrieves the `top_k` most similar chunks to the query.
    pub fn retrieve(&self, query_tokens: &[TokenId], top_k: usize) -> Vec<RetrievalResult> {
        let q = self.embedder.embed(query_tokens);
        self.index
            .search(&q, top_k)
            .into_iter()
            .map(|hit| RetrievalResult {
                hit,
                text: self
                    .store
                    .get(hit.chunk)
                    .expect("index returned id missing from store"),
            })
            .collect()
    }

    /// The database metadata (for the profiler).
    pub fn metadata(&self) -> &DbMetadata {
        &self.metadata
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Returns `true` when the database holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The embedder used for both indexing and queries.
    pub fn embedder(&self) -> &dyn Embedder {
        self.embedder.as_ref()
    }

    /// Read access to the chunk store.
    pub fn store(&self) -> &ChunkStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_embed::HashEmbed;
    use metis_text::{Chunker, ChunkerConfig, FactId, TextGen, Tokenizer, TopicVocab};

    fn build_db() -> (VectorDb, Vec<TokenId>, FactId) {
        let mut tok = Tokenizer::new();
        let finance = TopicVocab::build(&mut tok, "finance", 64, 64);
        let sports = TopicVocab::build(&mut tok, "sports", 64, 64);
        let mut g = TextGen::new(11);

        // Document: sports filler, then a finance section containing a fact.
        let mut doc = AnnotatedText::new();
        doc.push_tokens(&g.filler(&sports, 256));
        let subject: Vec<TokenId> = finance.topic_words()[..8].to_vec();
        doc.push_tokens(&subject);
        let fact_phrase = g.fact_phrase(&mut tok, "ceo", 2);
        doc.push_fact(FactId(1), &fact_phrase);
        doc.push_tokens(&g.filler(&finance, 54));
        doc.push_tokens(&g.filler(&sports, 256));

        let chunks = Chunker::new(ChunkerConfig::with_size(64)).split(&doc);
        let db = VectorDb::build(
            &chunks,
            Arc::new(HashEmbed::default()),
            "synthetic finance + sports corpus",
            64,
        );
        // Query repeats the subject tokens, as a question about them would.
        (db, subject, FactId(1))
    }

    #[test]
    fn retrieval_surfaces_fact_bearing_chunk() {
        let (db, query, fact) = build_db();
        let results = db.retrieve(&query, 3);
        assert_eq!(results.len(), 3);
        let found = results.iter().any(|r| r.text.fact_ids().any(|f| f == fact));
        assert!(found, "fact chunk not in top-3");
    }

    #[test]
    fn results_are_distance_ordered() {
        let (db, query, _) = build_db();
        let results = db.retrieve(&query, 5);
        for w in results.windows(2) {
            assert!(w[0].hit.distance <= w[1].hit.distance);
        }
    }

    #[test]
    fn metadata_reflects_build() {
        let (db, _, _) = build_db();
        let md = db.metadata();
        assert_eq!(md.chunk_size, 64);
        assert_eq!(md.num_chunks, db.len());
        assert!(!md.description.is_empty());
    }

    #[test]
    fn ivf_backend_retrieves_the_same_fact() {
        let mut tok = Tokenizer::new();
        let finance = TopicVocab::build(&mut tok, "finance", 64, 64);
        let mut g = TextGen::new(11);
        let mut doc = AnnotatedText::new();
        doc.push_tokens(&g.filler(&finance, 512));
        let subject: Vec<TokenId> = finance.topic_words()[..8].to_vec();
        doc.push_tokens(&subject);
        let fact_phrase = g.fact_phrase(&mut tok, "ceo", 2);
        doc.push_fact(FactId(1), &fact_phrase);
        doc.push_tokens(&g.filler(&finance, 700));
        let chunks = Chunker::new(ChunkerConfig::with_size(64)).split(&doc);
        let db = VectorDb::build_with_index(
            &chunks,
            Arc::new(HashEmbed::default()),
            "ivf corpus",
            64,
            IndexKind::Ivf,
        );
        let results = db.retrieve(&subject, 5);
        assert!(!results.is_empty());
        // With generous nprobe, the fact chunk surfaces just like flat.
        let found = results
            .iter()
            .any(|r| r.text.fact_ids().any(|f| f == FactId(1)));
        assert!(found, "IVF missed the fact chunk");
    }

    #[test]
    fn top_k_clamps_to_db_size() {
        let (db, query, _) = build_db();
        let results = db.retrieve(&query, 10_000);
        assert_eq!(results.len(), db.len());
    }
}

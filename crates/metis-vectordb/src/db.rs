//! The assembled vector database: embedder + index + chunk store + metadata.

use std::sync::Arc;

use metis_embed::Embedder;
use metis_text::{AnnotatedText, TokenChunk, TokenId};

use crate::flat::FlatIndex;
use crate::hnsw::{HnswConfig, HnswIndex};
use crate::ivf::{IvfConfig, IvfIndex};
use crate::quant::{Quantization, SqFlatIndex, SqIvfIndex};
use crate::store::ChunkStore;
use crate::{Hit, SearchOutcome, SearchWork, VectorIndex};

/// Database metadata consumed by METIS's LLM profiler (§4.1).
///
/// The paper attaches "a short description about the type of content in the
/// database and its data size (`chunk_size`)" to every corpus; the profiler
/// uses it to judge how much summarization and reasoning a query needs.
#[derive(Clone, Debug)]
pub struct DbMetadata {
    /// One-line natural-language description of the corpus content.
    pub description: String,
    /// Tokens per chunk used when the database was built.
    pub chunk_size: usize,
    /// Number of chunks in the database.
    pub num_chunks: usize,
}

/// One retrieved chunk with its decoded text.
#[derive(Clone, Debug)]
pub struct RetrievalResult {
    /// The search hit (chunk id + distance).
    pub hit: Hit,
    /// Decoded chunk content with fact annotations.
    pub text: AnnotatedText,
}

/// Index backend specification for a [`VectorDb`], chosen at build time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexSpec {
    /// Exact flat L2 (FAISS `IndexFlatL2`) — the paper's setup.
    #[default]
    Flat,
    /// IVF approximate index (for corpus scales where exact search is too
    /// slow; trades a little recall for sublinear search).
    Ivf {
        /// Number of inverted lists (coarse centroids).
        nlist: usize,
        /// Lists probed per search.
        nprobe: usize,
        /// K-means refinement iterations at build time.
        train_iters: usize,
    },
    /// HNSW layered-graph index (near-logarithmic search at corpus scales
    /// where even IVF's probed lists are too large to scan).
    Hnsw {
        /// Max neighbors per node (layer 0 allows `2m`).
        m: usize,
        /// Insertion beam width at build time.
        ef_construction: usize,
        /// Layer-0 expansion budget at query time.
        ef_search: usize,
    },
}

impl IndexSpec {
    /// An IVF spec with the default training schedule.
    pub fn ivf(nlist: usize, nprobe: usize) -> Self {
        Self::Ivf {
            nlist,
            nprobe,
            train_iters: 8,
        }
    }

    /// An HNSW spec with the default construction beam.
    pub fn hnsw(m: usize, ef_search: usize) -> Self {
        Self::Hnsw {
            m,
            ef_construction: HnswConfig::default().ef_construction,
            ef_search,
        }
    }

    /// Index family name.
    pub fn name(&self) -> &'static str {
        match self {
            IndexSpec::Flat => "flat",
            IndexSpec::Ivf { .. } => "ivf",
            IndexSpec::Hnsw { .. } => "hnsw",
        }
    }

    /// Short display form, e.g. `flat`, `ivf(nlist=64,nprobe=8)` or
    /// `hnsw(m=16,ef=64)`.
    pub fn label(&self) -> String {
        match self {
            IndexSpec::Flat => "flat".to_owned(),
            IndexSpec::Ivf { nlist, nprobe, .. } => {
                format!("ivf(nlist={nlist},nprobe={nprobe})")
            }
            IndexSpec::Hnsw { m, ef_search, .. } => {
                format!("hnsw(m={m},ef={ef_search})")
            }
        }
    }

    /// Checks the parameters are internally consistent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            IndexSpec::Flat => Ok(()),
            IndexSpec::Ivf { nlist, nprobe, .. } => {
                if nlist == 0 {
                    return Err("nlist must be positive".into());
                }
                if nprobe == 0 {
                    return Err("nprobe must be positive".into());
                }
                if nprobe > nlist {
                    return Err(format!("nprobe ({nprobe}) must be <= nlist ({nlist})"));
                }
                Ok(())
            }
            IndexSpec::Hnsw {
                m,
                ef_construction,
                ef_search,
            } => {
                if m < 2 {
                    return Err("m must be at least 2".into());
                }
                if ef_search == 0 {
                    return Err("ef-search must be positive".into());
                }
                if ef_construction < m {
                    return Err(format!(
                        "ef-construction ({ef_construction}) must be >= m ({m})"
                    ));
                }
                Ok(())
            }
        }
    }
}

/// What a controller (or report) may know about the index serving a run:
/// the requested spec plus the effective, data-clamped shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexMeta {
    /// The spec the database was built with.
    pub spec: IndexSpec,
    /// How vectors are stored and scored inside the index.
    pub quant: Quantization,
    /// Effective inverted-list count (1 for flat and HNSW).
    pub nlist: usize,
    /// Effective probe count (1 for flat and HNSW).
    pub nprobe: usize,
    /// Number of indexed vectors.
    pub vectors: usize,
}

impl IndexMeta {
    /// Metadata of an exact flat index over `vectors` vectors.
    pub fn flat(vectors: usize) -> Self {
        Self {
            spec: IndexSpec::Flat,
            quant: Quantization::F32,
            nlist: 1,
            nprobe: 1,
            vectors,
        }
    }

    /// Expected distance computations per search under this index (a
    /// balanced-lists estimate controllers can reason about without
    /// running a query): the full corpus for flat, `nlist` centroids plus
    /// `nprobe/nlist` of the corpus for IVF, and roughly one layer-0
    /// frontier (`ef_search` expansions of up to `2m` neighbors) for HNSW.
    pub fn expected_scored(&self) -> usize {
        match self.spec {
            IndexSpec::Flat => self.vectors,
            IndexSpec::Ivf { .. } => self.nlist + self.vectors * self.nprobe / self.nlist.max(1),
            IndexSpec::Hnsw { m, ef_search, .. } => (ef_search * 2 * m).min(self.vectors.max(1)),
        }
    }
}

/// Retrieval results plus the measured work that produced them.
#[derive(Clone, Debug)]
pub struct RetrievalOutcome {
    /// The retrieved chunks, in ascending distance order.
    pub results: Vec<RetrievalResult>,
    /// Index-search work accounting.
    pub work: SearchWork,
    /// Embedding work spent on the query, in the embedder's feature-hash
    /// units ([`Embedder::embed_work`]).
    pub embed_units: u64,
}

/// A complete retrieval database over one corpus.
///
/// Build once from the chunker output, then call [`VectorDb::retrieve`] with
/// query tokens — the analogue of the paper's
/// `index.search(query_embedding, top_k)` followed by payload lookup.
pub struct VectorDb {
    embedder: Arc<dyn Embedder>,
    index: Box<dyn VectorIndex>,
    index_meta: IndexMeta,
    store: ChunkStore,
    metadata: DbMetadata,
}

impl VectorDb {
    /// Builds the database by embedding and indexing every chunk with the
    /// exact flat index (the paper's FAISS `IndexFlatL2` setup).
    pub fn build(
        chunks: &[TokenChunk],
        embedder: Arc<dyn Embedder>,
        description: &str,
        chunk_size: usize,
    ) -> Self {
        Self::build_with_index(chunks, embedder, description, chunk_size, IndexSpec::Flat)
    }

    /// Builds the database with a chosen index backend (f32 storage).
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`IndexSpec::validate`].
    pub fn build_with_index(
        chunks: &[TokenChunk],
        embedder: Arc<dyn Embedder>,
        description: &str,
        chunk_size: usize,
        spec: IndexSpec,
    ) -> Self {
        Self::build_with_spec(
            chunks,
            embedder,
            description,
            chunk_size,
            spec,
            Quantization::F32,
        )
    }

    /// Builds the database with a chosen index backend and vector storage
    /// scheme.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`IndexSpec::validate`].
    pub fn build_with_spec(
        chunks: &[TokenChunk],
        embedder: Arc<dyn Embedder>,
        description: &str,
        chunk_size: usize,
        spec: IndexSpec,
        quant: Quantization,
    ) -> Self {
        spec.validate().expect("invalid index spec");
        let dim = embedder.dim();
        let (index, mut index_meta): (Box<dyn VectorIndex>, IndexMeta) = match spec {
            IndexSpec::Flat => {
                let index: Box<dyn VectorIndex> = match quant {
                    Quantization::F32 => {
                        let mut index = FlatIndex::new(dim);
                        for c in chunks {
                            index.add(c.id, &embedder.embed(c.text.tokens()));
                        }
                        Box::new(index)
                    }
                    Quantization::Sq8 { rerank } => {
                        let items: Vec<_> = chunks
                            .iter()
                            .map(|c| (c.id, embedder.embed(c.text.tokens())))
                            .collect();
                        Box::new(SqFlatIndex::build(dim, rerank, &items))
                    }
                };
                (index, IndexMeta::flat(chunks.len()))
            }
            IndexSpec::Ivf {
                nlist,
                nprobe,
                train_iters,
            } => {
                let items: Vec<_> = chunks
                    .iter()
                    .map(|c| (c.id, embedder.embed(c.text.tokens())))
                    .collect();
                let index = IvfIndex::build(
                    dim,
                    IvfConfig {
                        nlist,
                        nprobe,
                        train_iters,
                    },
                    &items,
                );
                let effective = index.config();
                let meta = IndexMeta {
                    spec,
                    quant: Quantization::F32,
                    nlist: effective.nlist,
                    nprobe: effective.nprobe,
                    vectors: chunks.len(),
                };
                let index: Box<dyn VectorIndex> = match quant {
                    Quantization::F32 => Box::new(index),
                    Quantization::Sq8 { rerank } => Box::new(SqIvfIndex::from_ivf(&index, rerank)),
                };
                (index, meta)
            }
            IndexSpec::Hnsw {
                m,
                ef_construction,
                ef_search,
            } => {
                let items: Vec<_> = chunks
                    .iter()
                    .map(|c| (c.id, embedder.embed(c.text.tokens())))
                    .collect();
                let index = HnswIndex::build(
                    dim,
                    HnswConfig {
                        m,
                        ef_construction,
                        ef_search,
                    },
                    quant,
                    &items,
                );
                let meta = IndexMeta {
                    spec,
                    quant: Quantization::F32,
                    nlist: 1,
                    nprobe: 1,
                    vectors: chunks.len(),
                };
                (Box::new(index), meta)
            }
        };
        index_meta.quant = quant;
        let store = ChunkStore::from_chunks(chunks);
        let metadata = DbMetadata {
            description: description.to_owned(),
            chunk_size,
            num_chunks: chunks.len(),
        };
        Self {
            embedder,
            index,
            index_meta,
            store,
            metadata,
        }
    }

    /// Retrieves the `top_k` most similar chunks to the query.
    pub fn retrieve(&self, query_tokens: &[TokenId], top_k: usize) -> Vec<RetrievalResult> {
        self.retrieve_counted(query_tokens, top_k).results
    }

    /// Retrieves the `top_k` most similar chunks plus the measured embed
    /// and index-search work — what the runner's retrieval latency model
    /// converts into simulated time.
    pub fn retrieve_counted(&self, query_tokens: &[TokenId], top_k: usize) -> RetrievalOutcome {
        let q = self.embedder.embed(query_tokens);
        let SearchOutcome { hits, work } = self.index.search_counted(&q, top_k);
        let results = hits
            .into_iter()
            .map(|hit| RetrievalResult {
                hit,
                text: self
                    .store
                    .get(hit.chunk)
                    .expect("index returned id missing from store"),
            })
            .collect();
        RetrievalOutcome {
            results,
            work,
            embed_units: self.embedder.embed_work(query_tokens.len()),
        }
    }

    /// The database metadata (for the profiler).
    pub fn metadata(&self) -> &DbMetadata {
        &self.metadata
    }

    /// Metadata of the index serving this database.
    pub fn index_meta(&self) -> IndexMeta {
        self.index_meta
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Returns `true` when the database holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The embedder used for both indexing and queries.
    pub fn embedder(&self) -> &dyn Embedder {
        self.embedder.as_ref()
    }

    /// Read access to the chunk store.
    pub fn store(&self) -> &ChunkStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metis_embed::HashEmbed;
    use metis_text::{Chunker, ChunkerConfig, FactId, TextGen, Tokenizer, TopicVocab};

    fn build_db() -> (VectorDb, Vec<TokenId>, FactId) {
        let mut tok = Tokenizer::new();
        let finance = TopicVocab::build(&mut tok, "finance", 64, 64);
        let sports = TopicVocab::build(&mut tok, "sports", 64, 64);
        let mut g = TextGen::new(11);

        // Document: sports filler, then a finance section containing a fact.
        let mut doc = AnnotatedText::new();
        doc.push_tokens(&g.filler(&sports, 256));
        let subject: Vec<TokenId> = finance.topic_words()[..8].to_vec();
        doc.push_tokens(&subject);
        let fact_phrase = g.fact_phrase(&mut tok, "ceo", 2);
        doc.push_fact(FactId(1), &fact_phrase);
        doc.push_tokens(&g.filler(&finance, 54));
        doc.push_tokens(&g.filler(&sports, 256));

        let chunks = Chunker::new(ChunkerConfig::with_size(64)).split(&doc);
        let db = VectorDb::build(
            &chunks,
            Arc::new(HashEmbed::default()),
            "synthetic finance + sports corpus",
            64,
        );
        // Query repeats the subject tokens, as a question about them would.
        (db, subject, FactId(1))
    }

    #[test]
    fn retrieval_surfaces_fact_bearing_chunk() {
        let (db, query, fact) = build_db();
        let results = db.retrieve(&query, 3);
        assert_eq!(results.len(), 3);
        let found = results.iter().any(|r| r.text.fact_ids().any(|f| f == fact));
        assert!(found, "fact chunk not in top-3");
    }

    #[test]
    fn results_are_distance_ordered() {
        let (db, query, _) = build_db();
        let results = db.retrieve(&query, 5);
        for w in results.windows(2) {
            assert!(w[0].hit.distance <= w[1].hit.distance);
        }
    }

    #[test]
    fn metadata_reflects_build() {
        let (db, _, _) = build_db();
        let md = db.metadata();
        assert_eq!(md.chunk_size, 64);
        assert_eq!(md.num_chunks, db.len());
        assert!(!md.description.is_empty());
    }

    #[test]
    fn ivf_backend_retrieves_the_same_fact() {
        let mut tok = Tokenizer::new();
        let finance = TopicVocab::build(&mut tok, "finance", 64, 64);
        let mut g = TextGen::new(11);
        let mut doc = AnnotatedText::new();
        doc.push_tokens(&g.filler(&finance, 512));
        let subject: Vec<TokenId> = finance.topic_words()[..8].to_vec();
        doc.push_tokens(&subject);
        let fact_phrase = g.fact_phrase(&mut tok, "ceo", 2);
        doc.push_fact(FactId(1), &fact_phrase);
        doc.push_tokens(&g.filler(&finance, 700));
        let chunks = Chunker::new(ChunkerConfig::with_size(64)).split(&doc);
        let db = VectorDb::build_with_index(
            &chunks,
            Arc::new(HashEmbed::default()),
            "ivf corpus",
            64,
            IndexSpec::ivf(4, 3),
        );
        let results = db.retrieve(&subject, 5);
        assert!(!results.is_empty());
        // With generous nprobe, the fact chunk surfaces just like flat.
        let found = results
            .iter()
            .any(|r| r.text.fact_ids().any(|f| f == FactId(1)));
        assert!(found, "IVF missed the fact chunk");
        // The index metadata reflects the requested spec.
        let meta = db.index_meta();
        assert_eq!(meta.spec, IndexSpec::ivf(4, 3));
        assert_eq!(meta.nlist, 4);
        assert_eq!(meta.nprobe, 3);
        assert_eq!(meta.vectors, db.len());
        assert!(meta.expected_scored() < db.len() + meta.nlist);
    }

    #[test]
    fn counted_retrieval_reports_work_and_embed_units() {
        let (db, query, _) = build_db();
        let out = db.retrieve_counted(&query, 3);
        assert_eq!(out.results.len(), 3);
        // Flat scan scores the entire corpus, probes no lists.
        assert_eq!(out.work.vectors_scored, db.len());
        assert_eq!(out.work.centroids_scored, 0);
        assert_eq!(out.work.lists_probed, 0);
        assert_eq!(out.embed_units, db.embedder().embed_work(query.len()));
        assert!(out.embed_units > 0);
        // The plain retrieve path returns the identical results.
        let plain = db.retrieve(&query, 3);
        assert_eq!(plain.len(), out.results.len());
        for (a, b) in plain.iter().zip(&out.results) {
            assert_eq!(a.hit.chunk, b.hit.chunk);
        }
    }

    #[test]
    fn index_spec_validation_catches_bad_ivf_shapes() {
        assert!(IndexSpec::Flat.validate().is_ok());
        assert!(IndexSpec::ivf(16, 4).validate().is_ok());
        let err = IndexSpec::ivf(4, 16).validate().unwrap_err();
        assert!(err.contains("must be <= nlist"), "got: {err}");
        assert!(IndexSpec::ivf(0, 0).validate().is_err());
        assert!(IndexSpec::ivf(4, 0).validate().is_err());
        assert_eq!(IndexSpec::ivf(64, 8).label(), "ivf(nlist=64,nprobe=8)");
        assert_eq!(IndexSpec::Flat.label(), "flat");
    }

    #[test]
    fn hnsw_backend_retrieves_the_same_fact_under_both_storages() {
        let mut tok = Tokenizer::new();
        let finance = TopicVocab::build(&mut tok, "finance", 64, 64);
        let mut g = TextGen::new(11);
        let mut doc = AnnotatedText::new();
        doc.push_tokens(&g.filler(&finance, 512));
        let subject: Vec<TokenId> = finance.topic_words()[..8].to_vec();
        doc.push_tokens(&subject);
        let fact_phrase = g.fact_phrase(&mut tok, "ceo", 2);
        doc.push_fact(FactId(1), &fact_phrase);
        doc.push_tokens(&g.filler(&finance, 700));
        let chunks = Chunker::new(ChunkerConfig::with_size(64)).split(&doc);
        for quant in [Quantization::F32, Quantization::sq8()] {
            let db = VectorDb::build_with_spec(
                &chunks,
                Arc::new(HashEmbed::default()),
                "hnsw corpus",
                64,
                IndexSpec::hnsw(8, 32),
                quant,
            );
            let out = db.retrieve_counted(&subject, 5);
            let found = out
                .results
                .iter()
                .any(|r| r.text.fact_ids().any(|f| f == FactId(1)));
            assert!(found, "HNSW ({}) missed the fact chunk", quant.name());
            assert!(out.work.graph_hops > 0, "no hops under {}", quant.name());
            let meta = db.index_meta();
            assert_eq!(meta.spec, IndexSpec::hnsw(8, 32));
            assert_eq!(meta.quant, quant);
            assert!(meta.expected_scored() > 0);
            if quant.is_quantized() {
                assert!(out.work.quantized_scored > 0);
            } else {
                assert_eq!(out.work.quantized_scored, 0);
            }
        }
    }

    #[test]
    fn sq8_flat_db_matches_exact_flat_results() {
        // Same corpus as `build_db`, rebuilt once per storage scheme.
        let mut tok = Tokenizer::new();
        let finance = TopicVocab::build(&mut tok, "finance", 64, 64);
        let sports = TopicVocab::build(&mut tok, "sports", 64, 64);
        let mut g = TextGen::new(11);
        let mut doc = AnnotatedText::new();
        doc.push_tokens(&g.filler(&sports, 256));
        let subject: Vec<TokenId> = finance.topic_words()[..8].to_vec();
        doc.push_tokens(&subject);
        let fact_phrase = g.fact_phrase(&mut tok, "ceo", 2);
        doc.push_fact(FactId(1), &fact_phrase);
        doc.push_tokens(&g.filler(&finance, 54));
        doc.push_tokens(&g.filler(&sports, 256));
        let chunks = Chunker::new(ChunkerConfig::with_size(64)).split(&doc);
        let build = |quant| {
            VectorDb::build_with_spec(
                &chunks,
                Arc::new(HashEmbed::default()),
                "synthetic finance + sports corpus",
                64,
                IndexSpec::Flat,
                quant,
            )
        };
        let db = build(Quantization::F32);
        let sq_db = build(Quantization::sq8());
        let exact: Vec<_> = db
            .retrieve(&subject, 3)
            .iter()
            .map(|r| r.hit.chunk)
            .collect();
        let out = sq_db.retrieve_counted(&subject, 3);
        let approx: Vec<_> = out.results.iter().map(|r| r.hit.chunk).collect();
        assert_eq!(exact, approx, "rerank should repair sq8 on this corpus");
        assert_eq!(out.work.quantized_scored, sq_db.len());
        let found = out
            .results
            .iter()
            .any(|r| r.text.fact_ids().any(|f| f == FactId(1)));
        assert!(found);
    }

    #[test]
    fn index_spec_validation_catches_bad_hnsw_shapes() {
        assert!(IndexSpec::hnsw(16, 64).validate().is_ok());
        let err = IndexSpec::hnsw(1, 64).validate().unwrap_err();
        assert!(err.contains("m must be at least 2"), "got: {err}");
        let err = IndexSpec::hnsw(16, 0).validate().unwrap_err();
        assert!(err.contains("ef-search must be positive"), "got: {err}");
        let err = IndexSpec::Hnsw {
            m: 16,
            ef_construction: 4,
            ef_search: 8,
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("must be >= m"), "got: {err}");
        assert_eq!(IndexSpec::hnsw(16, 64).label(), "hnsw(m=16,ef=64)");
        assert_eq!(IndexSpec::hnsw(16, 64).name(), "hnsw");
    }

    #[test]
    fn top_k_clamps_to_db_size() {
        let (db, query, _) = build_db();
        let results = db.retrieve(&query, 10_000);
        assert_eq!(results.len(), db.len());
    }
}

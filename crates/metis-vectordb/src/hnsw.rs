//! HNSW: hierarchical navigable small-world graph index.
//!
//! A layered proximity graph: every vector lands on layer 0, and each node
//! is promoted to higher layers with geometrically decaying probability
//! (deterministically derived from its insertion order, so builds are
//! reproducible). Search greedily descends the sparse upper layers to a
//! good entry point, then runs a bounded best-first expansion on layer 0.
//! Per-query cost is a handful of graph hops plus the distance evals they
//! trigger — `O(log n)`-ish instead of the flat scan's `O(n)` — and both
//! quantities are reported through [`SearchWork`] so the retrieval model
//! prices them.
//!
//! The layer-0 expansion is budgeted by `ef_search`: expansion *order* is
//! independent of the budget, so a larger `ef_search` visits a strict
//! superset of the nodes a smaller one does. That makes recall@k provably
//! non-decreasing in `ef_search` (the property `tests/properties.rs` pins),
//! while behaving like the classic ef-bounded beam in practice.
//!
//! Vectors are stored exactly ([`Quantization::F32`]) or as sq8 codes
//! scored through a per-query LUT with optional exact re-rank
//! ([`Quantization::Sq8`]); graph construction always runs at full
//! precision.

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashSet};

use metis_text::ChunkId;

use crate::quant::{sq_l2, Quantization, QueryLut, ScalarQuantizer};
use crate::{Hit, SearchOutcome, SearchWork, VectorIndex};

/// HNSW build/search parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HnswConfig {
    /// Max neighbors per node on upper layers (layer 0 allows `2m`); also
    /// sets the layer-promotion decay `1/ln(m)`.
    pub m: usize,
    /// Beam width while inserting — larger builds a better graph, slower.
    pub ef_construction: usize,
    /// Layer-0 expansion budget at query time — the recall/latency knob.
    pub ef_search: usize,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 80,
            ef_search: 64,
        }
    }
}

/// Hard cap on layer height; `u8` storage and `1/ln(m)` decay keep real
/// corpora far below it.
const MAX_LEVEL: usize = 24;

/// A scored node with a total order (distance, then id) so heap behavior
/// is deterministic.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Scored {
    d: f32,
    node: u32,
}

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        self.d
            .total_cmp(&other.d)
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The layered-graph index.
#[derive(Clone, Debug)]
pub struct HnswIndex {
    dim: usize,
    config: HnswConfig,
    quant: Quantization,
    ids: Vec<ChunkId>,
    /// Exact rows: always present under f32; retained under sq8 only while
    /// `rerank > 0` needs them at query time.
    rows: Vec<f32>,
    /// sq8 code rows (empty under f32).
    codes: Vec<u8>,
    sq: Option<ScalarQuantizer>,
    /// `links[node][level]` — neighbor ids, insertion-ordered.
    links: Vec<Vec<Vec<u32>>>,
    entry: u32,
    max_level: usize,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl HnswIndex {
    /// Builds the graph over `(id, vector)` pairs by sequential insertion.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero, `m < 2`, `ef_construction` or `ef_search`
    /// is zero, or any vector disagrees on dimension.
    pub fn build(
        dim: usize,
        config: HnswConfig,
        quant: Quantization,
        items: &[(ChunkId, Vec<f32>)],
    ) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(config.m >= 2, "m must be at least 2");
        assert!(
            config.ef_construction > 0,
            "ef_construction must be positive"
        );
        assert!(config.ef_search > 0, "ef_search must be positive");
        for (_, v) in items {
            assert_eq!(v.len(), dim, "dimension mismatch");
        }
        let n = items.len();
        let mut index = Self {
            dim,
            config,
            quant,
            ids: Vec::with_capacity(n),
            rows: Vec::with_capacity(n * dim),
            codes: Vec::new(),
            sq: None,
            links: Vec::with_capacity(n),
            entry: 0,
            max_level: 0,
        };
        let ml = 1.0 / (config.m as f64).ln();
        for (i, (id, v)) in items.iter().enumerate() {
            let level = Self::level_for(i as u64, ml);
            index.insert(*id, v, level);
        }
        if let Quantization::Sq8 { rerank } = quant {
            let sq = ScalarQuantizer::train(dim, items.iter().map(|(_, v)| v.as_slice()));
            let mut codes = Vec::with_capacity(n * dim);
            let mut scratch = Vec::with_capacity(dim);
            for (_, v) in items {
                sq.encode_into(v, &mut scratch);
                codes.extend_from_slice(&scratch);
            }
            index.codes = codes;
            index.sq = Some(sq);
            if rerank == 0 {
                // Scoring never leaves the quantized domain — drop the
                // exact rows and keep only the 1-byte codes.
                index.rows = Vec::new();
            }
        }
        index
    }

    /// Deterministic layer draw: geometric with mean `ml`, hashed from the
    /// insertion order so identical inputs build identical graphs.
    fn level_for(i: u64, ml: f64) -> usize {
        let bits = splitmix64(i ^ 0x48_4E_53_57); // "HNSW"
        let u = ((bits >> 11) as f64 / (1u64 << 53) as f64).max(f64::MIN_POSITIVE);
        ((-u.ln() * ml) as usize).min(MAX_LEVEL)
    }

    fn exact_row(&self, node: u32) -> &[f32] {
        let i = node as usize;
        &self.rows[i * self.dim..(i + 1) * self.dim]
    }

    fn code_row(&self, node: u32) -> &[u8] {
        let i = node as usize;
        &self.codes[i * self.dim..(i + 1) * self.dim]
    }

    /// Build-time distance — always exact (rows are retained during build).
    fn build_dist2(&self, q: &[f32], node: u32) -> f32 {
        sq_l2(q, self.exact_row(node))
    }

    fn insert(&mut self, id: ChunkId, v: &[f32], level: usize) {
        let node = self.ids.len() as u32;
        self.ids.push(id);
        self.rows.extend_from_slice(v);
        self.links.push(vec![Vec::new(); level + 1]);
        if node == 0 {
            self.entry = 0;
            self.max_level = level;
            return;
        }
        // Greedy-descend the layers above the new node's top level.
        let mut cur = Scored {
            d: self.build_dist2(v, self.entry),
            node: self.entry,
        };
        let mut lvl = self.max_level;
        while lvl > level {
            cur = self.greedy_step(v, cur, lvl);
            lvl -= 1;
        }
        // Beam-search each level the node joins, linking to a diverse
        // neighbor set (not simply the closest m — see `select_neighbors`).
        let mut entries = vec![cur];
        for lvl in (0..=level.min(self.max_level)).rev() {
            let found = self.search_layer(v, &entries, self.config.ef_construction, lvl);
            for nb in self.select_neighbors(&found, self.config.m) {
                self.links[node as usize][lvl].push(nb);
                self.links[nb as usize][lvl].push(node);
                self.prune(nb, lvl);
            }
            entries = found;
            entries.truncate(self.config.ef_construction);
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = node;
        }
    }

    /// The HNSW paper's neighbor-selection heuristic (Algorithm 4): walk
    /// `cand` (sorted ascending by distance to `anchor`) and keep a node
    /// only if it is closer to the anchor than to every neighbor already
    /// kept, then backfill spare slots with the closest rejects. Plain
    /// closest-`cap` selection collapses tight clusters into cliques —
    /// their members fill each other's lists and evict every long-range
    /// edge, leaving the cluster unreachable by a bounded search beam. The
    /// diversity test keeps those outbound bridges alive.
    /// `cand` carries each node's distance to the anchor in `Scored::d`.
    fn select_neighbors(&self, cand: &[Scored], cap: usize) -> Vec<u32> {
        let mut kept: Vec<Scored> = Vec::with_capacity(cap);
        let mut rejected: Vec<u32> = Vec::new();
        for &c in cand {
            if kept.len() == cap {
                break;
            }
            let row = self.exact_row(c.node);
            let diverse = kept
                .iter()
                .all(|k| sq_l2(row, self.exact_row(k.node)) > c.d);
            if diverse {
                kept.push(c);
            } else {
                rejected.push(c.node);
            }
        }
        let mut out: Vec<u32> = kept.into_iter().map(|s| s.node).collect();
        let spare = cap.saturating_sub(out.len());
        out.extend(rejected.into_iter().take(spare));
        out
    }

    /// Caps `node`'s neighbor list at level `lvl` to the allowed count
    /// (`m` above layer 0, `2m` on it) via the diversity heuristic.
    fn prune(&mut self, node: u32, lvl: usize) {
        let cap = if lvl == 0 {
            self.config.m * 2
        } else {
            self.config.m
        };
        if self.links[node as usize][lvl].len() <= cap {
            return;
        }
        let anchor = self.exact_row(node).to_vec();
        let mut scored: Vec<Scored> = self.links[node as usize][lvl]
            .iter()
            .map(|&nb| Scored {
                d: sq_l2(&anchor, self.exact_row(nb)),
                node: nb,
            })
            .collect();
        scored.sort();
        scored.dedup_by_key(|s| s.node);
        self.links[node as usize][lvl] = self.select_neighbors(&scored, cap);
    }

    /// One greedy descent through level `lvl`: walk to strictly closer
    /// neighbors until a local minimum.
    fn greedy_step(&self, q: &[f32], mut cur: Scored, lvl: usize) -> Scored {
        loop {
            let mut improved = false;
            for &nb in &self.links[cur.node as usize][lvl] {
                let d = self.build_dist2(q, nb);
                if d < cur.d {
                    cur = Scored { d, node: nb };
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Classic ef-bounded beam at one level (build-time only), returning
    /// up to `ef` closest nodes in ascending order.
    fn search_layer(&self, q: &[f32], entries: &[Scored], ef: usize, lvl: usize) -> Vec<Scored> {
        let mut visited: HashSet<u32> = entries.iter().map(|s| s.node).collect();
        let mut cand: BinaryHeap<Reverse<Scored>> = entries.iter().map(|&s| Reverse(s)).collect();
        let mut best: BinaryHeap<Scored> = entries.iter().copied().collect();
        while let Some(Reverse(c)) = cand.pop() {
            let worst = best.peek().map_or(f32::INFINITY, |w| w.d);
            if best.len() >= ef && c.d > worst {
                break;
            }
            for &nb in &self.links[c.node as usize][lvl] {
                if !visited.insert(nb) {
                    continue;
                }
                let d = self.build_dist2(q, nb);
                let worst = best.peek().map_or(f32::INFINITY, |w| w.d);
                if best.len() < ef || d < worst {
                    let s = Scored { d, node: nb };
                    cand.push(Reverse(s));
                    best.push(s);
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }
        let mut out = best.into_vec();
        out.sort();
        out
    }

    /// Query-time distance in the storage domain, counted into `work`.
    fn query_dist2(
        &self,
        q: &[f32],
        lut: Option<&QueryLut>,
        node: u32,
        work: &mut SearchWork,
    ) -> f32 {
        match lut {
            Some(lut) => {
                work.quantized_scored += 1;
                lut.dist2(self.code_row(node))
            }
            None => {
                work.vectors_scored += 1;
                sq_l2(q, self.exact_row(node))
            }
        }
    }

    /// The build/search configuration.
    pub fn config(&self) -> HnswConfig {
        self.config
    }

    /// The vector storage scheme.
    pub fn quantization(&self) -> Quantization {
        self.quant
    }

    /// Height of the tallest layer currently in the graph.
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// Searches with an explicit layer-0 expansion budget instead of the
    /// configured `ef_search` — the handle the recall-monotonicity
    /// property tests and sweeps turn.
    pub fn search_with_ef(&self, query: &[f32], k: usize, ef: usize) -> SearchOutcome {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        let mut work = SearchWork::default();
        if k == 0 || self.ids.is_empty() || ef == 0 {
            return SearchOutcome {
                hits: Vec::new(),
                work,
            };
        }
        let lut = self.sq.as_ref().map(|sq| sq.lut(query));
        // Every node scored anywhere during the search is a candidate for
        // the final top-k: the set only grows with `ef`.
        let mut scored: Vec<Scored> = Vec::new();
        let mut cur = Scored {
            d: self.query_dist2(query, lut.as_ref(), self.entry, &mut work),
            node: self.entry,
        };
        scored.push(cur);
        // Greedy descent over the upper layers (budget-independent).
        for lvl in (1..=self.max_level).rev() {
            loop {
                let mut improved = false;
                work.graph_hops += 1;
                for &nb in &self.links[cur.node as usize][lvl] {
                    let d = self.query_dist2(query, lut.as_ref(), nb, &mut work);
                    scored.push(Scored { d, node: nb });
                    if d < cur.d {
                        cur = Scored { d, node: nb };
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        // Budgeted best-first expansion on layer 0. The frontier evolves
        // identically for every `ef`; the budget only decides how many
        // nodes get expanded, so visited sets nest as `ef` grows.
        let mut visited: HashSet<u32> = HashSet::new();
        visited.insert(cur.node);
        let mut frontier: BinaryHeap<Reverse<Scored>> = BinaryHeap::new();
        frontier.push(Reverse(cur));
        let mut expanded = 0usize;
        while let Some(Reverse(c)) = frontier.pop() {
            if expanded >= ef {
                break;
            }
            expanded += 1;
            work.graph_hops += 1;
            for &nb in &self.links[c.node as usize][0] {
                if !visited.insert(nb) {
                    continue;
                }
                let d = self.query_dist2(query, lut.as_ref(), nb, &mut work);
                let s = Scored { d, node: nb };
                scored.push(s);
                frontier.push(Reverse(s));
            }
        }
        // Rank and deduplicate (upper-layer evals can rescore a node; a
        // rescore produces the identical distance, so duplicates sort
        // adjacent).
        scored.sort();
        scored.dedup_by_key(|s| s.node);
        let rerank = self.quant.rerank();
        let hits = if lut.is_some() && rerank > 0 {
            let keep = rerank.saturating_mul(k).max(k).min(scored.len());
            let mut exact: Vec<Hit> = scored[..keep]
                .iter()
                .map(|s| {
                    work.vectors_scored += 1;
                    Hit {
                        chunk: self.ids[s.node as usize],
                        distance: sq_l2(query, self.exact_row(s.node)).sqrt(),
                    }
                })
                .collect();
            exact.sort_by(|a, b| {
                a.distance
                    .total_cmp(&b.distance)
                    .then_with(|| a.chunk.cmp(&b.chunk))
            });
            exact.truncate(k);
            exact
        } else {
            scored
                .iter()
                .take(k)
                .map(|s| Hit {
                    chunk: self.ids[s.node as usize],
                    distance: s.d.sqrt(),
                })
                .collect()
        };
        SearchOutcome { hits, work }
    }
}

impl VectorIndex for HnswIndex {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn search_counted(&self, query: &[f32], k: usize) -> SearchOutcome {
        self.search_with_ef(query, k, self.config.ef_search)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatIndex;

    fn ring_items(n: u32, dim: usize) -> Vec<(ChunkId, Vec<f32>)> {
        // Deterministic scatter with enough spread for meaningful
        // neighborhoods.
        (0..n)
            .map(|i| {
                let v = (0..dim)
                    .map(|d| {
                        let x = splitmix64(u64::from(i) * 31 + d as u64);
                        (x % 1000) as f32 / 100.0
                    })
                    .collect();
                (ChunkId(i), v)
            })
            .collect()
    }

    #[test]
    fn exact_on_small_corpus_with_generous_ef() {
        let items = ring_items(60, 4);
        let idx = HnswIndex::build(4, HnswConfig::default(), Quantization::F32, &items);
        let mut flat = FlatIndex::new(4);
        for (id, v) in &items {
            flat.add(*id, v);
        }
        for q in [[0.0; 4], [5.0, 5.0, 5.0, 5.0], [9.0, 1.0, 4.0, 2.0]] {
            let want: Vec<_> = flat.search(&q, 5).iter().map(|h| h.chunk).collect();
            let got: Vec<_> = idx
                .search_with_ef(&q, 5, 64)
                .hits
                .iter()
                .map(|h| h.chunk)
                .collect();
            assert_eq!(want, got, "query {q:?}");
        }
    }

    #[test]
    fn work_reports_hops_and_domain_separated_evals() {
        let items = ring_items(200, 4);
        let idx = HnswIndex::build(4, HnswConfig::default(), Quantization::F32, &items);
        let out = idx.search_counted(&[1.0, 2.0, 3.0, 4.0], 3);
        assert!(out.work.graph_hops > 0, "no hops recorded");
        assert!(out.work.vectors_scored > 0);
        assert_eq!(out.work.quantized_scored, 0, "f32 storage never LUT-scores");
        assert!(
            out.work.vectors_scored < items.len(),
            "HNSW should not scan the corpus: {:?}",
            out.work
        );

        let sq = HnswIndex::build(4, HnswConfig::default(), Quantization::sq8(), &items);
        let out = sq.search_counted(&[1.0, 2.0, 3.0, 4.0], 3);
        assert!(out.work.quantized_scored > 0, "sq8 storage LUT-scores");
        assert_eq!(
            out.work.vectors_scored, 12,
            "exact evals are exactly the rerank * k repair: {:?}",
            out.work
        );
    }

    #[test]
    fn visited_set_and_recall_grow_with_ef() {
        let items = ring_items(400, 6);
        let idx = HnswIndex::build(6, HnswConfig::default(), Quantization::F32, &items);
        let mut flat = FlatIndex::new(6);
        for (id, v) in &items {
            flat.add(*id, v);
        }
        let q = [4.0, 6.0, 2.0, 8.0, 1.0, 5.0];
        let gold: std::collections::HashSet<_> =
            flat.search(&q, 10).iter().map(|h| h.chunk).collect();
        let mut prev_recall = 0.0f64;
        let mut prev_evals = 0usize;
        for ef in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            let out = idx.search_with_ef(&q, 10, ef);
            let hit = out.hits.iter().filter(|h| gold.contains(&h.chunk)).count();
            let recall = hit as f64 / 10.0;
            assert!(
                recall >= prev_recall,
                "recall fell from {prev_recall} to {recall} at ef={ef}"
            );
            assert!(out.work.distances() >= prev_evals, "work shrank at ef={ef}");
            prev_recall = recall;
            prev_evals = out.work.distances();
        }
        assert!(prev_recall >= 0.9, "recall@10 stuck at {prev_recall}");
    }

    #[test]
    fn sq8_rerank_zero_drops_exact_rows_and_still_answers() {
        let items = ring_items(100, 4);
        let idx = HnswIndex::build(
            4,
            HnswConfig::default(),
            Quantization::Sq8 { rerank: 0 },
            &items,
        );
        let out = idx.search_counted(&[5.0; 4], 5);
        assert_eq!(out.hits.len(), 5);
        assert_eq!(out.work.vectors_scored, 0, "no exact path remains");
        assert!(out.work.quantized_scored > 0);
    }

    #[test]
    fn empty_and_k_zero_are_graceful() {
        let idx = HnswIndex::build(3, HnswConfig::default(), Quantization::F32, &[]);
        assert!(idx.is_empty());
        assert!(idx.search(&[0.0; 3], 5).is_empty());
        let items = ring_items(10, 3);
        let idx = HnswIndex::build(3, HnswConfig::default(), Quantization::F32, &items);
        assert!(idx.search(&[0.0; 3], 0).is_empty());
    }

    #[test]
    fn builds_are_deterministic() {
        let items = ring_items(150, 4);
        let a = HnswIndex::build(4, HnswConfig::default(), Quantization::F32, &items);
        let b = HnswIndex::build(4, HnswConfig::default(), Quantization::F32, &items);
        let q = [3.0, 1.0, 7.0, 2.0];
        let ha: Vec<_> = a.search(&q, 8).iter().map(|h| h.chunk).collect();
        let hb: Vec<_> = b.search(&q, 8).iter().map(|h| h.chunk).collect();
        assert_eq!(ha, hb);
        assert_eq!(a.max_level(), b.max_level());
    }
}

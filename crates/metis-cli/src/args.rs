//! Hand-rolled argument parsing (no external dependencies).

use metis_datasets::{ArrivalProcess, DatasetKind};
use metis_engine::{DriverSpec, PreemptMode, RouterPolicy};
use metis_vectordb::{HnswConfig, IndexSpec, Quantization};

/// Default burst density for `--arrivals burst` (overridden by
/// `--burst-factor`).
pub const DEFAULT_BURST_FACTOR: f64 = 4.0;
/// Default inter-arrival CV for `--arrivals gamma`.
pub const DEFAULT_GAMMA_CV: f64 = 2.0;
/// Default inverted-list count for `--index ivf` (overridden by `--nlist`).
pub const DEFAULT_IVF_NLIST: usize = 64;
/// Default probe count for `--index ivf` (overridden by `--nprobe`).
pub const DEFAULT_IVF_NPROBE: usize = 8;
/// Default max neighbors per node for `--index hnsw` (overridden by `--m`).
pub const DEFAULT_HNSW_M: usize = 16;
/// Default layer-0 expansion budget for `--index hnsw` (overridden by
/// `--ef-search`).
pub const DEFAULT_HNSW_EF_SEARCH: usize = 64;

/// Parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `metis run ...` — serve a workload and print the summary.
    Run(RunArgs),
    /// `metis sweep ...` — sweep the fixed-configuration menu.
    Sweep(RunArgs),
    /// `metis profile ...` — show profiles and pruned spaces per query.
    Profile(RunArgs),
    /// `metis serve ...` — serve a workload on a chosen driver and print
    /// the summary plus wall-clock accounting.
    Serve(RunArgs),
    /// `metis replay ...` — push a generated workload through a driver and
    /// emit the run's `CellReport` JSON (stdout, or `--json <PATH>`).
    Replay(RunArgs),
    /// `metis help`.
    Help,
}

/// Options shared by the subcommands.
#[derive(Clone, Debug, PartialEq)]
pub struct RunArgs {
    /// Which dataset to generate.
    pub dataset: DatasetKind,
    /// System under test (run subcommand only).
    pub system: SystemChoice,
    /// Number of queries.
    pub queries: usize,
    /// Poisson arrival rate (q/s); 0 = closed loop.
    pub qps: f64,
    /// Master seed.
    pub seed: u64,
    /// Serve with Llama-3.1-70B on two A40s instead of Mistral-7B.
    pub big_model: bool,
    /// Optional per-query latency SLO in seconds.
    pub slo: Option<f64>,
    /// Optional chunk-KV prefix cache in GiB.
    pub prefix_cache_gib: Option<u64>,
    /// Number of engine replicas to serve across.
    pub replicas: usize,
    /// Heterogeneous fleet: one replica per listed GPU class (replaces
    /// `--replicas`).
    pub replica_mix: Option<Vec<GpuClass>>,
    /// How queries are dispatched across replicas.
    pub router: RouterPolicy,
    /// Grow/drain the fleet at runtime from queue depth and preemption
    /// pressure.
    pub autoscale: bool,
    /// How KV-evicted sequences resume: recompute from scratch, or migrate
    /// their KV to a replica with headroom (sim driver only).
    pub preempt_mode: PreemptMode,
    /// Arrival process shaping the open-loop workload (ignored in closed
    /// loop).
    pub arrivals: ArrivalProcess,
    /// Derive each query's scheduling priority from its SLO tier.
    pub priority_from_slo: bool,
    /// Retrieval index the corpus is served from.
    pub index: IndexSpec,
    /// How the index stores and scores vectors (exact f32 or sq8).
    pub quant: Quantization,
    /// Optional path to write the run's machine-readable report to — the
    /// same `BenchReport` JSON schema the bench harness emits.
    pub json: Option<String>,
    /// Who executes the engine work and on whose time (serve/replay only;
    /// `run`/`sweep`/`profile` always simulate).
    pub driver: DriverSpec,
}

/// A GPU class a `--replica-mix` entry names. The CLI keeps the class (not
/// a full `ReplicaSpec`) so parsed commands stay comparable in tests; the
/// binary maps each class to its cluster when building the fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GpuClass {
    /// One NVIDIA A40 (48 GB).
    A40,
    /// One NVIDIA H100 (80 GB).
    H100,
}

/// Which serving system to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemChoice {
    /// Full METIS.
    Metis,
    /// AdaptiveRAG\* baseline.
    AdaptiveRag,
    /// vLLM with a fixed configuration `stuff(k)`.
    FixedStuff(u32),
    /// vLLM with a fixed configuration `map_reduce(k, l)`.
    FixedMapReduce(u32, u32),
}

impl Default for RunArgs {
    fn default() -> Self {
        Self {
            dataset: DatasetKind::Musique,
            system: SystemChoice::Metis,
            queries: 100,
            qps: 0.5,
            seed: 7,
            big_model: false,
            slo: None,
            prefix_cache_gib: None,
            replicas: 1,
            replica_mix: None,
            router: RouterPolicy::RoundRobin,
            autoscale: false,
            preempt_mode: PreemptMode::Recompute,
            arrivals: ArrivalProcess::Poisson,
            priority_from_slo: false,
            index: IndexSpec::Flat,
            quant: Quantization::F32,
            json: None,
            driver: DriverSpec::Sim,
        }
    }
}

/// Usage text printed by `metis help` and on parse errors.
pub const USAGE: &str = "\
metis — METIS RAG-serving reproduction (SOSP '25)

USAGE:
  metis run     [OPTIONS]   serve a workload and print per-system results
  metis sweep   [OPTIONS]   sweep the fixed-configuration menu
  metis profile [OPTIONS]   show profiler output and pruned spaces per query
  metis serve   [OPTIONS]   serve on a chosen driver; print summary + wall time
  metis replay  [OPTIONS]   run a workload on a driver; emit the report JSON
  metis help

OPTIONS:
  --dataset <squad|musique|finsec|qmsum>   (default musique)
  --system  <metis|adaptive|stuff:K|map_reduce:K:L>  (default metis)
  --queries <N>            (default 100)
  --qps <RATE>             Poisson rate; 0 = closed loop (default 0.5)
  --seed <N>               (default 7)
  --big-model              serve Llama-3.1-70B on two A40s
  --slo <SECS>             per-query latency budget
  --prefix-cache-gb <GIB>  enable chunk-KV reuse
  --replicas <N>           engine replicas to serve across (default 1)
  --replica-mix <a40|h100,...>  heterogeneous fleet: one replica per listed
                           GPU class, e.g. a40,a40,h100 (replaces --replicas)
  --router <round-robin|least-kv|prefix-aware>  replica dispatch policy
                           (default round-robin; prefix-aware routes each
                           query to the replica whose chunk-KV cache holds
                           its retrieved chunks, needs --prefix-cache-gb)
  --autoscale              grow/drain the fleet at runtime from queue depth
                           and preemption pressure (--replicas sets the
                           starting fleet; bounds 1..=8)
  --preempt-mode <recompute|migrate>  how KV-evicted sequences resume
                           (default recompute; migrate prices a KV transfer
                           to a replica with headroom, sim driver only)
  --arrivals <poisson|burst|gamma|diurnal>  arrival process (default poisson)
  --burst-factor <F>       burst density for --arrivals burst (default 4)
  --priority-from-slo      schedule each query at its SLO tier's priority
  --index <flat|ivf|hnsw>  retrieval index over the corpus (default flat)
  --nlist <N>              IVF inverted lists (default 64; needs --index ivf)
  --nprobe <N>             IVF lists probed per search, <= nlist
                           (default 8; needs --index ivf)
  --m <N>                  HNSW max neighbors per node (default 16;
                           needs --index hnsw)
  --ef-search <N>          HNSW layer-0 expansion budget per search
                           (default 64; needs --index hnsw)
  --quantize <f32|sq8>     vector storage: exact f32 (default) or 8-bit
                           scalar quantization with exact re-ranking
  --json <PATH>            also write the run report as JSON (run/replay;
                           same schema as the bench harness emits)
  --driver <sim|realtime>  serve/replay execution driver (default sim):
                           sim replays the deterministic simulator; realtime
                           serves live from one worker thread per replica
  --time-scale <F>         virtual-per-wall speedup for --driver realtime
                           (default 1 = true wall pace; e.g. 1000 compresses
                           1000 virtual seconds into one wall second)
";

/// Parses a dataset name.
pub fn parse_dataset(s: &str) -> Result<DatasetKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "squad" => Ok(DatasetKind::Squad),
        "musique" => Ok(DatasetKind::Musique),
        "finsec" | "kg-rag-finsec" => Ok(DatasetKind::FinSec),
        "qmsum" => Ok(DatasetKind::Qmsum),
        other => Err(format!("unknown dataset '{other}'")),
    }
}

/// Parses a router policy name.
pub fn parse_router(s: &str) -> Result<RouterPolicy, String> {
    match s.to_ascii_lowercase().as_str() {
        "round-robin" | "rr" => Ok(RouterPolicy::RoundRobin),
        "least-kv" | "least-kv-load" => Ok(RouterPolicy::LeastKvLoad),
        "prefix-aware" | "prefix" => Ok(RouterPolicy::PrefixAware),
        other => Err(format!("unknown router '{other}'")),
    }
}

/// Parses a preemption-resume mode name.
pub fn parse_preempt_mode(s: &str) -> Result<PreemptMode, String> {
    match s.to_ascii_lowercase().as_str() {
        "recompute" => Ok(PreemptMode::Recompute),
        "migrate" => Ok(PreemptMode::Migrate),
        other => Err(format!("unknown preempt mode '{other}'")),
    }
}

/// Parses a `--replica-mix` list: comma-separated GPU class names, one
/// replica per entry.
pub fn parse_replica_mix(s: &str) -> Result<Vec<GpuClass>, String> {
    s.split(',')
        .map(|name| match name.trim().to_ascii_lowercase().as_str() {
            "a40" => Ok(GpuClass::A40),
            "h100" => Ok(GpuClass::H100),
            "" => Err("--replica-mix has an empty entry".to_string()),
            other => Err(format!("unknown GPU class '{other}' in --replica-mix")),
        })
        .collect()
}

/// Parses an arrival-process name (factors come from their own flags).
pub fn parse_arrivals(s: &str) -> Result<ArrivalProcess, String> {
    match s.to_ascii_lowercase().as_str() {
        "poisson" => Ok(ArrivalProcess::Poisson),
        "burst" => Ok(ArrivalProcess::Burst {
            factor: DEFAULT_BURST_FACTOR,
        }),
        "gamma" => Ok(ArrivalProcess::Gamma {
            cv: DEFAULT_GAMMA_CV,
        }),
        "diurnal" => Ok(ArrivalProcess::Diurnal),
        other => Err(format!("unknown arrival process '{other}'")),
    }
}

/// Parses a system choice.
pub fn parse_system(s: &str) -> Result<SystemChoice, String> {
    let lower = s.to_ascii_lowercase();
    if lower == "metis" {
        return Ok(SystemChoice::Metis);
    }
    if lower == "adaptive" || lower == "adaptiverag" {
        return Ok(SystemChoice::AdaptiveRag);
    }
    if let Some(rest) = lower.strip_prefix("stuff:") {
        let k: u32 = rest
            .parse()
            .map_err(|_| format!("bad chunk count '{rest}'"))?;
        return Ok(SystemChoice::FixedStuff(k));
    }
    if let Some(rest) = lower.strip_prefix("map_reduce:") {
        let mut it = rest.split(':');
        let k: u32 = it
            .next()
            .unwrap_or_default()
            .parse()
            .map_err(|_| format!("bad map_reduce spec '{rest}'"))?;
        let l: u32 = it
            .next()
            .unwrap_or("100")
            .parse()
            .map_err(|_| format!("bad map_reduce spec '{rest}'"))?;
        return Ok(SystemChoice::FixedMapReduce(k, l));
    }
    Err(format!("unknown system '{s}'"))
}

/// Parses the full command line (without the binary name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum IndexFamily {
        Flat,
        Ivf,
        Hnsw,
    }
    let mut run = RunArgs::default();
    let mut burst_factor: Option<f64> = None;
    let mut index_family: Option<IndexFamily> = None;
    let mut nlist: Option<usize> = None;
    let mut nprobe: Option<usize> = None;
    let mut hnsw_m: Option<usize> = None;
    let mut ef_search: Option<usize> = None;
    let mut driver_realtime: Option<bool> = None;
    let mut time_scale: Option<f64> = None;
    let mut replicas_flag: Option<usize> = None;
    let mut i = 1;
    let next = |i: &mut usize| -> Result<&str, String> {
        *i += 1;
        args.get(*i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing value for {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" => run.dataset = parse_dataset(next(&mut i)?)?,
            "--system" => run.system = parse_system(next(&mut i)?)?,
            "--queries" => {
                run.queries = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --queries: {e}"))?
            }
            "--qps" => {
                run.qps = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --qps: {e}"))?
            }
            "--seed" => {
                run.seed = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--big-model" => run.big_model = true,
            "--slo" => {
                run.slo = Some(
                    next(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --slo: {e}"))?,
                )
            }
            "--prefix-cache-gb" => {
                run.prefix_cache_gib = Some(
                    next(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --prefix-cache-gb: {e}"))?,
                )
            }
            "--replicas" => {
                let n: usize = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --replicas: {e}"))?;
                replicas_flag = Some(n);
                run.replicas = n;
            }
            "--replica-mix" => run.replica_mix = Some(parse_replica_mix(next(&mut i)?)?),
            "--router" => run.router = parse_router(next(&mut i)?)?,
            "--autoscale" => run.autoscale = true,
            "--preempt-mode" => run.preempt_mode = parse_preempt_mode(next(&mut i)?)?,
            "--arrivals" => run.arrivals = parse_arrivals(next(&mut i)?)?,
            "--burst-factor" => {
                let f: f64 = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --burst-factor: {e}"))?;
                if !f.is_finite() || f < 1.0 {
                    return Err(format!("--burst-factor must be >= 1, got {f}"));
                }
                burst_factor = Some(f);
            }
            "--priority-from-slo" => run.priority_from_slo = true,
            "--json" => {
                let path = next(&mut i)?;
                if path.is_empty() {
                    return Err("--json requires a non-empty path".into());
                }
                run.json = Some(path.to_owned());
            }
            "--index" => {
                index_family = Some(match next(&mut i)?.to_ascii_lowercase().as_str() {
                    "flat" => IndexFamily::Flat,
                    "ivf" => IndexFamily::Ivf,
                    "hnsw" => IndexFamily::Hnsw,
                    other => return Err(format!("unknown index '{other}'")),
                })
            }
            "--m" => {
                let n: usize = next(&mut i)?.parse().map_err(|e| format!("bad --m: {e}"))?;
                if n < 2 {
                    return Err("--m must be at least 2".into());
                }
                hnsw_m = Some(n);
            }
            "--ef-search" => {
                let n: usize = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --ef-search: {e}"))?;
                if n == 0 {
                    return Err("--ef-search must be positive".into());
                }
                ef_search = Some(n);
            }
            "--quantize" => {
                run.quant = match next(&mut i)?.to_ascii_lowercase().as_str() {
                    "f32" => Quantization::F32,
                    "sq8" => Quantization::sq8(),
                    other => return Err(format!("unknown quantization '{other}'")),
                }
            }
            "--nlist" => {
                let n: usize = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --nlist: {e}"))?;
                if n == 0 {
                    return Err("--nlist must be positive".into());
                }
                nlist = Some(n);
            }
            "--driver" => {
                driver_realtime = Some(match next(&mut i)?.to_ascii_lowercase().as_str() {
                    "sim" => false,
                    "realtime" => true,
                    other => return Err(format!("unknown driver '{other}'")),
                })
            }
            "--time-scale" => {
                let f: f64 = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --time-scale: {e}"))?;
                if !f.is_finite() || f <= 0.0 {
                    return Err(format!("--time-scale must be finite and positive, got {f}"));
                }
                time_scale = Some(f);
            }
            "--nprobe" => {
                let n: usize = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --nprobe: {e}"))?;
                if n == 0 {
                    return Err("--nprobe must be positive".into());
                }
                nprobe = Some(n);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 1;
    }
    if run.queries == 0 {
        return Err("--queries must be positive".into());
    }
    if run.replicas == 0 {
        // `Cluster::new` would otherwise panic deep inside the run.
        return Err("--replicas must be positive".into());
    }
    // `--replica-mix` *is* the fleet size, one replica per listed class;
    // alongside an explicit `--replicas` one of the two would silently win.
    if let Some(mix) = &run.replica_mix {
        if replicas_flag.is_some() {
            return Err("--replica-mix replaces --replicas (drop one)".into());
        }
        // The heterogeneous fleet sizes each replica's engine from its own
        // GPU class; `--big-model` instead repoints the whole fleet at the
        // fixed dual-A40 70B serving config, so the mix would be ignored.
        if run.big_model {
            return Err("--replica-mix cannot be combined with --big-model".into());
        }
        run.replicas = mix.len();
    }
    // `--burst-factor` composes with `--arrivals burst` in either flag
    // order; anywhere else it would be silently ignored.
    if let Some(f) = burst_factor {
        match &mut run.arrivals {
            ArrivalProcess::Burst { factor } => *factor = f,
            other => {
                return Err(format!(
                    "--burst-factor requires --arrivals burst (got {})",
                    other.name()
                ))
            }
        }
    }
    // Index shape flags compose with their family's `--index` in any flag
    // order; under any other family they would be silently ignored, so both
    // directions are rejected instead (`--nlist` without ivf, `--ef-search`
    // without hnsw). The shape constraints (`nprobe <= nlist`, …) are the
    // index's own `IndexSpec::validate` rules, surfaced here at parse with
    // a message — not as a panic deep inside the index build.
    let family = index_family.unwrap_or(IndexFamily::Flat);
    if family != IndexFamily::Ivf && (nlist.is_some() || nprobe.is_some()) {
        return Err("--nlist/--nprobe require --index ivf".into());
    }
    if family != IndexFamily::Hnsw && (hnsw_m.is_some() || ef_search.is_some()) {
        return Err("--ef-search/--m require --index hnsw".into());
    }
    run.index = match family {
        IndexFamily::Flat => IndexSpec::Flat,
        IndexFamily::Ivf => {
            let nlist = nlist.unwrap_or(DEFAULT_IVF_NLIST);
            let spec = IndexSpec::ivf(
                nlist,
                nprobe.unwrap_or_else(|| DEFAULT_IVF_NPROBE.min(nlist)),
            );
            spec.validate().map_err(|e| {
                // The index's own rule, respelled with the CLI flag names.
                e.replace("nprobe", "--nprobe").replace("nlist", "--nlist")
            })?;
            spec
        }
        IndexFamily::Hnsw => {
            let m = hnsw_m.unwrap_or(DEFAULT_HNSW_M);
            let spec = IndexSpec::Hnsw {
                m,
                // A construction beam narrower than the neighbor budget
                // makes no sense; raise it with large --m so the flag the
                // user *can't* set never fails validation.
                ef_construction: HnswConfig::default().ef_construction.max(m),
                ef_search: ef_search.unwrap_or(DEFAULT_HNSW_EF_SEARCH),
            };
            spec.validate().map_err(|e| {
                e.replace("ef-search", "--ef-search")
                    .replace("m must", "--m must")
            })?;
            spec
        }
    };
    // Only the METIS controller derives priorities from SLO tiers; on any
    // other system the flag would be silently ignored while the run report
    // still printed a per-class breakdown.
    if run.priority_from_slo && run.system != SystemChoice::Metis {
        return Err("--priority-from-slo requires --system metis".into());
    }
    // Only `run` and `replay` emit a report; elsewhere the flag would be
    // silently inert, so it is rejected like the other subcommand-specific
    // flags.
    if run.json.is_some() && sub != "run" && sub != "replay" {
        return Err("--json requires the run or replay subcommand".into());
    }
    // Only `serve`/`replay` pick a driver — `run`/`sweep`/`profile` always
    // simulate, so the flag would be silently inert there. `--time-scale`
    // in turn only means something on the realtime driver: the simulator's
    // virtual time is not tied to wall time at all.
    if driver_realtime.is_some() && sub != "serve" && sub != "replay" {
        return Err("--driver requires the serve or replay subcommand".into());
    }
    if time_scale.is_some() && driver_realtime != Some(true) {
        return Err("--time-scale requires --driver realtime".into());
    }
    if driver_realtime == Some(true) {
        run.driver = DriverSpec::Realtime {
            time_scale: time_scale.unwrap_or(1.0),
        };
    }
    // KV migration rides the simulator's virtual timeline; the realtime
    // driver's worker threads have no cross-replica transfer path and would
    // refuse the engine at spawn — reject the combination up front.
    if run.preempt_mode == PreemptMode::Migrate && driver_realtime == Some(true) {
        return Err("--preempt-mode migrate requires the sim driver".into());
    }
    // Prefix-aware routing compares the replicas' chunk-KV caches; without
    // a cache every replica looks identical and the router silently
    // degrades to least-kv, so the dependency is made explicit.
    if run.router == RouterPolicy::PrefixAware && run.prefix_cache_gib.is_none() {
        return Err("--router prefix-aware requires --prefix-cache-gb".into());
    }
    match sub.as_str() {
        "run" => Ok(Command::Run(run)),
        "sweep" => Ok(Command::Sweep(run)),
        "profile" => Ok(Command::Profile(run)),
        "serve" => Ok(Command::Serve(run)),
        "replay" => Ok(Command::Replay(run)),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

/// Parses a command line that must be a `run` invocation, returning its
/// arguments or a descriptive error — the non-panicking plumbing the tests
/// build on (the binary itself dispatches every subcommand via [`parse`]).
#[cfg(test)]
pub fn parse_run(args: &[String]) -> Result<RunArgs, String> {
    match parse(args)? {
        Command::Run(a) => Ok(a),
        other => Err(format!("expected a 'run' command, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    /// Pulls every `--flag` token out of a block of text.
    fn flags_in(text: &str) -> std::collections::BTreeSet<String> {
        let mut flags = std::collections::BTreeSet::new();
        for raw in text.split(|c: char| c.is_whitespace() || "`|<>()=,;".contains(c)) {
            let token = raw.trim_end_matches(|c: char| !c.is_ascii_alphanumeric());
            if let Some(name) = token.strip_prefix("--") {
                if !name.is_empty()
                    && name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
                {
                    flags.insert(token.to_string());
                }
            }
        }
        flags
    }

    /// The README's CLI section and the parser must not drift apart: every
    /// flag the README documents must exist in the parser (and be listed
    /// in `USAGE`), and every flag `USAGE` offers must be documented in
    /// the README's CLI section.
    #[test]
    fn readme_cli_flags_match_the_parser() {
        let readme = include_str!("../../../README.md");
        let cli_section = readme
            .split("\n## CLI\n")
            .nth(1)
            .expect("README has a '## CLI' section")
            .split("\n## ")
            .next()
            .unwrap();

        // Command examples are `cargo run --release -p metis-cli -- …`;
        // only the part after cargo's `--` separator belongs to this
        // parser, so strip each cargo prefix before scanning for flags.
        let own_text: String = cli_section
            .lines()
            .map(
                |line| match (line.contains("cargo "), line.split_once(" -- ")) {
                    (true, Some((_, rest))) => rest,
                    (true, None) => "",
                    (false, _) => line,
                },
            )
            .collect::<Vec<_>>()
            .join("\n");
        let documented = flags_in(&own_text);
        let offered = flags_in(USAGE);
        assert!(!documented.is_empty() && !offered.is_empty());

        for flag in &documented {
            assert!(
                offered.contains(flag),
                "README documents {flag} but USAGE does not list it"
            );
            // The parser itself must recognize the flag: whatever else goes
            // wrong with a bare probe (missing value, combination rules),
            // it must never be "unknown option".
            let probe = parse(&sv(&["run", flag, "1"]));
            if let Err(msg) = probe {
                assert!(
                    !msg.contains(&format!("unknown option '{flag}'")),
                    "README documents {flag} but the parser rejects it as unknown: {msg}"
                );
            }
        }
        for flag in &offered {
            assert!(
                documented.contains(flag),
                "USAGE lists {flag} but the README CLI section never mentions it"
            );
        }
    }

    #[test]
    fn run_defaults() -> Result<(), String> {
        let a = parse_run(&sv(&["run"]))?;
        assert_eq!(a, RunArgs::default());
        Ok(())
    }

    #[test]
    fn full_option_set_parses() -> Result<(), String> {
        let a = parse_run(&sv(&[
            "run",
            "--dataset",
            "finsec",
            "--system",
            "map_reduce:8:120",
            "--queries",
            "50",
            "--qps",
            "0.2",
            "--seed",
            "42",
            "--big-model",
            "--slo",
            "2.5",
            "--prefix-cache-gb",
            "4",
            "--replicas",
            "2",
            "--router",
            "least-kv",
        ]))?;
        assert_eq!(a.dataset, DatasetKind::FinSec);
        assert_eq!(a.system, SystemChoice::FixedMapReduce(8, 120));
        assert_eq!(a.queries, 50);
        assert_eq!(a.qps, 0.2);
        assert_eq!(a.seed, 42);
        assert!(a.big_model);
        assert_eq!(a.slo, Some(2.5));
        assert_eq!(a.prefix_cache_gib, Some(4));
        assert_eq!(a.replicas, 2);
        assert_eq!(a.router, RouterPolicy::LeastKvLoad);
        Ok(())
    }

    #[test]
    fn non_run_commands_are_rejected_by_parse_run() {
        assert!(parse_run(&sv(&["sweep"])).is_err());
        assert!(parse_run(&sv(&["help"])).is_err());
    }

    #[test]
    fn replica_and_router_flags_parse() -> Result<(), String> {
        let a = parse_run(&sv(&["run", "--replicas", "4"]))?;
        assert_eq!(a.replicas, 4);
        assert_eq!(a.router, RouterPolicy::RoundRobin, "default router");
        let a = parse_run(&sv(&["run", "--router", "rr"]))?;
        assert_eq!(a.router, RouterPolicy::RoundRobin);
        let a = parse_run(&sv(&["run", "--router", "least-kv-load"]))?;
        assert_eq!(a.router, RouterPolicy::LeastKvLoad);
        Ok(())
    }

    #[test]
    fn bad_inputs_are_rejected_with_messages() {
        assert!(parse(&sv(&["run", "--dataset", "wiki"])).is_err());
        assert!(parse(&sv(&["run", "--system", "magic"])).is_err());
        assert!(parse(&sv(&["run", "--queries", "0"])).is_err());
        assert!(parse(&sv(&["run", "--qps"])).is_err(), "missing value");
        assert!(parse(&sv(&["launch"])).is_err(), "unknown subcommand");
        // Malformed replica/router values carry a descriptive error.
        let err = parse(&sv(&["run", "--replicas", "two"])).unwrap_err();
        assert!(err.contains("bad --replicas"), "got: {err}");
        let err = parse(&sv(&["run", "--router", "hash-ring"])).unwrap_err();
        assert!(err.contains("unknown router"), "got: {err}");
    }

    #[test]
    fn zero_replicas_is_a_parse_error_not_a_deep_panic() {
        // `Cluster::new` panics on an empty replica list; the CLI must
        // refuse the value up front with a descriptive message instead.
        let err = parse_run(&sv(&["run", "--replicas", "0"])).unwrap_err();
        assert!(err.contains("--replicas must be positive"), "got: {err}");
        // The check applies to every subcommand that takes the flag.
        let err = parse(&sv(&["sweep", "--replicas", "0"])).unwrap_err();
        assert!(err.contains("--replicas must be positive"), "got: {err}");
    }

    #[test]
    fn elasticity_flags_parse() -> Result<(), String> {
        let a = parse_run(&sv(&["run"]))?;
        assert!(!a.autoscale);
        assert_eq!(a.preempt_mode, PreemptMode::Recompute);
        assert_eq!(a.replica_mix, None);
        let a = parse_run(&sv(&["run", "--autoscale", "--replicas", "2"]))?;
        assert!(a.autoscale);
        assert_eq!(a.replicas, 2, "--replicas is the starting fleet");
        let a = parse_run(&sv(&[
            "run",
            "--preempt-mode",
            "migrate",
            "--replicas",
            "3",
        ]))?;
        assert_eq!(a.preempt_mode, PreemptMode::Migrate);
        // An explicit recompute still parses (useful in scripts).
        let a = parse_run(&sv(&["run", "--preempt-mode", "recompute"]))?;
        assert_eq!(a.preempt_mode, PreemptMode::Recompute);
        // The mix is the fleet: one replica per listed class, in order.
        let a = parse_run(&sv(&["run", "--replica-mix", "a40,a40,h100"]))?;
        assert_eq!(
            a.replica_mix,
            Some(vec![GpuClass::A40, GpuClass::A40, GpuClass::H100])
        );
        assert_eq!(a.replicas, 3, "the mix sets the fleet size");
        let a = parse_run(&sv(&[
            "run",
            "--router",
            "prefix-aware",
            "--prefix-cache-gb",
            "4",
            "--replicas",
            "2",
        ]))?;
        assert_eq!(a.router, RouterPolicy::PrefixAware);
        Ok(())
    }

    #[test]
    fn elasticity_flag_misuse_is_rejected() {
        // --replica-mix and --replicas conflict in either flag order.
        let err = parse(&sv(&["run", "--replica-mix", "a40", "--replicas", "2"])).unwrap_err();
        assert!(err.contains("replaces --replicas"), "got: {err}");
        let err = parse(&sv(&["run", "--replicas", "2", "--replica-mix", "a40"])).unwrap_err();
        assert!(err.contains("replaces --replicas"), "got: {err}");
        let err = parse(&sv(&["run", "--replica-mix", "a40,h100", "--big-model"])).unwrap_err();
        assert!(err.contains("--big-model"), "got: {err}");
        // Malformed mixes carry descriptive errors.
        let err = parse(&sv(&["run", "--replica-mix", "a40,,h100"])).unwrap_err();
        assert!(err.contains("empty entry"), "got: {err}");
        let err = parse(&sv(&["run", "--replica-mix", "tpu"])).unwrap_err();
        assert!(err.contains("unknown GPU class"), "got: {err}");
        let err = parse(&sv(&["run", "--preempt-mode", "teleport"])).unwrap_err();
        assert!(err.contains("unknown preempt mode"), "got: {err}");
        // Migration has no realtime transfer path — rejected, not a panic
        // deep inside the worker spawn.
        let err = parse(&sv(&[
            "serve",
            "--driver",
            "realtime",
            "--preempt-mode",
            "migrate",
        ]))
        .unwrap_err();
        assert!(err.contains("requires the sim driver"), "got: {err}");
        // Prefix-aware routing without a prefix cache would silently act
        // as least-kv.
        let err = parse(&sv(&["run", "--router", "prefix-aware"])).unwrap_err();
        assert!(err.contains("requires --prefix-cache-gb"), "got: {err}");
    }

    #[test]
    fn arrival_process_flags_parse() -> Result<(), String> {
        let a = parse_run(&sv(&["run"]))?;
        assert_eq!(a.arrivals, ArrivalProcess::Poisson);
        assert!(!a.priority_from_slo);
        let a = parse_run(&sv(&["run", "--arrivals", "burst"]))?;
        assert_eq!(a.arrivals, ArrivalProcess::Burst { factor: 4.0 });
        // --burst-factor composes in either flag order.
        let a = parse_run(&sv(&["run", "--arrivals", "burst", "--burst-factor", "8"]))?;
        assert_eq!(a.arrivals, ArrivalProcess::Burst { factor: 8.0 });
        let a = parse_run(&sv(&["run", "--burst-factor", "6", "--arrivals", "burst"]))?;
        assert_eq!(a.arrivals, ArrivalProcess::Burst { factor: 6.0 });
        let a = parse_run(&sv(&["run", "--arrivals", "gamma"]))?;
        assert_eq!(a.arrivals, ArrivalProcess::Gamma { cv: 2.0 });
        let a = parse_run(&sv(&[
            "run",
            "--arrivals",
            "diurnal",
            "--priority-from-slo",
        ]))?;
        assert_eq!(a.arrivals, ArrivalProcess::Diurnal);
        assert!(a.priority_from_slo);
        Ok(())
    }

    #[test]
    fn arrival_flag_misuse_is_rejected() {
        let err = parse(&sv(&["run", "--arrivals", "lunar"])).unwrap_err();
        assert!(err.contains("unknown arrival process"), "got: {err}");
        let err = parse(&sv(&["run", "--burst-factor", "0.5"])).unwrap_err();
        assert!(err.contains("must be >= 1"), "got: {err}");
        let err = parse(&sv(&["run", "--burst-factor", "4"])).unwrap_err();
        assert!(err.contains("requires --arrivals burst"), "got: {err}");
        let err = parse(&sv(&["run", "--arrivals", "gamma", "--burst-factor", "4"])).unwrap_err();
        assert!(err.contains("requires --arrivals burst"), "got: {err}");
        // Fixed-config systems never assign priorities: the flag would be
        // silently inert, so it is rejected instead.
        let err = parse(&sv(&["run", "--system", "stuff:4", "--priority-from-slo"])).unwrap_err();
        assert!(err.contains("requires --system metis"), "got: {err}");
    }

    #[test]
    fn index_flags_parse_in_any_order() -> Result<(), String> {
        let a = parse_run(&sv(&["run"]))?;
        assert_eq!(a.index, IndexSpec::Flat);
        let a = parse_run(&sv(&["run", "--index", "flat"]))?;
        assert_eq!(a.index, IndexSpec::Flat);
        // Defaults fill in the unspecified IVF shape.
        let a = parse_run(&sv(&["run", "--index", "ivf"]))?;
        assert_eq!(a.index, IndexSpec::ivf(64, 8));
        let a = parse_run(&sv(&["run", "--index", "ivf", "--nlist", "32"]))?;
        assert_eq!(a.index, IndexSpec::ivf(32, 8));
        // The default nprobe clamps to a small nlist.
        let a = parse_run(&sv(&["run", "--index", "ivf", "--nlist", "4"]))?;
        assert_eq!(a.index, IndexSpec::ivf(4, 4));
        // Shape flags compose before or after --index.
        let a = parse_run(&sv(&[
            "run", "--nprobe", "2", "--index", "ivf", "--nlist", "16",
        ]))?;
        assert_eq!(a.index, IndexSpec::ivf(16, 2));
        Ok(())
    }

    #[test]
    fn index_flag_misuse_is_rejected_at_parse() {
        // nprobe > nlist: a parse error with a message, not a deep panic.
        let err = parse(&sv(&[
            "run", "--index", "ivf", "--nlist", "8", "--nprobe", "32",
        ]))
        .unwrap_err();
        assert!(
            err.contains("--nprobe (32) must be <= --nlist (8)"),
            "got: {err}"
        );
        // Shape flags without their own index family would be silently
        // inert — both directions are rejected with exact messages.
        let err = parse(&sv(&["run", "--nlist", "64"])).unwrap_err();
        assert_eq!(err, "--nlist/--nprobe require --index ivf");
        let err = parse(&sv(&["run", "--index", "flat", "--nprobe", "4"])).unwrap_err();
        assert_eq!(err, "--nlist/--nprobe require --index ivf");
        let err = parse(&sv(&["run", "--index", "hnsw", "--nlist", "64"])).unwrap_err();
        assert_eq!(err, "--nlist/--nprobe require --index ivf");
        let err = parse(&sv(&["run", "--ef-search", "128"])).unwrap_err();
        assert_eq!(err, "--ef-search/--m require --index hnsw");
        let err = parse(&sv(&["run", "--index", "flat", "--m", "8"])).unwrap_err();
        assert_eq!(err, "--ef-search/--m require --index hnsw");
        let err = parse(&sv(&["run", "--index", "ivf", "--ef-search", "32"])).unwrap_err();
        assert_eq!(err, "--ef-search/--m require --index hnsw");
        // Malformed values carry descriptive errors.
        let err = parse(&sv(&["run", "--index", "pq"])).unwrap_err();
        assert!(err.contains("unknown index"), "got: {err}");
        let err = parse(&sv(&["run", "--index", "ivf", "--nlist", "0"])).unwrap_err();
        assert!(err.contains("--nlist must be positive"), "got: {err}");
        let err = parse(&sv(&["run", "--index", "ivf", "--nprobe", "zero"])).unwrap_err();
        assert!(err.contains("bad --nprobe"), "got: {err}");
    }

    #[test]
    fn hnsw_flags_parse_in_any_order() -> Result<(), String> {
        // Defaults fill in the unspecified HNSW shape.
        let a = parse_run(&sv(&["run", "--index", "hnsw"]))?;
        assert_eq!(a.index, IndexSpec::hnsw(16, 64));
        // Shape flags compose before or after --index.
        let a = parse_run(&sv(&[
            "run",
            "--ef-search",
            "128",
            "--index",
            "hnsw",
            "--m",
            "8",
        ]))?;
        assert_eq!(a.index, IndexSpec::hnsw(8, 128));
        // A neighbor budget above the default construction beam raises the
        // beam instead of failing validation on a flag the CLI can't set.
        let a = parse_run(&sv(&["run", "--index", "hnsw", "--m", "128"]))?;
        assert_eq!(
            a.index,
            IndexSpec::Hnsw {
                m: 128,
                ef_construction: 128,
                ef_search: 64
            }
        );
        Ok(())
    }

    #[test]
    fn hnsw_flag_misuse_is_rejected_at_parse() {
        let err = parse(&sv(&["run", "--index", "hnsw", "--m", "1"])).unwrap_err();
        assert!(err.contains("--m must be at least 2"), "got: {err}");
        let err = parse(&sv(&["run", "--index", "hnsw", "--ef-search", "0"])).unwrap_err();
        assert!(err.contains("--ef-search must be positive"), "got: {err}");
        let err = parse(&sv(&["run", "--index", "hnsw", "--ef-search", "many"])).unwrap_err();
        assert!(err.contains("bad --ef-search"), "got: {err}");
        let err = parse(&sv(&["run", "--index", "hnsw", "--m", "wide"])).unwrap_err();
        assert!(err.contains("bad --m"), "got: {err}");
    }

    #[test]
    fn quantize_flag_parses_with_every_index_family() -> Result<(), String> {
        let a = parse_run(&sv(&["run"]))?;
        assert_eq!(a.quant, Quantization::F32);
        let a = parse_run(&sv(&["run", "--quantize", "f32"]))?;
        assert_eq!(a.quant, Quantization::F32);
        // sq8 storage is an axis orthogonal to the index family.
        let a = parse_run(&sv(&["run", "--quantize", "sq8"]))?;
        assert_eq!(a.quant, Quantization::sq8());
        let a = parse_run(&sv(&["run", "--index", "ivf", "--quantize", "sq8"]))?;
        assert_eq!(a.index, IndexSpec::ivf(64, 8));
        assert_eq!(a.quant, Quantization::sq8());
        let a = parse_run(&sv(&["run", "--index", "hnsw", "--quantize", "sq8"]))?;
        assert_eq!(a.index, IndexSpec::hnsw(16, 64));
        assert_eq!(a.quant, Quantization::sq8());
        let err = parse(&sv(&["run", "--quantize", "pq4"])).unwrap_err();
        assert!(err.contains("unknown quantization"), "got: {err}");
        Ok(())
    }

    #[test]
    fn json_flag_parses_on_run_only() -> Result<(), String> {
        let a = parse_run(&sv(&["run", "--json", "out/report.json"]))?;
        assert_eq!(a.json.as_deref(), Some("out/report.json"));
        let a = parse_run(&sv(&["run"]))?;
        assert_eq!(a.json, None);
        let err = parse(&sv(&["sweep", "--json", "x.json"])).unwrap_err();
        assert!(
            err.contains("requires the run or replay subcommand"),
            "got: {err}"
        );
        let err = parse(&sv(&["run", "--json", ""])).unwrap_err();
        assert!(err.contains("non-empty path"), "got: {err}");
        let err = parse(&sv(&["run", "--json"])).unwrap_err();
        assert!(err.contains("missing value"), "got: {err}");
        Ok(())
    }

    #[test]
    fn driver_flags_parse_on_serve_and_replay() -> Result<(), String> {
        // serve/replay default to the simulator, like every other command.
        let Command::Serve(a) = parse(&sv(&["serve"]))? else {
            return Err("expected serve".into());
        };
        assert_eq!(a.driver, DriverSpec::Sim);
        let Command::Serve(a) = parse(&sv(&["serve", "--driver", "realtime"]))? else {
            return Err("expected serve".into());
        };
        assert_eq!(a.driver, DriverSpec::Realtime { time_scale: 1.0 });
        // Flags compose in either order; replay accepts --json.
        let Command::Replay(a) = parse(&sv(&[
            "replay",
            "--time-scale",
            "1000",
            "--driver",
            "realtime",
            "--json",
            "out/replay.json",
        ]))?
        else {
            return Err("expected replay".into());
        };
        assert_eq!(a.driver, DriverSpec::Realtime { time_scale: 1000.0 });
        assert_eq!(a.json.as_deref(), Some("out/replay.json"));
        // An explicit sim driver still parses (useful in scripts).
        let Command::Replay(a) = parse(&sv(&["replay", "--driver", "sim"]))? else {
            return Err("expected replay".into());
        };
        assert_eq!(a.driver, DriverSpec::Sim);
        Ok(())
    }

    #[test]
    fn driver_flag_misuse_is_rejected() {
        // Inert placements are rejected rather than silently ignored.
        let err = parse(&sv(&["run", "--driver", "realtime"])).unwrap_err();
        assert!(
            err.contains("requires the serve or replay subcommand"),
            "got: {err}"
        );
        let err = parse(&sv(&["serve", "--time-scale", "100"])).unwrap_err();
        assert!(err.contains("requires --driver realtime"), "got: {err}");
        let err = parse(&sv(&["serve", "--driver", "sim", "--time-scale", "100"])).unwrap_err();
        assert!(err.contains("requires --driver realtime"), "got: {err}");
        // Malformed values carry descriptive errors.
        let err = parse(&sv(&["serve", "--driver", "gpu"])).unwrap_err();
        assert!(err.contains("unknown driver"), "got: {err}");
        let err = parse(&sv(&["serve", "--driver", "realtime", "--time-scale", "0"])).unwrap_err();
        assert!(err.contains("finite and positive"), "got: {err}");
        let err = parse(&sv(&[
            "serve",
            "--driver",
            "realtime",
            "--time-scale",
            "fast",
        ]))
        .unwrap_err();
        assert!(err.contains("bad --time-scale"), "got: {err}");
    }

    #[test]
    fn system_spellings() {
        assert_eq!(parse_system("METIS").unwrap(), SystemChoice::Metis);
        assert_eq!(
            parse_system("adaptiverag").unwrap(),
            SystemChoice::AdaptiveRag
        );
        assert_eq!(
            parse_system("stuff:12").unwrap(),
            SystemChoice::FixedStuff(12)
        );
        assert_eq!(
            parse_system("map_reduce:6").unwrap(),
            SystemChoice::FixedMapReduce(6, 100)
        );
    }
}

//! Hand-rolled argument parsing (no external dependencies).

use metis_datasets::DatasetKind;

/// Parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `metis run ...` — serve a workload and print the summary.
    Run(RunArgs),
    /// `metis sweep ...` — sweep the fixed-configuration menu.
    Sweep(RunArgs),
    /// `metis profile ...` — show profiles and pruned spaces per query.
    Profile(RunArgs),
    /// `metis help`.
    Help,
}

/// Options shared by the subcommands.
#[derive(Clone, Debug, PartialEq)]
pub struct RunArgs {
    /// Which dataset to generate.
    pub dataset: DatasetKind,
    /// System under test (run subcommand only).
    pub system: SystemChoice,
    /// Number of queries.
    pub queries: usize,
    /// Poisson arrival rate (q/s); 0 = closed loop.
    pub qps: f64,
    /// Master seed.
    pub seed: u64,
    /// Serve with Llama-3.1-70B on two A40s instead of Mistral-7B.
    pub big_model: bool,
    /// Optional per-query latency SLO in seconds.
    pub slo: Option<f64>,
    /// Optional chunk-KV prefix cache in GiB.
    pub prefix_cache_gib: Option<u64>,
}

/// Which serving system to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemChoice {
    /// Full METIS.
    Metis,
    /// AdaptiveRAG\* baseline.
    AdaptiveRag,
    /// vLLM with a fixed configuration `stuff(k)`.
    FixedStuff(u32),
    /// vLLM with a fixed configuration `map_reduce(k, l)`.
    FixedMapReduce(u32, u32),
}

impl Default for RunArgs {
    fn default() -> Self {
        Self {
            dataset: DatasetKind::Musique,
            system: SystemChoice::Metis,
            queries: 100,
            qps: 0.5,
            seed: 7,
            big_model: false,
            slo: None,
            prefix_cache_gib: None,
        }
    }
}

/// Usage text printed by `metis help` and on parse errors.
pub const USAGE: &str = "\
metis — METIS RAG-serving reproduction (SOSP '25)

USAGE:
  metis run     [OPTIONS]   serve a workload and print per-system results
  metis sweep   [OPTIONS]   sweep the fixed-configuration menu
  metis profile [OPTIONS]   show profiler output and pruned spaces per query
  metis help

OPTIONS:
  --dataset <squad|musique|finsec|qmsum>   (default musique)
  --system  <metis|adaptive|stuff:K|map_reduce:K:L>  (default metis)
  --queries <N>            (default 100)
  --qps <RATE>             Poisson rate; 0 = closed loop (default 0.5)
  --seed <N>               (default 7)
  --big-model              serve Llama-3.1-70B on two A40s
  --slo <SECS>             per-query latency budget
  --prefix-cache-gb <GIB>  enable chunk-KV reuse
";

/// Parses a dataset name.
pub fn parse_dataset(s: &str) -> Result<DatasetKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "squad" => Ok(DatasetKind::Squad),
        "musique" => Ok(DatasetKind::Musique),
        "finsec" | "kg-rag-finsec" => Ok(DatasetKind::FinSec),
        "qmsum" => Ok(DatasetKind::Qmsum),
        other => Err(format!("unknown dataset '{other}'")),
    }
}

/// Parses a system choice.
pub fn parse_system(s: &str) -> Result<SystemChoice, String> {
    let lower = s.to_ascii_lowercase();
    if lower == "metis" {
        return Ok(SystemChoice::Metis);
    }
    if lower == "adaptive" || lower == "adaptiverag" {
        return Ok(SystemChoice::AdaptiveRag);
    }
    if let Some(rest) = lower.strip_prefix("stuff:") {
        let k: u32 = rest
            .parse()
            .map_err(|_| format!("bad chunk count '{rest}'"))?;
        return Ok(SystemChoice::FixedStuff(k));
    }
    if let Some(rest) = lower.strip_prefix("map_reduce:") {
        let mut it = rest.split(':');
        let k: u32 = it
            .next()
            .unwrap_or_default()
            .parse()
            .map_err(|_| format!("bad map_reduce spec '{rest}'"))?;
        let l: u32 = it
            .next()
            .unwrap_or("100")
            .parse()
            .map_err(|_| format!("bad map_reduce spec '{rest}'"))?;
        return Ok(SystemChoice::FixedMapReduce(k, l));
    }
    Err(format!("unknown system '{s}'"))
}

/// Parses the full command line (without the binary name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    let mut run = RunArgs::default();
    let mut i = 1;
    let next = |i: &mut usize| -> Result<&str, String> {
        *i += 1;
        args.get(*i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing value for {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" => run.dataset = parse_dataset(next(&mut i)?)?,
            "--system" => run.system = parse_system(next(&mut i)?)?,
            "--queries" => {
                run.queries = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --queries: {e}"))?
            }
            "--qps" => {
                run.qps = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --qps: {e}"))?
            }
            "--seed" => {
                run.seed = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--big-model" => run.big_model = true,
            "--slo" => {
                run.slo = Some(
                    next(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --slo: {e}"))?,
                )
            }
            "--prefix-cache-gb" => {
                run.prefix_cache_gib = Some(
                    next(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --prefix-cache-gb: {e}"))?,
                )
            }
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 1;
    }
    if run.queries == 0 {
        return Err("--queries must be positive".into());
    }
    match sub.as_str() {
        "run" => Ok(Command::Run(run)),
        "sweep" => Ok(Command::Sweep(run)),
        "profile" => Ok(Command::Profile(run)),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn run_defaults() {
        let Command::Run(a) = parse(&sv(&["run"])).unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(a, RunArgs::default());
    }

    #[test]
    fn full_option_set_parses() {
        let cmd = parse(&sv(&[
            "run",
            "--dataset",
            "finsec",
            "--system",
            "map_reduce:8:120",
            "--queries",
            "50",
            "--qps",
            "0.2",
            "--seed",
            "42",
            "--big-model",
            "--slo",
            "2.5",
            "--prefix-cache-gb",
            "4",
        ]))
        .unwrap();
        let Command::Run(a) = cmd else { panic!() };
        assert_eq!(a.dataset, DatasetKind::FinSec);
        assert_eq!(a.system, SystemChoice::FixedMapReduce(8, 120));
        assert_eq!(a.queries, 50);
        assert_eq!(a.qps, 0.2);
        assert_eq!(a.seed, 42);
        assert!(a.big_model);
        assert_eq!(a.slo, Some(2.5));
        assert_eq!(a.prefix_cache_gib, Some(4));
    }

    #[test]
    fn bad_inputs_are_rejected_with_messages() {
        assert!(parse(&sv(&["run", "--dataset", "wiki"])).is_err());
        assert!(parse(&sv(&["run", "--system", "magic"])).is_err());
        assert!(parse(&sv(&["run", "--queries", "0"])).is_err());
        assert!(parse(&sv(&["run", "--qps"])).is_err(), "missing value");
        assert!(parse(&sv(&["serve"])).is_err(), "unknown subcommand");
    }

    #[test]
    fn system_spellings() {
        assert_eq!(parse_system("METIS").unwrap(), SystemChoice::Metis);
        assert_eq!(
            parse_system("adaptiverag").unwrap(),
            SystemChoice::AdaptiveRag
        );
        assert_eq!(
            parse_system("stuff:12").unwrap(),
            SystemChoice::FixedStuff(12)
        );
        assert_eq!(
            parse_system("map_reduce:6").unwrap(),
            SystemChoice::FixedMapReduce(6, 100)
        );
    }
}

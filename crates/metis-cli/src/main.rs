//! `metis` — command-line workload runner for the METIS reproduction.
//!
//! ```sh
//! metis run --dataset finsec --system metis --queries 100 --qps 0.2
//! metis sweep --dataset musique
//! metis profile --dataset qmsum --queries 5
//! metis serve --driver realtime --time-scale 200 --queries 32
//! metis replay --driver realtime --time-scale 1000 --queries 8 --json out.json
//! ```

mod args;

use std::process::ExitCode;

use metis_core::{
    fixed_config_grid, map_profile, DriverKind, MetisOptions, RagConfig, RunConfig, RunResult,
    Runner, SystemKind,
};
use metis_datasets::{build_dataset, build_dataset_with_spec};
use metis_engine::Priority;
use metis_llm::{Clock, GpuCluster, ModelSpec, ReplicaSpec};
use metis_metrics::BenchReport;
use metis_profiler::{LlmProfiler, ProfilerKind};

use args::{parse, Command, GpuClass, RunArgs, SystemChoice, USAGE};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse(&argv) {
        Ok(Command::Help) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Command::Run(a)) => {
            cmd_run(&a);
            ExitCode::SUCCESS
        }
        Ok(Command::Sweep(a)) => {
            cmd_sweep(&a);
            ExitCode::SUCCESS
        }
        Ok(Command::Profile(a)) => {
            cmd_profile(&a);
            ExitCode::SUCCESS
        }
        Ok(Command::Serve(a)) => {
            cmd_serve(&a);
            ExitCode::SUCCESS
        }
        Ok(Command::Replay(a)) => {
            cmd_replay(&a);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn system_of(choice: SystemChoice, slo: Option<f64>, priority_from_slo: bool) -> SystemKind {
    match choice {
        SystemChoice::Metis => {
            let mut opts = MetisOptions::full();
            opts.slo_secs = slo;
            opts.priority_from_slo = priority_from_slo;
            SystemKind::Metis(opts)
        }
        SystemChoice::AdaptiveRag => SystemKind::AdaptiveRag {
            profiler: ProfilerKind::Gpt4o,
        },
        SystemChoice::FixedStuff(k) => SystemKind::VllmFixed {
            config: RagConfig::stuff(k),
        },
        SystemChoice::FixedMapReduce(k, l) => SystemKind::VllmFixed {
            config: RagConfig::map_reduce(k, l),
        },
    }
}

fn run_once(a: &RunArgs, system: SystemKind) -> RunResult {
    let dataset = build_dataset_with_spec(a.dataset, a.queries, a.seed, a.index, a.quant);
    let closed_loop = a.qps <= 0.0;
    let arrivals = if closed_loop {
        vec![0; a.queries]
    } else {
        a.arrivals.arrivals(a.seed ^ 0xA11, a.qps, a.queries)
    };
    let mut cfg = RunConfig::standard(system, arrivals, a.seed);
    cfg.closed_loop = closed_loop;
    cfg.replicas = a.replicas;
    if let Some(mix) = &a.replica_mix {
        cfg.replica_specs = Some(
            mix.iter()
                .map(|class| {
                    ReplicaSpec::new(match class {
                        GpuClass::A40 => GpuCluster::single_a40(),
                        GpuClass::H100 => GpuCluster::single_h100(),
                    })
                })
                .collect(),
        );
    }
    cfg.router = a.router;
    cfg.engine.preempt_mode = a.preempt_mode;
    if a.autoscale {
        // `--replicas` is the starting fleet; the default policy's band
        // (1..=8 replicas) governs how far the run may grow or drain.
        cfg = cfg.with_autoscale(metis_core::Autoscaler::default());
    }
    cfg.index = a.index;
    cfg.quant = a.quant;
    if a.big_model {
        cfg.model = ModelSpec::llama31_70b_awq();
        cfg.cluster = GpuCluster::dual_a40();
    }
    if let Some(gib) = a.prefix_cache_gib {
        cfg.prefix_cache_bytes = Some(gib * (1 << 30));
    }
    cfg.driver = a.driver;
    Runner::new(&dataset, cfg).run()
}

fn print_result(label: &str, r: &RunResult) {
    let lat = r.latency();
    println!(
        "{label:<28} mean {:>6.2}s  p50 {:>6.2}s  p99 {:>6.2}s  F1 {:.3}  $api {:.4}",
        lat.mean(),
        lat.p50(),
        lat.p99(),
        r.mean_f1(),
        r.api_cost_usd
    );
}

fn cmd_run(a: &RunArgs) {
    println!(
        "dataset {:?}, {} queries, {}{}",
        a.dataset,
        a.queries,
        if a.qps <= 0.0 {
            "closed loop".to_string()
        } else {
            format!("{} arrivals, λ = {}/s", a.arrivals.name(), a.qps)
        },
        if a.replicas > 1 {
            format!(", {} replicas ({})", a.replicas, a.router.name())
        } else {
            String::new()
        }
    );
    let r = run_once(a, system_of(a.system, a.slo, a.priority_from_slo));
    print_result(&format!("{:?}", a.system), &r);
    let stages = r.stage_breakdown();
    println!(
        "stages (mean s): profile {:.3}  decide {:.3}  retrieve {:.3}  \
         queue-wait {:.3}  prefill {:.3}  decode {:.3}",
        stages.profile,
        stages.decide,
        stages.retrieve,
        stages.queue_wait,
        stages.prefill,
        stages.decode,
    );
    let retrieval = r.retrieval();
    println!(
        "retrieval [{}{}]: p50 {:.2} ms  p99 {:.2} ms  fact-recall {:.3}",
        a.index.label(),
        if a.quant.is_quantized() {
            format!(",{}", a.quant.name())
        } else {
            String::new()
        },
        retrieval.p50() * 1e3,
        retrieval.p99() * 1e3,
        r.mean_retrieval_recall()
    );
    if a.prefix_cache_gib.is_some() {
        println!("prefix-cache hit rate: {:.1}%", r.prefix_hit_rate * 100.0);
    }
    if r.preemptions > 0 {
        println!("preemptions: {}", r.preemptions);
    }
    if r.migrations > 0 {
        println!(
            "migrations: {} ({} KV tokens moved, {} tokens recomputed)",
            r.migrations, r.migrated_tokens, r.preempted_tokens
        );
    }
    if a.autoscale {
        println!(
            "fleet: peak {} replicas, {:.1} replica-seconds",
            r.peak_replicas, r.replica_seconds
        );
    }
    if a.priority_from_slo {
        for p in Priority::all() {
            let lat = r.latency_of(p);
            let wait = r.queue_wait(Some(p));
            if lat.is_empty() {
                continue;
            }
            println!(
                "  {:<12} {:>3} queries  delay p50 {:>6.2}s p99 {:>6.2}s  queue-wait p99 {:>6.2}s",
                p.name(),
                lat.len(),
                lat.p50(),
                lat.p99(),
                wait.p99(),
            );
        }
    }
    if a.replicas > 1 {
        let counts = r.completions_by_replica();
        let parts: Vec<String> = counts
            .iter()
            .enumerate()
            .map(|(i, n)| format!("r{i}={n}"))
            .collect();
        println!("per-replica completions: {}", parts.join(" "));
    }
    if let Some(path) = &a.json {
        write_report(a, &r, path);
    }
}

/// Builds the run's single-cell [`BenchReport`] — the same schema the bench
/// harness emits, so CLI runs slot into the same tooling (`perf_check`,
/// plotting) as figure reproductions. Realtime cells additionally carry the
/// `driver`/`time_scale` markers `cell_report` stamps on them.
fn build_report(name: &str, title: &str, a: &RunArgs, r: &RunResult) -> BenchReport {
    let mut report = BenchReport::new(name, title);
    report.dataset_seed = a.seed;
    report.run_seed = a.seed;
    report = report
        .knob("dataset", format!("{:?}", a.dataset))
        .knob("system", format!("{:?}", a.system))
        .knob("queries", a.queries)
        .knob("qps", a.qps)
        .knob("arrivals", a.arrivals.name())
        .knob("replicas", a.replicas)
        .knob("router", a.router.name())
        .knob("index", a.index.label())
        .knob("quantize", a.quant.name())
        .knob("driver", r.driver.name());
    if r.driver == DriverKind::Realtime {
        report = report.knob("time_scale", r.time_scale);
    }
    // Elasticity knobs only when they shape the run, so reports from plain
    // fixed-fleet invocations keep their existing shape.
    if a.preempt_mode != metis_engine::PreemptMode::Recompute {
        report = report.knob("preempt_mode", a.preempt_mode.name());
    }
    if a.autoscale {
        report = report.knob("autoscale", true);
    }
    if let Some(mix) = &a.replica_mix {
        let names: Vec<&str> = mix
            .iter()
            .map(|c| match c {
                GpuClass::A40 => "a40",
                GpuClass::H100 => "h100",
            })
            .collect();
        report = report.knob("replica_mix", names.join(","));
    }
    report.cells.push(
        r.cell_report("run", a.seed)
            .knob("system", format!("{:?}", a.system)),
    );
    report
}

/// Writes a report to `path`, creating parent directories as needed.
fn write_report_to(report: &BenchReport, path: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("error: cannot create {}: {e}", parent.display());
                return;
            }
        }
    }
    match std::fs::write(path, report.render()) {
        Ok(()) => println!("report: {path}"),
        Err(e) => eprintln!("error: cannot write {path}: {e}"),
    }
}

fn write_report(a: &RunArgs, r: &RunResult, path: &str) {
    write_report_to(&build_report("cli_run", "metis run", a, r), path);
}

/// `metis serve`: the `run` workload on a chosen driver, with wall-clock
/// accounting. Under `--driver realtime` the run takes real time — virtual
/// seconds divided by `--time-scale` — and the summary reports how faithfully
/// the wall tracked the virtual makespan.
fn cmd_serve(a: &RunArgs) {
    println!(
        "serving {:?} on the {} driver{}",
        a.dataset,
        a.driver.kind().name(),
        match a.driver {
            metis_core::DriverSpec::Realtime { time_scale } =>
                format!(" (time-scale {time_scale}×)"),
            metis_core::DriverSpec::Sim => String::new(),
        }
    );
    // Real wall time is the point here (serve reports it next to virtual
    // makespan), read through the sanctioned Clock abstraction.
    let wall_clock = metis_llm::WallClock::new(1.0);
    let r = run_once(a, system_of(a.system, a.slo, a.priority_from_slo));
    let wall = wall_clock.now() as f64 / 1e9;
    print_result(&format!("{:?}", a.system), &r);
    let stages = r.stage_breakdown();
    println!(
        "stages (mean s): profile {:.3}  decide {:.3}  retrieve {:.3}  \
         queue-wait {:.3}  prefill {:.3}  decode {:.3}",
        stages.profile,
        stages.decide,
        stages.retrieve,
        stages.queue_wait,
        stages.prefill,
        stages.decode,
    );
    println!(
        "virtual makespan {:.2}s  wall {:.2}s{}",
        r.makespan_secs,
        wall,
        if r.driver == DriverKind::Realtime {
            format!(
                "  (expected wall ≥ {:.2}s at {}×)",
                r.makespan_secs / r.time_scale,
                r.time_scale
            )
        } else {
            String::new()
        }
    );
}

/// `metis replay`: push the generated workload through the chosen driver and
/// emit the machine-readable report — to `--json <PATH>` if given, else to
/// stdout. The progress line goes to stderr so stdout stays pure JSON.
fn cmd_replay(a: &RunArgs) {
    eprintln!(
        "replaying {:?} ({} queries) on the {} driver",
        a.dataset,
        a.queries,
        a.driver.kind().name()
    );
    let r = run_once(a, system_of(a.system, a.slo, a.priority_from_slo));
    let report = build_report("cli_replay", "metis replay", a, &r);
    match &a.json {
        Some(path) => write_report_to(&report, path),
        None => print!("{}", report.render()),
    }
}

fn cmd_sweep(a: &RunArgs) {
    println!(
        "fixed-configuration sweep on {:?} ({} queries, λ = {}/s)",
        a.dataset, a.queries, a.qps
    );
    for config in fixed_config_grid() {
        let r = run_once(a, SystemKind::VllmFixed { config });
        print_result(&config.label(), &r);
    }
}

fn cmd_profile(a: &RunArgs) {
    let dataset = build_dataset(a.dataset, a.queries, a.seed);
    let mut profiler = LlmProfiler::new(ProfilerKind::Gpt4o);
    let metadata = dataset.db.metadata().clone();
    for q in &dataset.queries {
        let out = profiler.profile(q, &metadata, a.seed);
        let e = out.estimate;
        let space = map_profile(&e);
        println!(
            "q{:<4} true(pieces {}, joint {}, {:?}) est(pieces {}, joint {}, {:?}, conf {:.2}) \
             → methods {:?}, chunks {}..{}, summary {}..{}",
            q.id.0,
            q.profile.pieces,
            q.profile.joint,
            q.profile.complexity,
            e.pieces,
            e.joint,
            e.complexity,
            e.confidence,
            space.methods.iter().map(|m| m.name()).collect::<Vec<_>>(),
            space.num_chunks.0,
            space.num_chunks.1,
            space.intermediate_length.0,
            space.intermediate_length.1,
        );
    }
}
